#include "data/scale.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "storage/predicate.h"

namespace muve::data {

namespace {

using storage::Field;
using storage::FieldRole;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

// splitmix64 finalizer: the per-row hash chain.  Every derived quantity
// mixes (seed, index) independently of neighboring rows, which is what
// makes prefix generation + append bit-identical to one-shot generation.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

size_t RowsPerDay(const ScaleSpec& spec) {
  if (spec.rows_per_day > 0) return spec.rows_per_day;
  return std::max<size_t>(1, spec.rows / 64);
}

int64_t MaxDay(const ScaleSpec& spec) {
  if (spec.rows == 0) return 0;
  return static_cast<int64_t>((spec.rows - 1) / RowsPerDay(spec));
}

}  // namespace

ScaleRow ScaleRowAt(const ScaleSpec& spec, size_t index) {
  const uint64_t h0 = Mix(spec.seed ^ Mix(static_cast<uint64_t>(index)));
  const uint64_t h1 = Mix(h0);
  const uint64_t h2 = Mix(h1);
  const uint64_t h3 = Mix(h2);
  const uint64_t h4 = Mix(h3);
  ScaleRow row;
  row.day = static_cast<int64_t>(index / RowsPerDay(spec));
  row.region = static_cast<uint32_t>(h0 & 3);
  // Day-drifting means keep per-day distributions distinguishable, so
  // views over the day-filtered target genuinely deviate from the
  // comparison over all days.
  row.x = static_cast<int64_t>(h1 % 97) + row.day % 24;
  row.y = static_cast<int64_t>(h2 % 49);
  row.m1 = 10 * row.x + static_cast<int64_t>(h3 % 1000);
  row.m2 = 20 * row.y + static_cast<int64_t>(h4 % 1000);
  return row;
}

Schema ScaleSchema() {
  return Schema({
      Field("day", ValueType::kInt64, FieldRole::kNone),
      Field("region", ValueType::kString, FieldRole::kNone),
      Field("x", ValueType::kInt64, FieldRole::kDimension),
      Field("y", ValueType::kInt64, FieldRole::kDimension),
      Field("m1", ValueType::kInt64, FieldRole::kMeasure),
      Field("m2", ValueType::kInt64, FieldRole::kMeasure),
  });
}

std::shared_ptr<Table> MakeScaleTable(const ScaleSpec& spec, size_t begin,
                                      size_t end, size_t chunk_rows) {
  auto table = std::make_shared<Table>(ScaleSchema(), chunk_rows);
  std::vector<Value> row(6);
  for (size_t i = begin; i < end; ++i) {
    const ScaleRow r = ScaleRowAt(spec, i);
    row[0] = Value(r.day);
    row[1] = Value(kScaleRegions[r.region]);
    row[2] = Value(r.x);
    row[3] = Value(r.y);
    row[4] = Value(r.m1);
    row[5] = Value(r.m2);
    const common::Status st = table->AppendRow(row);
    MUVE_CHECK(st.ok()) << st.ToString();
  }
  return table;
}

std::string ScalePredicateSql(const ScaleSpec& spec) {
  // The final quarter of the day domain: selective (~25%) and clustered
  // at the tail, so zone maps skip the leading chunks wholesale.
  const int64_t threshold = (MaxDay(spec) + 1) * 3 / 4;
  return "day >= " + std::to_string(threshold);
}

Dataset MakeScaleDataset(const ScaleSpec& spec, size_t chunk_rows) {
  common::Stopwatch setup_timer;
  Dataset ds;
  ds.name = "scale";
  ds.table = MakeScaleTable(spec, 0, spec.rows, chunk_rows);
  ds.dimensions = {"x", "y"};
  ds.measures = {"m1", "m2"};
  ds.functions = {storage::AggregateFunction::kSum,
                  storage::AggregateFunction::kAvg};
  ds.query_predicate_sql = ScalePredicateSql(spec);
  const int64_t threshold = (MaxDay(spec) + 1) * 3 / 4;
  auto pred = storage::MakeComparison("day", storage::CompareOp::kGe,
                                      Value(threshold));
  storage::FilterStats filter_stats;
  auto rows = storage::Filter(*ds.table, pred.get(), nullptr, &filter_stats);
  MUVE_CHECK(rows.ok()) << rows.status().ToString();
  ds.target_rows = std::move(rows).value();
  ds.all_rows = storage::AllRows(ds.table->num_rows());
  ds.predicate_rows_filtered = filter_stats.rows_in - filter_stats.rows_out;
  ds.chunks_skipped = filter_stats.chunks_skipped;
  ds.setup_time_ms = setup_timer.ElapsedMillis();
  return ds;
}

void WriteScaleCsv(std::ostream& out, const ScaleSpec& spec, size_t begin,
                   size_t end) {
  if (begin == 0) out << "day,region,x,y,m1,m2\n";
  // No field here ever needs CSV quoting (ints and bare region names),
  // so the stream stays byte-identical to WriteCsvString over the same
  // rows without going through the quoting path.
  for (size_t i = begin; i < end; ++i) {
    const ScaleRow r = ScaleRowAt(spec, i);
    out << r.day << ',' << kScaleRegions[r.region] << ',' << r.x << ','
        << r.y << ',' << r.m1 << ',' << r.m2 << '\n';
  }
}

}  // namespace muve::data
