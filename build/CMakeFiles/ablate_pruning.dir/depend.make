# Empty dependencies file for ablate_pruning.
# This may be replaced when dependencies are built.
