// Differential oracle for the fused morsel-parallel scan engine: one
// fused pass over a row set must produce, for EVERY requested (A, M)
// pair, the same base histogram as an independent reference builder
// (gather -> stable sort -> row-order accumulation, the algorithm the
// pre-fusion per-pair builder implemented).
//
// Contract being pinned (see the header of storage/fused_scan.h):
//   * fine-bin key sets and per-bin COUNTS — bit-identical, always;
//   * per-bin sums / sums of squares — bit-identical with a single
//     morsel (row-order association) and for integer-valued measures at
//     any morsel size; within 1e-9 relative error otherwise;
//   * thread-count invariance — for a FIXED morsel size, 1-worker,
//     8-worker, and inline (no pool) runs are bitwise identical;
//   * BuildBaseHistogram (the single-pair wrapper) — bit-identical to
//     the reference, preserving the PR 2 cache contract.
//
// Seeding: per-case seeds derive from MUVE_FUZZ_SEED (fixed default) via
// tests/fuzz_util.h; every failure prints the seeds to reproduce it.

#include "storage/fused_scan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "fuzz_util.h"
#include "storage/base_histogram_cache.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace muve::storage {
namespace {

// Independent reference: gather the (dimension value, measure value)
// pairs of rows valid on both columns, stable-sort by dimension value,
// accumulate count / sum / sum_sq per distinct value in row order.
BaseHistogram ReferenceBuild(const Table& table, const RowSet& rows,
                             const std::string& dimension,
                             const std::string& measure) {
  auto dim_col = table.ColumnByName(dimension);
  auto mea_col = table.ColumnByName(measure);
  MUVE_CHECK(dim_col.ok() && mea_col.ok());
  struct Pair {
    double key;
    double value;
  };
  std::vector<Pair> pairs;
  for (const size_t row : rows) {
    if ((*dim_col)->IsNull(row) || (*mea_col)->IsNull(row)) continue;
    auto k = (*dim_col)->ValueAt(row).ToDouble();
    auto v = (*mea_col)->ValueAt(row).ToDouble();
    MUVE_CHECK(k.ok() && v.ok());
    pairs.push_back({*k, *v});
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const Pair& a, const Pair& b) { return a.key < b.key; });
  BaseHistogram h;
  h.source_rows = static_cast<int64_t>(rows.size());
  h.prefix_counts.push_back(0);
  h.prefix_sums.push_back(0.0);
  h.prefix_sum_sqs.push_back(0.0);
  size_t i = 0;
  while (i < pairs.size()) {
    const double key = pairs[i].key;
    int64_t count = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    while (i < pairs.size() && pairs[i].key == key) {
      ++count;
      sum += pairs[i].value;
      sum_sq += pairs[i].value * pairs[i].value;
      ++i;
    }
    h.values.push_back(key);
    h.sums.push_back(sum);
    h.sum_sqs.push_back(sum_sq);
    h.prefix_counts.push_back(h.prefix_counts.back() + count);
    h.prefix_sums.push_back(h.prefix_sums.back() + sum);
    h.prefix_sum_sqs.push_back(h.prefix_sum_sqs.back() + sum_sq);
  }
  return h;
}

void ExpectSameShape(const BaseHistogram& got, const BaseHistogram& want) {
  ASSERT_EQ(got.values, want.values);
  ASSERT_EQ(got.prefix_counts, want.prefix_counts);
  ASSERT_EQ(got.source_rows, want.source_rows);
}

// Bitwise equality (single morsel / integral measures / thread pairs).
void ExpectBitIdentical(const BaseHistogram& got, const BaseHistogram& want) {
  ExpectSameShape(got, want);
  EXPECT_EQ(got.sums, want.sums);
  EXPECT_EQ(got.sum_sqs, want.sum_sqs);
  EXPECT_EQ(got.prefix_sums, want.prefix_sums);
  EXPECT_EQ(got.prefix_sum_sqs, want.prefix_sum_sqs);
}

void ExpectClose(const BaseHistogram& got, const BaseHistogram& want,
                 double rel_tol) {
  ExpectSameShape(got, want);
  for (size_t j = 0; j < want.sums.size(); ++j) {
    const double scale =
        std::max({1.0, std::abs(want.sums[j]), std::abs(want.sum_sqs[j])});
    EXPECT_NEAR(got.sums[j], want.sums[j], rel_tol * scale) << "bin " << j;
    EXPECT_NEAR(got.sum_sqs[j], want.sum_sqs[j], rel_tol * scale)
        << "bin " << j;
  }
}

struct FuzzWorkload {
  std::shared_ptr<Table> table;
  RowSet rows;
  std::vector<FusedScanPair> pairs;
};

// Random table (2-3 int dimensions, 1-3 double measures with sporadic
// NULLs and optional NULL dimension cells), a random predicate-selected
// row subset, and every (dimension, measure) pair.
FuzzWorkload RandomWorkload(uint64_t seed, bool integral_measures) {
  common::Rng rng(seed);
  const int num_dims = 2 + static_cast<int>(rng.UniformInt(0, 1));
  const int num_measures = 1 + static_cast<int>(rng.UniformInt(0, 2));
  const size_t rows = 1 + static_cast<size_t>(rng.UniformInt(0, 400));

  Schema schema;
  for (int d = 0; d < num_dims; ++d) {
    MUVE_CHECK(schema
                   .AddField({"dim" + std::to_string(d),
                              ValueType::kInt64})
                   .ok());
  }
  for (int m = 0; m < num_measures; ++m) {
    MUVE_CHECK(schema
                   .AddField({"m" + std::to_string(m),
                              ValueType::kDouble})
                   .ok());
  }
  MUVE_CHECK(schema.AddField({"sel", ValueType::kInt64}).ok());

  auto table = std::make_shared<Table>(schema);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    for (int d = 0; d < num_dims; ++d) {
      if (rng.Bernoulli(0.05)) {
        row.emplace_back();  // NULL dimension cell
      } else {
        row.emplace_back(rng.UniformInt(0, 25));
      }
    }
    for (int m = 0; m < num_measures; ++m) {
      if (rng.Bernoulli(0.08)) {
        row.emplace_back();  // NULL measure
      } else {
        double v = rng.Uniform(-10.0, 10.0);
        if (integral_measures) v = std::floor(v);
        row.emplace_back(v);
      }
    }
    row.emplace_back(rng.UniformInt(0, 2));
    MUVE_CHECK(table->AppendRow(row).ok());
  }

  FuzzWorkload w;
  w.table = table;
  // Row subset selected through the predicate path (sel <= 1 keeps ~2/3).
  auto pred = MakeComparison("sel", CompareOp::kLe,
                             Value(rng.UniformInt(0, 1)));
  auto filtered = Filter(*table, pred.get());
  MUVE_CHECK(filtered.ok());
  w.rows = std::move(filtered).value();
  for (int d = 0; d < num_dims; ++d) {
    for (int m = 0; m < num_measures; ++m) {
      w.pairs.push_back(
          {"dim" + std::to_string(d), "m" + std::to_string(m)});
    }
  }
  return w;
}

TEST(FusedScanDifferentialTest, FuzzedFusedMatchesReference) {
  common::ThreadPool pool_1(1);
  common::ThreadPool pool_8(8);
  FusedScanScratch scratch;

  for (uint64_t c = 0; c < 60; ++c) {
    const uint64_t seed = testutil::FuzzSeed(c);
    SCOPED_TRACE(testutil::FuzzTrace(c, seed));
    const bool integral = c % 3 == 0;
    FuzzWorkload w = RandomWorkload(seed, integral);

    std::vector<BaseHistogram> reference;
    for (const FusedScanPair& p : w.pairs) {
      reference.push_back(
          ReferenceBuild(*w.table, w.rows, p.dimension, p.measure));
    }

    common::Rng rng(seed ^ 0xF05EDULL);
    const size_t morsel_sizes[] = {
        7, 64, std::max<size_t>(w.rows.size(), 1), 0 /* engine default */};
    for (const size_t morsel_size : morsel_sizes) {
      SCOPED_TRACE("morsel_size=" + std::to_string(morsel_size));
      // Inline, 1-worker, and 8-worker runs of the SAME partitioning.
      FusedScanStats stats;
      auto inline_run = FusedBuildBaseHistograms(
          *w.table, w.rows, w.pairs, nullptr, morsel_size, &stats, &scratch);
      ASSERT_TRUE(inline_run.ok()) << inline_run.status().ToString();
      auto pool1_run = FusedBuildBaseHistograms(*w.table, w.rows, w.pairs,
                                                &pool_1, morsel_size);
      ASSERT_TRUE(pool1_run.ok()) << pool1_run.status().ToString();
      auto pool8_run = FusedBuildBaseHistograms(*w.table, w.rows, w.pairs,
                                                &pool_8, morsel_size);
      ASSERT_TRUE(pool8_run.ok()) << pool8_run.status().ToString();

      ASSERT_EQ(inline_run->size(), w.pairs.size());
      const size_t effective =
          morsel_size == 0 ? kDefaultFusedMorselSize : morsel_size;
      const bool single_morsel = effective >= w.rows.size();
      EXPECT_EQ(stats.morsels,
                static_cast<int64_t>(
                    std::max<size_t>(
                        (w.rows.size() + effective - 1) / effective, 1)));

      for (size_t i = 0; i < w.pairs.size(); ++i) {
        SCOPED_TRACE(w.pairs[i].dimension + "/" + w.pairs[i].measure);
        // Thread-count invariance is bitwise, unconditionally.
        ExpectBitIdentical((*pool1_run)[i], (*inline_run)[i]);
        ExpectBitIdentical((*pool8_run)[i], (*inline_run)[i]);
        // Against the reference: bit-exact when association cannot
        // differ (single morsel, or exactly representable partials).
        if (single_morsel || integral) {
          ExpectBitIdentical((*inline_run)[i], reference[i]);
        } else {
          ExpectClose((*inline_run)[i], reference[i], 1e-9);
        }
      }
    }
  }
}

TEST(FusedScanDifferentialTest, SinglePairWrapperIsBitIdentical) {
  for (uint64_t c = 0; c < 20; ++c) {
    const uint64_t seed = testutil::FuzzSeed(c + 1000);
    SCOPED_TRACE(testutil::FuzzTrace(c + 1000, seed));
    FuzzWorkload w = RandomWorkload(seed, /*integral_measures=*/false);
    FusedScanScratch scratch;
    for (const FusedScanPair& p : w.pairs) {
      auto built = BuildBaseHistogram(*w.table, w.rows, p.dimension,
                                      p.measure, &scratch);
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      ExpectBitIdentical(
          *built, ReferenceBuild(*w.table, w.rows, p.dimension, p.measure));
    }
  }
}

TEST(FusedScanDifferentialTest, EmptyRowSetAndEmptyPairs) {
  FuzzWorkload w = RandomWorkload(testutil::FuzzSeed(7), false);
  const RowSet empty;
  auto built =
      FusedBuildBaseHistograms(*w.table, empty, w.pairs);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  for (const BaseHistogram& h : *built) {
    EXPECT_EQ(h.num_fine_bins(), 0u);
    EXPECT_EQ(h.source_rows, 0);
    EXPECT_EQ(h.prefix_counts, std::vector<int64_t>{0});
  }
  auto none = FusedBuildBaseHistograms(*w.table, w.rows, {});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(FusedScanDifferentialTest, ErrorsMirrorPerPairBuilder) {
  Schema schema({{"s", ValueType::kString}, {"m", ValueType::kDouble}});
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({Value("a"), Value(1.0)}).ok());
  const RowSet rows = AllRows(table.num_rows());

  auto string_dim =
      FusedBuildBaseHistograms(table, rows, {{"s", "m"}});
  EXPECT_FALSE(string_dim.ok());
  auto string_measure =
      FusedBuildBaseHistograms(table, rows, {{"m", "s"}});
  EXPECT_FALSE(string_measure.ok());
  auto unknown =
      FusedBuildBaseHistograms(table, rows, {{"nope", "m"}});
  EXPECT_FALSE(unknown.ok());
}

// Cache-level fused build: one FusedBuild call populates every missing
// key, skips already-cached keys, and serves subsequent lookups.
TEST(FusedScanDifferentialTest, CacheFusedBuildPopulatesMissingPairs) {
  FuzzWorkload w = RandomWorkload(testutil::FuzzSeed(42), false);
  BaseHistogramCache cache;

  // Pre-populate the first pair through the single-pair path.
  const std::string pre_key =
      "t|" + w.pairs[0].dimension + "|" + w.pairs[0].measure;
  bool built_flag = false;
  auto pre = cache.GetOrBuild(
      pre_key,
      [&] {
        return BuildBaseHistogram(*w.table, w.rows, w.pairs[0].dimension,
                                  w.pairs[0].measure);
      },
      &built_flag);
  ASSERT_TRUE(pre.ok());
  ASSERT_TRUE(built_flag);

  BaseHistogramCache::FusedHistogramBuildRequest request;
  request.rows = &w.rows;
  for (const FusedScanPair& p : w.pairs) {
    request.pairs.push_back(
        {"t|" + p.dimension + "|" + p.measure, p.dimension, p.measure});
  }
  BaseHistogramCache::FusedBuildOutcome outcome;
  ASSERT_TRUE(cache.FusedBuild(*w.table, request, &outcome).ok());
  EXPECT_EQ(outcome.passes, 1);
  EXPECT_EQ(outcome.already_cached, 1);
  EXPECT_EQ(outcome.histograms_built,
            static_cast<int64_t>(w.pairs.size()) - 1);
  EXPECT_EQ(outcome.rows_scanned, static_cast<int64_t>(w.rows.size()));

  // Every pair is now resident and matches the reference.
  for (const FusedScanPair& p : w.pairs) {
    const std::string key = "t|" + p.dimension + "|" + p.measure;
    ASSERT_TRUE(cache.Contains(key));
    bool rebuilt = false;
    auto got = cache.GetOrBuild(
        key,
        [&] {
          ADD_FAILURE() << "builder invoked for cached key " << key;
          return BuildBaseHistogram(*w.table, w.rows, p.dimension,
                                    p.measure);
        },
        &rebuilt);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(rebuilt);
    ExpectBitIdentical(
        **got, ReferenceBuild(*w.table, w.rows, p.dimension, p.measure));
  }

  // A second fused build is a no-op: everything already cached.
  BaseHistogramCache::FusedBuildOutcome second;
  ASSERT_TRUE(cache.FusedBuild(*w.table, request, &second).ok());
  EXPECT_EQ(second.passes, 0);
  EXPECT_EQ(second.histograms_built, 0);
  EXPECT_EQ(second.already_cached,
            static_cast<int64_t>(w.pairs.size()));
}

}  // namespace
}  // namespace muve::storage
