// Executes SELECT statements against a Catalog, producing result tables.
//
// Supported shapes:
//   * projection + filtering:      SELECT a, b FROM t WHERE p
//   * scalar aggregation:          SELECT SUM(m), COUNT(*) FROM t WHERE p
//   * single-attribute group-by:   SELECT a, F(m) FROM t [WHERE p] GROUP BY a
//   * binned group-by (paper ext): ... GROUP BY a NUMBER OF BINS b
//   * ORDER BY <output column> [ASC|DESC], LIMIT n
//
// For binned group-by the binning range is the dimension's min/max over the
// *whole* table (not the filtered subset), so a target query (with WHERE)
// and its comparison query (without) share bin boundaries — the invariant
// the deviation metric needs (Section III-A).

#ifndef MUVE_SQL_EXECUTOR_H_
#define MUVE_SQL_EXECUTOR_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "storage/table.h"

namespace muve::sql {

// Executes `stmt` (whose WHERE predicate gets bound in the process).
common::Result<storage::Table> Execute(SelectStatement& stmt,
                                       const Catalog& catalog);

// Parses and executes in one call.
common::Result<storage::Table> ExecuteSql(const std::string& sql,
                                          const Catalog& catalog);

// Result of a general statement: SELECT carries a result table, DDL/DML
// carry a human-readable confirmation.
struct StatementResult {
  std::optional<storage::Table> table;
  std::string message;
};

// Executes any statement kind except RECOMMEND (which needs the
// recommendation engine; see core/recommend_sql.h).  DDL/DML semantics:
//   CREATE TABLE — registers an empty table with the given schema/roles;
//   INSERT — appends rows atomically (all rows validate or none land);
//   LOAD CSV — appends a CSV file whose header matches the table schema.
common::Result<StatementResult> ExecuteStatement(Statement& stmt,
                                                 Catalog& catalog);

}  // namespace muve::sql

#endif  // MUVE_SQL_EXECUTOR_H_
