#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace muve::common {
namespace {

TEST(LoggingTest, ThresholdRoundTrips) {
  const LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(original);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARNING");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_STREQ(LogLevelName(LogLevel::kFatal), "FATAL");
}

TEST(LoggingTest, NonFatalLogDoesNotAbort) {
  MUVE_LOG(INFO) << "informational message " << 42;
  MUVE_LOG(WARNING) << "warning message";
  SUCCEED();
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  MUVE_CHECK(1 + 1 == 2) << "never shown";
  MUVE_DCHECK(true) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH(MUVE_CHECK(false) << "boom message", "Check failed: false");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH(MUVE_LOG(FATAL) << "fatal!", "fatal!");
}

TEST(StopwatchTest, ElapsedIsMonotonicallyNonDecreasing) {
  Stopwatch watch;
  const int64_t a = watch.ElapsedNanos();
  const int64_t b = watch.ElapsedNanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, MeasuresSleeps) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double ms = watch.ElapsedMillis();
  EXPECT_GE(ms, 9.0);
  EXPECT_LT(ms, 2000.0);  // generous upper bound for loaded CI machines
}

TEST(StopwatchTest, RestartResetsEpoch) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watch.Restart();
  EXPECT_LT(watch.ElapsedMillis(), 5.0);
}

TEST(StopwatchTest, UnitConversionsAgree) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const int64_t nanos = watch.ElapsedNanos();
  const double micros = watch.ElapsedMicros();
  const double millis = watch.ElapsedMillis();
  const double seconds = watch.ElapsedSeconds();
  EXPECT_NEAR(micros, static_cast<double>(nanos) / 1e3, micros * 0.5);
  EXPECT_NEAR(millis, micros / 1e3, millis * 0.5);
  EXPECT_NEAR(seconds, millis / 1e3, seconds * 0.5);
}

}  // namespace
}  // namespace muve::common
