# Empty compiler generated dependencies file for muve_sql.
# This may be replaced when dependencies are built.
