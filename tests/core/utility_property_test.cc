// Metamorphic / property-based tests for the utility layer (Eq. 3-6)
// and for MuVE's early-termination soundness.  Where the differential
// suite checks the cache against a direct-scan oracle, this suite checks
// *relations that must hold for any input*:
//
//   P1  S(b) = 1/b is strictly decreasing in b (the premise behind the
//       S-list traversal order).
//   P2  U_max(b) = aD + aA + aS*S(b) is non-increasing along any bin
//       domain, for any valid weights (the premise behind early
//       termination: once the bound dips below U_seen, nothing ahead of
//       the cursor can win).
//   P3  Utility is invariant (to ~1e-12) under scaling all three alphas
//       by a constant c > 0 and renormalizing — the weights are a
//       *direction*, not a magnitude.
//   P4  HorizontalMuve never early-terminates unsoundly: replaying the
//       same S-list with full (unpruned) evaluations shows that at the
//       moment MuVE stopped, no remaining candidate's utility exceeded
//       the running threshold, and the returned best matches Linear's
//       whenever it beats the initial threshold.
//
// All fuzzed alphas/datasets derive from MUVE_FUZZ_SEED (tests/fuzz_util.h).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/horizontal_search.h"
#include "core/partitioner.h"
#include "core/utility.h"
#include "core/view_evaluator.h"
#include "data/dataset.h"
#include "fuzz_util.h"
#include "storage/predicate.h"

namespace muve::core {
namespace {

Weights RandomWeights(common::Rng& rng) {
  const double d = rng.Uniform(0.01, 1);
  const double a = rng.Uniform(0.01, 1);
  const double s = rng.Uniform(0.01, 1);
  const double total = d + a + s;
  return Weights{d / total, a / total, s / total};
}

// Small random exploration dataset for the search-level property (P4).
data::Dataset RandomDataset(uint64_t seed) {
  common::Rng rng(seed);
  const size_t rows = 40 + static_cast<size_t>(rng.UniformInt(0, 80));

  storage::Schema schema;
  MUVE_CHECK(schema
                 .AddField({"x", storage::ValueType::kInt64,
                            storage::FieldRole::kDimension})
                 .ok());
  MUVE_CHECK(schema.AddField({"sel", storage::ValueType::kInt64}).ok());
  MUVE_CHECK(schema
                 .AddField({"m", storage::ValueType::kDouble,
                            storage::FieldRole::kMeasure})
                 .ok());

  auto table = std::make_shared<storage::Table>(schema);
  const int64_t range = 8 + rng.UniformInt(0, 40);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<storage::Value> row;
    row.emplace_back(rng.UniformInt(0, range));
    row.emplace_back(rng.UniformInt(0, 2));
    row.emplace_back(rng.Uniform(0, 25));
    MUVE_CHECK(table->AppendRow(row).ok());
  }

  data::Dataset ds;
  ds.name = "utility-fuzz" + std::to_string(seed);
  ds.table = table;
  ds.dimensions = {"x"};
  ds.measures = {"m"};
  ds.functions = {storage::AggregateFunction::kSum,
                  storage::AggregateFunction::kAvg};
  ds.query_predicate_sql = "sel = 1";
  auto pred = storage::MakeComparison("sel", storage::CompareOp::kEq,
                                      storage::Value(int64_t{1}));
  auto selected = storage::Filter(*table, pred.get());
  MUVE_CHECK(selected.ok());
  ds.target_rows = std::move(selected).value();
  if (ds.target_rows.empty()) ds.target_rows = {0};
  ds.all_rows = storage::AllRows(table->num_rows());
  return ds;
}

// P1: S(b) strictly decreasing, in (0, 1], S(1) = 1.
TEST(UtilityPropertyTest, UsabilityStrictlyDecreasing) {
  EXPECT_EQ(Usability(1), 1.0);
  for (int b = 2; b <= 512; ++b) {
    EXPECT_LT(Usability(b), Usability(b - 1)) << "b=" << b;
    EXPECT_GT(Usability(b), 0.0) << "b=" << b;
    EXPECT_LE(Usability(b), 1.0) << "b=" << b;
  }
}

// P2: the pruning bound is non-increasing along any ascending bin
// domain for any valid (fuzzed) weights — the invariant that makes
// "break on first bound failure" sound.
class UtilityBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UtilityBoundTest, UpperBoundMonotoneAlongDomains) {
  const uint64_t seed = testutil::FuzzSeed(GetParam() ^ 0xB0B0ULL);
  SCOPED_TRACE(testutil::FuzzTrace(GetParam(), seed));
  common::Rng rng(seed);

  const Weights w = RandomWeights(rng);
  ASSERT_TRUE(w.Validate().ok()) << w.ToString();

  // Every partitioning scheme produces an ascending domain; the bound
  // must be non-increasing (strictly decreasing when alpha_S > 0) along
  // each of them.
  std::vector<PartitionSpec> specs;
  specs.push_back(PartitionSpec{PartitionKind::kAdditive, 1});
  specs.push_back(PartitionSpec{
      PartitionKind::kAdditive, 1 + static_cast<int>(rng.UniformInt(1, 7))});
  specs.push_back(PartitionSpec{PartitionKind::kGeometric, 1});
  const int max_bins = 2 + static_cast<int>(rng.UniformInt(0, 126));

  for (const PartitionSpec& spec : specs) {
    const std::vector<int> domain = BinDomain(spec, max_bins);
    ASSERT_FALSE(domain.empty());
    double prev = std::numeric_limits<double>::infinity();
    for (const int bins : domain) {
      const double bound = UtilityUpperBound(w, Usability(bins));
      EXPECT_LT(bound, prev) << "bins=" << bins;
      // The bound dominates every achievable utility at this b: D and A
      // are capped at 1.
      const double d = rng.Uniform(0, 1);
      const double a = rng.Uniform(0, 1);
      EXPECT_LE(Utility(w, d, a, Usability(bins)), bound + 1e-15)
          << "bins=" << bins;
      prev = bound;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UtilityBoundTest,
                         ::testing::Range<uint64_t>(1, 25));

// P3: scaling all alphas by c > 0 and renormalizing leaves every utility
// unchanged (weights are a direction).  Also: the paper's convex
// combination keeps U inside [0, 1] for objectives in [0, 1].
class UtilityInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UtilityInvarianceTest, UtilityInvariantUnderAlphaRenormalization) {
  const uint64_t seed = testutil::FuzzSeed(GetParam() ^ 0xA11AULL);
  SCOPED_TRACE(testutil::FuzzTrace(GetParam(), seed));
  common::Rng rng(seed);

  for (int trial = 0; trial < 32; ++trial) {
    const Weights w = RandomWeights(rng);
    const double c = rng.Uniform(0.05, 20);
    const double total =
        c * w.deviation + c * w.accuracy + c * w.usability;
    const Weights scaled{c * w.deviation / total, c * w.accuracy / total,
                         c * w.usability / total};
    ASSERT_TRUE(scaled.Validate().ok()) << scaled.ToString();

    const double d = rng.Uniform(0, 1);
    const double a = rng.Uniform(0, 1);
    const double s = Usability(1 + static_cast<int>(rng.UniformInt(0, 63)));
    const double u = Utility(w, d, a, s);
    EXPECT_NEAR(Utility(scaled, d, a, s), u, 1e-12) << "c=" << c;
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-12);
    EXPECT_NEAR(UtilityUpperBound(scaled, s), UtilityUpperBound(w, s), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UtilityInvarianceTest,
                         ::testing::Range<uint64_t>(1, 17));

// P4: early-termination soundness.  For fuzzed datasets, weights and
// initial thresholds, replay MuVE's S-list with full evaluations and
// check (a) MuVE stops only once the bound — and hence every remaining
// candidate — is at or below the running threshold, and (b) the returned
// best matches the Linear oracle whenever the oracle beats the initial
// threshold.
class EarlyTerminationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EarlyTerminationTest, NeverFiresWhileARemainingCandidateCouldWin) {
  const uint64_t seed = testutil::FuzzSeed(GetParam() ^ 0xE1E1ULL);
  SCOPED_TRACE(testutil::FuzzTrace(GetParam(), seed));
  common::Rng rng(seed * 977);

  const data::Dataset ds = RandomDataset(seed);
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok()) << space.status().ToString();

  SearchOptions options;
  options.weights = RandomWeights(rng);
  options.distance = static_cast<DistanceKind>(rng.UniformInt(0, 5));
  options.horizontal = HorizontalStrategy::kMuve;

  // Threshold settings: standalone (0), mid-range, and prune-everything.
  const double thresholds[] = {0.0, rng.Uniform(0.2, 0.8),
                               UtilityUpperBound(options.weights, 1.0)};

  for (const View& view : space->views()) {
    const DimensionInfo& dim = space->dimension_info(view.dimension);
    if (dim.categorical) continue;
    const std::vector<int> domain = BinDomain(options.partition, dim.max_bins);

    // Ground truth: full utilities of every candidate in domain order.
    std::vector<double> full_utilities;
    {
      ViewEvaluator oracle_eval(ds, *space, {});
      for (const int bins : domain) {
        const CandidateResult cand = EvaluateCandidate(
            oracle_eval, view, bins, options,
            -std::numeric_limits<double>::infinity(),
            /*allow_pruning=*/false);
        ASSERT_EQ(cand.outcome, CandidateResult::Outcome::kFullyEvaluated);
        full_utilities.push_back(cand.scored.utility);
      }
    }

    for (const double initial_threshold : thresholds) {
      SCOPED_TRACE(view.Label() + " threshold=" +
                   std::to_string(initial_threshold));
      ViewEvaluator eval(ds, *space, {});
      const HorizontalResult muve =
          HorizontalMuve(eval, view, domain, options, initial_threshold);

      // Replay the traversal independently: the running threshold after
      // position i is max(initial, utilities seen so far), and MuVE's
      // stop position is the first i whose bound fails it.
      double u_seen = initial_threshold;
      size_t stop = domain.size();
      for (size_t i = 0; i < domain.size(); ++i) {
        const double bound =
            UtilityUpperBound(options.weights, Usability(domain[i]));
        if (u_seen >= bound) {
          stop = i;
          break;
        }
        if (full_utilities[i] > u_seen) u_seen = full_utilities[i];
      }

      if (muve.early_terminated) {
        ASSERT_LT(stop, domain.size());
        // Soundness: every candidate at or beyond the stop position is
        // provably at or below the threshold at that moment — skipping
        // them cannot change the outcome.
        for (size_t i = stop; i < domain.size(); ++i) {
          EXPECT_LE(full_utilities[i], u_seen + 1e-12)
              << "bins=" << domain[i] << " skipped unsoundly";
        }
      } else {
        EXPECT_EQ(stop, domain.size())
            << "simulation says termination should have fired";
      }

      // Agreement with the exhaustive oracle: when Linear's best beats
      // the initial threshold, MuVE must find the same utility.
      double oracle_best = -std::numeric_limits<double>::infinity();
      for (const double u : full_utilities) oracle_best = std::max(oracle_best, u);
      if (oracle_best > initial_threshold) {
        ASSERT_TRUE(muve.best.has_value());
        EXPECT_EQ(muve.best->utility, oracle_best);
      } else if (muve.best.has_value()) {
        // MuVE may still surface a fully-evaluated candidate, but never
        // one better than the oracle's.
        EXPECT_LE(muve.best->utility, oracle_best + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EarlyTerminationTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace muve::core
