// Incremental-ingest correctness: MergeBaseHistograms additivity and the
// ApplyAppendDeltas driver that patches a shared BaseHistogramCache in
// O(new rows) after a catalog append.  The pin: a delta-patched base is
// bit-identical (integer measures) to one rebuilt cold over the full
// post-append row set.

#include "storage/ingest.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/base_histogram_cache.h"
#include "storage/predicate.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace muve::storage {
namespace {

constexpr size_t kChunkRows = 16;

Schema IngestSchema() {
  return Schema({Field("a", ValueType::kInt64, FieldRole::kDimension),
                 Field("m", ValueType::kInt64, FieldRole::kMeasure),
                 Field("tag", ValueType::kString, FieldRole::kNone)});
}

// Deterministic row i: a in [0, 12], m integer, tag cycles.
std::vector<Value> RowAt(size_t i) {
  const char* tags[] = {"red", "green", "blue"};
  return {Value(static_cast<int64_t>((i * 7) % 13)),
          Value(static_cast<int64_t>((i * 31) % 997)),
          Value(tags[i % 3])};
}

std::shared_ptr<Table> MakeTable(size_t rows) {
  auto t = std::make_shared<Table>(IngestSchema(), kChunkRows);
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(t->AppendRow(RowAt(i)).ok());
  }
  return t;
}

RowSet Range(size_t begin, size_t end) {
  RowSet rows;
  for (size_t i = begin; i < end; ++i) {
    rows.push_back(static_cast<uint32_t>(i));
  }
  return rows;
}

void ExpectSameHistogram(const BaseHistogram& got,
                         const BaseHistogram& expected) {
  ASSERT_EQ(got.values, expected.values);
  ASSERT_EQ(got.prefix_counts, expected.prefix_counts);
  // Integer measures: partial sums are exactly representable, so the
  // merge's re-association is bit-exact.
  ASSERT_EQ(got.sums, expected.sums);
  ASSERT_EQ(got.sum_sqs, expected.sum_sqs);
  ASSERT_EQ(got.prefix_sums, expected.prefix_sums);
  ASSERT_EQ(got.prefix_sum_sqs, expected.prefix_sum_sqs);
  EXPECT_EQ(got.source_rows, expected.source_rows);
}

TEST(MergeBaseHistogramsTest, PrefixPlusDeltaEqualsFullBuild) {
  auto table = MakeTable(100);
  for (const size_t split : {1u, 13u, 50u, 99u}) {
    auto prefix =
        BuildBaseHistogram(*table, Range(0, split), "a", "m");
    auto delta =
        BuildBaseHistogram(*table, Range(split, 100), "a", "m");
    auto full = BuildBaseHistogram(*table, Range(0, 100), "a", "m");
    ASSERT_TRUE(prefix.ok() && delta.ok() && full.ok());

    const BaseHistogram merged = MergeBaseHistograms(*prefix, *delta);
    ExpectSameHistogram(merged, *full);
  }
}

TEST(MergeBaseHistogramsTest, DisjointDictionariesUnion) {
  // Prefix holds only even dimension values, delta only odd ones.
  Table t(IngestSchema(), kChunkRows);
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value(2 * i), Value(i + 1), Value("x")}).ok());
  }
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value(2 * i + 1), Value(10 * i), Value("x")}).ok());
  }
  auto prefix = BuildBaseHistogram(t, Range(0, 8), "a", "m");
  auto delta = BuildBaseHistogram(t, Range(8, 16), "a", "m");
  auto full = BuildBaseHistogram(t, Range(0, 16), "a", "m");
  ASSERT_TRUE(prefix.ok() && delta.ok() && full.ok());
  ASSERT_EQ(prefix->num_fine_bins(), 8u);
  ASSERT_EQ(delta->num_fine_bins(), 8u);

  const BaseHistogram merged = MergeBaseHistograms(*prefix, *delta);
  ASSERT_EQ(merged.num_fine_bins(), 16u);
  ExpectSameHistogram(merged, *full);
}

class ApplyAppendDeltasTest : public ::testing::Test {
 protected:
  // Warms `cache` exactly as a pre-append recommendation would: bases
  // over the target rows (predicate-filtered) and the comparison rows
  // (everything), keyed "t|a|m" / "c|a|m", built from the first
  // `rows_before` rows.
  void WarmCache(const Table& table, size_t rows_before, Predicate* pred,
                 BaseHistogramCache* cache) {
    RowSet target;
    pred->FilterInto(table, Range(0, rows_before), &target, nullptr);
    for (const char* side : {"t|", "c|"}) {
      const RowSet& rows =
          side[0] == 't' ? target : Range(0, rows_before);
      bool built = false;
      auto result = cache->GetOrBuild(
          std::string(side) + "a|m",
          [&]() { return BuildBaseHistogram(table, rows, "a", "m"); },
          &built);
      ASSERT_TRUE(result.ok());
      ASSERT_TRUE(built);
    }
  }
};

TEST_F(ApplyAppendDeltasTest, PatchedCacheMatchesColdRebuild) {
  constexpr size_t kBefore = 60;
  constexpr size_t kTotal = 100;
  auto table = MakeTable(kTotal);

  PredicatePtr pred =
      MakeComparison("a", CompareOp::kGe, Value(int64_t{7}));
  ASSERT_TRUE(pred->Bind(table->schema()).ok());

  BaseHistogramCache cache;
  WarmCache(*table, kBefore, pred.get(), &cache);

  IngestDeltaRequest request;
  request.table = table.get();
  request.rows_before = kBefore;
  request.rows_appended = kTotal - kBefore;
  request.dimensions = {"a"};
  request.measures = {"m"};
  request.target_predicate = pred.get();
  request.cache = &cache;
  IngestDeltaStats stats;
  ASSERT_TRUE(ApplyAppendDeltas(request, &stats).ok());

  EXPECT_EQ(stats.pairs_considered, 2);
  EXPECT_EQ(stats.delta_merges, 2);
  // Comparison side scans exactly the appended rows; target side only
  // its predicate-matching subset.
  EXPECT_GE(stats.rows_scanned, static_cast<int64_t>(kTotal - kBefore));
  EXPECT_GT(stats.target_delta_rows, 0);
  EXPECT_LT(stats.target_delta_rows,
            static_cast<int64_t>(kTotal - kBefore));

  // Every patched entry must equal a cold build over the full row sets.
  RowSet full_target;
  pred->FilterInto(*table, Range(0, kTotal), &full_target, nullptr);
  const struct {
    const char* key;
    const RowSet rows;
  } sides[] = {{"t|a|m", full_target}, {"c|a|m", Range(0, kTotal)}};
  for (const auto& side : sides) {
    bool built = false;
    auto patched = cache.GetOrBuild(
        side.key,
        [&]() { return BuildBaseHistogram(*table, side.rows, "a", "m"); },
        &built, static_cast<int64_t>(side.rows.size()));
    ASSERT_TRUE(patched.ok());
    // The staleness guard accepted the patched entry — no rebuild.
    EXPECT_FALSE(built) << side.key;
    auto cold = BuildBaseHistogram(*table, side.rows, "a", "m");
    ASSERT_TRUE(cold.ok());
    ExpectSameHistogram(**patched, *cold);
  }
}

// Random append schedules: warm once at a random initial size, apply a
// random sequence of delta patches, and require the final cached bases
// to equal cold rebuilds over the full row sets — for every schedule.
TEST_F(ApplyAppendDeltasTest, FuzzedAppendSchedules) {
  common::Rng rng(0x16E57);
  for (int iter = 0; iter < 25; ++iter) {
    const size_t total = static_cast<size_t>(rng.UniformInt(20, 200));
    auto table = MakeTable(total);
    PredicatePtr pred = MakeComparison(
        "a", CompareOp::kGe, Value(rng.UniformInt(0, 12)));
    ASSERT_TRUE(pred->Bind(table->schema()).ok());

    size_t published = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(total) - 1));
    BaseHistogramCache cache;
    WarmCache(*table, published, pred.get(), &cache);

    while (published < total) {
      const size_t step = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(total - published)));
      IngestDeltaRequest request;
      request.table = table.get();
      request.rows_before = published;
      request.rows_appended = step;
      request.dimensions = {"a"};
      request.measures = {"m"};
      request.target_predicate = pred.get();
      request.cache = &cache;
      ASSERT_TRUE(ApplyAppendDeltas(request, nullptr).ok());
      published += step;
    }

    RowSet full_target;
    pred->FilterInto(*table, Range(0, total), &full_target, nullptr);
    const struct {
      const char* key;
      const RowSet rows;
    } sides[] = {{"t|a|m", full_target}, {"c|a|m", Range(0, total)}};
    for (const auto& side : sides) {
      bool built = false;
      auto patched = cache.GetOrBuild(
          side.key,
          [&]() {
            return BuildBaseHistogram(*table, side.rows, "a", "m");
          },
          &built, static_cast<int64_t>(side.rows.size()));
      ASSERT_TRUE(patched.ok());
      EXPECT_FALSE(built) << "iter " << iter << " " << side.key;
      auto cold = BuildBaseHistogram(*table, side.rows, "a", "m");
      ASSERT_TRUE(cold.ok());
      ExpectSameHistogram(**patched, *cold);
    }
  }
}

TEST_F(ApplyAppendDeltasTest, EmptyCacheIsANoOp) {
  auto table = MakeTable(20);
  BaseHistogramCache cache;
  IngestDeltaRequest request;
  request.table = table.get();
  request.rows_before = 10;
  request.rows_appended = 10;
  request.dimensions = {"a"};
  request.measures = {"m"};
  request.cache = &cache;
  IngestDeltaStats stats;
  ASSERT_TRUE(ApplyAppendDeltas(request, &stats).ok());
  EXPECT_EQ(stats.pairs_considered, 0);
  EXPECT_EQ(stats.delta_merges, 0);
  EXPECT_EQ(stats.rows_scanned, 0);
}

TEST_F(ApplyAppendDeltasTest, StringPairsAreSkipped) {
  auto table = MakeTable(20);
  BaseHistogramCache cache;
  IngestDeltaRequest request;
  request.table = table.get();
  request.rows_before = 10;
  request.rows_appended = 10;
  request.dimensions = {"a", "tag"};  // string dim never cache-eligible
  request.measures = {"m", "tag"};
  request.cache = &cache;
  ASSERT_TRUE(ApplyAppendDeltas(request, nullptr).ok());
}

TEST(ApplyAppendDeltasValidationTest, RejectsMissingTableOrCache) {
  IngestDeltaRequest request;
  EXPECT_EQ(ApplyAppendDeltas(request, nullptr).code(),
            common::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace muve::storage
