#include "core/recommender.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/fidelity.h"
#include "test_util.h"

namespace muve::core {
namespace {

SearchOptions Scheme(HorizontalStrategy h, VerticalStrategy v) {
  SearchOptions options;
  options.horizontal = h;
  options.vertical = v;
  return options;
}

Recommendation MustRecommend(const Recommender& rec,
                             const SearchOptions& options) {
  auto result = rec.Recommend(options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : Recommendation{};
}

class RecommenderTest : public ::testing::Test {
 protected:
  RecommenderTest() {
    auto rec = Recommender::Create(testutil::MakeToyDataset());
    EXPECT_TRUE(rec.ok());
    recommender_ = std::make_unique<Recommender>(std::move(rec).value());
  }

  std::unique_ptr<Recommender> recommender_;
};

TEST_F(RecommenderTest, ReturnsKDistinctViews) {
  SearchOptions options =
      Scheme(HorizontalStrategy::kLinear, VerticalStrategy::kLinear);
  options.k = 3;
  const Recommendation rec = MustRecommend(*recommender_, options);
  ASSERT_EQ(rec.views.size(), 3u);
  std::set<std::string> keys;
  for (const ScoredView& v : rec.views) keys.insert(v.view.Key());
  EXPECT_EQ(keys.size(), 3u);  // distinct non-binned views
  // Sorted descending.
  EXPECT_GE(rec.views[0].utility, rec.views[1].utility);
  EXPECT_GE(rec.views[1].utility, rec.views[2].utility);
  EXPECT_EQ(rec.scheme, "Linear-Linear");
}

// The central exactness claim (Section IV-C): Linear-Linear, MuVE-Linear,
// and MuVE-MuVE recommend identically (same utilities), across weights,
// k, and distance functions.
struct ExactnessCase {
  Weights weights;
  int k;
  DistanceKind distance;
};

class SchemeExactnessTest : public ::testing::TestWithParam<ExactnessCase> {};

TEST_P(SchemeExactnessTest, AllExactSchemesAgree) {
  const ExactnessCase& param = GetParam();
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());

  SearchOptions base;
  base.weights = param.weights;
  base.k = param.k;
  base.distance = param.distance;

  SearchOptions linear = base;
  linear.horizontal = HorizontalStrategy::kLinear;
  linear.vertical = VerticalStrategy::kLinear;
  SearchOptions muve_linear = base;
  muve_linear.horizontal = HorizontalStrategy::kMuve;
  muve_linear.vertical = VerticalStrategy::kLinear;
  SearchOptions muve_muve = base;
  muve_muve.horizontal = HorizontalStrategy::kMuve;
  muve_muve.vertical = VerticalStrategy::kMuve;

  const Recommendation r_linear = MustRecommend(*recommender, linear);
  const Recommendation r_ml = MustRecommend(*recommender, muve_linear);
  const Recommendation r_mm = MustRecommend(*recommender, muve_muve);

  ASSERT_EQ(r_linear.views.size(), r_ml.views.size());
  ASSERT_EQ(r_linear.views.size(), r_mm.views.size());
  for (size_t i = 0; i < r_linear.views.size(); ++i) {
    EXPECT_NEAR(r_linear.views[i].utility, r_ml.views[i].utility, 1e-9)
        << "rank " << i;
    EXPECT_NEAR(r_linear.views[i].utility, r_mm.views[i].utility, 1e-9)
        << "rank " << i;
  }
  EXPECT_NEAR(Fidelity(r_linear.views, r_ml.views), 1.0, 1e-9);
  EXPECT_NEAR(Fidelity(r_linear.views, r_mm.views), 1.0, 1e-9);

  // And the MuVE schemes do no more probe work than exhaustive Linear.
  // (MuVE-MuVE vs MuVE-Linear is workload-dependent: the global top-k
  // threshold can lag the per-view top-1 thresholds when k is close to
  // the number of views, so only the Linear bound is an invariant.)
  EXPECT_LE(r_ml.stats.fully_probed, r_linear.stats.fully_probed);
  EXPECT_LE(r_mm.stats.fully_probed, r_linear.stats.fully_probed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchemeExactnessTest,
    ::testing::Values(
        ExactnessCase{Weights::PaperDefault(), 5, DistanceKind::kEuclidean},
        ExactnessCase{Weights{0.6, 0.2, 0.2}, 1, DistanceKind::kEuclidean},
        ExactnessCase{Weights{0.2, 0.6, 0.2}, 3, DistanceKind::kEuclidean},
        ExactnessCase{Weights::Equal(), 2, DistanceKind::kEarthMovers},
        ExactnessCase{Weights{0.1, 0.1, 0.8}, 4,
                      DistanceKind::kKlDivergence},
        ExactnessCase{Weights{0.45, 0.45, 0.1}, 8,
                      DistanceKind::kManhattan},
        ExactnessCase{Weights::DeviationOnly(), 5,
                      DistanceKind::kEuclidean}));

TEST_F(RecommenderTest, MuveMuvePrunesAtHighUsabilityWeight) {
  SearchOptions linear =
      Scheme(HorizontalStrategy::kLinear, VerticalStrategy::kLinear);
  SearchOptions muve =
      Scheme(HorizontalStrategy::kMuve, VerticalStrategy::kMuve);
  linear.weights = muve.weights = Weights{0.1, 0.1, 0.8};
  const Recommendation r_linear = MustRecommend(*recommender_, linear);
  const Recommendation r_muve = MustRecommend(*recommender_, muve);
  EXPECT_LT(r_muve.stats.fully_probed, r_linear.stats.fully_probed / 4);
  EXPECT_GT(r_muve.stats.early_terminations, 0);
}

TEST_F(RecommenderTest, HillClimbingRunsAndStaysBounded) {
  SearchOptions hc =
      Scheme(HorizontalStrategy::kHillClimbing, VerticalStrategy::kLinear);
  const Recommendation rec = MustRecommend(*recommender_, hc);
  EXPECT_EQ(rec.scheme, "HC-Linear");
  ASSERT_FALSE(rec.views.empty());
  SearchOptions linear =
      Scheme(HorizontalStrategy::kLinear, VerticalStrategy::kLinear);
  const Recommendation opt = MustRecommend(*recommender_, linear);
  const double f = Fidelity(opt.views, rec.views);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  // HC evaluates far fewer candidates than exhaustive Linear.
  EXPECT_LT(rec.stats.fully_probed, opt.stats.fully_probed);
}

TEST_F(RecommenderTest, RefinementApproximationIsCheapAndFaithful) {
  SearchOptions linear =
      Scheme(HorizontalStrategy::kLinear, VerticalStrategy::kLinear);
  SearchOptions refined = linear;
  refined.approximation = VerticalApproximation::kRefinement;
  refined.refinement_default_bins = 4;

  const Recommendation opt = MustRecommend(*recommender_, linear);
  const Recommendation rec = MustRecommend(*recommender_, refined);
  EXPECT_EQ(rec.scheme, "Linear-Linear(R)");
  EXPECT_EQ(rec.views.size(), opt.views.size());
  EXPECT_LT(rec.stats.fully_probed, opt.stats.fully_probed);
  EXPECT_GE(Fidelity(opt.views, rec.views), 0.5);
}

TEST_F(RecommenderTest, SkippingApproximationIsCheapAndFaithful) {
  SearchOptions linear =
      Scheme(HorizontalStrategy::kLinear, VerticalStrategy::kLinear);
  SearchOptions skipping = linear;
  skipping.approximation = VerticalApproximation::kSkipping;

  const Recommendation opt = MustRecommend(*recommender_, linear);
  const Recommendation rec = MustRecommend(*recommender_, skipping);
  EXPECT_EQ(rec.scheme, "Linear-Linear(S)");
  EXPECT_LT(rec.stats.fully_probed, opt.stats.fully_probed);
  EXPECT_GE(Fidelity(opt.views, rec.views), 0.5);
  // All views sharing a dimension carry the representative's bin count.
  std::map<std::string, std::set<int>> bins_by_dim;
  for (const ScoredView& v : rec.views) {
    bins_by_dim[v.view.dimension].insert(v.bins);
  }
  for (const auto& [dim, bins] : bins_by_dim) {
    EXPECT_EQ(bins.size(), 1u) << "dimension " << dim;
  }
}

TEST_F(RecommenderTest, GeometricPartitioningKeepsHighFidelity) {
  SearchOptions linear =
      Scheme(HorizontalStrategy::kLinear, VerticalStrategy::kLinear);
  SearchOptions geo = linear;
  geo.partition.kind = PartitionKind::kGeometric;
  const Recommendation opt = MustRecommend(*recommender_, linear);
  const Recommendation rec = MustRecommend(*recommender_, geo);
  EXPECT_EQ(rec.scheme, "Linear(G)-Linear");
  // The paper's Figure 12: geometric keeps ~100% fidelity because small
  // bin counts (all powers of two) dominate utility.
  EXPECT_GE(Fidelity(opt.views, rec.views), 0.9);
  EXPECT_LT(rec.stats.fully_probed, opt.stats.fully_probed / 2);
}

TEST_F(RecommenderTest, AdditiveStepReducesWork) {
  SearchOptions base =
      Scheme(HorizontalStrategy::kLinear, VerticalStrategy::kLinear);
  const Recommendation full = MustRecommend(*recommender_, base);
  SearchOptions stepped = base;
  stepped.partition.step = 4;
  const Recommendation rec = MustRecommend(*recommender_, stepped);
  EXPECT_EQ(rec.scheme, "Linear(A)-Linear");
  EXPECT_LT(rec.stats.fully_probed, full.stats.fully_probed / 3);
}

TEST_F(RecommenderTest, InvalidOptionsRejected) {
  SearchOptions bad_weights;
  bad_weights.weights = Weights{0.9, 0.9, 0.9};
  EXPECT_FALSE(recommender_->Recommend(bad_weights).ok());

  SearchOptions bad_k;
  bad_k.k = 0;
  EXPECT_FALSE(recommender_->Recommend(bad_k).ok());

  SearchOptions bad_combo;
  bad_combo.horizontal = HorizontalStrategy::kLinear;
  bad_combo.vertical = VerticalStrategy::kMuve;
  EXPECT_FALSE(recommender_->Recommend(bad_combo).ok());

  SearchOptions bad_step;
  bad_step.partition.step = 0;
  EXPECT_FALSE(recommender_->Recommend(bad_step).ok());
}

TEST_F(RecommenderTest, KLargerThanViewCountReturnsAllViews) {
  SearchOptions options =
      Scheme(HorizontalStrategy::kLinear, VerticalStrategy::kLinear);
  options.k = 1000;
  const Recommendation rec = MustRecommend(*recommender_, options);
  EXPECT_EQ(rec.views.size(), recommender_->space().views().size());
}

TEST_F(RecommenderTest, RecommendationToStringListsViews) {
  SearchOptions options =
      Scheme(HorizontalStrategy::kMuve, VerticalStrategy::kMuve);
  options.k = 2;
  const Recommendation rec = MustRecommend(*recommender_, options);
  const std::string text = rec.ToString();
  EXPECT_NE(text.find("MuVE-MuVE"), std::string::npos);
  EXPECT_NE(text.find("1. "), std::string::npos);
  EXPECT_NE(text.find("cost="), std::string::npos);
}

TEST(FidelityTest, Definition) {
  ScoredView a;
  a.utility = 0.6;
  ScoredView b;
  b.utility = 0.4;
  ScoredView c;
  c.utility = 0.5;
  // F = 1 - (1.0 - 0.9) / 1.0 = 0.9
  EXPECT_NEAR(Fidelity({a, b}, {c, b}), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(Fidelity({a, b}, {a, b}), 1.0);
  EXPECT_DOUBLE_EQ(Fidelity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(TotalUtility({a, b}), 1.0);
}

}  // namespace
}  // namespace muve::core
