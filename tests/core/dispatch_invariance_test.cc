// Recommender-level dispatch invariance: the SIMD kernel layer's
// exactness contract (common/simd/simd.h) promises every kernel is
// bit-identical across dispatch levels — so the WHOLE recommendation
// (view identities, bin counts, bitwise utilities, and the
// deterministic probe counters) must be identical whether the engine
// runs on the scalar reference table or the widest vector table, at 1
// thread and at 8.  This is the end-to-end guard for the acceptance
// criterion that `MUVE_SIMD=scalar` and native runs agree byte-for-byte.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/simd/simd.h"
#include "core/recommender.h"
#include "test_util.h"

namespace muve::core {
namespace {

namespace simd = common::simd;

// Bitwise double equality.
bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

Recommendation MustRecommend(const Recommender& recommender,
                             const SearchOptions& options) {
  auto rec = recommender.Recommend(options);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
  return std::move(rec).value();
}

// Asserts rank-by-rank BITWISE equality of the recommendations.
void ExpectBitIdentical(const Recommendation& a, const Recommendation& b,
                        const char* what) {
  ASSERT_EQ(a.views.size(), b.views.size()) << what;
  for (size_t i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views[i].view.Key(), b.views[i].view.Key())
        << what << " rank " << i;
    EXPECT_EQ(a.views[i].bins, b.views[i].bins) << what << " rank " << i;
    EXPECT_TRUE(BitEqual(a.views[i].utility, b.views[i].utility))
        << what << " rank " << i << ": " << a.views[i].utility << " vs "
        << b.views[i].utility;
  }
}

// RAII guard restoring the active dispatch level.
class LevelGuard {
 public:
  LevelGuard() : original_(simd::ActiveLevel()) {}
  ~LevelGuard() { simd::SetActiveLevel(original_); }

 private:
  simd::DispatchLevel original_;
};

class DispatchInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (simd::BestSupportedLevel() == simd::DispatchLevel::kScalar) {
      GTEST_SKIP() << "scalar-only host: dispatch invariance is trivial";
    }
  }
};

// One scheme, run under scalar and under the best vector level, at the
// given thread count; the recommendations must be bit-identical.
void CheckScheme(const SearchOptions& options, const char* what) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok()) << recommender.status().ToString();

  LevelGuard guard;
  ASSERT_TRUE(simd::SetActiveLevel(simd::DispatchLevel::kScalar));
  const Recommendation scalar_rec = MustRecommend(*recommender, options);
  const auto scalar_stats = scalar_rec.stats;

  ASSERT_TRUE(simd::SetActiveLevel(simd::BestSupportedLevel()));
  const Recommendation vector_rec = MustRecommend(*recommender, options);

  ExpectBitIdentical(scalar_rec, vector_rec, what);
  // The deterministic work counters must agree too: identical kernels
  // mean identical pruning decisions, probe schedules, and row
  // traversals (wall-clock fields excluded, they always differ).
  EXPECT_EQ(scalar_stats.candidates_considered,
            vector_rec.stats.candidates_considered)
      << what;
  EXPECT_EQ(scalar_stats.fully_probed, vector_rec.stats.fully_probed)
      << what;
  EXPECT_EQ(scalar_stats.rows_scanned, vector_rec.stats.rows_scanned)
      << what;
  EXPECT_EQ(scalar_stats.target_queries, vector_rec.stats.target_queries)
      << what;
}

TEST_F(DispatchInvarianceTest, LinearLinearSerial) {
  SearchOptions options;
  options.horizontal = HorizontalStrategy::kLinear;
  options.vertical = VerticalStrategy::kLinear;
  options.num_threads = 1;
  CheckScheme(options, "linear-linear serial");
}

TEST_F(DispatchInvarianceTest, LinearLinearEightThreads) {
  SearchOptions options;
  options.horizontal = HorizontalStrategy::kLinear;
  options.vertical = VerticalStrategy::kLinear;
  options.num_threads = 8;
  CheckScheme(options, "linear-linear 8 threads");
}

TEST_F(DispatchInvarianceTest, MuveMuveSerialPinnedProbeOrder) {
  SearchOptions options;
  options.horizontal = HorizontalStrategy::kMuve;
  options.vertical = VerticalStrategy::kMuve;
  // The priority probe rule consults wall-clock estimates, which are not
  // dispatch-invariant; pin the order so the probe schedule (and thus
  // every counter) is deterministic, as the CLI golden does.
  options.probe_order = ProbeOrderPolicy::kDeviationFirst;
  options.num_threads = 1;
  CheckScheme(options, "muve-muve serial");
}

TEST_F(DispatchInvarianceTest, MuveMuveEightThreadsSameUtilities) {
  // At 8 threads the pruning threshold schedule is racy even within one
  // dispatch level: probe counts may differ and exact-tie view
  // identities may swap (the toy workload has exactly tied utilities).
  // What MUST hold across dispatch levels is the utility profile of the
  // top-k, bit-for-bit — pruning is sound under any schedule and the
  // kernels are dispatch-invariant.
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;
  options.horizontal = HorizontalStrategy::kMuve;
  options.vertical = VerticalStrategy::kMuve;
  options.probe_order = ProbeOrderPolicy::kDeviationFirst;
  options.num_threads = 8;

  LevelGuard guard;
  ASSERT_TRUE(simd::SetActiveLevel(simd::DispatchLevel::kScalar));
  const Recommendation scalar_rec = MustRecommend(*recommender, options);
  ASSERT_TRUE(simd::SetActiveLevel(simd::BestSupportedLevel()));
  const Recommendation vector_rec = MustRecommend(*recommender, options);
  ASSERT_EQ(scalar_rec.views.size(), vector_rec.views.size());
  for (size_t i = 0; i < scalar_rec.views.size(); ++i) {
    EXPECT_TRUE(
        BitEqual(scalar_rec.views[i].utility, vector_rec.views[i].utility))
        << "rank " << i << ": " << scalar_rec.views[i].utility << " vs "
        << vector_rec.views[i].utility;
  }
}

// The stats block labels itself with the level that produced it.
TEST_F(DispatchInvarianceTest, StatsReportActiveDispatchLevel) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;
  options.horizontal = HorizontalStrategy::kLinear;
  options.vertical = VerticalStrategy::kLinear;

  LevelGuard guard;
  ASSERT_TRUE(simd::SetActiveLevel(simd::DispatchLevel::kScalar));
  const Recommendation scalar_rec = MustRecommend(*recommender, options);
  EXPECT_EQ(scalar_rec.stats.simd_dispatch, "scalar");

  ASSERT_TRUE(simd::SetActiveLevel(simd::BestSupportedLevel()));
  const Recommendation vector_rec = MustRecommend(*recommender, options);
  EXPECT_EQ(vector_rec.stats.simd_dispatch,
            simd::DispatchLevelName(simd::BestSupportedLevel()));
}

}  // namespace
}  // namespace muve::core
