// Incremental candidate evaluation (Section IV-A3).
//
// Every strategy scores candidates through `EvaluateCandidate`; MuVE
// passes its pruning threshold U_seen (and pruning enabled), Linear and
// Hill Climbing evaluate in full.  The incremental cascade:
//
//   1. S-bound:   prune when  aD + aA + aS*S(b)        <= U_seen
//                 (no probe executed; zero processing cost)
//   2. 1st probe: evaluate D or A (order by the priority rule), prune
//                 when  a1*v1 + a2_max + aS*S(b)       <= U_seen
//   3. 2nd probe: evaluate the remaining objective; the candidate's full
//                 utility U = aD*D + aA*A + aS*S is now known.

#ifndef MUVE_CORE_CANDIDATE_H_
#define MUVE_CORE_CANDIDATE_H_

#include <string>

#include "core/search_options.h"
#include "core/view_evaluator.h"

namespace muve::core {

// A fully-scored binned view.
struct ScoredView {
  View view;
  int bins = 1;
  double utility = 0.0;
  double deviation = 0.0;
  double accuracy = 0.0;
  double usability = 0.0;

  // "SUM(3PAr) BY MP [b=3] U=0.61 (D=0.29 A=0.30 S=0.33)"
  std::string ToString() const;
};

struct CandidateResult {
  enum class Outcome {
    kPrunedBeforeProbes,    // step 1 fired
    kPrunedAfterFirstProbe, // step 2 fired
    kFullyEvaluated,        // survived to a complete utility
  };

  Outcome outcome = Outcome::kFullyEvaluated;
  ScoredView scored;  // meaningful only when fully evaluated
};

// Scores candidate (view, bins).  When `allow_pruning`, candidates that
// provably cannot exceed `threshold` are cut short per the cascade above;
// otherwise both objectives are always evaluated (threshold ignored).
// Updates the evaluator's ExecStats candidate counters.
CandidateResult EvaluateCandidate(ViewEvaluator& evaluator, const View& view,
                                  int bins, const SearchOptions& options,
                                  double threshold, bool allow_pruning);

}  // namespace muve::core

#endif  // MUVE_CORE_CANDIDATE_H_
