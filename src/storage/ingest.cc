#include "storage/ingest.h"

#include <utility>

#include "storage/fused_scan.h"

namespace muve::storage {

namespace {

// Pairs from the (A, M) grid whose base histogram is cached on `side`
// ("t|" or "c|").  String-typed dimensions/measures never enter the
// cache (ViewEvaluator::CacheEligible), so a Contains() hit implies the
// fused builder accepts the pair; the type probe below is a cheap belt
// against a caller handing a grid the cache never saw.
std::vector<FusedScanPair> CachedPairs(const IngestDeltaRequest& request,
                                       const char* side,
                                       std::vector<std::string>* keys) {
  std::vector<FusedScanPair> pairs;
  for (const std::string& dim : request.dimensions) {
    auto dim_col = request.table->ColumnByName(dim);
    if (!dim_col.ok() || (*dim_col)->type() == ValueType::kString) continue;
    for (const std::string& mea : request.measures) {
      auto mea_col = request.table->ColumnByName(mea);
      if (!mea_col.ok() || (*mea_col)->type() == ValueType::kString) {
        continue;
      }
      std::string key = request.key_prefix + side + dim + "|" + mea;
      if (!request.cache->Contains(key)) continue;
      pairs.push_back({dim, mea});
      keys->push_back(std::move(key));
    }
  }
  return pairs;
}

// Builds the partial histograms of `pairs` over `delta_rows` in one
// fused pass and merges each into its cached base.  Any failure (an
// expired ExecContext aborting the pass, a mid-merge eviction) leaves
// the un-merged entries stale relative to the appended table; the
// caller must drop them.
common::Status PatchSide(const IngestDeltaRequest& request,
                         const RowSet& delta_rows,
                         const std::vector<FusedScanPair>& pairs,
                         const std::vector<std::string>& keys,
                         IngestDeltaStats* stats) {
  if (pairs.empty() || delta_rows.empty()) return common::Status::OK();
  FusedScanScratch scratch;
  auto built = FusedBuildBaseHistograms(
      *request.table, delta_rows, pairs, request.pool, request.morsel_size,
      /*stats=*/nullptr, &scratch, request.exec);
  MUVE_RETURN_IF_ERROR(built.status());
  if (stats != nullptr) {
    stats->rows_scanned += static_cast<int64_t>(delta_rows.size());
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    // A false return means the entry was evicted between the Contains
    // probe and now — nothing to patch, and nothing stale either: the
    // next demand build runs over the full appended table.
    if (request.cache->MergeDelta(keys[i], (*built)[i]) &&
        stats != nullptr) {
      ++stats->delta_merges;
    }
  }
  return common::Status::OK();
}

}  // namespace

common::Status ApplyAppendDeltas(const IngestDeltaRequest& request,
                                 IngestDeltaStats* stats) {
  if (request.table == nullptr || request.cache == nullptr) {
    return common::Status::InvalidArgument(
        "ApplyAppendDeltas needs a table and a cache");
  }
  if (request.rows_appended == 0) return common::Status::OK();

  std::vector<std::string> comparison_keys;
  std::vector<std::string> target_keys;
  const std::vector<FusedScanPair> comparison_pairs =
      CachedPairs(request, "c|", &comparison_keys);
  const std::vector<FusedScanPair> target_pairs =
      request.target_predicate == nullptr
          ? std::vector<FusedScanPair>{}
          : CachedPairs(request, "t|", &target_keys);
  if (stats != nullptr) {
    stats->pairs_considered +=
        static_cast<int64_t>(comparison_pairs.size() + target_pairs.size());
  }
  if (comparison_pairs.empty() && target_pairs.empty()) {
    return common::Status::OK();
  }

  // The comparison side (D_B) sees every appended row.
  RowSet delta_rows;
  delta_rows.reserve(request.rows_appended);
  for (size_t r = request.rows_before;
       r < request.rows_before + request.rows_appended; ++r) {
    delta_rows.push_back(static_cast<uint32_t>(r));
  }
  MUVE_RETURN_IF_ERROR(
      PatchSide(request, delta_rows, comparison_pairs, comparison_keys,
                stats));

  // The target side (D_Q) sees only appended rows satisfying T —
  // zone maps on the freshly sealed delta chunks prune here too.
  if (!target_pairs.empty()) {
    RowSet target_delta;
    FilterStats filter_stats;
    request.target_predicate->FilterInto(*request.table, delta_rows,
                                         &target_delta, &filter_stats);
    if (stats != nullptr) {
      stats->target_delta_rows += static_cast<int64_t>(target_delta.size());
      stats->chunks_skipped += filter_stats.chunks_skipped;
    }
    MUVE_RETURN_IF_ERROR(PatchSide(request, target_delta, target_pairs,
                                   target_keys, stats));
  }
  return common::Status::OK();
}

}  // namespace muve::storage
