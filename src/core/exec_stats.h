// Cost accounting for view recommendation (Section III-C).
//
// The paper charges four operation costs per candidate binned view:
// target query execution C_t, comparison query execution C_c, deviation
// computation C_d, and accuracy evaluation C_a.  `ExecStats` accumulates
// wall-clock time and operation counts per component; the figure
// harnesses report `TotalCostMillis()` as the paper's "cost" axis and the
// probe counters for Figure 6c's "fully probed views".

#ifndef MUVE_CORE_EXEC_STATS_H_
#define MUVE_CORE_EXEC_STATS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace muve::core {

// Completeness report for a bounded (deadline / cancellation / budget)
// run.  The paper's S-list walk makes MuVE naturally *anytime*: stopping
// between probes leaves a valid partial top-k, and this block says how
// partial.  On an unbounded (or unexpired) run `degraded` is false, the
// counters equal the full workload, and status is kOk.
struct ExecCompleteness {
  // True iff execution control actually skipped work.  A run whose
  // deadline expires after the last probe finished is NOT degraded.
  bool degraded = false;
  // Views whose horizontal search ran to its natural end (exhausted the
  // bin domain, hill-climbing converged, or early-terminated — any
  // outcome the unbounded run would also have produced).
  int64_t views_fully_searched = 0;
  // Bin-count probes skipped because execution control expired (distinct
  // from the paper's pruning counters, which an unbounded run also has).
  int64_t bins_pruned_by_deadline = 0;
  // kOk, or the first cause of degradation: kDeadlineExceeded,
  // kCancelled, kResourceExhausted.
  common::StatusCode status = common::StatusCode::kOk;

  void Merge(const ExecCompleteness& other);
};

struct ExecStats {
  // Operation counts.
  int64_t target_queries = 0;
  int64_t comparison_queries = 0;
  int64_t deviation_evals = 0;
  int64_t accuracy_evals = 0;
  // Total row-set traversals, in rows: every scan pass over a row set
  // charges its size once, whether the pass serves one (A, M) pair (a
  // direct probe) or every pair at once (a fused build — ONE traversal
  // that reads each row's dimension and measure cells once each).
  // Invariant: rows_scanned == build_rows_scanned + probe_rows_scanned.
  int64_t rows_scanned = 0;
  // The build/probe split (attribution for the sharing ablations): rows
  // traversed building base histograms vs rows traversed by direct probe
  // scans (cache-ineligible probes, cache-off runs, categorical views).
  int64_t build_rows_scanned = 0;
  int64_t probe_rows_scanned = 0;

  // Base-histogram cache accounting (the O(1) re-binning optimization):
  // build PASSES executed (each is one row-set traversal, charged into
  // rows_scanned; a fused pass builds every missing (A, M) of its side
  // at once) vs probes served from an already-built histogram without
  // touching rows.  Both stay 0 when the cache is off, so rows_scanned
  // remains directly comparable across the ablation.
  int64_t base_builds = 0;
  int64_t base_cache_hits = 0;

  // Fused scan engine accounting: fused multi-(A, M) build passes, and
  // morsel tasks dispatched by their accumulation phases (1 per ~64K
  // rows per pass; > passes only when row sets exceed one morsel).
  int64_t fused_builds = 0;
  int64_t morsels_dispatched = 0;
  // Cross-request sharing: fused passes this run did NOT scan because an
  // identical pass was already in flight on the shared cache — the
  // single-flight scheduler parked this side and it woke to cache hits
  // (SearchOptions::fused_coalescing).  0 on a run that shares nothing.
  int64_t fused_coalesced = 0;

  // Chunked-storage accounting: column chunks the predicate layer never
  // scanned because their zone maps (min/max/null-count, or a string
  // chunk's dictionary) decided the chunk wholesale.  0 when every chunk
  // had to be scanned (and on single-chunk tables whose zone map cannot
  // exclude anything).
  int64_t chunks_skipped = 0;

  // Incremental-ingest accounting (set by serving frontends that patch
  // cached base histograms after an append): cached (A, M) entries
  // updated by delta merge instead of rebuilt, and appended rows those
  // delta passes traversed.  Both stay 0 for library callers and on
  // cold builds.
  int64_t delta_merges = 0;
  int64_t ingest_rows = 0;

  // Setup accounting (outside the paper's C: one-off costs before any
  // probe runs).  Rows eliminated by the WHERE predicate selecting D_Q,
  // and wall-clock spent on dataset load + predicate filtering.
  int64_t predicate_rows_filtered = 0;
  double setup_time_ms = 0.0;

  // Admission accounting (outside the paper's C, set by a serving
  // frontend such as muved): wall-clock this request spent queued at the
  // admission gate before execution began, and the gate's queue depth
  // when it was admitted.  Both stay 0 for library callers; queue_ms is
  // wall-clock, so it lives beside setup_time_ms in the timing block and
  // never in deterministic output.
  double queue_ms = 0.0;
  int64_t queue_depth_on_admit = 0;

  // Candidate accounting.
  int64_t candidates_considered = 0;
  // Pruned by the S-bound before any probe (incremental evaluation, step 1).
  int64_t pruned_before_probes = 0;
  // Pruned after the first objective probe (incremental evaluation, step 2).
  int64_t pruned_after_first_probe = 0;
  // Both deviation and accuracy evaluated (Figure 6c's metric).
  int64_t fully_probed = 0;
  // Horizontal searches that hit the early-termination condition.
  int64_t early_terminations = 0;
  int64_t views_searched = 0;

  // Wall-clock per component, milliseconds.
  double target_time_ms = 0.0;
  double comparison_time_ms = 0.0;
  double deviation_time_ms = 0.0;
  double accuracy_time_ms = 0.0;

  // SIMD dispatch level the kernels ran at ("scalar" / "avx2" / "neon");
  // set by the recommender from common::simd::ActiveLevelName().  Merge
  // adopts the other block's value when this one is empty (per-worker
  // stat blocks all run the same process-wide dispatch table).
  std::string simd_dispatch;

  // Width of the thread pool whose workers produced these stats
  // (1 = serial).  Merge keeps the maximum: folding W per-worker stat
  // blocks into one run total must report the pool width W, not W * 1,
  // and merging two runs reports the wider.  The recommender overwrites
  // this with the actual pool width after the per-worker merge.
  int num_workers = 1;

  // How complete the run was under execution control (deadline /
  // cancellation / row budget).  Default: complete.
  ExecCompleteness completeness;

  // The paper's total cost C (Eq. 7): sum of the four components.
  double TotalCostMillis() const {
    return target_time_ms + comparison_time_ms + deviation_time_ms +
           accuracy_time_ms;
  }

  void Merge(const ExecStats& other);

  std::string ToString() const;
};

}  // namespace muve::core

#endif  // MUVE_CORE_EXEC_STATS_H_
