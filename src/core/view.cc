#include "core/view.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"

namespace muve::core {

std::string View::Label() const {
  return std::string(storage::AggregateName(function)) + "(" + measure +
         ") BY " + dimension;
}

std::string View::Key() const {
  return common::ToLower(dimension) + "|" + common::ToLower(measure) + "|" +
         storage::AggregateName(function);
}

common::Result<ViewSpace> ViewSpace::Create(const data::Dataset& dataset) {
  if (dataset.table == nullptr) {
    return common::Status::InvalidArgument("dataset has no table");
  }
  if ((dataset.dimensions.empty() && dataset.categorical_dimensions.empty()) ||
      dataset.measures.empty() || dataset.functions.empty()) {
    return common::Status::InvalidArgument(
        "dataset workload needs at least one dimension (numeric or "
        "categorical), one measure, and one function");
  }
  ViewSpace space;
  const storage::Table& table = *dataset.table;

  for (const std::string& dim : dataset.dimensions) {
    MUVE_ASSIGN_OR_RETURN(const storage::Column* col,
                          table.ColumnByName(dim));
    if (col->type() == storage::ValueType::kString) {
      return common::Status::TypeMismatch(
          "dimension '" + dim + "' is not numeric; MuVE binning requires "
          "numerical dimensions");
    }
    MUVE_ASSIGN_OR_RETURN(const double lo, col->NumericMin());
    MUVE_ASSIGN_OR_RETURN(const double hi, col->NumericMax());
    DimensionInfo info;
    info.name = dim;
    info.lo = lo;
    info.hi = hi;
    // B_j: one binning choice per unit of range (Definition 1's widths
    // L/1, L/2, ..., 1), at least one.
    info.max_bins = std::max(1, static_cast<int>(std::ceil(hi - lo)));
    std::set<double> distinct;
    for (size_t r = 0; r < col->size(); ++r) {
      if (!col->IsNull(r)) distinct.insert(col->NumericAt(r));
    }
    info.distinct_values = distinct.size();
    space.dim_index_.emplace(info.name, space.dims_.size());
    space.dims_.push_back(std::move(info));
  }

  for (const std::string& dim : dataset.categorical_dimensions) {
    MUVE_ASSIGN_OR_RETURN(const storage::Column* col,
                          table.ColumnByName(dim));
    DimensionInfo info;
    info.name = dim;
    info.categorical = true;
    info.max_bins = 1;  // the single non-binned candidate
    std::set<storage::Value> distinct;
    for (size_t r = 0; r < col->size(); ++r) {
      if (!col->IsNull(r)) distinct.insert(col->ValueAt(r));
    }
    if (distinct.empty()) {
      return common::Status::InvalidArgument(
          "categorical dimension '" + dim + "' has no non-null values");
    }
    info.distinct_values = distinct.size();
    space.dim_index_.emplace(info.name, space.dims_.size());
    space.dims_.push_back(std::move(info));
  }

  for (const std::string& measure : dataset.measures) {
    if (!table.schema().HasField(measure)) {
      return common::Status::NotFound("measure '" + measure +
                                      "' not in table schema");
    }
  }

  std::vector<std::string> all_dims = dataset.dimensions;
  all_dims.insert(all_dims.end(), dataset.categorical_dimensions.begin(),
                  dataset.categorical_dimensions.end());
  for (const std::string& dim : all_dims) {
    for (const std::string& measure : dataset.measures) {
      for (const storage::AggregateFunction f : dataset.functions) {
        space.views_.push_back(View{dim, measure, f});
      }
    }
  }
  space.measures_per_dimension_ =
      dataset.measures.size() * dataset.functions.size();
  return space;
}

const DimensionInfo& ViewSpace::dimension_info(const std::string& name) const {
  const auto it = dim_index_.find(name);
  MUVE_CHECK(it != dim_index_.end()) << "unknown dimension: " << name;
  return dims_[it->second];
}

int ViewSpace::max_bins_overall() const {
  int best = 1;
  for (const DimensionInfo& d : dims_) best = std::max(best, d.max_bins);
  return best;
}

int64_t ViewSpace::TotalBinnedViews() const {
  int64_t total = 0;
  for (const DimensionInfo& d : dims_) {
    total += 2LL * static_cast<int64_t>(measures_per_dimension_) * d.max_bins;
  }
  return total;
}

}  // namespace muve::core
