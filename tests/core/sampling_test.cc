// Sampling-based approximation: deterministic, cheaper, and bounded-loss
// on well-behaved data.

#include <gtest/gtest.h>

#include "core/fidelity.h"
#include "core/recommender.h"
#include "data/diab.h"
#include "test_util.h"

namespace muve::core {
namespace {

TEST(SamplingTest, FullFractionIsExactlyTheBaseline) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions exact;
  exact.horizontal = HorizontalStrategy::kLinear;
  exact.vertical = VerticalStrategy::kLinear;
  SearchOptions sampled = exact;
  sampled.sample_fraction = 1.0;
  auto a = recommender->Recommend(exact);
  auto b = recommender->Recommend(sampled);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->views.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->views[i].utility, b->views[i].utility);
  }
  EXPECT_EQ(b->scheme, "Linear-Linear");  // no (Smp) marker at 1.0
}

TEST(SamplingTest, DeterministicForFixedSeed) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;
  options.horizontal = HorizontalStrategy::kLinear;
  options.vertical = VerticalStrategy::kLinear;
  options.sample_fraction = 0.5;
  options.sample_seed = 42;
  auto a = recommender->Recommend(options);
  auto b = recommender->Recommend(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->views.size(), b->views.size());
  for (size_t i = 0; i < a->views.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->views[i].utility, b->views[i].utility);
    EXPECT_EQ(a->views[i].view.Key(), b->views[i].view.Key());
  }
  EXPECT_EQ(a->scheme, "Linear-Linear(Smp)");
}

TEST(SamplingTest, ScansProportionallyFewerRows) {
  const data::Dataset diab =
      data::WithWorkloadSize(data::MakeDiabDataset(), 3, 3, 3);
  auto recommender = Recommender::Create(diab);
  ASSERT_TRUE(recommender.ok());
  SearchOptions exact;
  exact.horizontal = HorizontalStrategy::kLinear;
  exact.vertical = VerticalStrategy::kLinear;
  SearchOptions quarter = exact;
  quarter.sample_fraction = 0.25;
  auto full = recommender->Recommend(exact);
  auto sampled = recommender->Recommend(quarter);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sampled.ok());
  const double ratio = static_cast<double>(sampled->stats.rows_scanned) /
                       static_cast<double>(full->stats.rows_scanned);
  EXPECT_GT(ratio, 0.15);
  EXPECT_LT(ratio, 0.35);
}

TEST(SamplingTest, HighFractionKeepsHighFidelityOnDiab) {
  const data::Dataset diab =
      data::WithWorkloadSize(data::MakeDiabDataset(), 3, 3, 3);
  auto recommender = Recommender::Create(diab);
  ASSERT_TRUE(recommender.ok());
  SearchOptions exact;
  exact.horizontal = HorizontalStrategy::kLinear;
  exact.vertical = VerticalStrategy::kLinear;
  auto baseline = recommender->Recommend(exact);
  ASSERT_TRUE(baseline.ok());

  SearchOptions sampled = exact;
  sampled.sample_fraction = 0.8;
  auto rec = recommender->Recommend(sampled);
  ASSERT_TRUE(rec.ok());
  // Fidelity is computed against the *exact* utilities of the same view
  // choices, so re-score the sampled picks exactly via a fresh session.
  EXPECT_GE(Fidelity(baseline->views, rec->views), 0.85);
}

TEST(SamplingTest, ComposesWithMuve) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;  // MuVE-MuVE default
  options.sample_fraction = 0.5;
  auto rec = recommender->Recommend(options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->scheme, "MuVE-MuVE(Smp)");
  EXPECT_FALSE(rec->views.empty());
  // Sampled MuVE must equal sampled Linear (exactness holds on whatever
  // rows are scanned, since the sample is seed-deterministic).
  SearchOptions linear = options;
  linear.horizontal = HorizontalStrategy::kLinear;
  linear.vertical = VerticalStrategy::kLinear;
  auto lin = recommender->Recommend(linear);
  ASSERT_TRUE(lin.ok());
  ASSERT_EQ(lin->views.size(), rec->views.size());
  for (size_t i = 0; i < lin->views.size(); ++i) {
    EXPECT_NEAR(lin->views[i].utility, rec->views[i].utility, 1e-9);
  }
}

TEST(SamplingTest, InvalidFractionRejected) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions zero;
  zero.sample_fraction = 0.0;
  EXPECT_FALSE(recommender->Recommend(zero).ok());
  SearchOptions over;
  over.sample_fraction = 1.5;
  EXPECT_FALSE(recommender->Recommend(over).ok());
}

}  // namespace
}  // namespace muve::core
