#include "sql/catalog.h"

#include "common/string_util.h"

namespace muve::sql {

common::Status Catalog::RegisterTable(std::string name,
                                      storage::Table table) {
  const std::string key = common::ToLower(name);
  if (tables_.contains(key)) {
    return common::Status::AlreadyExists("table '" + name +
                                         "' already registered");
  }
  tables_.emplace(key,
                  std::make_unique<storage::Table>(std::move(table)));
  return common::Status::OK();
}

common::Result<const storage::Table*> Catalog::GetTable(
    std::string_view name) const {
  const auto it = tables_.find(common::ToLower(name));
  if (it == tables_.end()) {
    return common::Status::NotFound("no table named '" + std::string(name) +
                                    "'");
  }
  return static_cast<const storage::Table*>(it->second.get());
}

common::Result<storage::Table*> Catalog::GetMutableTable(
    std::string_view name) {
  const auto it = tables_.find(common::ToLower(name));
  if (it == tables_.end()) {
    return common::Status::NotFound("no table named '" + std::string(name) +
                                    "'");
  }
  return it->second.get();
}

bool Catalog::HasTable(std::string_view name) const {
  return tables_.contains(common::ToLower(name));
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, _] : tables_) names.push_back(key);
  return names;
}

}  // namespace muve::sql
