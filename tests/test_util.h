// Shared helpers for the MuVE test suite.

#ifndef MUVE_TESTS_TEST_UTIL_H_
#define MUVE_TESTS_TEST_UTIL_H_

#include "data/dataset.h"
#include "data/toy.h"

namespace muve::testutil {

// The small deterministic exploration dataset the suites share; now owned
// by the library (src/data/toy) so the CLI's `--dataset=toy` and the
// golden-file regression test build the exact same workload.
inline data::Dataset MakeToyDataset() { return data::MakeToyDataset(); }

}  // namespace muve::testutil

#endif  // MUVE_TESTS_TEST_UTIL_H_
