file(REMOVE_RECURSE
  "CMakeFiles/view_evaluator_test.dir/core/view_evaluator_test.cc.o"
  "CMakeFiles/view_evaluator_test.dir/core/view_evaluator_test.cc.o.d"
  "view_evaluator_test"
  "view_evaluator_test.pdb"
  "view_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
