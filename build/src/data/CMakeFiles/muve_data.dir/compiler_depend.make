# Empty compiler generated dependencies file for muve_data.
# This may be replaced when dependencies are built.
