#include "core/exec_stats.h"

#include <sstream>

#include "common/string_util.h"

namespace muve::core {

void ExecCompleteness::Merge(const ExecCompleteness& other) {
  degraded = degraded || other.degraded;
  views_fully_searched += other.views_fully_searched;
  bins_pruned_by_deadline += other.bins_pruned_by_deadline;
  // Keep the first (already-recorded) cause; adopt the other's only when
  // this block has none.
  if (status == common::StatusCode::kOk) status = other.status;
}

void ExecStats::Merge(const ExecStats& other) {
  target_queries += other.target_queries;
  comparison_queries += other.comparison_queries;
  deviation_evals += other.deviation_evals;
  accuracy_evals += other.accuracy_evals;
  rows_scanned += other.rows_scanned;
  build_rows_scanned += other.build_rows_scanned;
  probe_rows_scanned += other.probe_rows_scanned;
  base_builds += other.base_builds;
  base_cache_hits += other.base_cache_hits;
  fused_builds += other.fused_builds;
  morsels_dispatched += other.morsels_dispatched;
  fused_coalesced += other.fused_coalesced;
  chunks_skipped += other.chunks_skipped;
  delta_merges += other.delta_merges;
  ingest_rows += other.ingest_rows;
  predicate_rows_filtered += other.predicate_rows_filtered;
  setup_time_ms += other.setup_time_ms;
  queue_ms += other.queue_ms;
  if (other.queue_depth_on_admit > queue_depth_on_admit) {
    queue_depth_on_admit = other.queue_depth_on_admit;
  }
  candidates_considered += other.candidates_considered;
  pruned_before_probes += other.pruned_before_probes;
  pruned_after_first_probe += other.pruned_after_first_probe;
  fully_probed += other.fully_probed;
  early_terminations += other.early_terminations;
  views_searched += other.views_searched;
  target_time_ms += other.target_time_ms;
  comparison_time_ms += other.comparison_time_ms;
  deviation_time_ms += other.deviation_time_ms;
  accuracy_time_ms += other.accuracy_time_ms;
  if (other.num_workers > num_workers) num_workers = other.num_workers;
  if (simd_dispatch.empty()) simd_dispatch = other.simd_dispatch;
  completeness.Merge(other.completeness);
}

std::string ExecStats::ToString() const {
  std::ostringstream out;
  out << "cost=" << common::FormatDouble(TotalCostMillis(), 3) << "ms"
      << " (Ct=" << common::FormatDouble(target_time_ms, 3)
      << " Cc=" << common::FormatDouble(comparison_time_ms, 3)
      << " Cd=" << common::FormatDouble(deviation_time_ms, 3)
      << " Ca=" << common::FormatDouble(accuracy_time_ms, 3) << ")"
      << " candidates=" << candidates_considered
      << " pruned0=" << pruned_before_probes
      << " pruned1=" << pruned_after_first_probe
      << " full=" << fully_probed
      << " early_term=" << early_terminations
      << " queries(t/c)=" << target_queries << "/" << comparison_queries
      << " rows=" << rows_scanned
      << " rows(b/p)=" << build_rows_scanned << "/" << probe_rows_scanned
      << " base(b/h)=" << base_builds << "/" << base_cache_hits
      << " fused=" << fused_builds
      << " morsels=" << morsels_dispatched
      << " workers=" << num_workers;
  if (fused_coalesced > 0) out << " coalesced=" << fused_coalesced;
  // Printed only when zone maps actually pruned, so single-chunk runs
  // (every pre-chunking golden) stay byte-stable.
  if (chunks_skipped > 0) out << " chunks_skipped=" << chunks_skipped;
  // Printed only for append-patched runs so cold output stays unchanged.
  if (delta_merges > 0 || ingest_rows > 0) {
    out << " delta_merges=" << delta_merges
        << " ingest_rows=" << ingest_rows;
  }
  if (!simd_dispatch.empty()) out << " simd=" << simd_dispatch;
  if (predicate_rows_filtered > 0 || setup_time_ms > 0.0) {
    out << " filtered=" << predicate_rows_filtered
        << " setup=" << common::FormatDouble(setup_time_ms, 3) << "ms";
  }
  // Printed only for served (gate-admitted) runs so library output stays
  // unchanged.
  if (queue_ms > 0.0 || queue_depth_on_admit > 0) {
    out << " queue=" << common::FormatDouble(queue_ms, 3) << "ms"
        << " queue_depth=" << queue_depth_on_admit;
  }
  // Printed only for degraded runs so unbounded output stays unchanged.
  if (completeness.degraded) {
    out << " DEGRADED code=" << common::StatusCodeName(completeness.status)
        << " views_done=" << completeness.views_fully_searched
        << " bins_deadline_pruned=" << completeness.bins_pruned_by_deadline;
  }
  return out.str();
}

}  // namespace muve::core
