#include "storage/base_histogram_cache.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace muve::storage {

size_t BaseHistogram::ApproxBytes() const {
  const size_t d = values.size();
  // Three double arrays of size d, three prefix arrays of size d + 1
  // (one int64, two double), plus the struct itself.
  return sizeof(BaseHistogram) + d * 3 * sizeof(double) +
         (d + 1) * (sizeof(int64_t) + 2 * sizeof(double));
}

bool BaseServableFunction(AggregateFunction function) {
  switch (function) {
    case AggregateFunction::kSum:
    case AggregateFunction::kCount:
    case AggregateFunction::kAvg:
    case AggregateFunction::kStd:
    case AggregateFunction::kVar:
      return true;
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return false;
  }
  return false;
}

double FinishFromMoments(AggregateFunction function, int64_t count, double sum,
                         double sum_sq) {
  // Conventions mirror AggregateAccumulator::Finish: empty groups are 0
  // for every function, and STD/VAR are 0 for fewer than two observations.
  if (count == 0) return 0.0;
  switch (function) {
    case AggregateFunction::kSum:
      return sum;
    case AggregateFunction::kCount:
      return static_cast<double>(count);
    case AggregateFunction::kAvg:
      return sum / static_cast<double>(count);
    case AggregateFunction::kStd:
    case AggregateFunction::kVar: {
      if (count < 2) return 0.0;
      const double n = static_cast<double>(count);
      const double mean = sum / n;
      // Population variance from raw moments; clamp against catastrophic
      // cancellation producing a tiny negative.
      double var = sum_sq / n - mean * mean;
      if (var < 0.0) var = 0.0;
      return function == AggregateFunction::kVar ? var : std::sqrt(var);
    }
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      break;
  }
  MUVE_CHECK(false) << "FinishFromMoments: unservable function";
  return 0.0;
}

common::Result<BaseHistogram> BuildBaseHistogram(const Table& table,
                                                 const RowSet& rows,
                                                 std::string_view dimension,
                                                 std::string_view measure) {
  MUVE_ASSIGN_OR_RETURN(const Column* dim, table.ColumnByName(dimension));
  MUVE_ASSIGN_OR_RETURN(const Column* mea, table.ColumnByName(measure));
  if (dim->type() == ValueType::kString) {
    return common::Status::TypeMismatch(
        "cannot bin string dimension '" + std::string(dimension) + "'");
  }
  if (mea->type() == ValueType::kString) {
    // String measures are only aggregatable with COUNT; that combination
    // keeps using the direct scan (BaseHistogram stores measure moments).
    return common::Status::TypeMismatch(
        "cannot build base histogram over string measure '" +
        std::string(measure) + "'");
  }

  // One pass to collect (dimension value, measure value) for rows where
  // both are non-NULL — exactly the rows every aggregate kernel consumes.
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(rows.size());
  for (uint32_t row : rows) {
    if (dim->IsNull(row)) continue;
    if (mea->IsNull(row)) continue;
    pairs.emplace_back(dim->NumericAt(row), mea->NumericAt(row));
  }
  // Stable sort by dimension value: rows within one fine bin stay in row
  // order, so per-bin sums associate exactly like GroupByAggregate's.
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const std::pair<double, double>& a,
                      const std::pair<double, double>& b) {
                     return a.first < b.first;
                   });

  BaseHistogram base;
  base.source_rows = static_cast<int64_t>(rows.size());
  base.prefix_counts.push_back(0);
  base.prefix_sums.push_back(0.0);
  base.prefix_sum_sqs.push_back(0.0);
  size_t i = 0;
  while (i < pairs.size()) {
    const double value = pairs[i].first;
    int64_t count = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (; i < pairs.size() && pairs[i].first == value; ++i) {
      const double m = pairs[i].second;
      ++count;
      sum += m;
      sum_sq += m * m;
    }
    base.values.push_back(value);
    base.sums.push_back(sum);
    base.sum_sqs.push_back(sum_sq);
    base.prefix_counts.push_back(base.prefix_counts.back() + count);
    base.prefix_sums.push_back(base.prefix_sums.back() + sum);
    base.prefix_sum_sqs.push_back(base.prefix_sum_sqs.back() + sum_sq);
  }
  return base;
}

BinnedResult CoarsenBaseHistogram(const BaseHistogram& base,
                                  AggregateFunction function, int num_bins,
                                  double lo, double hi) {
  MUVE_CHECK(num_bins >= 1);
  MUVE_CHECK(BaseServableFunction(function));

  BinnedResult out;
  out.lo = lo;
  out.hi = hi;
  out.num_bins = num_bins;
  out.aggregates.resize(static_cast<size_t>(num_bins), 0.0);
  out.row_counts.resize(static_cast<size_t>(num_bins), 0);

  const size_t d = base.num_fine_bins();
  // Group consecutive fine bins by their coarse bin under the SAME
  // BinIndexFor the direct scan uses, so the row-to-bin assignment is
  // identical by construction.  BinIndexFor is monotone non-decreasing
  // in the value and the fine bins are sorted, so one forward pass
  // suffices: O(d) BinIndexFor calls, independent of num_bins — which
  // matters when b greatly exceeds the number of distinct values (e.g.
  // b_max = 1440 over a few hundred distinct minutes-played values;
  // the earlier per-bin binary search was O(b log d) and dominated the
  // probe).  Empty coarse bins are skipped implicitly (left at 0).
  size_t start = 0;
  while (start < d) {
    const int k = BinIndexFor(base.values[start], lo, hi, num_bins);
    size_t end = start + 1;
    while (end < d && BinIndexFor(base.values[end], lo, hi, num_bins) == k) {
      ++end;
    }
    const int64_t count =
        base.prefix_counts[end] - base.prefix_counts[start];
    if (count > 0) {
      const double sum = base.prefix_sums[end] - base.prefix_sums[start];
      const double sum_sq =
          base.prefix_sum_sqs[end] - base.prefix_sum_sqs[start];
      out.aggregates[static_cast<size_t>(k)] =
          FinishFromMoments(function, count, sum, sum_sq);
      out.row_counts[static_cast<size_t>(k)] = static_cast<size_t>(count);
    }
    start = end;
  }
  return out;
}

void BaseRawSeries(const BaseHistogram& base, AggregateFunction function,
                   std::vector<double>* keys,
                   std::vector<double>* aggregates) {
  MUVE_CHECK(BaseServableFunction(function));
  const size_t d = base.num_fine_bins();
  keys->assign(base.values.begin(), base.values.end());
  aggregates->clear();
  aggregates->reserve(d);
  for (size_t j = 0; j < d; ++j) {
    aggregates->push_back(FinishFromMoments(function, base.CountOf(j),
                                            base.sums[j], base.sum_sqs[j]));
  }
}

BaseHistogramCache::BaseHistogramCache() : BaseHistogramCache(Options()) {}

BaseHistogramCache::BaseHistogramCache(Options options)
    : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  per_shard_budget_ =
      std::max<size_t>(1, options_.max_bytes / options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BaseHistogramCache::Shard& BaseHistogramCache::ShardFor(
    const std::string& key) {
  const size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

common::Result<std::shared_ptr<const BaseHistogram>>
BaseHistogramCache::GetOrBuild(const std::string& key, const Builder& builder,
                               bool* built) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    ++shard.hits;
    if (built != nullptr) *built = false;
    // Move to LRU front.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return it->second.histogram;
  }

  // Build under the shard lock: concurrent requests for one key build
  // once (the second requester blocks and then hits).  Builds are row
  // scans — expensive relative to any lock hold we could save.
  common::Result<BaseHistogram> result = builder();
  if (!result.ok()) return result.status();
  auto histogram =
      std::make_shared<const BaseHistogram>(std::move(result).value());
  const size_t bytes = histogram->ApproxBytes();

  shard.lru.push_front(key);
  Shard::Entry entry;
  entry.histogram = histogram;
  entry.lru_it = shard.lru.begin();
  entry.bytes = bytes;
  shard.entries.emplace(key, std::move(entry));
  shard.bytes += bytes;
  ++shard.builds;
  if (built != nullptr) *built = true;

  // Per-shard LRU eviction under the byte budget.  The entry just
  // inserted (LRU front) is never evicted, so an oversized histogram
  // still serves the probes that triggered its build.
  while (shard.bytes > per_shard_budget_ && shard.entries.size() > 1) {
    const std::string& victim_key = shard.lru.back();
    const auto victim = shard.entries.find(victim_key);
    MUVE_CHECK(victim != shard.entries.end());
    shard.bytes -= victim->second.bytes;
    shard.entries.erase(victim);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return histogram;
}

void BaseHistogramCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

BaseHistogramCache::CacheStats BaseHistogramCache::TotalStats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.builds += shard->builds;
    total.evictions += shard->evictions;
    total.bytes += static_cast<int64_t>(shard->bytes);
  }
  return total;
}

}  // namespace muve::storage
