#include "sql/token.h"

namespace muve::sql {

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kEnd:
      return "end";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kFloat:
      return "float";
    case TokenType::kString:
      return "string";
    case TokenType::kKeyword:
      return "keyword";
    case TokenType::kStar:
      return "*";
    case TokenType::kComma:
      return ",";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kSemicolon:
      return ";";
    case TokenType::kEq:
      return "=";
    case TokenType::kNe:
      return "<>";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
  }
  return "?";
}

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kIdentifier:
    case TokenType::kKeyword:
    case TokenType::kString:
      return text;
    case TokenType::kInteger:
      return std::to_string(int_value);
    case TokenType::kFloat:
      return std::to_string(float_value);
    default:
      return TokenTypeName(type);
  }
}

bool IsKeyword(const Token& token, const char* keyword) {
  return token.type == TokenType::kKeyword && token.text == keyword;
}

}  // namespace muve::sql
