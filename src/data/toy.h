// A small deterministic exploration dataset, shared by the unit tests,
// the CLI's `--dataset=toy`, and the golden-file regression suite.
//
// 90 rows over:
//   * dimension `x` with integer values 0..29 (max_bins = 29),
//   * dimension `y` with integer values 0..9,
//   * measures `m1` (rises with x for the target subset, flat overall)
//     and `m2` (uniform noise-free ramp),
//   * selector `grp` ('a' = target subset, 'b' = rest).
//
// Small enough that exhaustive Linear-Linear runs in well under a second,
// rich enough that deviation/accuracy/usability all vary with binning —
// and fully deterministic (no RNG), which is what makes the committed
// golden snapshot of the CLI's output stable across platforms.

#ifndef MUVE_DATA_TOY_H_
#define MUVE_DATA_TOY_H_

#include "data/dataset.h"

namespace muve::data {

inline constexpr size_t kToyRows = 90;

// Builds the toy dataset with its default workload:
//   dimensions: x, y
//   measures:   m1, m2
//   functions:  SUM, AVG
//   predicate:  grp = 'a'
Dataset MakeToyDataset();

}  // namespace muve::data

#endif  // MUVE_DATA_TOY_H_
