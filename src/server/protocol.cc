#include "server/protocol.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>

namespace muve::server {

namespace {

using common::Result;
using common::Status;

using Clock = std::chrono::steady_clock;

// "No deadline" sentinel for the poll helpers below.
constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

Clock::time_point DeadlineAfterMs(int ms) {
  return ms > 0 ? Clock::now() + std::chrono::milliseconds(ms) : kNoDeadline;
}

// Waits until `fd` is ready for `events` or `deadline` passes.
// Returns 1 ready, 0 deadline expired, -1 poll error (errno set).
int PollUntil(int fd, short events, Clock::time_point deadline) {
  while (true) {
    int timeout_ms = -1;
    if (deadline != kNoDeadline) {
      const int64_t remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                Clock::now())
              .count();
      if (remaining_ms <= 0) return 0;
      timeout_ms = static_cast<int>(std::min<int64_t>(
          remaining_ms, std::numeric_limits<int>::max()));
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return 1;  // readable/writable, error, or hangup — the
                           // following read()/send() reports which
    if (rc == 0) {
      if (deadline == kNoDeadline) continue;  // cannot happen (timeout -1)
      return 0;
    }
    if (errno == EINTR) continue;
    return -1;
  }
}

// read() the full `count` bytes, looping over EINTR and short reads.
// Returns bytes read (== count), 0 on immediate clean EOF, -1 on error;
// `*eof_mid_read` distinguishes EOF after partial data, `*timed_out`
// (when a deadline is set) a deadline expiring before the data arrived.
ssize_t ReadFull(int fd, char* buf, size_t count, Clock::time_point deadline,
                 bool* eof_mid_read, bool* timed_out) {
  size_t done = 0;
  *eof_mid_read = false;
  if (timed_out != nullptr) *timed_out = false;
  while (done < count) {
    if (deadline != kNoDeadline) {
      const int ready = PollUntil(fd, POLLIN, deadline);
      if (ready == 0) {
        if (timed_out != nullptr) *timed_out = true;
        return static_cast<ssize_t>(done);
      }
      if (ready < 0) return -1;
    }
    const ssize_t n = ::read(fd, buf + done, count - done);
    if (n == 0) {
      if (done > 0) *eof_mid_read = true;
      return static_cast<ssize_t>(done);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

Status WriteFull(int fd, const char* buf, size_t count,
                 Clock::time_point deadline) {
  size_t done = 0;
  // With a deadline the send is non-blocking (MSG_DONTWAIT) and a full
  // socket buffer parks us in poll(POLLOUT) with the remaining budget —
  // a peer that never reads its responses cannot pin this thread past
  // the deadline.  Without one, the classic blocking send.
  const int extra_flags = deadline != kNoDeadline ? MSG_DONTWAIT : 0;
  while (done < count) {
    // send(MSG_NOSIGNAL), never write(): a peer that disconnects before
    // its response lands must surface as EPIPE on THIS connection, not
    // raise SIGPIPE and kill the whole daemon with default disposition.
    const ssize_t n = ::send(fd, buf + done, count - done,
                             MSG_NOSIGNAL | extra_flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
          deadline != kNoDeadline) {
        const int ready = PollUntil(fd, POLLOUT, deadline);
        if (ready == 0) {
          return Status::DeadlineExceeded(
              "frame write timed out after " + std::to_string(done) + " of " +
              std::to_string(count) + " bytes (peer not reading)");
        }
        if (ready > 0) continue;
      }
      return Status::IoError(std::string("frame write failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(int fd, std::string* payload) {
  return ReadFrame(fd, payload, FrameTimeouts{}, nullptr);
}

Status ReadFrame(int fd, std::string* payload, const FrameTimeouts& timeouts,
                 FrameTimeoutKind* timed_out) {
  if (timed_out != nullptr) *timed_out = FrameTimeoutKind::kNone;
  unsigned char header[4];
  bool eof_mid_read = false;
  bool phase_timed_out = false;

  // Phase 1 — idle: wait up to idle_ms for the frame's FIRST byte.  A
  // peer sitting quietly between requests only ever trips this phase.
  const ssize_t first =
      ReadFull(fd, reinterpret_cast<char*>(header), 1,
               DeadlineAfterMs(timeouts.idle_ms), &eof_mid_read,
               &phase_timed_out);
  if (phase_timed_out) {
    if (timed_out != nullptr) *timed_out = FrameTimeoutKind::kIdle;
    return Status::DeadlineExceeded("idle timeout: no frame within " +
                                    std::to_string(timeouts.idle_ms) + " ms");
  }
  if (first == 0) {
    return Status::NotFound("peer closed the connection");
  }
  if (first < 0) {
    return Status::IoError(std::string("frame header read failed: ") +
                           std::strerror(errno));
  }

  // Phase 2 — mid-frame: once the first byte landed, the REST of the
  // frame (header remainder + body) must arrive within one frame_ms
  // window.  The deadline is absolute, so a slowloris peer trickling
  // bytes cannot reset it.
  const Clock::time_point frame_deadline = DeadlineAfterMs(timeouts.frame_ms);
  auto mid_frame_timeout = [&](const char* what) {
    if (timed_out != nullptr) *timed_out = FrameTimeoutKind::kMidFrame;
    return Status::DeadlineExceeded(
        std::string("frame timeout: ") + what + " incomplete after " +
        std::to_string(timeouts.frame_ms) + " ms");
  };
  const ssize_t rest =
      ReadFull(fd, reinterpret_cast<char*>(header) + 1, sizeof(header) - 1,
               frame_deadline, &eof_mid_read, &phase_timed_out);
  if (phase_timed_out) return mid_frame_timeout("header");
  if (rest < 0) {
    return Status::IoError(std::string("frame header read failed: ") +
                           std::strerror(errno));
  }
  if (rest < static_cast<ssize_t>(sizeof(header) - 1)) {
    return Status::IoError("truncated frame header");
  }
  const uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                          (static_cast<uint32_t>(header[1]) << 16) |
                          (static_cast<uint32_t>(header[2]) << 8) |
                          static_cast<uint32_t>(header[3]);
  if (length == 0 || length > kMaxFrameBytes) {
    return Status::ParseError("frame length " + std::to_string(length) +
                              " outside [1, " + std::to_string(kMaxFrameBytes) +
                              "]");
  }
  payload->resize(length);
  const ssize_t body = ReadFull(fd, payload->data(), length, frame_deadline,
                                &eof_mid_read, &phase_timed_out);
  if (phase_timed_out) return mid_frame_timeout("body");
  if (body < 0) {
    return Status::IoError(std::string("frame body read failed: ") +
                           std::strerror(errno));
  }
  if (body < static_cast<ssize_t>(length)) {
    return Status::IoError("truncated frame body (" + std::to_string(body) +
                           " of " + std::to_string(length) + " bytes)");
  }
  return Status::OK();
}

Status WriteFrame(int fd, std::string_view payload, int timeout_ms) {
  if (payload.empty() || payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(payload.size()) +
                                   " bytes outside [1, " +
                                   std::to_string(kMaxFrameBytes) + "]");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>((length >> 24) & 0xFF),
      static_cast<unsigned char>((length >> 16) & 0xFF),
      static_cast<unsigned char>((length >> 8) & 0xFF),
      static_cast<unsigned char>(length & 0xFF)};
  // One absolute deadline covers header + payload: the whole frame must
  // drain within timeout_ms, not timeout_ms per write() call.
  const Clock::time_point deadline = DeadlineAfterMs(timeout_ms);
  MUVE_RETURN_IF_ERROR(WriteFull(
      fd, reinterpret_cast<const char*>(header), sizeof(header), deadline));
  return WriteFull(fd, payload.data(), payload.size(), deadline);
}

Status WriteMessage(int fd, const JsonValue& message, int timeout_ms) {
  return WriteFrame(fd, message.Write(), timeout_ms);
}

JsonValue ErrorResponse(const Status& status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(common::StatusCodeName(status.code())));
  error.Set("exit_code",
            JsonValue::Int(common::ExitCodeForStatus(status.code())));
  error.Set("message", JsonValue::String(status.message()));
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false));
  response.Set("error", std::move(error));
  return response;
}

JsonValue OverloadedResponse(const Status& status, int64_t retry_after_ms) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(common::StatusCodeName(status.code())));
  error.Set("exit_code",
            JsonValue::Int(common::ExitCodeForStatus(status.code())));
  error.Set("message", JsonValue::String(status.message()));
  error.Set("retry_after_ms", JsonValue::Int(retry_after_ms));
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false));
  response.Set("error", std::move(error));
  return response;
}

JsonValue OkResponse(std::string_view op) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  response.Set("op", JsonValue::String(std::string(op)));
  return response;
}

Result<int> DialLocal(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
         0) {
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect to 127.0.0.1:" + std::to_string(port) +
                           ": " + std::strerror(err));
  }
  return fd;
}

Result<JsonValue> RoundTrip(int fd, const JsonValue& request) {
  MUVE_RETURN_IF_ERROR(WriteMessage(fd, request));
  std::string payload;
  MUVE_RETURN_IF_ERROR(ReadFrame(fd, &payload));
  return ParseJson(payload);
}

}  // namespace muve::server
