// Figure 8: scalability with the number of views (NBA).
//
// The paper varies the number of measures from 3 to 13 (3 dimensions, 3
// aggregate functions fixed) and reports that while both schemes are
// linear in the number of dimensions (cost ~ c * |A|), the effective
// per-view constant c is ~12 for Linear but only ~0.05 for MuVE thanks to
// pruning.  We report cost vs measure count and the implied cost per
// non-binned view for both schemes.

#include <iostream>

#include "core/recommender.h"
#include "data/nba.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "harness.h"

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  using muve::bench::Ms;
  using muve::bench::RunScheme;

  std::cout << "=== Figure 8: scalability with number of measures (NBA) "
               "===\n";
  const muve::data::Dataset base = muve::data::MakeNbaDataset();

  muve::bench::TablePrinter table(
      {"measures", "views", "Linear-Linear(ms)", "MuVE-MuVE(ms)",
       "Linear ms/view", "MuVE ms/view", "ratio"});
  for (const size_t measures : {3, 5, 7, 9, 11, 13}) {
    const muve::data::Dataset dataset =
        muve::data::WithWorkloadSize(base, 3, measures, 3);
    auto recommender = muve::core::Recommender::Create(dataset);
    MUVE_CHECK(recommender.ok()) << recommender.status().ToString();
    const size_t num_views = recommender->space().views().size();

    const auto r_lin = RunScheme(*recommender, muve::bench::LinearLinear());
    const auto r_mm = RunScheme(*recommender, muve::bench::MuveMuve());

    const double lin_per_view = r_lin.cost_ms / num_views;
    const double mm_per_view = r_mm.cost_ms / num_views;
    table.AddRow({std::to_string(measures), std::to_string(num_views),
                  Ms(r_lin.cost_ms), Ms(r_mm.cost_ms),
                  muve::common::FormatDouble(lin_per_view, 4),
                  muve::common::FormatDouble(mm_per_view, 4),
                  muve::common::FormatDouble(lin_per_view / mm_per_view, 1) +
                      "x"});
  }
  table.Print("Figure 8 — NBA: cost vs number of measures (3 dims, 3 "
              "functions, paper default weights), mean of " +
              std::to_string(muve::bench::Repetitions()) + " runs");
  return 0;
}
