#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace muve::common {
namespace {

TEST(WelfordTest, EmptyAccumulator) {
  WelfordAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(WelfordTest, SingleValue) {
  WelfordAccumulator acc;
  acc.Add(4.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 4.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(WelfordTest, MatchesNaivePopulationVariance) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  WelfordAccumulator acc;
  for (double v : values) acc.Add(v);
  // Classic example: mean 5, population variance 4.
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 4.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), 2.0, 1e-12);
}

TEST(WelfordTest, NumericallyStableForLargeOffsets) {
  WelfordAccumulator acc;
  const double offset = 1e9;
  for (double v : {offset + 1.0, offset + 2.0, offset + 3.0}) acc.Add(v);
  EXPECT_NEAR(acc.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(acc.variance(), 2.0 / 3.0, 1e-6);
}

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_EQ(Mean({}), 0.0); }

TEST(StatsTest, MeanAndStdDev) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Mean(values), 2.0);
  EXPECT_NEAR(StdDev(values), std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
  // Even size: lower middle.
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.0);
  EXPECT_EQ(Median({}), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25), 2.5);
}

TEST(StatsTest, QuantileClampsArgument) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(values, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 2.0), 3.0);
}

}  // namespace
}  // namespace muve::common
