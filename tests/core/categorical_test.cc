// Categorical-dimension support: the SeeDB setting the paper extends.
// Views over categorical dimensions have exactly one candidate (no
// binning), accuracy 1, and usability 1/(distinct groups).

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "core/view_evaluator.h"
#include "test_util.h"

namespace muve::core {
namespace {

data::Dataset MakeMixedDataset() {
  data::Dataset ds = testutil::MakeToyDataset();
  // Add a categorical dimension over the existing string column 'grp'
  // plus a fresh one cycling three labels.
  auto table = std::make_shared<storage::Table>(storage::Schema({
      {"x", storage::ValueType::kInt64, storage::FieldRole::kDimension},
      {"color", storage::ValueType::kString,
       storage::FieldRole::kCategoricalDimension},
      {"grp", storage::ValueType::kString, storage::FieldRole::kNone},
      {"m1", storage::ValueType::kDouble, storage::FieldRole::kMeasure},
  }));
  const char* colors[] = {"red", "green", "blue"};
  for (int i = 0; i < 60; ++i) {
    const bool target = i % 3 == 0;
    // Target rows are heavily 'red'; the rest uniform.
    const char* color = target ? (i % 2 == 0 ? "red" : colors[i % 3])
                               : colors[i % 3];
    const common::Status st = table->AppendRow({
        storage::Value(static_cast<int64_t>(i % 20)),
        storage::Value(color),
        storage::Value(target ? "a" : "b"),
        storage::Value(1.0 + i * 0.1),
    });
    EXPECT_TRUE(st.ok());
  }
  ds.table = table;
  ds.dimensions = {"x"};
  ds.categorical_dimensions = {"color"};
  ds.measures = {"m1"};
  ds.functions = {storage::AggregateFunction::kSum,
                  storage::AggregateFunction::kCount};
  auto pred = storage::MakeComparison("grp", storage::CompareOp::kEq,
                                      storage::Value("a"));
  auto rows = storage::Filter(*table, pred.get());
  EXPECT_TRUE(rows.ok());
  ds.target_rows = std::move(rows).value();
  ds.all_rows = storage::AllRows(table->num_rows());
  return ds;
}

TEST(CategoricalViewSpaceTest, EnumeratesBothKinds) {
  const data::Dataset ds = MakeMixedDataset();
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  // 2 dimensions x 1 measure x 2 functions.
  EXPECT_EQ(space->views().size(), 4u);
  const DimensionInfo& color = space->dimension_info("color");
  EXPECT_TRUE(color.categorical);
  EXPECT_EQ(color.max_bins, 1);
  EXPECT_EQ(color.distinct_values, 3u);
  const DimensionInfo& x = space->dimension_info("x");
  EXPECT_FALSE(x.categorical);
  // Categorical dims contribute 2|M||F| binned views (B_j = 1).
  EXPECT_EQ(space->TotalBinnedViews(), 2 * 2 * (19 + 1));
}

TEST(CategoricalEvaluatorTest, AccuracyIsAlwaysPerfect) {
  const data::Dataset ds = MakeMixedDataset();
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok());
  ViewEvaluator eval(ds, *space);
  const View view{"color", "m1", storage::AggregateFunction::kSum};
  EXPECT_DOUBLE_EQ(eval.EvaluateAccuracy(view, 1), 1.0);
  EXPECT_EQ(eval.stats().accuracy_evals, 1);
  EXPECT_EQ(eval.stats().target_queries, 0);  // no query needed
}

TEST(CategoricalEvaluatorTest, UsabilityIsInverseGroupCount) {
  const data::Dataset ds = MakeMixedDataset();
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok());
  ViewEvaluator eval(ds, *space);
  const View cat{"color", "m1", storage::AggregateFunction::kSum};
  EXPECT_DOUBLE_EQ(eval.CandidateUsability(cat, 1), 1.0 / 3.0);
  const View num{"x", "m1", storage::AggregateFunction::kSum};
  EXPECT_DOUBLE_EQ(eval.CandidateUsability(num, 4), 0.25);
}

TEST(CategoricalEvaluatorTest, DeviationDetectsSkewedTargetGroups) {
  const data::Dataset ds = MakeMixedDataset();
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok());
  ViewEvaluator eval(ds, *space);
  // Target rows are heavily red: the COUNT view over color deviates.
  const View view{"color", "m1", storage::AggregateFunction::kCount};
  const double d = eval.EvaluateDeviation(view, 1);
  EXPECT_GT(d, 0.05);
  EXPECT_LE(d, 1.0);
  // Deterministic.
  EXPECT_DOUBLE_EQ(eval.EvaluateDeviation(view, 1), d);
  EXPECT_EQ(eval.stats().comparison_queries, 2);
}

TEST(CategoricalRecommenderTest, MixedSpaceStaysExactAcrossSchemes) {
  auto recommender = Recommender::Create(MakeMixedDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions linear;
  linear.horizontal = HorizontalStrategy::kLinear;
  linear.vertical = VerticalStrategy::kLinear;
  linear.k = 4;
  SearchOptions muve;
  muve.horizontal = HorizontalStrategy::kMuve;
  muve.vertical = VerticalStrategy::kMuve;
  muve.k = 4;

  auto r_linear = recommender->Recommend(linear);
  auto r_muve = recommender->Recommend(muve);
  ASSERT_TRUE(r_linear.ok());
  ASSERT_TRUE(r_muve.ok());
  ASSERT_EQ(r_linear->views.size(), r_muve->views.size());
  for (size_t i = 0; i < r_linear->views.size(); ++i) {
    EXPECT_NEAR(r_linear->views[i].utility, r_muve->views[i].utility, 1e-9);
  }
}

TEST(CategoricalRecommenderTest, CategoricalViewCanWin) {
  // With deviation-dominant weights, the skewed color view should rank.
  auto recommender = Recommender::Create(MakeMixedDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;
  options.weights = Weights{0.8, 0.1, 0.1};
  options.k = 4;
  auto rec = recommender->Recommend(options);
  ASSERT_TRUE(rec.ok());
  bool found_categorical = false;
  for (const ScoredView& v : rec->views) {
    if (v.view.dimension == "color") {
      found_categorical = true;
      EXPECT_DOUBLE_EQ(v.accuracy, 1.0);
      EXPECT_NEAR(v.usability, 1.0 / 3.0, 1e-12);
      EXPECT_EQ(v.bins, 1);
    }
  }
  EXPECT_TRUE(found_categorical);
}

TEST(CategoricalRecommenderTest, WorksWithOnlyCategoricalDims) {
  data::Dataset ds = MakeMixedDataset();
  ds.dimensions.clear();  // SeeDB mode: categorical only
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok()) << recommender.status().ToString();
  SearchOptions options;
  options.k = 2;
  auto rec = recommender->Recommend(options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->views.size(), 2u);
  // Exactly one candidate per view: all fully probed or pruned, but no
  // horizontal expansion happened.
  EXPECT_LE(rec->stats.candidates_considered, 2);
}

TEST(CategoricalViewSpaceTest, EmptyCategoricalColumnRejected) {
  data::Dataset ds = MakeMixedDataset();
  auto table = std::make_shared<storage::Table>(storage::Schema({
      {"x", storage::ValueType::kInt64, storage::FieldRole::kDimension},
      {"c", storage::ValueType::kString,
       storage::FieldRole::kCategoricalDimension},
      {"m1", storage::ValueType::kDouble, storage::FieldRole::kMeasure},
  }));
  ASSERT_TRUE(table
                  ->AppendRow({storage::Value(int64_t{1}),
                               storage::Value::Null(),
                               storage::Value(1.0)})
                  .ok());
  ds.table = table;
  ds.dimensions = {"x"};
  ds.categorical_dimensions = {"c"};
  ds.measures = {"m1"};
  ds.target_rows = {0};
  ds.all_rows = storage::AllRows(1);
  EXPECT_FALSE(ViewSpace::Create(ds).ok());
}

}  // namespace
}  // namespace muve::core
