file(REMOVE_RECURSE
  "CMakeFiles/diabetes_exploration.dir/diabetes_exploration.cpp.o"
  "CMakeFiles/diabetes_exploration.dir/diabetes_exploration.cpp.o.d"
  "diabetes_exploration"
  "diabetes_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diabetes_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
