# Empty dependencies file for ablate_histogram.
# This may be replaced when dependencies are built.
