
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/muve_datagen.cpp" "tools/CMakeFiles/muve_datagen.dir/muve_datagen.cpp.o" "gcc" "tools/CMakeFiles/muve_datagen.dir/muve_datagen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/muve_data.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/muve_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/muve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
