#include "storage/multi_aggregate.h"

#include <map>

namespace muve::storage {

namespace {

common::Status ValidateSpecs(const Table& table,
                             const std::vector<AggregateSpec>& specs,
                             std::vector<const Column*>* columns) {
  if (specs.empty()) {
    return common::Status::InvalidArgument("empty aggregate spec batch");
  }
  columns->reserve(specs.size());
  for (const AggregateSpec& spec : specs) {
    MUVE_ASSIGN_OR_RETURN(const Column* col,
                          table.ColumnByName(spec.measure));
    if (col->type() == ValueType::kString &&
        spec.function != AggregateFunction::kCount) {
      return common::Status::TypeMismatch(
          "cannot aggregate string measure '" + spec.measure + "' with " +
          AggregateName(spec.function));
    }
    columns->push_back(col);
  }
  return common::Status::OK();
}

}  // namespace

common::Result<std::vector<BinnedResult>> MultiBinnedAggregate(
    const Table& table, const RowSet& rows, std::string_view dimension,
    const std::vector<AggregateSpec>& specs, int num_bins, double lo,
    double hi) {
  if (num_bins < 1) {
    return common::Status::InvalidArgument("number of bins must be >= 1");
  }
  if (hi < lo) {
    return common::Status::InvalidArgument("binning range is inverted");
  }
  MUVE_ASSIGN_OR_RETURN(const Column* dim, table.ColumnByName(dimension));
  if (dim->type() == ValueType::kString) {
    return common::Status::TypeMismatch("cannot bin string dimension '" +
                                        std::string(dimension) + "'");
  }
  std::vector<const Column*> measures;
  MUVE_RETURN_IF_ERROR(ValidateSpecs(table, specs, &measures));

  // One accumulator grid: specs x bins.
  std::vector<std::vector<AggregateAccumulator>> grid;
  grid.reserve(specs.size());
  for (const AggregateSpec& spec : specs) {
    grid.emplace_back(static_cast<size_t>(num_bins),
                      AggregateAccumulator(spec.function));
  }

  for (uint32_t row : rows) {
    if (dim->IsNull(row)) continue;
    const int bin = BinIndexFor(dim->NumericAt(row), lo, hi, num_bins);
    for (size_t s = 0; s < specs.size(); ++s) {
      if (measures[s]->IsNull(row)) continue;
      const bool is_count = specs[s].function == AggregateFunction::kCount;
      grid[s][static_cast<size_t>(bin)].Add(
          is_count ? 1.0 : measures[s]->NumericAt(row));
    }
  }

  std::vector<BinnedResult> out(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    out[s].lo = lo;
    out[s].hi = hi;
    out[s].num_bins = num_bins;
    out[s].aggregates.reserve(static_cast<size_t>(num_bins));
    out[s].row_counts.reserve(static_cast<size_t>(num_bins));
    for (const AggregateAccumulator& acc : grid[s]) {
      out[s].aggregates.push_back(acc.Finish());
      out[s].row_counts.push_back(acc.count());
    }
  }
  return out;
}

common::Result<std::vector<GroupByResult>> MultiGroupByAggregate(
    const Table& table, const RowSet& rows, std::string_view dimension,
    const std::vector<AggregateSpec>& specs) {
  MUVE_ASSIGN_OR_RETURN(const Column* dim, table.ColumnByName(dimension));
  std::vector<const Column*> measures;
  MUVE_RETURN_IF_ERROR(ValidateSpecs(table, specs, &measures));

  // Ordered groups, one accumulator per spec per group.
  std::map<Value, std::vector<AggregateAccumulator>> groups;
  auto make_row = [&specs] {
    std::vector<AggregateAccumulator> accs;
    accs.reserve(specs.size());
    for (const AggregateSpec& spec : specs) {
      accs.emplace_back(spec.function);
    }
    return accs;
  };

  for (uint32_t row : rows) {
    if (dim->IsNull(row)) continue;
    const Value key = dim->ValueAt(row);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, make_row()).first;
    }
    for (size_t s = 0; s < specs.size(); ++s) {
      if (measures[s]->IsNull(row)) continue;
      const bool is_count = specs[s].function == AggregateFunction::kCount;
      it->second[s].Add(is_count ? 1.0 : measures[s]->NumericAt(row));
    }
  }

  std::vector<GroupByResult> out(specs.size());
  for (const auto& [key, accs] : groups) {
    for (size_t s = 0; s < specs.size(); ++s) {
      // Match per-spec GroupByAggregate: groups with no contributing rows
      // for this measure do not appear in its result.
      if (accs[s].count() == 0) continue;
      out[s].keys.push_back(key);
      out[s].aggregates.push_back(accs[s].Finish());
      out[s].row_counts.push_back(accs[s].count());
    }
  }
  return out;
}

}  // namespace muve::storage
