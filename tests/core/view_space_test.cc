#include "core/view.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace muve::core {
namespace {

TEST(ViewTest, LabelAndKey) {
  const View v{"MP", "3PAr", storage::AggregateFunction::kSum};
  EXPECT_EQ(v.Label(), "SUM(3PAr) BY MP");
  EXPECT_EQ(v.Key(), "mp|3par|SUM");
  EXPECT_EQ(v, (View{"MP", "3PAr", storage::AggregateFunction::kSum}));
  EXPECT_FALSE(v == (View{"MP", "3PAr", storage::AggregateFunction::kAvg}));
}

TEST(ViewSpaceTest, EnumeratesCrossProduct) {
  const data::Dataset ds = testutil::MakeToyDataset();
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  // 2 dims x 2 measures x 2 functions.
  EXPECT_EQ(space->views().size(), 8u);
  // Workload order: dimension-major.
  EXPECT_EQ(space->views()[0].dimension, "x");
  EXPECT_EQ(space->views()[0].measure, "m1");
  EXPECT_EQ(space->views()[7].dimension, "y");
  EXPECT_EQ(space->views()[7].measure, "m2");
}

TEST(ViewSpaceTest, DimensionInfoRangesAndBins) {
  const data::Dataset ds = testutil::MakeToyDataset();
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok());
  const DimensionInfo& x = space->dimension_info("x");
  EXPECT_DOUBLE_EQ(x.lo, 0.0);
  EXPECT_DOUBLE_EQ(x.hi, 29.0);
  EXPECT_EQ(x.max_bins, 29);
  EXPECT_EQ(x.distinct_values, 30u);
  const DimensionInfo& y = space->dimension_info("y");
  EXPECT_EQ(y.max_bins, 9);
  EXPECT_EQ(space->max_bins_overall(), 29);
}

TEST(ViewSpaceTest, TotalBinnedViews) {
  const data::Dataset ds = testutil::MakeToyDataset();
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok());
  // N_B = sum_j 2 * |M| * |F| * B_j = 2*2*2*(29+9).
  EXPECT_EQ(space->TotalBinnedViews(), 2 * 2 * 2 * (29 + 9));
}

TEST(ViewSpaceTest, RejectsStringDimension) {
  data::Dataset ds = testutil::MakeToyDataset();
  ds.dimensions = {"grp"};
  EXPECT_FALSE(ViewSpace::Create(ds).ok());
}

TEST(ViewSpaceTest, RejectsUnknownColumns) {
  data::Dataset ds = testutil::MakeToyDataset();
  ds.dimensions = {"nope"};
  EXPECT_FALSE(ViewSpace::Create(ds).ok());
  ds = testutil::MakeToyDataset();
  ds.measures = {"nope"};
  EXPECT_FALSE(ViewSpace::Create(ds).ok());
}

TEST(ViewSpaceTest, RejectsEmptyWorkload) {
  data::Dataset ds = testutil::MakeToyDataset();
  ds.functions.clear();
  EXPECT_FALSE(ViewSpace::Create(ds).ok());
}

TEST(ViewSpaceTest, DegenerateSingleValueDimension) {
  // A dimension whose range is zero still yields max_bins = 1.
  data::Dataset ds = testutil::MakeToyDataset();
  auto table = std::make_shared<storage::Table>(storage::Schema({
      {"c", storage::ValueType::kInt64, storage::FieldRole::kDimension},
      {"m", storage::ValueType::kDouble, storage::FieldRole::kMeasure},
  }));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table
                    ->AppendRow({storage::Value(int64_t{7}),
                                 storage::Value(1.0 * i)})
                    .ok());
  }
  ds.table = table;
  ds.dimensions = {"c"};
  ds.measures = {"m"};
  ds.target_rows = {0, 1};
  ds.all_rows = storage::AllRows(5);
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->dimension_info("c").max_bins, 1);
}

}  // namespace
}  // namespace muve::core
