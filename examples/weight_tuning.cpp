// Interactive weight tuning with an ExplorationSession.
//
//   $ ./build/examples/weight_tuning
//
// The hybrid utility's alpha weights are user preferences (Section
// III-B): an analyst slides between "show me what's interesting"
// (deviation), "show me what's faithful" (accuracy), and "show me what's
// readable" (usability).  Deviation and accuracy scores do not depend on
// the weights, so an ExplorationSession pays the query costs once and
// re-ranks every subsequent setting for free — this example sweeps a
// whole preference path on the NBA workload and prints how the top view
// morphs, along with the session's cumulative cost.

#include <algorithm>
#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/exploration_session.h"
#include "core/pareto.h"
#include "data/nba.h"

int main() {
  std::cout << "=== Weight tuning on one exploration session (NBA) ===\n\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 3, 3);
  auto session = muve::core::ExplorationSession::Create(dataset);
  MUVE_CHECK(session.ok()) << session.status().ToString();

  std::cout << "Sweep: usability-dominant -> balanced -> "
               "deviation-dominant (aA fixed at 0.2)\n\n";
  std::cout << muve::common::PadRight("weights (aD, aA, aS)", 32)
            << "top view\n"
            << std::string(76, '-') << "\n";
  for (int step = 0; step <= 6; ++step) {
    const double alpha_d = 0.1 + 0.1 * step;
    const double alpha_s = 0.8 - alpha_d;
    const muve::core::Weights weights{alpha_d, 0.2, alpha_s};
    auto top = session->Recommend(weights, 1);
    MUVE_CHECK(top.ok()) << top.status().ToString();
    std::cout << muve::common::PadRight(weights.ToString(), 32)
              << (top->empty() ? "(none)" : top->front().ToString())
              << "\n";
  }

  std::cout << "\nSession cost after the whole sweep (queries executed "
               "once, then re-ranked):\n  "
            << session->stats().ToString() << "\n"
            << "\nNote how low aD favors coarse, readable binnings while "
               "high aD pushes towards the binning that maximizes the "
               "GSW-vs-league contrast.\n";

  // Weight-free view of the same trade-off: the Pareto front over
  // (D, A, S).  Every weighted top-1 above is one of these points.
  auto front = muve::core::ComputeParetoFront(dataset);
  MUVE_CHECK(front.ok()) << front.status().ToString();
  std::cout << "\nPareto front over (deviation, accuracy, usability): "
            << front->size() << " non-dominated candidates out of "
            << (27756 / 2) << " scored.\nA few representatives:\n";
  std::sort(front->begin(), front->end(),
            [](const muve::core::ParetoPoint& a,
               const muve::core::ParetoPoint& b) {
              return a.deviation > b.deviation;
            });
  const size_t show = std::min<size_t>(5, front->size());
  for (size_t i = 0; i < show; ++i) {
    const auto& p = (*front)[i];
    std::cout << "  " << p.view.Label() << " [b=" << p.bins << "] D="
              << muve::common::FormatDouble(p.deviation, 3)
              << " A=" << muve::common::FormatDouble(p.accuracy, 3)
              << " S=" << muve::common::FormatDouble(p.usability, 3)
              << "\n";
  }
  return 0;
}
