file(REMOVE_RECURSE
  "CMakeFiles/muve_data.dir/dataset.cc.o"
  "CMakeFiles/muve_data.dir/dataset.cc.o.d"
  "CMakeFiles/muve_data.dir/diab.cc.o"
  "CMakeFiles/muve_data.dir/diab.cc.o.d"
  "CMakeFiles/muve_data.dir/nba.cc.o"
  "CMakeFiles/muve_data.dir/nba.cc.o.d"
  "libmuve_data.a"
  "libmuve_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muve_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
