# Empty compiler generated dependencies file for fig09_additive_cost.
# This may be replaced when dependencies are built.
