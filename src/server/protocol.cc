#include "server/protocol.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace muve::server {

namespace {

using common::Result;
using common::Status;

// read() the full `count` bytes, looping over EINTR and short reads.
// Returns bytes read (== count), 0 on immediate clean EOF, -1 on error;
// `*eof_mid_read` distinguishes EOF after partial data.
ssize_t ReadFull(int fd, char* buf, size_t count, bool* eof_mid_read) {
  size_t done = 0;
  *eof_mid_read = false;
  while (done < count) {
    const ssize_t n = ::read(fd, buf + done, count - done);
    if (n == 0) {
      if (done > 0) *eof_mid_read = true;
      return static_cast<ssize_t>(done);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

Status WriteFull(int fd, const char* buf, size_t count) {
  size_t done = 0;
  while (done < count) {
    // send(MSG_NOSIGNAL), never write(): a peer that disconnects before
    // its response lands must surface as EPIPE on THIS connection, not
    // raise SIGPIPE and kill the whole daemon with default disposition.
    const ssize_t n = ::send(fd, buf + done, count - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("frame write failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(int fd, std::string* payload) {
  unsigned char header[4];
  bool eof_mid_read = false;
  const ssize_t got =
      ReadFull(fd, reinterpret_cast<char*>(header), sizeof(header),
               &eof_mid_read);
  if (got == 0) {
    return Status::NotFound("peer closed the connection");
  }
  if (got < 0) {
    return Status::IoError(std::string("frame header read failed: ") +
                           std::strerror(errno));
  }
  if (got < static_cast<ssize_t>(sizeof(header))) {
    return Status::IoError("truncated frame header");
  }
  const uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                          (static_cast<uint32_t>(header[1]) << 16) |
                          (static_cast<uint32_t>(header[2]) << 8) |
                          static_cast<uint32_t>(header[3]);
  if (length == 0 || length > kMaxFrameBytes) {
    return Status::ParseError("frame length " + std::to_string(length) +
                              " outside [1, " + std::to_string(kMaxFrameBytes) +
                              "]");
  }
  payload->resize(length);
  const ssize_t body = ReadFull(fd, payload->data(), length, &eof_mid_read);
  if (body < 0) {
    return Status::IoError(std::string("frame body read failed: ") +
                           std::strerror(errno));
  }
  if (body < static_cast<ssize_t>(length)) {
    return Status::IoError("truncated frame body (" + std::to_string(body) +
                           " of " + std::to_string(length) + " bytes)");
  }
  return Status::OK();
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.empty() || payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(payload.size()) +
                                   " bytes outside [1, " +
                                   std::to_string(kMaxFrameBytes) + "]");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>((length >> 24) & 0xFF),
      static_cast<unsigned char>((length >> 16) & 0xFF),
      static_cast<unsigned char>((length >> 8) & 0xFF),
      static_cast<unsigned char>(length & 0xFF)};
  MUVE_RETURN_IF_ERROR(
      WriteFull(fd, reinterpret_cast<const char*>(header), sizeof(header)));
  return WriteFull(fd, payload.data(), payload.size());
}

Status WriteMessage(int fd, const JsonValue& message) {
  return WriteFrame(fd, message.Write());
}

JsonValue ErrorResponse(const Status& status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(common::StatusCodeName(status.code())));
  error.Set("exit_code",
            JsonValue::Int(common::ExitCodeForStatus(status.code())));
  error.Set("message", JsonValue::String(status.message()));
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(false));
  response.Set("error", std::move(error));
  return response;
}

JsonValue OkResponse(std::string_view op) {
  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(true));
  response.Set("op", JsonValue::String(std::string(op)));
  return response;
}

Result<int> DialLocal(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
         0) {
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect to 127.0.0.1:" + std::to_string(port) +
                           ": " + std::strerror(err));
  }
  return fd;
}

Result<JsonValue> RoundTrip(int fd, const JsonValue& request) {
  MUVE_RETURN_IF_ERROR(WriteMessage(fd, request));
  std::string payload;
  MUVE_RETURN_IF_ERROR(ReadFrame(fd, &payload));
  return ParseJson(payload);
}

}  // namespace muve::server
