file(REMOVE_RECURSE
  "CMakeFiles/bar_chart_test.dir/viz/bar_chart_test.cc.o"
  "CMakeFiles/bar_chart_test.dir/viz/bar_chart_test.cc.o.d"
  "bar_chart_test"
  "bar_chart_test.pdb"
  "bar_chart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bar_chart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
