// DIAB workload walkthrough: compares the paper's four search schemes on
// the diabetic-patients exploration query and shows what the analyst
// actually receives.
//
//   $ ./build/examples/diabetes_exploration
//
// The analyst's question: which aggregate views most distinguish
// diabetic patients (Outcome = 1) from the overall population?

#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/fidelity.h"
#include "core/recommender.h"
#include "data/diab.h"
#include "storage/binned_group_by.h"
#include "viz/bar_chart.h"

int main() {
  using muve::core::HorizontalStrategy;
  using muve::core::VerticalStrategy;

  std::cout << "=== DIAB exploration: what distinguishes diabetic "
               "patients? ===\n\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeDiabDataset(), 3, 3, 3);
  std::cout << "Dataset: " << dataset.table->num_rows() << " patients, "
            << dataset.target_rows.size() << " diabetic (D_Q), query "
            << "predicate: " << dataset.query_predicate_sql << "\n";

  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  struct SchemeSpec {
    const char* label;
    HorizontalStrategy horizontal;
    VerticalStrategy vertical;
  };
  const SchemeSpec schemes[] = {
      {"Linear-Linear (exhaustive baseline)", HorizontalStrategy::kLinear,
       VerticalStrategy::kLinear},
      {"HC-Linear (hill-climbing baseline)",
       HorizontalStrategy::kHillClimbing, VerticalStrategy::kLinear},
      {"MuVE-Linear", HorizontalStrategy::kMuve, VerticalStrategy::kLinear},
      {"MuVE-MuVE", HorizontalStrategy::kMuve, VerticalStrategy::kMuve},
  };

  muve::core::Recommendation baseline;
  for (const SchemeSpec& scheme : schemes) {
    muve::core::SearchOptions options;  // paper defaults: (0.2, 0.2, 0.6)
    options.horizontal = scheme.horizontal;
    options.vertical = scheme.vertical;
    auto rec = recommender->Recommend(options);
    MUVE_CHECK(rec.ok()) << rec.status().ToString();
    if (baseline.views.empty()) baseline = *rec;
    std::cout << "\n--- " << scheme.label << " ---\n"
              << rec->ToString() << "\n"
              << "  fidelity vs baseline: "
              << muve::common::FormatDouble(
                     muve::core::Fidelity(baseline.views, rec->views) * 100,
                     1)
              << "%\n";
  }

  // Render the winning view's target distribution.
  const muve::core::ScoredView& top = baseline.views.front();
  auto dim_col = dataset.table->ColumnByName(top.view.dimension);
  MUVE_CHECK(dim_col.ok());
  const double lo = *(*dim_col)->NumericMin();
  const double hi = *(*dim_col)->NumericMax();
  auto target = muve::storage::BinnedAggregate(
      *dataset.table, dataset.target_rows, top.view.dimension,
      top.view.measure, top.view.function, top.bins, lo, hi);
  auto comparison = muve::storage::BinnedAggregate(
      *dataset.table, dataset.all_rows, top.view.dimension, top.view.measure,
      top.view.function, top.bins, lo, hi);
  MUVE_CHECK(target.ok());
  MUVE_CHECK(comparison.ok());

  muve::viz::Series left;
  left.title = "diabetic patients";
  left.labels = muve::viz::BinLabels(lo, hi, top.bins);
  left.values = target->aggregates;
  muve::viz::Series right;
  right.title = "all patients";
  right.labels = left.labels;
  right.values = comparison->aggregates;
  muve::viz::BarChartOptions viz_options;
  viz_options.normalize = true;
  std::cout << "\nTop recommended view, rendered:\n"
            << top.ToString() << "\n"
            << muve::viz::RenderSideBySide(left, right, viz_options);
  return 0;
}
