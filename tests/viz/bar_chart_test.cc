#include "viz/bar_chart.h"

#include <gtest/gtest.h>

namespace muve::viz {
namespace {

TEST(BarChartTest, RendersLabelsValuesAndBars) {
  Series series;
  series.title = "demo";
  series.labels = {"a", "bb"};
  series.values = {1.0, 2.0};
  const std::string out = RenderBarChart(series);
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("a "), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("2.000"), std::string::npos);
  // The larger value gets the longer bar.
  const size_t line_a = out.find("a ");
  const size_t line_b = out.find("bb");
  const size_t hashes_a =
      std::count(out.begin() + line_a, out.begin() + out.find('\n', line_a),
                 '#');
  const size_t hashes_b =
      std::count(out.begin() + line_b, out.begin() + out.find('\n', line_b),
                 '#');
  EXPECT_GT(hashes_b, hashes_a);
}

TEST(BarChartTest, NormalizeRendersFractions) {
  Series series;
  series.labels = {"x", "y"};
  series.values = {1.0, 3.0};
  BarChartOptions options;
  options.normalize = true;
  const std::string out = RenderBarChart(series, options);
  EXPECT_NE(out.find("0.250"), std::string::npos);
  EXPECT_NE(out.find("0.750"), std::string::npos);
}

TEST(BarChartTest, ZeroAndNegativeValuesGetNoBar) {
  Series series;
  series.labels = {"z", "n", "p"};
  series.values = {0.0, -5.0, 1.0};
  const std::string out = RenderBarChart(series);
  // Exactly the max-width bar for 'p' plus none elsewhere.
  const size_t total_hashes = std::count(out.begin(), out.end(), '#');
  BarChartOptions defaults;
  EXPECT_EQ(total_hashes, defaults.max_bar_width);
}

TEST(BarChartTest, EmptySeriesRendersTitleOnly) {
  Series series;
  series.title = "empty";
  const std::string out = RenderBarChart(series);
  EXPECT_EQ(out, "empty\n");
}

TEST(SideBySideTest, RendersBothSeries) {
  Series left;
  left.title = "target";
  left.labels = {"[0,1)", "[1,2]"};
  left.values = {0.8, 0.2};
  Series right;
  right.title = "comparison";
  right.labels = left.labels;
  right.values = {0.5, 0.5};
  const std::string out = RenderSideBySide(left, right);
  EXPECT_NE(out.find("target"), std::string::npos);
  EXPECT_NE(out.find("comparison"), std::string::npos);
  EXPECT_NE(out.find("[0,1)"), std::string::npos);
  EXPECT_NE(out.find("0.800"), std::string::npos);
  EXPECT_NE(out.find("0.500"), std::string::npos);
}

TEST(BinLabelsTest, BuildsHalfOpenIntervalsWithClosedLast) {
  const auto labels = BinLabels(0.0, 9.0, 3);
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "[0, 3)");
  EXPECT_EQ(labels[1], "[3, 6)");
  EXPECT_EQ(labels[2], "[6, 9]");
}

TEST(BinLabelsTest, Precision) {
  const auto labels = BinLabels(0.0, 1.0, 2, 2);
  EXPECT_EQ(labels[0], "[0.00, 0.50)");
  EXPECT_EQ(labels[1], "[0.50, 1.00]");
}

}  // namespace
}  // namespace muve::viz
