# Empty dependencies file for search_options_test.
# This may be replaced when dependencies are built.
