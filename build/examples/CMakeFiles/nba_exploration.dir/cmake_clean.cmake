file(REMOVE_RECURSE
  "CMakeFiles/nba_exploration.dir/nba_exploration.cpp.o"
  "CMakeFiles/nba_exploration.dir/nba_exploration.cpp.o.d"
  "nba_exploration"
  "nba_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nba_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
