file(REMOVE_RECURSE
  "CMakeFiles/ablate_probe_order.dir/bench/ablate_probe_order.cpp.o"
  "CMakeFiles/ablate_probe_order.dir/bench/ablate_probe_order.cpp.o.d"
  "bench/ablate_probe_order"
  "bench/ablate_probe_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_probe_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
