file(REMOVE_RECURSE
  "CMakeFiles/fig12_geometric_fidelity.dir/bench/fig12_geometric_fidelity.cpp.o"
  "CMakeFiles/fig12_geometric_fidelity.dir/bench/fig12_geometric_fidelity.cpp.o.d"
  "bench/fig12_geometric_fidelity"
  "bench/fig12_geometric_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_geometric_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
