// Parallel execution must be a pure latency optimization.  Every
// vertical strategy and approximation accepts num_threads > 1 via the
// shared work-stealing pool:
//   * vertical Linear (any horizontal) shares no state across views, so
//     parallel runs are bitwise-identical to serial ones, probe counters
//     included;
//   * pruning schemes (vertical MuVE, refinement, skipping) share a
//     top-k threshold whose parallel snapshot may lag the serial one —
//     they may prune *less*, never unsoundly more — so the recommended
//     utilities are identical while probe counts may differ;
//   * shared scans batch per dimension and stay exact.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/recommender.h"
#include "data/diab.h"
#include "data/nba.h"
#include "test_util.h"

namespace muve::core {
namespace {

// Asserts rank-by-rank equality of the recommended views (keys, bins,
// and bitwise utilities).
void ExpectSameViews(const Recommendation& a, const Recommendation& b) {
  ASSERT_EQ(a.views.size(), b.views.size());
  for (size_t i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views[i].view.Key(), b.views[i].view.Key()) << "rank " << i;
    EXPECT_EQ(a.views[i].bins, b.views[i].bins) << "rank " << i;
    EXPECT_DOUBLE_EQ(a.views[i].utility, b.views[i].utility) << "rank " << i;
  }
}

// Asserts the recommended utilities agree (the invariant for pruning
// schemes, whose tie-broken view identities and probe counts may differ
// between serial and parallel threshold schedules).
void ExpectSameUtilities(const Recommendation& a, const Recommendation& b) {
  ASSERT_EQ(a.views.size(), b.views.size());
  for (size_t i = 0; i < a.views.size(); ++i) {
    EXPECT_NEAR(a.views[i].utility, b.views[i].utility, 1e-12)
        << "rank " << i;
  }
}

Recommendation MustRecommend(const Recommender& recommender,
                             const SearchOptions& options) {
  auto rec = recommender.Recommend(options);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString() << " scheme "
                        << options.SchemeName();
  return std::move(rec).value();
}

class ParallelTest : public ::testing::TestWithParam<HorizontalStrategy> {};

TEST_P(ParallelTest, VerticalLinearMatchesSerialExactly) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());

  SearchOptions serial;
  serial.horizontal = GetParam();
  serial.vertical = VerticalStrategy::kLinear;
  serial.k = 4;
  SearchOptions parallel = serial;
  parallel.num_threads = 4;

  const auto r_serial = MustRecommend(*recommender, serial);
  const auto r_parallel = MustRecommend(*recommender, parallel);
  ExpectSameViews(r_serial, r_parallel);
  // Vertical Linear never shares thresholds across views, so per-view
  // search results are independent of worker count.  For Linear and HC
  // the probe counters are equal too.  Horizontal MuVE's probe-order
  // priority rule adapts to the evaluator's accumulated cost
  // observations — per-worker evaluators observe different prefixes, so
  // the target/comparison probe *mix* may shift while the per-view
  // outcomes (and the fully-probed count's upper structure) stay exact.
  if (GetParam() != HorizontalStrategy::kMuve) {
    EXPECT_EQ(r_serial.stats.fully_probed, r_parallel.stats.fully_probed);
    EXPECT_EQ(r_serial.stats.target_queries,
              r_parallel.stats.target_queries);
    EXPECT_EQ(r_serial.stats.comparison_queries,
              r_parallel.stats.comparison_queries);
  }
  EXPECT_EQ(r_serial.stats.views_searched, r_parallel.stats.views_searched);
  EXPECT_EQ(r_serial.stats.num_workers, 1);
  EXPECT_EQ(r_parallel.stats.num_workers, 4);
}

INSTANTIATE_TEST_SUITE_P(
    AllHorizontals, ParallelTest,
    ::testing::Values(HorizontalStrategy::kLinear,
                      HorizontalStrategy::kHillClimbing,
                      HorizontalStrategy::kMuve),
    [](const ::testing::TestParamInfo<HorizontalStrategy>& info) {
      return HorizontalStrategyName(info.param);
    });

TEST(ParallelMuveMuveTest, UtilitiesMatchSerial) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions serial;  // default scheme is MuVE-MuVE
  serial.k = 4;
  SearchOptions parallel = serial;
  parallel.num_threads = 4;

  const auto r_serial = MustRecommend(*recommender, serial);
  const auto r_parallel = MustRecommend(*recommender, parallel);
  ExpectSameUtilities(r_serial, r_parallel);
  // No assertion on probe counters here: the parallel threshold snapshot
  // can lag (weaker pruning, more probes), while per-worker cost models
  // can flip the probe order (reclassifying fully-probed candidates as
  // pruned-after-first-probe, fewer probes) — the counters move in both
  // directions depending on scheduling.  The utilities above are the
  // invariant.
}

TEST(ParallelSharedScansTest, MatchesSerialExactly) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions serial;
  serial.horizontal = HorizontalStrategy::kLinear;
  serial.vertical = VerticalStrategy::kLinear;
  serial.shared_scans = true;
  SearchOptions parallel = serial;
  parallel.num_threads = 3;

  const auto r_serial = MustRecommend(*recommender, serial);
  const auto r_parallel = MustRecommend(*recommender, parallel);
  ExpectSameViews(r_serial, r_parallel);
  // Batches are dealt whole per dimension; no threshold sharing, so the
  // scan counters match too.
  EXPECT_EQ(r_serial.stats.target_queries, r_parallel.stats.target_queries);
  EXPECT_EQ(r_serial.stats.comparison_queries,
            r_parallel.stats.comparison_queries);
}

class ParallelApproximationTest
    : public ::testing::TestWithParam<VerticalApproximation> {};

TEST_P(ParallelApproximationTest, UtilitiesMatchSerial) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions serial;
  serial.horizontal = HorizontalStrategy::kLinear;
  serial.vertical = VerticalStrategy::kLinear;
  serial.approximation = GetParam();
  SearchOptions parallel = serial;
  parallel.num_threads = 4;

  const auto r_serial = MustRecommend(*recommender, serial);
  const auto r_parallel = MustRecommend(*recommender, parallel);
  ExpectSameUtilities(r_serial, r_parallel);
}

INSTANTIATE_TEST_SUITE_P(
    Approximations, ParallelApproximationTest,
    ::testing::Values(VerticalApproximation::kRefinement,
                      VerticalApproximation::kSkipping),
    [](const ::testing::TestParamInfo<VerticalApproximation>& info) {
      return info.param == VerticalApproximation::kRefinement ? "Refinement"
                                                             : "Skipping";
    });

TEST(ParallelValidationTest, MoreThreadsThanViewsIsFine) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;
  options.horizontal = HorizontalStrategy::kLinear;
  options.vertical = VerticalStrategy::kLinear;
  options.num_threads = 64;  // toy dataset has 8 views
  auto rec = recommender->Recommend(options);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->views.size(), 5u);
  // The pool is clamped to the view count; no idle threads are spawned.
  EXPECT_LE(rec->stats.num_workers, 8);
}

TEST(ParallelValidationTest, EverySchemeAcceptsThreads) {
  // All vertical strategies and approximations run on the shared pool;
  // none reject num_threads > 1 anymore.
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  std::vector<SearchOptions> schemes;
  {
    SearchOptions muve_muve;  // default MuVE-MuVE
    schemes.push_back(muve_muve);
    SearchOptions refine;
    refine.horizontal = HorizontalStrategy::kLinear;
    refine.vertical = VerticalStrategy::kLinear;
    refine.approximation = VerticalApproximation::kRefinement;
    schemes.push_back(refine);
    SearchOptions skip = refine;
    skip.approximation = VerticalApproximation::kSkipping;
    schemes.push_back(skip);
    SearchOptions shared;
    shared.horizontal = HorizontalStrategy::kLinear;
    shared.vertical = VerticalStrategy::kLinear;
    shared.shared_scans = true;
    schemes.push_back(shared);
    SearchOptions sampled;
    sampled.horizontal = HorizontalStrategy::kMuve;
    sampled.vertical = VerticalStrategy::kLinear;
    sampled.sample_fraction = 0.5;
    schemes.push_back(sampled);
  }
  for (SearchOptions options : schemes) {
    options.num_threads = 2;
    auto rec = recommender->Recommend(options);
    EXPECT_TRUE(rec.ok()) << options.SchemeName() << ": "
                          << rec.status().ToString();
    if (rec.ok()) EXPECT_FALSE(rec->views.empty()) << options.SchemeName();
  }
}

TEST(ParallelValidationTest, RejectsNonPositiveThreadCount) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions zero;
  zero.num_threads = 0;
  EXPECT_FALSE(recommender->Recommend(zero).ok());
  SearchOptions negative;
  negative.num_threads = -3;
  EXPECT_FALSE(recommender->Recommend(negative).ok());
}

TEST(ParallelDeterminismTest, HillClimbingSeedsByViewNotOrder) {
  // Running twice with different thread counts must agree because HC's
  // random start depends only on (seed, view index), not on which worker
  // picks the view up first.
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions base;
  base.horizontal = HorizontalStrategy::kHillClimbing;
  base.vertical = VerticalStrategy::kLinear;
  base.hc_seed = 99;

  SearchOptions two = base;
  two.num_threads = 2;
  SearchOptions seven = base;
  seven.num_threads = 7;

  const auto a = MustRecommend(*recommender, two);
  const auto b = MustRecommend(*recommender, seven);
  ExpectSameViews(a, b);
}

TEST(ParallelDeterminismTest, SkippingWithHillClimbingIsThreadCountInvariant) {
  // View skipping seeds each dimension representative's HC walk by the
  // representative's view index, so the outcome cannot depend on worker
  // scheduling.
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions base;
  base.horizontal = HorizontalStrategy::kHillClimbing;
  base.vertical = VerticalStrategy::kLinear;
  base.approximation = VerticalApproximation::kSkipping;
  base.hc_seed = 7;

  SearchOptions two = base;
  two.num_threads = 2;
  SearchOptions seven = base;
  seven.num_threads = 7;

  const auto a = MustRecommend(*recommender, two);
  const auto b = MustRecommend(*recommender, seven);
  ExpectSameViews(a, b);
}

// Acceptance check on the paper's real workloads: for exact schemes the
// parallel top-k is identical to the serial top-k on NBA and DIAB
// (3 dimensions x 3 measures x 3 functions).
class RealDatasetParallelTest : public ::testing::TestWithParam<const char*> {
 protected:
  static data::Dataset MakeDataset(const std::string& name) {
    if (name == "nba") {
      return data::WithWorkloadSize(data::MakeNbaDataset(), 3, 3, 3);
    }
    return data::WithWorkloadSize(data::MakeDiabDataset(), 3, 3, 3);
  }
};

TEST_P(RealDatasetParallelTest, ExactSchemesMatchSerial) {
  auto recommender = Recommender::Create(MakeDataset(GetParam()));
  ASSERT_TRUE(recommender.ok());

  std::vector<SearchOptions> exact_schemes;
  {
    SearchOptions linear_linear;
    linear_linear.horizontal = HorizontalStrategy::kLinear;
    linear_linear.vertical = VerticalStrategy::kLinear;
    exact_schemes.push_back(linear_linear);
    SearchOptions shared = linear_linear;
    shared.shared_scans = true;
    exact_schemes.push_back(shared);
    SearchOptions muve_linear;
    muve_linear.horizontal = HorizontalStrategy::kMuve;
    muve_linear.vertical = VerticalStrategy::kLinear;
    exact_schemes.push_back(muve_linear);
    SearchOptions muve_muve;  // defaults
    exact_schemes.push_back(muve_muve);
  }

  for (const SearchOptions& serial : exact_schemes) {
    SearchOptions parallel = serial;
    parallel.num_threads = 4;
    const auto r_serial = MustRecommend(*recommender, serial);
    const auto r_parallel = MustRecommend(*recommender, parallel);
    SCOPED_TRACE(serial.SchemeName());
    // All four schemes are exact; MuVE's pruning keeps the same optimum,
    // and the deterministic merge keeps the same tie-breaking, so view
    // identities match, not just utilities.
    ExpectSameViews(r_serial, r_parallel);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, RealDatasetParallelTest,
                         ::testing::Values("nba", "diab"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace muve::core
