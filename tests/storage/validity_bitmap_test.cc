// Unit + differential tests for the word-addressable validity bitmap
// backing Column's null tracking: bit semantics (PushBack/Get/Set),
// popcount-based counting including the partial tail word, and a fuzzed
// differential against the obvious std::vector<bool> model.

#include "storage/validity_bitmap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fuzz_util.h"

namespace muve::storage {
namespace {

TEST(ValidityBitmapTest, EmptyBitmap) {
  ValidityBitmap bm;
  EXPECT_EQ(bm.size(), 0u);
  EXPECT_EQ(bm.CountValid(), 0u);
  EXPECT_EQ(bm.CountNull(), 0u);
  EXPECT_TRUE(bm.AllValid());
  EXPECT_EQ(bm.num_words(), 0u);
}

TEST(ValidityBitmapTest, PushBackAndGet) {
  ValidityBitmap bm;
  bm.PushBack(true);
  bm.PushBack(false);
  bm.PushBack(true);
  ASSERT_EQ(bm.size(), 3u);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_FALSE(bm.Get(1));
  EXPECT_TRUE(bm.Get(2));
  EXPECT_EQ(bm.CountValid(), 2u);
  EXPECT_EQ(bm.CountNull(), 1u);
  EXPECT_FALSE(bm.AllValid());
}

TEST(ValidityBitmapTest, SetFlipsBothDirections) {
  ValidityBitmap bm;
  for (int i = 0; i < 10; ++i) bm.PushBack(true);
  bm.Set(4, false);
  EXPECT_FALSE(bm.Get(4));
  EXPECT_EQ(bm.CountValid(), 9u);
  bm.Set(4, true);
  EXPECT_TRUE(bm.Get(4));
  EXPECT_EQ(bm.CountValid(), 10u);
  EXPECT_TRUE(bm.AllValid());
}

TEST(ValidityBitmapTest, WordBoundaries) {
  // Sizes straddling the 64-bit word edges: the tail word's unused bits
  // must stay zero so CountValid can popcount words blindly.
  for (const size_t n : {63u, 64u, 65u, 127u, 128u, 129u}) {
    ValidityBitmap bm;
    for (size_t i = 0; i < n; ++i) bm.PushBack(i % 2 == 0);
    ASSERT_EQ(bm.size(), n);
    EXPECT_EQ(bm.num_words(), (n + 63) / 64);
    size_t expect_valid = 0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bm.Get(i), i % 2 == 0) << "n=" << n << " i=" << i;
      if (i % 2 == 0) ++expect_valid;
    }
    EXPECT_EQ(bm.CountValid(), expect_valid) << "n=" << n;
    EXPECT_EQ(bm.CountNull(), n - expect_valid);
  }
}

TEST(ValidityBitmapTest, AllValidFastPathAcrossWords) {
  ValidityBitmap bm;
  for (int i = 0; i < 200; ++i) bm.PushBack(true);
  EXPECT_TRUE(bm.AllValid());
  bm.Set(137, false);
  EXPECT_FALSE(bm.AllValid());
  bm.Set(137, true);
  EXPECT_TRUE(bm.AllValid());
}

TEST(ValidityBitmapTest, ClearResets) {
  ValidityBitmap bm;
  for (int i = 0; i < 70; ++i) bm.PushBack(i != 13);
  bm.Clear();
  EXPECT_EQ(bm.size(), 0u);
  EXPECT_EQ(bm.num_words(), 0u);
  EXPECT_TRUE(bm.AllValid());
  // Reusable after Clear, with no stale bits leaking in.
  bm.PushBack(false);
  EXPECT_EQ(bm.size(), 1u);
  EXPECT_FALSE(bm.Get(0));
  EXPECT_EQ(bm.CountValid(), 0u);
}

TEST(ValidityBitmapTest, ReserveDoesNotChangeContents) {
  ValidityBitmap bm;
  bm.PushBack(true);
  bm.PushBack(false);
  bm.Reserve(1000);
  ASSERT_EQ(bm.size(), 2u);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_FALSE(bm.Get(1));
}

TEST(ValidityBitmapTest, FuzzDifferentialAgainstVectorBool) {
  for (uint64_t c = 0; c < 20; ++c) {
    const uint64_t seed = testutil::FuzzSeed(c);
    SCOPED_TRACE(testutil::FuzzTrace(c, seed));
    common::Rng rng(seed);
    ValidityBitmap bm;
    std::vector<bool> model;
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 300));
    for (size_t i = 0; i < n; ++i) {
      const bool v = rng.Bernoulli(0.8);
      bm.PushBack(v);
      model.push_back(v);
    }
    // Random in-place flips.
    for (int f = 0; f < 32; ++f) {
      const size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      const bool v = rng.Bernoulli(0.5);
      bm.Set(i, v);
      model[i] = v;
    }
    ASSERT_EQ(bm.size(), model.size());
    size_t valid = 0;
    bool all = true;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bm.Get(i), model[i]) << "i=" << i;
      valid += model[i] ? 1 : 0;
      all = all && model[i];
    }
    EXPECT_EQ(bm.CountValid(), valid);
    EXPECT_EQ(bm.CountNull(), n - valid);
    EXPECT_EQ(bm.AllValid(), all);
  }
}

}  // namespace
}  // namespace muve::storage
