// In-process integration tests for muved: a real MuvedServer on an
// ephemeral loopback port, driven through the same DialLocal/RoundTrip
// client path muve_loadgen uses.
//
// Uses the toy dataset almost everywhere (milliseconds to search) so the
// suite stays fast; the deadline test uses NBA, whose full muve-muve
// search is comfortably longer than a 1 ms deadline.

#include "server/muved_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/simd/simd.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/json.h"
#include "server/protocol.h"

namespace muve::server {
namespace {

using muve::common::StatusCode;

class MuvedIntegrationTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    options.port = 0;  // ephemeral
    server_ = std::make_unique<MuvedServer>(options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  int Dial() {
    auto fd = DialLocal(server_->port());
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return fd.ok() ? *fd : -1;
  }

  static JsonValue Request(const std::string& op) {
    JsonValue r = JsonValue::Object();
    r.Set("op", JsonValue::String(op));
    return r;
  }

  // RoundTrip that asserts transport health.
  static JsonValue Call(int fd, const JsonValue& request) {
    auto response = RoundTrip(fd, request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : JsonValue::Object();
  }

  static bool IsOk(const JsonValue& response) {
    const JsonValue* ok = response.Find("ok");
    return ok != nullptr && ok->is_bool() && ok->bool_value();
  }

  static std::string ErrorCode(const JsonValue& response) {
    const JsonValue* error = response.Find("error");
    if (error == nullptr || error->Find("code") == nullptr) return "";
    return error->Find("code")->string_value();
  }

  static std::string ErrorMessage(const JsonValue& response) {
    const JsonValue* error = response.Find("error");
    if (error == nullptr || error->Find("message") == nullptr) return "";
    return error->Find("message")->string_value();
  }

  static JsonValue ToyRecommend() {
    JsonValue r = Request("recommend");
    r.Set("dataset", JsonValue::String("toy"));
    r.Set("k", JsonValue::Int(3));
    return r;
  }

  std::unique_ptr<MuvedServer> server_;
};

TEST_F(MuvedIntegrationTest, PingReportsDispatchLevel) {
  StartServer();
  const int fd = Dial();
  JsonValue response = Call(fd, Request("ping"));
  EXPECT_TRUE(IsOk(response));
  EXPECT_EQ(response.Find("simd")->string_value(),
            common::simd::ActiveLevelName());
  ::close(fd);
}

TEST_F(MuvedIntegrationTest, UseThenRecommendInheritsSessionState) {
  StartServer();
  const int fd = Dial();
  JsonValue use = Request("use");
  use.Set("dataset", JsonValue::String("toy"));
  JsonValue use_response = Call(fd, use);
  ASSERT_TRUE(IsOk(use_response)) << use_response.Write();
  EXPECT_GT(use_response.Find("rows")->int_value(), 0);
  EXPECT_GT(use_response.Find("views")->int_value(), 0);

  JsonValue defaults = Request("defaults");
  defaults.Set("k", JsonValue::Int(2));
  defaults.Set("scheme", JsonValue::String("muve-linear"));
  ASSERT_TRUE(IsOk(Call(fd, defaults)));

  // Bare recommend: dataset, k, and scheme all come from the session.
  JsonValue response = Call(fd, Request("recommend"));
  ASSERT_TRUE(IsOk(response)) << response.Write();
  EXPECT_EQ(response.Find("dataset")->string_value(), "toy");
  EXPECT_EQ(response.Find("k")->int_value(), 2);
  EXPECT_LE(response.Find("views")->array().size(), 2u);
  EXPECT_FALSE(response.Find("degraded")->bool_value());
  ::close(fd);
}

TEST_F(MuvedIntegrationTest, RecommendWithoutDatasetFailsWithGuidance) {
  StartServer();
  const int fd = Dial();
  JsonValue response = Call(fd, Request("recommend"));
  EXPECT_FALSE(IsOk(response));
  EXPECT_EQ(ErrorCode(response), "invalid_argument");
  EXPECT_NE(ErrorMessage(response).find("use"), std::string::npos);
  ::close(fd);
}

TEST_F(MuvedIntegrationTest, StrictFieldValidation) {
  StartServer();
  const int fd = Dial();

  // Unknown field.
  JsonValue unknown = ToyRecommend();
  unknown.Set("kay", JsonValue::Int(3));
  JsonValue response = Call(fd, unknown);
  EXPECT_FALSE(IsOk(response));
  EXPECT_NE(ErrorMessage(response).find("kay"), std::string::npos);

  // Integer field sent as a double.
  JsonValue doubled = ToyRecommend();
  doubled.Set("k", JsonValue::Double(3.0));
  response = Call(fd, doubled);
  EXPECT_FALSE(IsOk(response));
  EXPECT_NE(ErrorMessage(response).find("k"), std::string::npos);

  // Out-of-range k.
  JsonValue zero_k = ToyRecommend();
  zero_k.Set("k", JsonValue::Int(0));
  response = Call(fd, zero_k);
  EXPECT_FALSE(IsOk(response));
  EXPECT_EQ(ErrorCode(response), "invalid_argument");

  // Malformed weights.
  JsonValue bad_weights = ToyRecommend();
  JsonValue weights = JsonValue::Array();
  weights.Append(JsonValue::Double(0.5));
  bad_weights.Set("weights", std::move(weights));
  response = Call(fd, bad_weights);
  EXPECT_FALSE(IsOk(response));
  EXPECT_NE(ErrorMessage(response).find("weights"), std::string::npos);

  // Unknown scheme and dataset.
  JsonValue bad_scheme = ToyRecommend();
  bad_scheme.Set("scheme", JsonValue::String("quantum"));
  EXPECT_FALSE(IsOk(Call(fd, bad_scheme)));
  JsonValue bad_dataset = Request("recommend");
  bad_dataset.Set("dataset", JsonValue::String("mnist"));
  EXPECT_FALSE(IsOk(Call(fd, bad_dataset)));

  // The session survived every rejected request.
  EXPECT_TRUE(IsOk(Call(fd, ToyRecommend())));
  ::close(fd);
}

TEST_F(MuvedIntegrationTest, MalformedJsonKeepsSessionAlive) {
  StartServer();
  const int fd = Dial();
  ASSERT_TRUE(WriteFrame(fd, "{not json at all").ok());
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd, &payload).ok());
  auto response = ParseJson(payload);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(IsOk(*response));
  EXPECT_EQ(ErrorCode(*response), "parse_error");
  // Same connection still serves requests.
  EXPECT_TRUE(IsOk(Call(fd, Request("ping"))));
  ::close(fd);
}

TEST_F(MuvedIntegrationTest, BadFrameHeaderDropsConnectionNotServer) {
  StartServer();
  const int bad_fd = Dial();
  // A zero length prefix cannot be resynchronized: the server answers
  // with a protocol error and hangs up this connection.
  const unsigned char zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::write(bad_fd, zero, 4), 4);
  std::string payload;
  ASSERT_TRUE(ReadFrame(bad_fd, &payload).ok());
  auto response = ParseJson(payload);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(IsOk(*response));
  EXPECT_EQ(ErrorCode(*response), "parse_error");
  EXPECT_EQ(ReadFrame(bad_fd, &payload).code(), StatusCode::kNotFound);
  ::close(bad_fd);

  // The server keeps serving fresh connections.
  const int fd = Dial();
  EXPECT_TRUE(IsOk(Call(fd, Request("ping"))));
  ::close(fd);
}

TEST_F(MuvedIntegrationTest, ClientVanishingBeforeResponseDoesNotKillServer) {
  StartServer();
  // A client that sends a request and immediately RSTs the connection
  // (SO_LINGER 0 + close) races the server's response write.  Whichever
  // side of the race an iteration lands on — the read fails, or the
  // response write hits the dead socket with EPIPE — the daemon must
  // survive.  The server runs in-process, so a raised SIGPIPE would kill
  // this very test binary.
  for (int i = 0; i < 20; ++i) {
    const int fd = Dial();
    ASSERT_TRUE(WriteMessage(fd, Request("ping")).ok());
    struct linger hard = {1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(fd);
  }
  const int fd = Dial();
  EXPECT_TRUE(IsOk(Call(fd, Request("ping"))));
  ::close(fd);
}

TEST_F(MuvedIntegrationTest, DeadlineTrippedRequestIsDegradedButOk) {
  StartServer();
  const int fd = Dial();
  JsonValue request = Request("recommend");
  request.Set("dataset", JsonValue::String("nba"));
  request.Set("k", JsonValue::Int(5));
  request.Set("deadline_ms", JsonValue::Double(1.0));
  JsonValue response = Call(fd, request);
  ASSERT_TRUE(IsOk(response)) << response.Write();
  // The anytime contract over the wire: ok:true with a completeness
  // block, never an error.  (A 1 ms deadline on a cold NBA search always
  // trips; if a future machine finishes in time, degraded=false is also
  // legal — assert consistency, not the trip.)
  const JsonValue* completeness = response.Find("completeness");
  ASSERT_NE(completeness, nullptr);
  if (response.Find("degraded")->bool_value()) {
    EXPECT_EQ(completeness->Find("status")->string_value(),
              "deadline_exceeded");
  } else {
    EXPECT_EQ(completeness->Find("status")->string_value(), "ok");
  }
  ::close(fd);
}

TEST_F(MuvedIntegrationTest, EightConcurrentSessions) {
  ServerOptions options;
  options.max_concurrent = 4;  // half the sessions queue at the gate
  StartServer(options);
  constexpr int kSessions = 8;
  std::vector<std::thread> threads;
  std::vector<int> failures(kSessions, 0);
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([this, s, &failures] {
      auto fd = DialLocal(server_->port());
      if (!fd.ok()) {
        failures[s] = 1;
        return;
      }
      for (int i = 0; i < 3; ++i) {
        auto response = RoundTrip(*fd, ToyRecommend());
        if (!response.ok() || !IsOk(*response)) {
          failures[s] = 1;
          break;
        }
      }
      ::close(*fd);
    });
  }
  for (auto& t : threads) t.join();
  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(failures[s], 0) << "session " << s;
  }
  const auto counters = server_->counters();
  EXPECT_GE(counters.connections_accepted, kSessions);
  // Identical frames may be answered from the result cache: every request
  // is accounted for either as an execution or as a cache hit.
  EXPECT_GE(counters.recommends_executed + counters.result_cache_hits,
            kSessions * 3);
  EXPECT_GE(counters.recommends_executed, 1);
  EXPECT_EQ(counters.errors_returned, 0);
}

TEST_F(MuvedIntegrationTest, DispatchInvarianceAcrossTheWire) {
  // The acceptance check: the same request answered under forced-scalar
  // and native dispatch must produce byte-identical payloads.
  StartServer();
  JsonValue request = ToyRecommend();
  request.Set("scheme", JsonValue::String("muve-muve"));
  request.Set("probe_order", JsonValue::String("deviation-first"));

  auto payload_under = [&](common::simd::DispatchLevel level) {
    EXPECT_TRUE(common::simd::SetActiveLevel(level));
    const int fd = Dial();
    auto response = RoundTrip(fd, request);
    EXPECT_TRUE(response.ok());
    ::close(fd);
    return response.ok() ? response->Write() : std::string();
  };
  const std::string scalar =
      payload_under(common::simd::DispatchLevel::kScalar);
  const std::string native =
      payload_under(common::simd::BestSupportedLevel());
  EXPECT_TRUE(common::simd::SetActiveLevel(common::simd::BestSupportedLevel()));
  ASSERT_FALSE(scalar.empty());
  EXPECT_EQ(scalar, native);
}

TEST_F(MuvedIntegrationTest, ShutdownOpDrainsAndStops) {
  StartServer();
  const int fd = Dial();
  JsonValue response = Call(fd, Request("shutdown"));
  EXPECT_TRUE(IsOk(response));
  ::close(fd);
  server_->Wait();  // returns because the op requested stop
  server_->Stop();
  // New connections are refused once stopped.
  EXPECT_FALSE(DialLocal(server_->port()).ok());
}

TEST_F(MuvedIntegrationTest, ShutdownOpCanBeDisabled) {
  ServerOptions options;
  options.allow_shutdown_op = false;
  StartServer(options);
  const int fd = Dial();
  JsonValue response = Call(fd, Request("shutdown"));
  EXPECT_FALSE(IsOk(response));
  // Still serving.
  EXPECT_TRUE(IsOk(Call(fd, Request("ping"))));
  ::close(fd);
}

TEST_F(MuvedIntegrationTest, StopWithIdleOpenConnectionsDoesNotHang) {
  StartServer();
  const int fd = Dial();
  ASSERT_TRUE(IsOk(Call(fd, Request("ping"))));
  // Leave the connection idle (blocked in the server's frame read) and
  // stop: Stop() must unblock the handler and join it promptly.
  server_->Stop();
  std::string payload;
  EXPECT_FALSE(ReadFrame(fd, &payload).ok());  // server hung up
  ::close(fd);
  server_ = nullptr;
}

TEST_F(MuvedIntegrationTest, PredicateFiltersAndValidates) {
  StartServer();
  const int fd = Dial();
  JsonValue request = Request("recommend");
  request.Set("dataset", JsonValue::String("nba"));
  request.Set("predicate", JsonValue::String("Age >= 30"));
  request.Set("k", JsonValue::Int(2));
  request.Set("scheme", JsonValue::String("muve-linear"));
  JsonValue response = Call(fd, request);
  EXPECT_TRUE(IsOk(response)) << response.Write();

  JsonValue empty = Request("recommend");
  empty.Set("dataset", JsonValue::String("nba"));
  empty.Set("predicate", JsonValue::String("Age > 1000"));
  response = Call(fd, empty);
  EXPECT_FALSE(IsOk(response));
  EXPECT_NE(ErrorMessage(response).find("no rows"), std::string::npos);

  JsonValue malformed = Request("recommend");
  malformed.Set("dataset", JsonValue::String("nba"));
  malformed.Set("predicate", JsonValue::String("Age >>> 30"));
  EXPECT_FALSE(IsOk(Call(fd, malformed)));
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Cross-request shared execution (DESIGN.md §13).
// ---------------------------------------------------------------------------

// A fully cacheable, deterministic frame: no deadline, no row budget, no
// timings, deviation-first probe order.
JsonValue CacheableToyRecommend() {
  JsonValue r = JsonValue::Object();
  r.Set("op", JsonValue::String("recommend"));
  r.Set("dataset", JsonValue::String("toy"));
  r.Set("k", JsonValue::Int(3));
  r.Set("scheme", JsonValue::String("muve-muve"));
  r.Set("probe_order", JsonValue::String("deviation-first"));
  return r;
}

TEST_F(MuvedIntegrationTest, ResultCacheServesByteIdenticalSecondResponse) {
  StartServer();
  const JsonValue request = CacheableToyRecommend();

  // First session: executes and stores.
  const int fd1 = Dial();
  auto first = RoundTrip(fd1, request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(IsOk(*first)) << first->Write();
  ::close(fd1);

  // Second session, same frame: answered from the result cache with the
  // exact bytes of the first response.
  const int fd2 = Dial();
  auto second = RoundTrip(fd2, request);
  ASSERT_TRUE(second.ok());
  ::close(fd2);
  EXPECT_EQ(first->Write(), second->Write());

  const auto counters = server_->counters();
  EXPECT_EQ(counters.recommends_executed, 1);
  EXPECT_EQ(counters.result_cache_hits, 1);
  EXPECT_EQ(counters.result_cache_stores, 1);
}

TEST_F(MuvedIntegrationTest, PermutedPredicateSpellingsShareCaches) {
  StartServer();
  auto with_predicate = [](const char* predicate) {
    JsonValue r = CacheableToyRecommend();
    r.Set("predicate", JsonValue::String(predicate));
    return r;
  };
  const int fd = Dial();
  auto first = RoundTrip(fd, with_predicate("x >= 2 AND m1 > 0"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(IsOk(*first)) << first->Write();
  // The operand-permuted spelling keys identically end to end (registry,
  // selection vector, result cache): served without executing.
  auto second = RoundTrip(fd, with_predicate("m1 > 0 AND x >= 2"));
  ASSERT_TRUE(second.ok());
  ::close(fd);
  EXPECT_EQ(first->Write(), second->Write());
  const auto counters = server_->counters();
  EXPECT_EQ(counters.recommends_executed, 1);
  EXPECT_EQ(counters.result_cache_hits, 1);
}

TEST_F(MuvedIntegrationTest, InvalidateBumpsEpochAndRecomputes) {
  StartServer();
  const JsonValue request = CacheableToyRecommend();
  const int fd = Dial();
  auto first = RoundTrip(fd, request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(IsOk(*first)) << first->Write();

  JsonValue invalidate = Request("invalidate");
  invalidate.Set("dataset", JsonValue::String("toy"));
  auto bumped = RoundTrip(fd, invalidate);
  ASSERT_TRUE(bumped.ok());
  ASSERT_TRUE(IsOk(*bumped)) << bumped->Write();
  // The catalog's data_epoch starts at 1 for every table; the first
  // invalidation bumps it to 2.
  EXPECT_EQ(bumped->Find("epoch")->int_value(), 2);

  // Post-invalidation the same frame must NOT be served stale: it
  // re-executes under the new epoch.  (The toy search is deterministic,
  // so the recomputed payload still matches byte for byte — staleness is
  // asserted through the counters, not the bytes.)
  auto third = RoundTrip(fd, request);
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE(IsOk(*third)) << third->Write();
  EXPECT_EQ(first->Write(), third->Write());
  const auto counters = server_->counters();
  EXPECT_EQ(counters.recommends_executed, 2);
  EXPECT_EQ(counters.result_cache_hits, 0);

  // Unknown dataset is rejected; epoch of others untouched.
  JsonValue bad = Request("invalidate");
  bad.Set("dataset", JsonValue::String("mnist"));
  EXPECT_FALSE(IsOk(Call(fd, bad)));
  ::close(fd);
}

TEST_F(MuvedIntegrationTest, StatsOpReportsConsistentCacheCounters) {
  StartServer();
  const int fd = Dial();
  JsonValue with_pred = CacheableToyRecommend();
  with_pred.Set("predicate", JsonValue::String("x >= 2"));
  ASSERT_TRUE(IsOk(Call(fd, with_pred)));
  ASSERT_TRUE(IsOk(Call(fd, with_pred)));  // result-cache hit

  JsonValue stats = Call(fd, Request("stats"));
  ASSERT_TRUE(IsOk(stats)) << stats.Write();
  EXPECT_EQ(stats.Find("result_cache_hits")->int_value(), 1);
  EXPECT_EQ(stats.Find("result_cache_stores")->int_value(), 1);
  EXPECT_EQ(stats.Find("result_cache_entries")->int_value(), 1);
  const JsonValue* selection = stats.Find("selection_cache");
  ASSERT_NE(selection, nullptr);
  EXPECT_EQ(selection->Find("hits")->int_value() +
                selection->Find("misses")->int_value(),
            selection->Find("lookups")->int_value());
  const JsonValue* base = stats.Find("base_cache");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->Find("hits")->int_value() +
                base->Find("misses")->int_value(),
            base->Find("lookups")->int_value());

  // The op has a strict field whitelist like every other.
  JsonValue bad = Request("stats");
  bad.Set("verbose", JsonValue::Bool(true));
  EXPECT_FALSE(IsOk(Call(fd, bad)));
  ::close(fd);
}

TEST_F(MuvedIntegrationTest, SharingOffMatchesSharingOnByteForByte) {
  // The server-level differential: the same frames answered with every
  // sharing layer disabled produce exactly the bytes the sharing path
  // serves — caching is semantically invisible on the wire.
  const JsonValue request = CacheableToyRecommend();
  auto run_pair = [&](bool sharing) {
    ServerOptions options;
    options.enable_selection_cache = sharing;
    options.enable_shared_base_cache = sharing;
    options.enable_result_cache = sharing;
    StartServer(options);
    const int fd = Dial();
    auto first = RoundTrip(fd, request);
    auto second = RoundTrip(fd, request);
    EXPECT_TRUE(first.ok() && second.ok());
    EXPECT_TRUE(IsOk(*first));
    ::close(fd);
    const auto counters = server_->counters();
    server_->Stop();
    return std::make_pair(
        std::make_pair(first->Write(), second->Write()), counters);
  };
  const auto on = run_pair(true);
  const auto off = run_pair(false);
  EXPECT_EQ(on.first.first, on.first.second);
  EXPECT_EQ(off.first.first, off.first.second);
  EXPECT_EQ(on.first.first, off.first.first);
  EXPECT_EQ(on.second.result_cache_hits, 1);
  EXPECT_EQ(off.second.result_cache_hits, 0);
  EXPECT_EQ(off.second.recommends_executed, 2);
}

// ---------------------------------------------------------------------------
// Overload & connection lifecycle (DESIGN.md §14)

// A recommend that holds an execution slot for a long-but-bounded
// stretch: the exhaustive NBA linear-linear search (hundreds of
// milliseconds natively) under a deadline that caps it even when a
// sanitizer slows the search by an order of magnitude — tests that
// join the occupant must not wait out a full TSan-speed exhaustive
// scan.  include_timings keeps it out of the result cache, so every
// copy executes and takes a real slot.
JsonValue SlowNbaRecommend() {
  JsonValue r = JsonValue::Object();
  r.Set("op", JsonValue::String("recommend"));
  r.Set("dataset", JsonValue::String("nba"));
  r.Set("scheme", JsonValue::String("linear-linear"));
  r.Set("k", JsonValue::Int(5));
  r.Set("deadline_ms", JsonValue::Double(1500.0));
  r.Set("include_timings", JsonValue::Bool(true));
  return r;
}

// Polls the gate-free health op until in_flight reaches `expected` (or
// ~10 s pass — generous for sanitizer builds).  Returns the last health
// response so callers can assert on the rest of its fields.
JsonValue WaitForInFlight(int port, int64_t expected) {
  auto fd = DialLocal(port);
  EXPECT_TRUE(fd.ok()) << fd.status().ToString();
  if (!fd.ok()) return JsonValue::Object();
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::String("health"));
  JsonValue health = JsonValue::Object();
  for (int i = 0; i < 5000; ++i) {
    auto response = RoundTrip(*fd, request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (!response.ok()) break;
    health = *response;
    const JsonValue* in_flight = health.Find("in_flight");
    if (in_flight != nullptr && in_flight->int_value() >= expected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::close(*fd);
  return health;
}

TEST_F(MuvedIntegrationTest, FullQueueBurstShedsByteStableOverloadedFrame) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;          // no waiting room: busy slot => shed now
  options.queue_timeout_ms = 77;  // doubles as the retry_after_ms hint
  StartServer(options);

  const int slow_fd = Dial();
  std::thread occupant([slow_fd] {
    auto response = RoundTrip(slow_fd, SlowNbaRecommend());
    EXPECT_TRUE(response.ok());
  });
  JsonValue health = WaitForInFlight(server_->port(), 1);
  ASSERT_EQ(health.Find("in_flight")->int_value(), 1) << health.Write();

  // The shed frame's exact bytes are protocol surface: scripted clients
  // parse this shape, so pin it byte for byte.
  const int fd = Dial();
  ASSERT_TRUE(WriteMessage(fd, ToyRecommend()).ok());
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd, &payload).ok());
  EXPECT_EQ(payload,
            "{\"ok\":false,\"error\":{\"code\":\"unavailable\",\"exit_code\":7,"
            "\"message\":\"overloaded: admission queue is full\","
            "\"retry_after_ms\":77}}");
  ::close(fd);
  occupant.join();
  ::close(slow_fd);

  const auto counters = server_->counters();
  EXPECT_EQ(counters.requests_shed_queue_full, 1);
  // At quiescence the admission ledger balances exactly.
  EXPECT_EQ(counters.requests_offered,
            counters.requests_admitted + counters.requests_shed_queue_full +
                counters.requests_shed_timeout +
                counters.requests_shed_deadline +
                counters.requests_rejected_stopping);
}

TEST_F(MuvedIntegrationTest, QueueTimeoutShedsWithTypedFrame) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.max_queue = 8;
  options.queue_timeout_ms = 60;  // far below the NBA search's runtime
  StartServer(options);

  const int slow_fd = Dial();
  std::thread occupant([slow_fd] {
    auto response = RoundTrip(slow_fd, SlowNbaRecommend());
    EXPECT_TRUE(response.ok());
  });
  WaitForInFlight(server_->port(), 1);

  const int fd = Dial();
  JsonValue response = Call(fd, ToyRecommend());
  EXPECT_FALSE(IsOk(response));
  EXPECT_EQ(ErrorCode(response), "unavailable");
  EXPECT_EQ(ErrorMessage(response),
            "overloaded: no execution slot freed within queue timeout");
  EXPECT_EQ(response.Find("error")->Find("retry_after_ms")->int_value(), 60);
  ::close(fd);
  occupant.join();
  ::close(slow_fd);
  EXPECT_EQ(server_->counters().requests_shed_timeout, 1);
}

TEST_F(MuvedIntegrationTest, SpentDeadlineIsShedInsteadOfQueueing) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.max_queue = 8;
  options.queue_timeout_ms = 0;  // would wait forever — the shed is typed
  StartServer(options);

  const int slow_fd = Dial();
  std::thread occupant([slow_fd] {
    auto response = RoundTrip(slow_fd, SlowNbaRecommend());
    EXPECT_TRUE(response.ok());
  });
  WaitForInFlight(server_->port(), 1);

  // deadline_ms:0 has no budget left by admission time; queueing it
  // could only ever produce a fully degraded answer, so it sheds typed.
  const int fd = Dial();
  JsonValue request = ToyRecommend();
  request.Set("deadline_ms", JsonValue::Double(0.0));
  JsonValue response = Call(fd, request);
  EXPECT_FALSE(IsOk(response));
  EXPECT_EQ(ErrorCode(response), "unavailable");
  EXPECT_EQ(ErrorMessage(response),
            "overloaded: request deadline already spent before admission");
  ::close(fd);
  occupant.join();
  ::close(slow_fd);
  EXPECT_EQ(server_->counters().requests_shed_deadline, 1);
}

TEST_F(MuvedIntegrationTest, QueueWaitIsChargedAgainstDeadline) {
  // Satellite regression: a request that queues past its own deadline is
  // admitted (it had budget when it joined the queue) but the engine
  // sees a spent deadline and returns the anytime degraded answer — an
  // ok:true frame, never an error and never a wedged connection.
  ServerOptions options;
  options.max_concurrent = 1;
  options.max_queue = 8;
  options.queue_timeout_ms = 0;  // wait as long as it takes
  StartServer(options);

  const int slow_fd = Dial();
  std::thread occupant([slow_fd] {
    auto response = RoundTrip(slow_fd, SlowNbaRecommend());
    EXPECT_TRUE(response.ok());
  });
  WaitForInFlight(server_->port(), 1);

  const int fd = Dial();
  JsonValue request = ToyRecommend();
  request.Set("deadline_ms", JsonValue::Double(20.0));  // << NBA runtime
  request.Set("include_timings", JsonValue::Bool(true));
  JsonValue response = Call(fd, request);
  ASSERT_TRUE(IsOk(response)) << response.Write();
  EXPECT_TRUE(response.Find("degraded")->bool_value()) << response.Write();
  EXPECT_EQ(response.Find("completeness")->Find("status")->string_value(),
            "deadline_exceeded");
  // The wait itself is visible: queue_ms covers the occupant's runtime.
  EXPECT_GT(response.Find("timings")->Find("queue_ms")->number_value(), 20.0);
  ::close(fd);
  occupant.join();
  ::close(slow_fd);
  EXPECT_EQ(server_->counters().requests_shed_deadline, 0);
}

TEST_F(MuvedIntegrationTest, HealthAnswersWhileSaturated) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;
  StartServer(options);

  const int slow_fd = Dial();
  std::thread occupant([slow_fd] {
    auto response = RoundTrip(slow_fd, SlowNbaRecommend());
    EXPECT_TRUE(response.ok());
  });
  // WaitForInFlight goes through the health op itself, so reaching
  // in_flight==1 proves health answered while the only slot was busy.
  JsonValue health = WaitForInFlight(server_->port(), 1);
  ASSERT_TRUE(IsOk(health)) << health.Write();
  EXPECT_EQ(health.Find("in_flight")->int_value(), 1);
  EXPECT_EQ(health.Find("queue_depth")->int_value(), 0);
  EXPECT_FALSE(health.Find("stopping")->bool_value());
  EXPECT_EQ(health.Find("max_concurrent")->int_value(), 1);
  EXPECT_GE(health.Find("uptime_ms")->int_value(), 0);
  EXPECT_GE(health.Find("connections_live")->int_value(), 1);
  occupant.join();
  ::close(slow_fd);
}

TEST_F(MuvedIntegrationTest, StalledMidFrameClientIsDisconnected) {
  ServerOptions options;
  options.frame_timeout_ms = 100;
  StartServer(options);

  const int fd = Dial();
  // Two header bytes, then silence: a torn frame that would pin the
  // handler thread forever without the mid-frame deadline.
  ASSERT_EQ(::send(fd, "\x00\x00", 2, MSG_NOSIGNAL), 2);
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd, &payload).ok());
  auto response = ParseJson(payload);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ErrorCode(*response), "deadline_exceeded");
  EXPECT_NE(ErrorMessage(*response).find("frame timeout"), std::string::npos);
  // After the goodbye frame the server hangs up.
  EXPECT_EQ(ReadFrame(fd, &payload).code(), StatusCode::kNotFound);
  ::close(fd);
  EXPECT_EQ(server_->counters().frame_timeouts, 1);
}

TEST_F(MuvedIntegrationTest, IdleSessionIsReapedSilently) {
  ServerOptions options;
  options.idle_timeout_ms = 60;
  StartServer(options);

  const int fd = Dial();
  // Say nothing.  An idle drop is not an error — no goodbye frame, just
  // a clean EOF, exactly what a client library treats as "server closed".
  std::string payload;
  EXPECT_EQ(ReadFrame(fd, &payload).code(), StatusCode::kNotFound);
  ::close(fd);
  EXPECT_EQ(server_->counters().idle_timeouts, 1);

  // The port still accepts fresh sessions afterwards.
  const int fd2 = Dial();
  EXPECT_TRUE(IsOk(Call(fd2, Request("ping"))));
  ::close(fd2);
}

TEST_F(MuvedIntegrationTest, ConnectionLimitShedsWithGoodbyeFrame) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(options);

  const int fd1 = Dial();
  // A served request proves fd1's handler is registered before fd2
  // arrives (the accept loop is serial, so ordering is deterministic).
  ASSERT_TRUE(IsOk(Call(fd1, Request("ping"))));

  const int fd2 = Dial();
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd2, &payload).ok());
  auto response = ParseJson(payload);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ErrorCode(*response), "unavailable");
  EXPECT_EQ(ErrorMessage(*response), "overloaded: connection limit reached");
  EXPECT_GE(response->Find("error")->Find("retry_after_ms")->int_value(), 1);
  EXPECT_EQ(ReadFrame(fd2, &payload).code(), StatusCode::kNotFound);
  ::close(fd2);

  // The admitted session is untouched.
  EXPECT_TRUE(IsOk(Call(fd1, Request("ping"))));
  ::close(fd1);
  EXPECT_EQ(server_->counters().connections_shed, 1);
}

TEST_F(MuvedIntegrationTest, RetryingClientAbsorbsShedsAndEventuallyLands) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;
  options.queue_timeout_ms = 20;  // small retry_after_ms hint
  StartServer(options);

  const int slow_fd = Dial();
  std::thread occupant([slow_fd] {
    auto response = RoundTrip(slow_fd, SlowNbaRecommend());
    EXPECT_TRUE(response.ok());
  });
  WaitForInFlight(server_->port(), 1);

  // The first attempt is guaranteed to shed (slot busy, no queue); the
  // generous budget means the client outlives the occupant and lands.
  RetryPolicy policy;
  policy.max_attempts = 60;
  policy.base_backoff_ms = 40;
  policy.max_backoff_ms = 250;
  policy.jitter_seed = 7;
  RetryingClient client(server_->port(), policy);
  auto response = client.Call(ToyRecommend());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(IsOk(*response)) << response->Write();
  EXPECT_GE(client.stats().sheds_seen, 1);
  EXPECT_GE(client.stats().retries, 1);
  EXPECT_EQ(client.stats().transport_errors, 0);
  client.Disconnect();
  occupant.join();
  ::close(slow_fd);
}

TEST_F(MuvedIntegrationTest, SlotReleasedWhenHandlerThrows) {
  if (!common::FailpointsCompiledIn()) {
    GTEST_SKIP() << "requires -DMUVE_FAILPOINTS=ON";
  }
  // The engine catches its own worker-pool throws, so the dedicated
  // server.recommend failpoint is the only deterministic way to unwind
  // through HandleRecommend while a slot is held.
  ServerOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;
  StartServer(options);

  const int fd = Dial();
  ASSERT_TRUE(common::SetFailpoint("server.recommend", "throw").ok());
  JsonValue response = Call(fd, ToyRecommend());
  common::ClearFailpoints();
  EXPECT_FALSE(IsOk(response));
  EXPECT_EQ(ErrorCode(response), "internal");
  EXPECT_NE(ErrorMessage(response).find("unhandled exception"),
            std::string::npos);

  // The slot the throwing request held was released on unwind: with one
  // slot and no waiting room, a leaked slot would shed this follow-up.
  JsonValue retry = Call(fd, ToyRecommend());
  EXPECT_TRUE(IsOk(retry)) << retry.Write();
  ::close(fd);
}

// --- Catalog ops: create / append / drop + incremental ingest ---

namespace {

// 40 rows, clustered day column, integer dims/measures — mirrors the
// scale workload in miniature.  `begin` lets appends continue the series.
std::string SmallCsv(int begin, int end) {
  std::string csv = "day,x,m\n";  // appends carry the header too
  for (int i = begin; i < end; ++i) {
    csv += std::to_string(i / 10) + "," + std::to_string(i % 7) + "," +
           std::to_string(3 * i + 1) + "\n";
  }
  return csv;
}

}  // namespace

TEST_F(MuvedIntegrationTest, CreateRecommendAppendDropLifecycle) {
  StartServer();
  const int fd = Dial();

  JsonValue create = Request("create");
  create.Set("table", JsonValue::String("mini"));
  create.Set("csv", JsonValue::String(SmallCsv(0, 40)));
  JsonValue dims = JsonValue::Array();
  dims.Append(JsonValue::String("x"));
  create.Set("dims", dims);
  JsonValue measures = JsonValue::Array();
  measures.Append(JsonValue::String("m"));
  create.Set("measures", measures);
  create.Set("predicate", JsonValue::String("day >= 2"));
  JsonValue created = Call(fd, create);
  ASSERT_TRUE(IsOk(created)) << created.Write();
  EXPECT_EQ(created.Find("rows")->int_value(), 40);
  EXPECT_EQ(created.Find("data_epoch")->int_value(), 1);

  // Creating the same name again is an error; built-ins are reserved too.
  EXPECT_FALSE(IsOk(Call(fd, create)));

  // The created table recommends like a built-in (predicate defaulted
  // from create time).
  JsonValue recommend = Request("recommend");
  recommend.Set("dataset", JsonValue::String("mini"));
  recommend.Set("k", JsonValue::Int(2));
  JsonValue first = Call(fd, recommend);
  ASSERT_TRUE(IsOk(first)) << first.Write();
  ASSERT_EQ(first.Find("views")->array().size(), 2u);

  // Append new rows: the response reports the patched base histograms —
  // the recommend above warmed them, so delta merges must have fired.
  JsonValue append = Request("append");
  append.Set("table", JsonValue::String("mini"));
  append.Set("csv", JsonValue::String(SmallCsv(40, 60)));
  JsonValue appended = Call(fd, append);
  ASSERT_TRUE(IsOk(appended)) << appended.Write();
  EXPECT_EQ(appended.Find("rows_appended")->int_value(), 20);
  EXPECT_EQ(appended.Find("rows_total")->int_value(), 60);
  EXPECT_EQ(appended.Find("data_epoch")->int_value(), 2);
  EXPECT_GT(appended.Find("delta_merges")->int_value(), 0);
  // O(new rows): the patch scanned only appended rows (once per side).
  EXPECT_LE(appended.Find("ingest_rows")->int_value(), 2 * 20);

  // Post-append recommend answers over all 60 rows and must equal a
  // from-scratch load of the same 60 rows on a second server.
  JsonValue incremental = Call(fd, recommend);
  ASSERT_TRUE(IsOk(incremental)) << incremental.Write();
  {
    ServerOptions options;
    options.port = 0;
    MuvedServer fresh(options);
    ASSERT_TRUE(fresh.Start().ok());
    auto fd2_result = DialLocal(fresh.port());
    ASSERT_TRUE(fd2_result.ok());
    const int fd2 = *fd2_result;
    JsonValue create2 = create;
    create2.Set("csv", JsonValue::String(SmallCsv(0, 60)));
    ASSERT_TRUE(IsOk(Call(fd2, create2)));
    JsonValue reloaded = Call(fd2, recommend);
    ASSERT_TRUE(IsOk(reloaded)) << reloaded.Write();
    EXPECT_EQ(incremental.Find("views")->Write(),
              reloaded.Find("views")->Write());
    ::close(fd2);
    fresh.Stop();
  }

  // Stats surfaces the ingest counters and per-table residency.
  JsonValue stats = Call(fd, Request("stats"));
  ASSERT_TRUE(IsOk(stats)) << stats.Write();
  const JsonValue* ingest = stats.Find("ingest");
  ASSERT_NE(ingest, nullptr);
  EXPECT_EQ(ingest->Find("appends")->int_value(), 1);
  EXPECT_EQ(ingest->Find("rows_ingested")->int_value(), 20);
  EXPECT_GT(ingest->Find("delta_merges")->int_value(), 0);
  const JsonValue* tables = stats.Find("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_NE(tables->Find("mini"), nullptr);
  EXPECT_EQ(tables->Find("mini")->Find("rows")->int_value(), 60);
  EXPECT_GT(tables->Find("mini")->Find("resident_bytes")->int_value(), 0);
  const JsonValue* memory = stats.Find("memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_GT(memory->Find("peak_rss_bytes")->int_value(), 0);
  EXPECT_GT(memory->Find("tables_resident_bytes")->int_value(), 0);

  // Drop: the name disappears and recommends over it turn NotFound.
  JsonValue drop = Request("drop");
  drop.Set("table", JsonValue::String("mini"));
  ASSERT_TRUE(IsOk(Call(fd, drop)));
  JsonValue gone = Call(fd, recommend);
  EXPECT_FALSE(IsOk(gone));
  EXPECT_EQ(ErrorCode(gone), "not_found");
  EXPECT_FALSE(IsOk(Call(fd, drop)));  // double drop

  ::close(fd);
}

TEST_F(MuvedIntegrationTest, CreateValidatesInputs) {
  StartServer();
  const int fd = Dial();

  // Missing csv.
  JsonValue create = Request("create");
  create.Set("table", JsonValue::String("t"));
  JsonValue dims = JsonValue::Array();
  dims.Append(JsonValue::String("x"));
  create.Set("dims", dims);
  create.Set("measures", dims);
  JsonValue response = Call(fd, create);
  EXPECT_FALSE(IsOk(response));

  // String column named as a dimension.
  create.Set("csv", JsonValue::String("x,m\nred,1\nblue,2\n"));
  response = Call(fd, create);
  EXPECT_FALSE(IsOk(response));
  EXPECT_NE(ErrorMessage(response).find("string column"), std::string::npos);

  // Bad predicate syntax fails at create time, not first recommend.
  create.Set("csv", JsonValue::String("x,m\n1,2\n3,4\n"));
  create.Set("predicate", JsonValue::String("day >=>= 2"));
  response = Call(fd, create);
  EXPECT_FALSE(IsOk(response));

  ::close(fd);
}

TEST_F(MuvedIntegrationTest, AppendEnforcesTableSchema) {
  StartServer();
  const int fd = Dial();

  JsonValue create = Request("create");
  create.Set("table", JsonValue::String("t"));
  create.Set("csv", JsonValue::String(SmallCsv(0, 20)));
  JsonValue dims = JsonValue::Array();
  dims.Append(JsonValue::String("x"));
  create.Set("dims", dims);
  JsonValue measures = JsonValue::Array();
  measures.Append(JsonValue::String("m"));
  create.Set("measures", measures);
  create.Set("predicate", JsonValue::String("day >= 1"));
  ASSERT_TRUE(IsOk(Call(fd, create)));

  // Unknown table.
  JsonValue append = Request("append");
  append.Set("table", JsonValue::String("nope"));
  append.Set("csv", JsonValue::String(SmallCsv(0, 5)));
  JsonValue response = Call(fd, append);
  EXPECT_FALSE(IsOk(response));
  EXPECT_EQ(ErrorCode(response), "not_found");

  // Wrong header: the table's schema is enforced, not re-inferred.
  append.Set("table", JsonValue::String("t"));
  append.Set("csv", JsonValue::String("wrong,header,names\n1,2,3\n"));
  EXPECT_FALSE(IsOk(Call(fd, append)));

  // Empty batch.
  append.Set("csv", JsonValue::String("day,x,m\n"));
  EXPECT_FALSE(IsOk(Call(fd, append)));

  // The failed appends left the table untouched.
  JsonValue stats = Call(fd, Request("stats"));
  EXPECT_EQ(stats.Find("tables")->Find("t")->Find("rows")->int_value(), 20);
  ::close(fd);
}

}  // namespace
}  // namespace muve::server
