#include "core/candidate.h"

#include <sstream>

#include "common/string_util.h"

namespace muve::core {

std::string ScoredView::ToString() const {
  std::ostringstream out;
  out << view.Label() << " [b=" << bins
      << "] U=" << common::FormatDouble(utility, 3)
      << " (D=" << common::FormatDouble(deviation, 3)
      << " A=" << common::FormatDouble(accuracy, 3)
      << " S=" << common::FormatDouble(usability, 3) << ")";
  return out.str();
}

CandidateResult EvaluateCandidate(ViewEvaluator& evaluator, const View& view,
                                  int bins, const SearchOptions& options,
                                  double threshold, bool allow_pruning) {
  ExecStats& stats = evaluator.stats();
  ++stats.candidates_considered;

  const Weights& w = options.weights;
  const double s = evaluator.CandidateUsability(view, bins);
  const bool pruning =
      allow_pruning && options.enable_incremental_evaluation;

  // Step 1: S-bound (both expensive objectives assumed perfect).
  if (pruning && UtilityUpperBound(w, s) <= threshold) {
    ++stats.pruned_before_probes;
    CandidateResult result;
    result.outcome = CandidateResult::Outcome::kPrunedBeforeProbes;
    return result;
  }

  // Probe order: the priority rule, or a fixed order for ablations.
  bool accuracy_first;
  switch (options.probe_order) {
    case ProbeOrderPolicy::kPriorityRule:
      accuracy_first = evaluator.AccuracyFirst(w);
      break;
    case ProbeOrderPolicy::kDeviationFirst:
      accuracy_first = false;
      break;
    case ProbeOrderPolicy::kAccuracyFirst:
      accuracy_first = true;
      break;
  }

  ScoredView scored;
  scored.view = view;
  scored.bins = bins;
  scored.usability = s;

  // Step 2: first probe + partial bound.
  double first_value;
  if (accuracy_first) {
    first_value = evaluator.EvaluateAccuracy(view, bins);
    scored.accuracy = first_value;
    if (pruning &&
        w.deviation + w.accuracy * first_value + w.usability * s <=
            threshold) {
      ++stats.pruned_after_first_probe;
      CandidateResult result;
      result.outcome = CandidateResult::Outcome::kPrunedAfterFirstProbe;
      return result;
    }
    scored.deviation = evaluator.EvaluateDeviation(view, bins);
  } else {
    first_value = evaluator.EvaluateDeviation(view, bins);
    scored.deviation = first_value;
    if (pruning &&
        w.deviation * first_value + w.accuracy + w.usability * s <=
            threshold) {
      ++stats.pruned_after_first_probe;
      CandidateResult result;
      result.outcome = CandidateResult::Outcome::kPrunedAfterFirstProbe;
      return result;
    }
    scored.accuracy = evaluator.EvaluateAccuracy(view, bins);
  }

  ++stats.fully_probed;
  scored.utility = Utility(w, scored.deviation, scored.accuracy, s);
  CandidateResult result;
  result.outcome = CandidateResult::Outcome::kFullyEvaluated;
  result.scored = scored;
  return result;
}

}  // namespace muve::core
