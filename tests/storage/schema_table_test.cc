#include <gtest/gtest.h>

#include "storage/schema.h"
#include "storage/table.h"

namespace muve::storage {
namespace {

Schema TestSchema() {
  return Schema({
      {"id", ValueType::kInt64, FieldRole::kNone},
      {"age", ValueType::kInt64, FieldRole::kDimension},
      {"score", ValueType::kDouble, FieldRole::kMeasure},
      {"name", ValueType::kString, FieldRole::kNone},
  });
}

TEST(SchemaTest, FieldLookupIsCaseInsensitive) {
  const Schema schema = TestSchema();
  EXPECT_EQ(*schema.FieldIndex("AGE"), 1u);
  EXPECT_EQ(*schema.FieldIndex("age"), 1u);
  EXPECT_TRUE(schema.HasField("Score"));
  EXPECT_FALSE(schema.HasField("missing"));
  EXPECT_FALSE(schema.FieldIndex("missing").ok());
}

TEST(SchemaTest, DuplicateNamesRejected) {
  Schema schema;
  EXPECT_TRUE(schema.AddField({"a", ValueType::kInt64}).ok());
  EXPECT_FALSE(schema.AddField({"A", ValueType::kDouble}).ok());
  EXPECT_EQ(schema.num_fields(), 1u);
}

TEST(SchemaTest, RoleQueries) {
  const Schema schema = TestSchema();
  EXPECT_EQ(schema.FieldNamesWithRole(FieldRole::kDimension),
            std::vector<std::string>{"age"});
  EXPECT_EQ(schema.FieldNamesWithRole(FieldRole::kMeasure),
            std::vector<std::string>{"score"});
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(TestSchema() == TestSchema());
  Schema other({{"x", ValueType::kInt64}});
  EXPECT_FALSE(TestSchema() == other);
}

TEST(TableTest, AppendAndRead) {
  Table table(TestSchema());
  ASSERT_TRUE(table
                  .AppendRow({Value(int64_t{1}), Value(int64_t{30}),
                              Value(0.5), Value("ann")})
                  .ok());
  ASSERT_TRUE(table
                  .AppendRow({Value(int64_t{2}), Value(int64_t{40}),
                              Value(0.7), Value("bob")})
                  .ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 4u);
  EXPECT_EQ(table.At(1, 3), Value("bob"));
  EXPECT_EQ(table.At(0, 1), Value(int64_t{30}));
}

TEST(TableTest, ArityMismatchRejected) {
  Table table(TestSchema());
  EXPECT_FALSE(table.AppendRow({Value(int64_t{1})}).ok());
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TableTest, TypeMismatchLeavesTableUnchanged) {
  Table table(TestSchema());
  // Third column expects double but receives string: whole row rejected.
  const auto st = table.AppendRow(
      {Value(int64_t{1}), Value(int64_t{2}), Value("oops"), Value("x")});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(table.num_rows(), 0u);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EXPECT_EQ(table.column(c).size(), 0u);
  }
}

TEST(TableTest, NullsAllowedAnywhere) {
  Table table(TestSchema());
  ASSERT_TRUE(table
                  .AppendRow({Value::Null(), Value::Null(), Value::Null(),
                              Value::Null()})
                  .ok());
  EXPECT_TRUE(table.At(0, 2).is_null());
}

TEST(TableTest, ColumnByName) {
  Table table(TestSchema());
  EXPECT_TRUE(table.ColumnByName("score").ok());
  EXPECT_FALSE(table.ColumnByName("nope").ok());
}

TEST(TableTest, ToStringTruncates) {
  Table table(TestSchema());
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(table
                    .AppendRow({Value(int64_t{i}), Value(int64_t{i}),
                                Value(1.0 * i), Value("n")})
                    .ok());
  }
  const std::string text = table.ToString(5);
  EXPECT_NE(text.find("more rows"), std::string::npos);
}

TEST(RowSetTest, AllRows) {
  const RowSet rows = AllRows(4);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[3], 3u);
}

}  // namespace
}  // namespace muve::storage
