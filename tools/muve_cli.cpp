// muve_cli — run any recommendation configuration from the command line.
//
//   $ muve_cli --dataset=nba --scheme=muve-muve --k=5 \
//              --weights=0.6,0.2,0.2 --distance=euclidean
//   $ muve_cli --csv=mydata.csv --dims=age,height --measures=score \
//              --predicate="segment = 'trial'" --scheme=linear-linear
//   $ muve_cli --dataset=diab --scheme=linear-linear --approx=refine \
//              --fidelity
//
// Flags:
//   --dataset=diab|nba|toy    bundled dataset (default: diab; `toy` is the
//                             90-row deterministic test workload)
//   --csv=PATH                load a CSV instead (requires --dims,
//                             --measures, --predicate)
//   --dims=a,b  --measures=x,y  --cat-dims=p,q   workload columns for CSV
//   --predicate=SQL           analyst predicate selecting D_Q
//   --num-dims=N --num-measures=N --num-functions=N   workload truncation
//   --scheme=linear-linear|hc-linear|muve-linear|muve-muve
//   --weights=D,A,S           alpha weights (default 0.2,0.2,0.6)
//   --k=N                     top-k (default 5)
//   --distance=NAME           euclidean|l1|chebyshev|emd|kl|js
//   --partition=additive|geometric  --step=N
//   --approx=none|refine|skip [--def-bins=N]
//   --shared                  SeeDB-style shared scans (linear-linear only)
//   --threads=N               worker threads (default 1)
//   --no-base-cache           disable the base-histogram prefix-sum cache
//                             (forces direct scans for every probe)
//   --no-fused-prewarm        keep the cache but skip the fused prewarm
//                             pass (base histograms build on demand)
//   --probe-order=priority|deviation-first|accuracy-first
//                             MuVE's incremental-evaluation probe order;
//                             `priority` (default) is the wall-clock-driven
//                             cost/benefit rule, the fixed orders are
//                             deterministic (used by the golden tests)
//   --deadline-ms=N           anytime budget: stop searching after N ms and
//                             print the best top-k found so far (0 = expire
//                             immediately; negative/absent = unbounded)
//   --cancel-after-ms=N       cancel the search from a watchdog thread
//                             after N ms (0 = cancel before it starts)
//   --max-rows=N              stop after charging ~N scanned rows
//   --max-cache-mb=N          cap the base-histogram cache at N MiB
//   --fidelity                also run Linear-Linear and report fidelity
//   --charts                  render the recommended views as bar charts
//
// Exit codes (from common::StatusCode, so scripts can branch on cause):
//   0  OK, complete results
//   1  internal / unclassified error
//   2  invalid arguments, parse error, or type mismatch
//   3  I/O error or missing file
//   4  deadline exceeded (partial results were printed, DEGRADED banner)
//   5  cancelled (partial results were printed, DEGRADED banner)
//   6  resource budget exhausted (partial results, DEGRADED banner)

#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/exec_context.h"
#include "common/parse.h"
#include "common/simd/simd.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/fidelity.h"
#include "core/recommender.h"
#include "data/diab.h"
#include "data/nba.h"
#include "data/toy.h"
#include "sql/parser.h"
#include "storage/binned_group_by.h"
#include "storage/csv.h"
#include "storage/predicate.h"
#include "viz/bar_chart.h"
#include "viz/svg_chart.h"

namespace {

using muve::common::Result;
using muve::common::Status;

struct Flags {
  std::string dataset = "diab";
  std::string csv_path;
  std::string dims;
  std::string cat_dims;
  std::string measures;
  std::string predicate;
  size_t num_dims = 3;
  size_t num_measures = 3;
  size_t num_functions = 3;
  std::string scheme = "muve-muve";
  std::string weights = "0.2,0.2,0.6";
  int k = 5;
  std::string distance = "euclidean";
  std::string partition = "additive";
  int step = 1;
  std::string approx = "none";
  int def_bins = 4;
  bool shared = false;
  int threads = 1;
  bool base_cache = true;
  bool fused_prewarm = true;
  std::string probe_order = "priority";
  double deadline_ms = -1.0;      // < 0: unbounded
  double cancel_after_ms = -1.0;  // < 0: no watchdog
  int64_t max_rows = 0;           // 0: unbounded
  int max_cache_mb = 0;           // 0: library default
  bool fidelity = false;
  bool charts = false;
  std::string html_path;  // write an SVG/HTML report of the top-k
};

// Maps a StatusCode to the CLI's documented exit codes (header table,
// shared with muved's protocol error codes).
int ExitCodeFor(muve::common::StatusCode code) {
  return muve::common::ExitCodeForStatus(code);
}

// Every numeric flag goes through the strict parser (common/parse.h):
// malformed or out-of-range values ("--k=abc", "--threads=0",
// "--max-rows=99999999999999999999") are InvalidArgument errors that
// name the flag — exit 2 — never a silent 0 from atoi.
Status ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const std::string& name) -> std::string {
      return arg.substr(name.size());
    };
    auto has = [&arg](const std::string& name) {
      return muve::common::StartsWith(arg, name);
    };
    // Strict numeric flag parsing: on success assigns through `out`
    // (narrowing from int64 is safe inside the given range), on failure
    // propagates the flag-naming error.
    auto parse_int = [&](const char* name, auto* out, int64_t min_value,
                         int64_t max_value) -> Status {
      auto parsed = muve::common::ParseFlagInt64(
          std::string_view(name, std::strlen(name) - 1), value_of(name),
          min_value, max_value);
      if (!parsed.ok()) return parsed.status();
      *out = static_cast<std::decay_t<decltype(*out)>>(*parsed);
      return Status::OK();
    };
    auto parse_double = [&](const char* name, double* out, double min_value,
                            double max_value) -> Status {
      auto parsed = muve::common::ParseFlagDouble(
          std::string_view(name, std::strlen(name) - 1), value_of(name),
          min_value, max_value);
      if (!parsed.ok()) return parsed.status();
      *out = *parsed;
      return Status::OK();
    };
    if (has("--dataset=")) {
      flags->dataset = value_of("--dataset=");
    } else if (has("--csv=")) {
      flags->csv_path = value_of("--csv=");
    } else if (has("--dims=")) {
      flags->dims = value_of("--dims=");
    } else if (has("--cat-dims=")) {
      flags->cat_dims = value_of("--cat-dims=");
    } else if (has("--measures=")) {
      flags->measures = value_of("--measures=");
    } else if (has("--predicate=")) {
      flags->predicate = value_of("--predicate=");
    } else if (has("--num-dims=")) {
      MUVE_RETURN_IF_ERROR(
          parse_int("--num-dims=", &flags->num_dims, 1, 1 << 20));
    } else if (has("--num-measures=")) {
      MUVE_RETURN_IF_ERROR(
          parse_int("--num-measures=", &flags->num_measures, 1, 1 << 20));
    } else if (has("--num-functions=")) {
      MUVE_RETURN_IF_ERROR(
          parse_int("--num-functions=", &flags->num_functions, 1, 1 << 20));
    } else if (has("--scheme=")) {
      flags->scheme = muve::common::ToLower(value_of("--scheme="));
    } else if (has("--weights=")) {
      flags->weights = value_of("--weights=");
    } else if (has("--k=")) {
      MUVE_RETURN_IF_ERROR(parse_int("--k=", &flags->k, 1, 1000000));
    } else if (has("--distance=")) {
      flags->distance = value_of("--distance=");
    } else if (has("--partition=")) {
      flags->partition = muve::common::ToLower(value_of("--partition="));
    } else if (has("--step=")) {
      MUVE_RETURN_IF_ERROR(parse_int("--step=", &flags->step, 1, 1000000));
    } else if (has("--approx=")) {
      flags->approx = muve::common::ToLower(value_of("--approx="));
    } else if (has("--def-bins=")) {
      MUVE_RETURN_IF_ERROR(
          parse_int("--def-bins=", &flags->def_bins, 1, 1000000));
    } else if (arg == "--shared") {
      flags->shared = true;
    } else if (has("--threads=")) {
      MUVE_RETURN_IF_ERROR(parse_int("--threads=", &flags->threads, 1, 4096));
    } else if (arg == "--no-base-cache") {
      flags->base_cache = false;
    } else if (arg == "--no-fused-prewarm") {
      flags->fused_prewarm = false;
    } else if (has("--probe-order=")) {
      flags->probe_order = muve::common::ToLower(value_of("--probe-order="));
    } else if (has("--deadline-ms=")) {
      // Negative = unbounded (documented); still must parse strictly.
      MUVE_RETURN_IF_ERROR(parse_double("--deadline-ms=", &flags->deadline_ms,
                                        -1e15, 1e15));
    } else if (has("--cancel-after-ms=")) {
      MUVE_RETURN_IF_ERROR(parse_double("--cancel-after-ms=",
                                        &flags->cancel_after_ms, -1e15, 1e15));
    } else if (has("--max-rows=")) {
      MUVE_RETURN_IF_ERROR(parse_int("--max-rows=", &flags->max_rows, 0,
                                     std::numeric_limits<int64_t>::max()));
    } else if (has("--max-cache-mb=")) {
      MUVE_RETURN_IF_ERROR(
          parse_int("--max-cache-mb=", &flags->max_cache_mb, 0, 1 << 20));
    } else if (arg == "--fidelity") {
      flags->fidelity = true;
    } else if (arg == "--charts") {
      flags->charts = true;
    } else if (has("--html=")) {
      flags->html_path = value_of("--html=");
    } else if (arg == "--help" || arg == "-h") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  return Status::OK();
}

Result<muve::core::SearchOptions> BuildOptions(const Flags& flags) {
  muve::core::SearchOptions options;
  if (flags.scheme == "linear-linear") {
    options.horizontal = muve::core::HorizontalStrategy::kLinear;
    options.vertical = muve::core::VerticalStrategy::kLinear;
  } else if (flags.scheme == "hc-linear") {
    options.horizontal = muve::core::HorizontalStrategy::kHillClimbing;
    options.vertical = muve::core::VerticalStrategy::kLinear;
  } else if (flags.scheme == "muve-linear") {
    options.horizontal = muve::core::HorizontalStrategy::kMuve;
    options.vertical = muve::core::VerticalStrategy::kLinear;
  } else if (flags.scheme == "muve-muve") {
    options.horizontal = muve::core::HorizontalStrategy::kMuve;
    options.vertical = muve::core::VerticalStrategy::kMuve;
  } else {
    return Status::InvalidArgument("unknown --scheme: " + flags.scheme);
  }

  const auto parts = muve::common::Split(flags.weights, ',');
  if (parts.size() != 3) {
    return Status::InvalidArgument("--weights needs D,A,S");
  }
  double w[3];
  for (int i = 0; i < 3; ++i) {
    MUVE_ASSIGN_OR_RETURN(
        w[i], muve::common::ParseFlagDouble(
                  "--weights", muve::common::Trim(parts[i]), 0.0, 1.0));
  }
  options.weights = muve::core::Weights{w[0], w[1], w[2]};
  options.k = flags.k;
  MUVE_ASSIGN_OR_RETURN(options.distance,
                        muve::core::DistanceKindFromName(flags.distance));
  if (flags.partition == "geometric") {
    options.partition.kind = muve::core::PartitionKind::kGeometric;
  } else if (flags.partition != "additive") {
    return Status::InvalidArgument("unknown --partition: " + flags.partition);
  }
  options.partition.step = flags.step;
  if (flags.approx == "refine") {
    options.approximation = muve::core::VerticalApproximation::kRefinement;
  } else if (flags.approx == "skip") {
    options.approximation = muve::core::VerticalApproximation::kSkipping;
  } else if (flags.approx != "none") {
    return Status::InvalidArgument("unknown --approx: " + flags.approx);
  }
  options.refinement_default_bins = flags.def_bins;
  options.shared_scans = flags.shared;
  options.num_threads = flags.threads;
  options.base_histogram_cache = flags.base_cache;
  options.fused_prewarm = flags.fused_prewarm;
  if (flags.probe_order == "deviation-first") {
    options.probe_order = muve::core::ProbeOrderPolicy::kDeviationFirst;
  } else if (flags.probe_order == "accuracy-first") {
    options.probe_order = muve::core::ProbeOrderPolicy::kAccuracyFirst;
  } else if (flags.probe_order != "priority") {
    return Status::InvalidArgument("unknown --probe-order: " +
                                   flags.probe_order);
  }
  options.deadline_ms = flags.deadline_ms;
  options.max_rows_scanned = flags.max_rows > 0 ? flags.max_rows : 0;
  if (flags.max_cache_mb > 0) {
    options.max_cache_bytes =
        static_cast<size_t>(flags.max_cache_mb) * (size_t{1} << 20);
  }
  return options;
}

Result<muve::data::Dataset> BuildDataset(const Flags& flags) {
  if (!flags.csv_path.empty()) {
    if (flags.dims.empty() || flags.measures.empty() ||
        flags.predicate.empty()) {
      return Status::InvalidArgument(
          "--csv requires --dims, --measures, and --predicate");
    }
    muve::storage::CsvLoadStats load_stats;
    MUVE_ASSIGN_OR_RETURN(
        muve::storage::Table table,
        muve::storage::ReadCsvFile(flags.csv_path, {}, &load_stats));
    muve::data::Dataset ds;
    ds.name = flags.csv_path;
    auto shared = std::make_shared<muve::storage::Table>(std::move(table));
    ds.table = shared;
    for (const auto& d : muve::common::Split(flags.dims, ',')) {
      ds.dimensions.push_back(std::string(muve::common::Trim(d)));
    }
    if (!flags.cat_dims.empty()) {
      for (const auto& d : muve::common::Split(flags.cat_dims, ',')) {
        ds.categorical_dimensions.push_back(
            std::string(muve::common::Trim(d)));
      }
    }
    for (const auto& m : muve::common::Split(flags.measures, ',')) {
      ds.measures.push_back(std::string(muve::common::Trim(m)));
    }
    ds.functions = {muve::storage::AggregateFunction::kSum,
                    muve::storage::AggregateFunction::kAvg,
                    muve::storage::AggregateFunction::kCount};
    ds.query_predicate_sql = flags.predicate;
    // Parse the predicate through the SQL front end.
    MUVE_ASSIGN_OR_RETURN(
        muve::sql::SelectStatement stmt,
        muve::sql::ParseSelect("SELECT * FROM t WHERE " + flags.predicate));
    muve::common::Stopwatch filter_timer;
    muve::storage::FilterStats filter_stats;
    MUVE_ASSIGN_OR_RETURN(
        ds.target_rows,
        muve::storage::Filter(*shared, stmt.where.get(), nullptr,
                              &filter_stats));
    if (ds.target_rows.empty()) {
      return Status::InvalidArgument("--predicate selects no rows");
    }
    ds.all_rows = muve::storage::AllRows(shared->num_rows());
    ds.predicate_rows_filtered =
        filter_stats.rows_in - filter_stats.rows_out;
    ds.setup_time_ms = load_stats.parse_ms + filter_timer.ElapsedMillis();
    return ds;
  }

  muve::data::Dataset base;
  if (flags.dataset == "diab") {
    base = muve::data::MakeDiabDataset();
  } else if (flags.dataset == "nba") {
    base = muve::data::MakeNbaDataset();
  } else if (flags.dataset == "toy") {
    base = muve::data::MakeToyDataset();
  } else {
    return Status::InvalidArgument("unknown --dataset: " + flags.dataset);
  }
  return muve::data::WithWorkloadSize(base, flags.num_dims,
                                      flags.num_measures,
                                      flags.num_functions);
}

// Builds the grouped-bar charts (normalized target vs comparison) of the
// recommendation's numeric-dimension views.
std::vector<muve::viz::GroupedBarChart> BuildCharts(
    const muve::data::Dataset& dataset,
    const muve::core::Recommendation& rec) {
  std::vector<muve::viz::GroupedBarChart> charts;
  for (const muve::core::ScoredView& sv : rec.views) {
    auto dim_col = dataset.table->ColumnByName(sv.view.dimension);
    if (!dim_col.ok() ||
        (*dim_col)->type() == muve::storage::ValueType::kString) {
      continue;
    }
    const double lo = (*dim_col)->NumericMin().value_or(0);
    const double hi = (*dim_col)->NumericMax().value_or(0);
    auto target = muve::storage::BinnedAggregate(
        *dataset.table, dataset.target_rows, sv.view.dimension,
        sv.view.measure, sv.view.function, sv.bins, lo, hi);
    auto comparison = muve::storage::BinnedAggregate(
        *dataset.table, dataset.all_rows, sv.view.dimension, sv.view.measure,
        sv.view.function, sv.bins, lo, hi);
    if (!target.ok() || !comparison.ok()) continue;
    auto normalize = [](std::vector<double> v) {
      double total = 0;
      for (double& x : v) total += std::max(x, 0.0);
      if (total > 0) {
        for (double& x : v) x = std::max(x, 0.0) / total;
      }
      return v;
    };
    muve::viz::GroupedBarChart chart;
    chart.title = sv.ToString();
    chart.labels = muve::viz::BinLabels(lo, hi, sv.bins);
    chart.target = normalize(target->aggregates);
    chart.comparison = normalize(comparison->aggregates);
    charts.push_back(std::move(chart));
  }
  return charts;
}

void RenderCharts(const muve::data::Dataset& dataset,
                  const muve::core::Recommendation& rec) {
  for (const muve::core::ScoredView& sv : rec.views) {
    auto dim_col = dataset.table->ColumnByName(sv.view.dimension);
    if (!dim_col.ok() ||
        (*dim_col)->type() == muve::storage::ValueType::kString) {
      continue;  // categorical views skipped in chart mode
    }
    const double lo = (*dim_col)->NumericMin().value_or(0);
    const double hi = (*dim_col)->NumericMax().value_or(0);
    auto target = muve::storage::BinnedAggregate(
        *dataset.table, dataset.target_rows, sv.view.dimension,
        sv.view.measure, sv.view.function, sv.bins, lo, hi);
    auto comparison = muve::storage::BinnedAggregate(
        *dataset.table, dataset.all_rows, sv.view.dimension, sv.view.measure,
        sv.view.function, sv.bins, lo, hi);
    if (!target.ok() || !comparison.ok()) continue;
    muve::viz::Series left;
    left.title = "target";
    left.labels = muve::viz::BinLabels(lo, hi, sv.bins);
    left.values = target->aggregates;
    muve::viz::Series right;
    right.title = "comparison";
    right.labels = left.labels;
    right.values = comparison->aggregates;
    muve::viz::BarChartOptions viz;
    viz.normalize = true;
    std::cout << "\n" << sv.ToString() << "\n"
              << muve::viz::RenderSideBySide(left, right, viz);
  }
}

int RunCli(int argc, char** argv) {
  Flags flags;
  if (Status st = ParseFlags(argc, argv, &flags); !st.ok()) {
    std::cerr << st.message() << "\n\nSee the header of tools/muve_cli.cpp "
              << "for flag documentation.\n";
    return 2;
  }

  auto dataset = BuildDataset(flags);
  if (!dataset.ok()) {
    std::cerr << "dataset error: " << dataset.status().ToString() << "\n";
    return ExitCodeFor(dataset.status().code());
  }
  auto options = BuildOptions(flags);
  if (!options.ok()) {
    std::cerr << "options error: " << options.status().ToString() << "\n";
    return ExitCodeFor(options.status().code());
  }
  auto recommender = muve::core::Recommender::Create(*dataset);
  if (!recommender.ok()) {
    std::cerr << "workload error: " << recommender.status().ToString()
              << "\n";
    return ExitCodeFor(recommender.status().code());
  }
  std::cout << "dataset: " << dataset->name << " ("
            << dataset->table->num_rows() << " rows, "
            << dataset->target_rows.size() << " in D_Q)\n"
            << "views:   " << recommender->space().views().size()
            << " candidates, " << recommender->space().TotalBinnedViews()
            << " binned views\n"
            << "engine:  simd=" << muve::common::simd::ActiveLevelName()
            << "\n";
  // Optional cancellation watchdog: a side thread trips the token after
  // --cancel-after-ms.  The search notices at its next work boundary and
  // returns the best top-k found so far (DEGRADED, exit code 5).
  std::shared_ptr<muve::common::CancellationToken> cancel_token;
  std::thread watchdog;
  std::atomic<bool> search_done{false};
  if (flags.cancel_after_ms >= 0.0) {
    cancel_token = std::make_shared<muve::common::CancellationToken>();
    options->cancel_token = cancel_token;
    if (flags.cancel_after_ms == 0.0) {
      cancel_token->Cancel();  // Cancel before the search even starts.
    } else {
      watchdog = std::thread([cancel_token, &search_done,
                              ms = flags.cancel_after_ms] {
        const auto stop =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(ms));
        // Poll so a fast search does not leave the CLI waiting out the
        // full timer before it can exit.
        while (!search_done.load(std::memory_order_relaxed) &&
               std::chrono::steady_clock::now() < stop) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (!search_done.load(std::memory_order_relaxed)) {
          cancel_token->Cancel();
        }
      });
    }
  }
  auto rec = recommender->Recommend(*options);
  search_done.store(true, std::memory_order_relaxed);
  if (watchdog.joinable()) watchdog.join();
  if (!rec.ok()) {
    std::cerr << "recommendation error: " << rec.status().ToString() << "\n";
    return ExitCodeFor(rec.status().code());
  }
  std::cout << rec->ToString() << "\n";
  const muve::core::ExecCompleteness& completeness = rec->stats.completeness;
  if (completeness.degraded) {
    std::cout << "*** DEGRADED ("
              << muve::common::StatusCodeName(completeness.status)
              << "): partial top-k — views_done="
              << completeness.views_fully_searched << " bins_pruned="
              << completeness.bins_pruned_by_deadline << " ***\n";
  }

  if (flags.fidelity) {
    auto baseline_options = *options;
    baseline_options.horizontal = muve::core::HorizontalStrategy::kLinear;
    baseline_options.vertical = muve::core::VerticalStrategy::kLinear;
    baseline_options.approximation =
        muve::core::VerticalApproximation::kNone;
    baseline_options.partition = muve::core::PartitionSpec{};
    baseline_options.shared_scans = false;
    auto baseline = recommender->Recommend(baseline_options);
    if (baseline.ok()) {
      std::cout << "fidelity vs Linear-Linear: "
                << muve::common::FormatDouble(
                       muve::core::Fidelity(baseline->views, rec->views) *
                           100.0,
                       1)
                << "%\n";
    }
  }
  if (flags.charts) RenderCharts(*dataset, *rec);
  if (!flags.html_path.empty()) {
    const auto charts = BuildCharts(*dataset, *rec);
    const auto st = muve::viz::WriteHtmlReport(
        flags.html_path,
        rec->scheme + " top-" + std::to_string(rec->views.size()) + " — " +
            dataset->name,
        charts);
    if (!st.ok()) {
      std::cerr << "html report error: " << st.ToString() << "\n";
      return ExitCodeFor(st.code());
    }
    std::cout << "wrote " << flags.html_path << " (" << charts.size()
              << " charts)\n";
  }
  // Degraded runs exit nonzero even though partial results were printed,
  // so scripts can distinguish "complete top-k" from "whatever fit in the
  // budget" without parsing the banner.
  return completeness.degraded ? ExitCodeFor(completeness.status) : 0;
}

}  // namespace

int main(int argc, char** argv) { return RunCli(argc, argv); }
