#include "viz/svg_chart.h"

#include <gtest/gtest.h>

#include <fstream>

namespace muve::viz {
namespace {

GroupedBarChart MakeChart() {
  GroupedBarChart chart;
  chart.title = "SUM(3PAr) BY MP";
  chart.labels = {"[0, 480)", "[480, 960)", "[960, 1440]"};
  chart.target = {0.2, 0.3, 0.5};
  chart.comparison = {0.5, 0.3, 0.2};
  return chart;
}

TEST(EscapeXmlTest, EscapesSpecials) {
  EXPECT_EQ(EscapeXml("a<b & \"c\" > d"),
            "a&lt;b &amp; &quot;c&quot; &gt; d");
  EXPECT_EQ(EscapeXml("plain"), "plain");
  EXPECT_EQ(EscapeXml(""), "");
}

TEST(SvgChartTest, ContainsStructuralElements) {
  const std::string svg = RenderSvg(MakeChart());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("SUM(3PAr) BY MP"), std::string::npos);
  EXPECT_NE(svg.find("target"), std::string::npos);
  EXPECT_NE(svg.find("comparison"), std::string::npos);
  // 3 groups x 2 bars + 2 legend swatches + background = 9 rects.
  size_t rects = 0;
  size_t pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  EXPECT_EQ(rects, 9u);
  // Every bin label appears (escaped if needed).
  for (const auto& label : MakeChart().labels) {
    EXPECT_NE(svg.find(EscapeXml(label)), std::string::npos) << label;
  }
}

TEST(SvgChartTest, TallerBarsForLargerValues) {
  const std::string svg = RenderSvg(MakeChart());
  // The max target value (0.5) renders a bar of full plot height; check
  // no negative-height rects leak in regardless.
  EXPECT_EQ(svg.find("height=\"-"), std::string::npos);
}

TEST(SvgChartTest, HandlesEmptyChart) {
  GroupedBarChart empty;
  empty.title = "empty";
  const std::string svg = RenderSvg(empty);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("empty"), std::string::npos);
}

TEST(SvgChartTest, HandlesAllZeroValues) {
  GroupedBarChart chart;
  chart.title = "zeros";
  chart.labels = {"a", "b"};
  chart.target = {0.0, 0.0};
  chart.comparison = {0.0, 0.0};
  const std::string svg = RenderSvg(chart);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("inf"), std::string::npos);
}

TEST(SvgChartTest, NegativeValuesClampToZeroHeight) {
  GroupedBarChart chart;
  chart.title = "neg";
  chart.labels = {"a"};
  chart.target = {-3.0};
  chart.comparison = {1.0};
  const std::string svg = RenderSvg(chart);
  EXPECT_EQ(svg.find("height=\"-"), std::string::npos);
}

TEST(SvgChartTest, ManyLabelsUseRotatedText) {
  GroupedBarChart chart;
  chart.title = "many";
  for (int i = 0; i < 12; ++i) {
    chart.labels.push_back("bin" + std::to_string(i));
    chart.target.push_back(1.0);
    chart.comparison.push_back(2.0);
  }
  const std::string svg = RenderSvg(chart);
  EXPECT_NE(svg.find("rotate(-45"), std::string::npos);
}

TEST(HtmlReportTest, WrapsChartsInDocument) {
  const std::string html =
      RenderHtmlReport("MuVE top-2", {MakeChart(), MakeChart()});
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("<h1>MuVE top-2</h1>"), std::string::npos);
  // Two figures.
  size_t figures = 0;
  size_t pos = 0;
  while ((pos = html.find("<figure>", pos)) != std::string::npos) {
    ++figures;
    pos += 8;
  }
  EXPECT_EQ(figures, 2u);
}

TEST(HtmlReportTest, TitleIsEscaped) {
  const std::string html = RenderHtmlReport("a<b>&c", {});
  EXPECT_NE(html.find("a&lt;b&gt;&amp;c"), std::string::npos);
  EXPECT_EQ(html.find("<h1>a<b>"), std::string::npos);
}

TEST(HtmlReportTest, WritesToDisk) {
  const std::string path = ::testing::TempDir() + "/muve_report.html";
  ASSERT_TRUE(WriteHtmlReport(path, "report", {MakeChart()}).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("<svg"), std::string::npos);
}

TEST(HtmlReportTest, BadPathFails) {
  EXPECT_FALSE(
      WriteHtmlReport("/nonexistent_dir/x.html", "t", {}).ok());
}

}  // namespace
}  // namespace muve::viz
