// Strict-flag-parsing regression for tools/muve_cli: every numeric flag
// rejects malformed, out-of-range, and overflowing values with exit code
// 2 and a diagnostic naming the flag — never a silent atoi-style
// truncation to 0 or a wrapped value.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#ifndef MUVE_CLI_BINARY
#error "MUVE_CLI_BINARY must be defined by the build"
#endif

namespace muve {
namespace {

std::string RunCommand(const std::string& command, int* exit_code) {
  const std::string full = command + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << full;
  if (pipe == nullptr) return "";
  std::string output;
  char buffer[4096];
  size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = pclose(pipe);
  *exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return output;
}

// Runs the CLI with one bad flag value on the toy dataset and asserts
// exit 2 with a diagnostic that names the flag.
void ExpectRejected(const std::string& flag_assignment,
                    const std::string& flag_name) {
  int exit_code = -1;
  const std::string output = RunCommand(
      std::string(MUVE_CLI_BINARY) + " --dataset=toy " + flag_assignment,
      &exit_code);
  EXPECT_EQ(exit_code, 2) << flag_assignment << "\n" << output;
  EXPECT_NE(output.find(flag_name), std::string::npos)
      << "diagnostic does not name " << flag_name << ":\n"
      << output;
}

TEST(CliFlags, MalformedIntegerValuesExitTwo) {
  ExpectRejected("--k=abc", "--k");
  ExpectRejected("--k=", "--k");
  ExpectRejected("--k=12x", "--k");
  ExpectRejected("--k=1.5", "--k");
  ExpectRejected("--threads=abc", "--threads");
  ExpectRejected("--step=1e3", "--step");
  ExpectRejected("--def-bins=ten", "--def-bins");
  ExpectRejected("--max-rows=lots", "--max-rows");
  ExpectRejected("--max-cache-mb=big", "--max-cache-mb");
  ExpectRejected("--num-dims=x", "--num-dims");
  ExpectRejected("--num-measures=x", "--num-measures");
  ExpectRejected("--num-functions=x", "--num-functions");
}

TEST(CliFlags, OutOfRangeValuesExitTwo) {
  ExpectRejected("--k=0", "--k");
  ExpectRejected("--k=-3", "--k");
  ExpectRejected("--threads=0", "--threads");
  ExpectRejected("--threads=-1", "--threads");
  ExpectRejected("--step=0", "--step");
  ExpectRejected("--def-bins=0", "--def-bins");
  ExpectRejected("--max-rows=-1", "--max-rows");
}

TEST(CliFlags, OverflowingValuesExitTwoNotWrap) {
  // 20 nines overflows int64: with atoll this wrapped or saturated;
  // strict parsing must reject it naming the flag.
  ExpectRejected("--max-rows=99999999999999999999", "--max-rows");
  ExpectRejected("--k=99999999999999999999", "--k");
  ExpectRejected("--threads=99999999999999999999", "--threads");
}

TEST(CliFlags, MalformedDoubleValuesExitTwo) {
  ExpectRejected("--deadline-ms=soon", "--deadline-ms");
  ExpectRejected("--deadline-ms=1,5", "--deadline-ms");
  ExpectRejected("--deadline-ms=nan", "--deadline-ms");
  ExpectRejected("--deadline-ms=1e400", "--deadline-ms");
  ExpectRejected("--cancel-after-ms=later", "--cancel-after-ms");
  ExpectRejected("--weights=a,b,c", "--weights");
  ExpectRejected("--weights=0.5,0.5,1.5", "--weights");
  ExpectRejected("--weights=0.5,inf,0.1", "--weights");
}

TEST(CliFlags, ValidBoundaryValuesStillWork) {
  int exit_code = -1;
  const std::string output = RunCommand(
      std::string(MUVE_CLI_BINARY) +
          " --dataset=toy --k=1 --threads=1 --scheme=muve-muve",
      &exit_code);
  EXPECT_EQ(exit_code, 0) << output;
  // "+" prefixed numerics are accepted (ordinary numeric frontends do).
  const std::string plus = RunCommand(
      std::string(MUVE_CLI_BINARY) + " --dataset=toy --k=+2", &exit_code);
  EXPECT_EQ(exit_code, 0) << plus;
}

}  // namespace
}  // namespace muve
