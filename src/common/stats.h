// Small numerically-careful statistics helpers shared across modules:
// the storage aggregator uses `WelfordAccumulator` for STD/VAR, and the
// benchmark harness uses the summary helpers when averaging repetitions.

#ifndef MUVE_COMMON_STATS_H_
#define MUVE_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace muve::common {

// Streaming mean/variance via Welford's algorithm.  Variance is the
// population variance (divide by n), matching SQL's VAR_POP which is the
// natural reading of the paper's VAR aggregate.
class WelfordAccumulator {
 public:
  void Add(double value);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Population variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Mean of `values`; 0 for an empty vector.
double Mean(const std::vector<double>& values);

// Population standard deviation of `values`; 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

// Median (lower of the two middle elements for even sizes); 0 when empty.
// Copies and partially sorts the input.
double Median(std::vector<double> values);

// Linear-interpolated quantile, q in [0, 1]; 0 when empty.
double Quantile(std::vector<double> values, double q);

}  // namespace muve::common

#endif  // MUVE_COMMON_STATS_H_
