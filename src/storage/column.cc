#include "storage/column.h"

#include <cmath>

#include "common/logging.h"

namespace muve::storage {

namespace {

uint32_t ShiftFor(size_t chunk_rows) {
  MUVE_CHECK(chunk_rows > 0 && (chunk_rows & (chunk_rows - 1)) == 0)
      << "chunk_rows must be a power of two, got " << chunk_rows;
  uint32_t shift = 0;
  while ((size_t{1} << shift) < chunk_rows) ++shift;
  return shift;
}

}  // namespace

Column::Column(ValueType type, size_t chunk_rows)
    : type_(type),
      chunk_rows_(chunk_rows),
      shift_(ShiftFor(chunk_rows)),
      mask_(static_cast<uint32_t>(chunk_rows - 1)) {}

ColumnChunk* Column::MutableTail() {
  if (chunks_.empty() || chunks_.back()->full()) {
    chunks_.push_back(std::make_shared<ColumnChunk>(type_, chunk_rows_));
  } else if (chunks_.back().use_count() > 1) {
    // The tail is visible through another Column copy (or pinned by a
    // reader snapshot): growing it in place would leak rows into that
    // view.  Copy-on-write bounds the cost at one chunk.
    chunks_.back() = std::make_shared<ColumnChunk>(*chunks_.back());
  }
  return chunks_.back().get();
}

void Column::AppendInt64(int64_t v) {
  MUVE_DCHECK(type_ == ValueType::kInt64);
  MutableTail()->AppendInt64(v);
  ++size_;
}

void Column::AppendDouble(double v) {
  MUVE_DCHECK(type_ == ValueType::kDouble);
  MutableTail()->AppendDouble(v);
  ++size_;
}

void Column::AppendString(std::string v) {
  MUVE_DCHECK(type_ == ValueType::kString);
  MutableTail()->AppendString(v);
  ++size_;
}

void Column::AppendNull() {
  MutableTail()->AppendNull();
  ++size_;
}

common::Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return common::Status::OK();
  }
  switch (type_) {
    case ValueType::kInt64: {
      if (v.type() == ValueType::kInt64) {
        AppendInt64(v.AsInt64());
        return common::Status::OK();
      }
      if (v.type() == ValueType::kDouble) {
        const double d = v.AsDoubleExact();
        if (d == std::floor(d)) {
          AppendInt64(static_cast<int64_t>(d));
          return common::Status::OK();
        }
        return common::Status::TypeMismatch(
            "cannot store non-integral double in int64 column");
      }
      break;
    }
    case ValueType::kDouble: {
      if (v.is_numeric()) {
        MUVE_ASSIGN_OR_RETURN(const double d, v.ToDouble());
        AppendDouble(d);
        return common::Status::OK();
      }
      break;
    }
    case ValueType::kString: {
      if (v.type() == ValueType::kString) {
        AppendString(v.AsString());
        return common::Status::OK();
      }
      break;
    }
    case ValueType::kNull:
      break;
  }
  return common::Status::TypeMismatch(
      std::string("cannot store ") + ValueTypeName(v.type()) + " in " +
      ValueTypeName(type_) + " column");
}

double Column::NumericAt(size_t row) const {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kDouble:
      return chunks_[row >> shift_]->NumericAt(row & mask_);
    default:
      MUVE_CHECK(false) << "NumericAt on non-numeric column";
      return 0.0;
  }
}

Value Column::ValueAt(size_t row) const {
  MUVE_DCHECK(row < size_);
  const ColumnChunk& c = *chunks_[row >> shift_];
  const size_t i = row & mask_;
  if (c.IsNull(i)) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value(c.Int64At(i));
    case ValueType::kDouble:
      return Value(c.DoubleAt(i));
    case ValueType::kString:
      return Value(c.StringAt(i));
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

common::Result<double> Column::NumericMin() const {
  if (type_ == ValueType::kString || type_ == ValueType::kNull) {
    return common::Status::TypeMismatch("NumericMin on non-numeric column");
  }
  bool found = false;
  bool any_nan = false;
  double best = 0.0;
  for (const auto& c : chunks_) {
    any_nan = any_nan || c->HasNaN();
    if (!c->HasRange()) continue;
    const double v = c->min();
    if (!found || v < best) {
      best = v;
      found = true;
    }
  }
  if (found) return best;
  // Non-null cells exist but none carried a range: every value was NaN.
  if (any_nan) return std::nan("");
  return common::Status::NotFound("column has no non-null cells");
}

common::Result<double> Column::NumericMax() const {
  if (type_ == ValueType::kString || type_ == ValueType::kNull) {
    return common::Status::TypeMismatch("NumericMax on non-numeric column");
  }
  bool found = false;
  bool any_nan = false;
  double best = 0.0;
  for (const auto& c : chunks_) {
    any_nan = any_nan || c->HasNaN();
    if (!c->HasRange()) continue;
    const double v = c->max();
    if (!found || v > best) {
      best = v;
      found = true;
    }
  }
  if (found) return best;
  if (any_nan) return std::nan("");
  return common::Status::NotFound("column has no non-null cells");
}

void Column::Reserve(size_t n) {
  // Chunks allocate lazily with geometric growth; a reserve hint only
  // needs to pre-create nothing — it is kept as a no-op beyond validating
  // the argument shape, since per-chunk arrays are bounded at chunk_rows_
  // and bulk loads amortize growth across at most log(chunk_rows_)
  // reallocations per chunk.
  (void)n;
}

bool Column::AllValid() const {
  for (const auto& c : chunks_) {
    if (c->null_count() != 0) return false;
  }
  return true;
}

size_t Column::null_count() const {
  size_t n = 0;
  for (const auto& c : chunks_) n += c->null_count();
  return n;
}

size_t Column::ApproxBytes() const {
  size_t bytes = sizeof(Column);
  for (const auto& c : chunks_) bytes += c->ApproxBytes();
  return bytes;
}

}  // namespace muve::storage
