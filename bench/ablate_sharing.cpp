// Ablation: SeeDB-style shared scans vs MuVE pruning.
//
// Section II-A cites shared computation among views as an orthogonal
// optimization class.  This bench pits the two against each other on
// both datasets: sharing collapses the |M| x |F| same-dimension queries
// of exhaustive search into one scan per (dimension, bin count), while
// MuVE avoids executing most candidates at all.  They are NOT composable
// (sharing eagerly computes what pruning would skip), so the interesting
// question is which regime favors which — more measures favor sharing,
// usability-heavy weights favor pruning.

#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/recommender.h"
#include "data/diab.h"
#include "data/nba.h"
#include "harness.h"

namespace {

void RunDataset(const muve::data::Dataset& dataset,
                const muve::core::Weights& weights, const char* regime) {
  using muve::bench::Ms;
  using muve::bench::RunScheme;

  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  auto linear = muve::bench::LinearLinear();
  auto shared = muve::bench::LinearLinear();
  shared.shared_scans = true;
  auto muve = muve::bench::MuveMuve();
  linear.weights = shared.weights = muve.weights = weights;

  const auto r_linear = RunScheme(*recommender, linear);
  const auto r_shared = RunScheme(*recommender, shared);
  const auto r_muve = RunScheme(*recommender, muve);

  muve::bench::TablePrinter table(
      {"scheme", "cost(ms)", "target queries", "comparison queries"});
  table.AddRow({"Linear-Linear", Ms(r_linear.cost_ms),
                std::to_string(r_linear.stats.target_queries),
                std::to_string(r_linear.stats.comparison_queries)});
  table.AddRow({"Linear-Linear(Sh)", Ms(r_shared.cost_ms),
                std::to_string(r_shared.stats.target_queries),
                std::to_string(r_shared.stats.comparison_queries)});
  table.AddRow({"MuVE-MuVE", Ms(r_muve.cost_ms),
                std::to_string(r_muve.stats.target_queries),
                std::to_string(r_muve.stats.comparison_queries)});
  table.Print(dataset.name + ", " + regime + " weights " +
              weights.ToString() + ", mean of " +
              std::to_string(muve::bench::Repetitions()) + " runs");
}

}  // namespace

int main() {
  std::cout << "=== Ablation: shared scans (SeeDB) vs pruning (MuVE) ===\n";
  const auto diab =
      muve::data::WithWorkloadSize(muve::data::MakeDiabDataset(), 3, 3, 3);
  const auto nba_wide =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 13, 3);
  RunDataset(diab, muve::core::Weights::PaperDefault(), "usability-heavy");
  RunDataset(diab, muve::core::Weights{0.6, 0.2, 0.2}, "deviation-heavy");
  RunDataset(nba_wide, muve::core::Weights{0.6, 0.2, 0.2},
             "deviation-heavy, 13 measures");
  return 0;
}
