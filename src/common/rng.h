// Deterministic pseudo-random number generation.
//
// All randomized components of the library (synthetic dataset generators,
// the Hill-Climbing search's random starting point) draw from `Rng`, a
// splitmix64-seeded xoshiro256** generator.  Given the same seed the whole
// pipeline is bit-for-bit reproducible across runs and platforms.

#ifndef MUVE_COMMON_RNG_H_
#define MUVE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace muve::common {

// xoshiro256** with convenience samplers.  Not thread-safe; use one
// instance per thread or task.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform on the full 64-bit range.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller, then scaled.
  double Normal(double mean, double stddev);

  // Normal clamped (not truncated-resampled) into [lo, hi].
  double ClampedNormal(double mean, double stddev, double lo, double hi);

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  // Samples an index according to the (unnormalized, non-negative) weights.
  // Returns 0 when all weights are zero.  Requires !weights.empty().
  size_t WeightedIndex(const std::vector<double>& weights);

  // Exponential with the given rate (lambda > 0).
  double Exponential(double rate);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace muve::common

#endif  // MUVE_COMMON_RNG_H_
