// Deterministic fault injection for robustness tests.
//
// A *failpoint* is a named site in production code where a test (or an
// operator chasing a bug) can inject a failure without touching the code:
//
//   switch (MUVE_FAILPOINT("csv.read")) {
//     case common::FailpointAction::kError:
//       return common::Status::IoError("failpoint csv.read");
//     default:
//       break;
//   }
//
// Sites are compiled in only when the build defines MUVE_FAILPOINTS
// (cmake -DMUVE_FAILPOINTS=ON); otherwise MUVE_FAILPOINT(site) folds to
// kOff and the production binary carries zero overhead.  The registry
// itself (this header's functions) is always compiled so tests can probe
// FailpointsCompiledIn() and skip gracefully.
//
// Activation, in either build, is config-driven:
//   - env var, read once lazily:  MUVE_FAILPOINTS=csv.read=error;cache.insert=oom
//   - programmatic:               SetFailpoint("fused_scan.morsel", "delay(5ms)")
//
// Spec grammar (per site):  off | error | oom | throw | delay(<N>ms)
//   error  -> the site returns its natural error Status
//   oom    -> the site behaves as if an allocation was refused
//   throw  -> the site throws FailpointError (exercises exception paths)
//   delay  -> the site sleeps N ms, then proceeds normally (exercises
//             deadline interactions; the sleep happens inside FailpointHit
//             and the caller sees kDelay after waking)
//
// Known sites: csv.read, fused_scan.morsel, cache.insert, thread_pool.task.
// The registry accepts any name, so adding a site needs no central edit.

#ifndef MUVE_COMMON_FAILPOINT_H_
#define MUVE_COMMON_FAILPOINT_H_

#include <stdexcept>
#include <string>

#include "common/status.h"

namespace muve::common {

enum class FailpointAction { kOff, kError, kOom, kThrow, kDelay };

// Thrown by sites configured with "throw".
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("failpoint " + site + " threw") {}
};

// True when the build compiles MUVE_FAILPOINT sites in (MUVE_FAILPOINTS
// defined).  Tests that rely on injection should GTEST_SKIP otherwise.
bool FailpointsCompiledIn();

// Looks up `site` in the registry (loading MUVE_FAILPOINTS from the
// environment on first call).  For a "delay(Nms)" spec this sleeps N ms
// before returning kDelay.  Thread-safe.
FailpointAction FailpointHit(const char* site);

// Programmatic (test) configuration.  `spec` follows the grammar above;
// "off" removes the site.  Returns InvalidArgument on a malformed spec.
Status SetFailpoint(const std::string& site, const std::string& spec);

// Parses "site=spec;site=spec;..." (the env-var syntax) into the registry.
// Empty segments are ignored.  Stops at the first malformed entry.
Status ConfigureFailpointsFromString(const std::string& config);

// Deactivates every failpoint (tests call this in TearDown).
void ClearFailpoints();

}  // namespace muve::common

// Compile-time gate: call sites cost nothing unless MUVE_FAILPOINTS is
// defined by the build.
#ifdef MUVE_FAILPOINTS
#define MUVE_FAILPOINT(site) (::muve::common::FailpointHit(site))
#else
#define MUVE_FAILPOINT(site) (::muve::common::FailpointAction::kOff)
#endif

#endif  // MUVE_COMMON_FAILPOINT_H_
