// Dispatch-table selection: best supported level at first use,
// MUVE_SIMD env override, SetActiveLevel() test hook.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/simd/internal.h"
#include "common/simd/simd.h"

namespace muve::common::simd {

namespace {

// Case-insensitive ASCII compare (env values are short level names).
bool IEquals(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    const char ca = (*a >= 'A' && *a <= 'Z') ? *a - 'A' + 'a' : *a;
    const char cb = (*b >= 'A' && *b <= 'Z') ? *b - 'A' + 'a' : *b;
    if (ca != cb) return false;
  }
  return *a == '\0' && *b == '\0';
}

const KernelTable* ResolveInitialTable() {
  const KernelTable* best = KernelsFor(BestSupportedLevel());
  const char* env = std::getenv("MUVE_SIMD");
  if (env == nullptr || *env == '\0' || IEquals(env, "native")) {
    return best;
  }
  const KernelTable* forced = nullptr;
  if (IEquals(env, "scalar")) {
    forced = &ScalarKernels();
  } else if (IEquals(env, "avx2")) {
    forced = KernelsFor(DispatchLevel::kAvx2);
  } else if (IEquals(env, "neon")) {
    forced = KernelsFor(DispatchLevel::kNeon);
  } else {
    std::fprintf(stderr,
                 "[muve] warning: MUVE_SIMD='%s' is not a known level "
                 "(scalar|neon|avx2|native); using '%s'\n",
                 env, best->name);
    return best;
  }
  if (forced == nullptr) {
    std::fprintf(stderr,
                 "[muve] warning: MUVE_SIMD='%s' is not supported by this "
                 "binary/CPU; using '%s'\n",
                 env, best->name);
    return best;
  }
  return forced;
}

std::atomic<const KernelTable*>& ActiveTableSlot() {
  static std::atomic<const KernelTable*> slot{nullptr};
  return slot;
}

const KernelTable* ActiveTable() {
  auto& slot = ActiveTableSlot();
  const KernelTable* t = slot.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  const KernelTable* resolved = ResolveInitialTable();
  // First resolver wins; racers resolve to the same table anyway
  // (ResolveInitialTable is deterministic per process).
  const KernelTable* expected = nullptr;
  if (slot.compare_exchange_strong(expected, resolved,
                                   std::memory_order_acq_rel)) {
    return resolved;
  }
  return expected;
}

}  // namespace

const char* DispatchLevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kNeon:
      return "neon";
    case DispatchLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

const KernelTable* KernelsFor(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return &ScalarKernels();
    case DispatchLevel::kNeon:
#if defined(MUVE_SIMD_NEON)
      return &NeonKernelsImpl();
#else
      return nullptr;
#endif
    case DispatchLevel::kAvx2:
#if defined(MUVE_SIMD_AVX2)
      return Avx2SupportedAtRuntime() ? &Avx2KernelsImpl() : nullptr;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

DispatchLevel BestSupportedLevel() {
#if defined(MUVE_SIMD_AVX2)
  if (Avx2SupportedAtRuntime()) return DispatchLevel::kAvx2;
#endif
#if defined(MUVE_SIMD_NEON)
  return DispatchLevel::kNeon;
#else
  return DispatchLevel::kScalar;
#endif
}

const KernelTable& ActiveKernels() { return *ActiveTable(); }

DispatchLevel ActiveLevel() { return ActiveTable()->level; }

const char* ActiveLevelName() { return ActiveTable()->name; }

bool SetActiveLevel(DispatchLevel level) {
  const KernelTable* table = KernelsFor(level);
  if (table == nullptr) return false;
  ActiveTableSlot().store(table, std::memory_order_release);
  return true;
}

}  // namespace muve::common::simd
