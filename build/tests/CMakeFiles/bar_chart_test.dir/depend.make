# Empty dependencies file for bar_chart_test.
# This may be replaced when dependencies are built.
