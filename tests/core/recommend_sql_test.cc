#include "core/recommend_sql.h"

#include <gtest/gtest.h>

#include "storage/csv.h"

namespace muve::core {
namespace {

class RecommendSqlTest : public ::testing::Test {
 protected:
  RecommendSqlTest() {
    storage::Schema schema({
        {"day", storage::ValueType::kInt64, storage::FieldRole::kDimension},
        {"region", storage::ValueType::kString, storage::FieldRole::kNone},
        {"revenue", storage::ValueType::kDouble,
         storage::FieldRole::kMeasure},
    });
    storage::CsvOptions options;
    options.schema = schema;
    std::string csv = "day,region,revenue\n";
    for (int i = 0; i < 40; ++i) {
      const int day = i % 20;
      const bool south = i % 2 == 0;
      const double revenue = south ? 10.0 + day * 2.0 : 25.0;
      csv += std::to_string(day) + "," + (south ? "south" : "north") + "," +
             std::to_string(revenue) + "\n";
    }
    auto table = storage::ReadCsvString(csv, options);
    EXPECT_TRUE(table.ok());
    EXPECT_TRUE(
        catalog_.RegisterTable("sales", std::move(table).value()).ok());
  }

  sql::Catalog catalog_;
};

TEST_F(RecommendSqlTest, EndToEndMuve) {
  auto rec = RecommendSql(
      "RECOMMEND TOP 2 VIEWS FROM sales WHERE region = 'south' USING MUVE",
      catalog_);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->views.size(), 2u);
  EXPECT_EQ(rec->scheme, "MuVE-MuVE");
  EXPECT_GT(rec->views[0].utility, 0.0);
}

TEST_F(RecommendSqlTest, SchemeSelection) {
  const struct {
    const char* name;
    const char* scheme;
  } cases[] = {
      {"LINEAR", "Linear-Linear"},
      {"HC", "HC-Linear"},
      {"MUVE_LINEAR", "MuVE-Linear"},
      {"MUVE", "MuVE-MuVE"},
  };
  for (const auto& c : cases) {
    auto rec = RecommendSql(
        std::string("RECOMMEND TOP 1 VIEWS FROM sales WHERE region = "
                    "'south' USING ") +
            c.name,
        catalog_);
    ASSERT_TRUE(rec.ok()) << c.name << ": " << rec.status().ToString();
    EXPECT_EQ(rec->scheme, c.scheme);
  }
}

TEST_F(RecommendSqlTest, ExactSchemesAgreeThroughSqlPath) {
  auto linear = RecommendSql(
      "RECOMMEND TOP 3 VIEWS FROM sales WHERE region = 'south' USING LINEAR "
      "WEIGHTS (0.4, 0.3, 0.3)",
      catalog_);
  auto muve = RecommendSql(
      "RECOMMEND TOP 3 VIEWS FROM sales WHERE region = 'south' USING MUVE "
      "WEIGHTS (0.4, 0.3, 0.3)",
      catalog_);
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(muve.ok());
  ASSERT_EQ(linear->views.size(), muve->views.size());
  for (size_t i = 0; i < linear->views.size(); ++i) {
    EXPECT_NEAR(linear->views[i].utility, muve->views[i].utility, 1e-9);
  }
}

TEST_F(RecommendSqlTest, CustomWeightsAndDistance) {
  auto rec = RecommendSql(
      "RECOMMEND TOP 1 VIEWS FROM sales WHERE region = 'south' "
      "USING MUVE WEIGHTS (0.6, 0.2, 0.2) DISTANCE EMD",
      catalog_);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->views.size(), 1u);
}

TEST_F(RecommendSqlTest, Errors) {
  // Missing WHERE.
  EXPECT_FALSE(
      RecommendSql("RECOMMEND VIEWS FROM sales", catalog_).ok());
  // Unknown table.
  EXPECT_FALSE(RecommendSql(
                   "RECOMMEND VIEWS FROM nope WHERE region = 'south'",
                   catalog_)
                   .ok());
  // Unknown scheme.
  EXPECT_FALSE(RecommendSql(
                   "RECOMMEND VIEWS FROM sales WHERE region = 'south' "
                   "USING QUANTUM",
                   catalog_)
                   .ok());
  // Bad weights.
  EXPECT_FALSE(RecommendSql(
                   "RECOMMEND VIEWS FROM sales WHERE region = 'south' "
                   "USING MUVE WEIGHTS (0.9, 0.9, 0.9)",
                   catalog_)
                   .ok());
  // Unknown distance.
  EXPECT_FALSE(RecommendSql(
                   "RECOMMEND VIEWS FROM sales WHERE region = 'south' "
                   "USING MUVE DISTANCE cosine",
                   catalog_)
                   .ok());
  // Predicate selecting nothing.
  EXPECT_FALSE(RecommendSql(
                   "RECOMMEND VIEWS FROM sales WHERE region = 'mars'",
                   catalog_)
                   .ok());
  // Not a RECOMMEND statement.
  EXPECT_FALSE(RecommendSql("SELECT * FROM sales", catalog_).ok());
}

TEST_F(RecommendSqlTest, TableWithoutRolesRejected) {
  auto plain = storage::ReadCsvString("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(
      catalog_.RegisterTable("plain", std::move(plain).value()).ok());
  EXPECT_FALSE(
      RecommendSql("RECOMMEND VIEWS FROM plain WHERE a = 1", catalog_).ok());
}

}  // namespace
}  // namespace muve::core
