// Cross-query differential suite: the tentpole proof that the sharing
// layers (DESIGN.md §13) are semantically invisible.
//
// For fuzzed (predicate, scheme, alphas, k) configurations the SAME
// recommendation request runs three ways —
//   1. isolated:  per-request cache, no coalescing (the pre-sharing path);
//   2. shared:    one cross-request BaseHistogramCache reused warm across
//                 every request on the entry, coalescing on;
//   3. shared x8: eight concurrent requests racing the same cold shared
//                 store —
// and the returned top-k must be BIT-identical across all of them (exact
// double bit patterns, not EXPECT_NEAR).  ExecStats are deliberately NOT
// compared: with a shared store they are history-dependent by design.
//
// Also pinned here: the cache's stats contract hits + misses == lookups,
// exact under concurrency.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/recommender.h"
#include "core/search_options.h"
#include "data/toy.h"
#include "fuzz_util.h"
#include "sql/parser.h"
#include "storage/base_histogram_cache.h"
#include "storage/predicate.h"

namespace muve::core {
namespace {

using muve::testutil::FuzzSeed;
using muve::testutil::FuzzTrace;

// Toy-schema predicates that select different, non-empty row subsets.
constexpr const char* kPredicates[] = {
    nullptr,  // the dataset's built-in analyst predicate
    "x >= 2",
    "x >= 2 AND m1 > 0",
    "m1 > 0 AND x >= 2",  // operand-permuted twin of the above
    "y <= 6 OR x = 1",
};

data::Dataset MakeFilteredToy(const char* predicate) {
  data::Dataset ds = data::MakeToyDataset();
  if (predicate == nullptr) return ds;
  auto stmt = sql::ParseSelect(std::string("SELECT * FROM t WHERE ") +
                               predicate);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto rows = storage::Filter(*ds.table, stmt->where.get());
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_FALSE(rows->empty()) << "useless fuzz predicate: " << predicate;
  ds.target_rows = *rows;
  ds.query_predicate_sql = predicate;
  return ds;
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void AssertViewsBitIdentical(const Recommendation& expected,
                             const Recommendation& actual,
                             const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(expected.views.size(), actual.views.size());
  for (size_t i = 0; i < expected.views.size(); ++i) {
    const ScoredView& e = expected.views[i];
    const ScoredView& a = actual.views[i];
    EXPECT_EQ(e.view.dimension, a.view.dimension) << "rank " << i;
    EXPECT_EQ(e.view.measure, a.view.measure) << "rank " << i;
    EXPECT_EQ(e.view.function, a.view.function) << "rank " << i;
    EXPECT_EQ(e.bins, a.bins) << "rank " << i;
    EXPECT_TRUE(SameBits(e.utility, a.utility))
        << "rank " << i << ": " << e.utility << " vs " << a.utility;
    EXPECT_TRUE(SameBits(e.deviation, a.deviation)) << "rank " << i;
    EXPECT_TRUE(SameBits(e.accuracy, a.accuracy)) << "rank " << i;
    EXPECT_TRUE(SameBits(e.usability, a.usability)) << "rank " << i;
  }
}

SearchOptions DrawOptions(uint64_t seed) {
  std::mt19937_64 rng(seed);
  SearchOptions options;
  switch (rng() % 4) {
    case 0:
      options.horizontal = HorizontalStrategy::kLinear;
      options.vertical = VerticalStrategy::kLinear;
      break;
    case 1:
      options.horizontal = HorizontalStrategy::kHillClimbing;
      options.vertical = VerticalStrategy::kLinear;
      break;
    case 2:
      options.horizontal = HorizontalStrategy::kMuve;
      options.vertical = VerticalStrategy::kLinear;
      break;
    default:
      options.horizontal = HorizontalStrategy::kMuve;
      options.vertical = VerticalStrategy::kMuve;
      break;
  }
  const double d = static_cast<double>(rng() % 11) / 10.0;
  const double a = static_cast<double>(rng() % 11) / 10.0 * (1.0 - d);
  options.weights = Weights{d, a, std::max(0.0, 1.0 - d - a)};
  options.k = static_cast<int>(1 + rng() % 6);
  return options;
}

TEST(CrossQueryCacheTest, FuzzSharedCachesAreSemanticallyInvisible) {
  // One recommender + one long-lived shared store per predicate, reused
  // across every fuzz case that draws it — exactly the server's registry
  // shape, so later cases run against a WARM shared store.
  struct Entry {
    std::unique_ptr<Recommender> recommender;
    std::shared_ptr<storage::BaseHistogramCache> store;
  };
  std::vector<Entry> entries;
  for (const char* predicate : kPredicates) {
    auto rec = Recommender::Create(MakeFilteredToy(predicate));
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    Entry entry;
    entry.recommender =
        std::make_unique<Recommender>(std::move(rec).value());
    entry.store = std::make_shared<storage::BaseHistogramCache>();
    entries.push_back(std::move(entry));
  }

  constexpr uint64_t kCases = 24;
  for (uint64_t i = 0; i < kCases; ++i) {
    const uint64_t seed = FuzzSeed(i);
    SCOPED_TRACE(FuzzTrace(i, seed));
    Entry& entry = entries[seed % (sizeof(kPredicates) /
                                   sizeof(kPredicates[0]))];
    const SearchOptions base = DrawOptions(seed);

    // 1. Isolated: the pre-sharing execution path.
    SearchOptions isolated = base;
    isolated.shared_base_cache = nullptr;
    isolated.fused_coalescing = false;
    auto want = entry.recommender->Recommend(isolated);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    // 2. Shared store (possibly warm from an earlier case), coalescing on.
    SearchOptions shared = base;
    shared.shared_base_cache = entry.store;
    auto got = entry.recommender->Recommend(shared);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    AssertViewsBitIdentical(*want, *got, "shared store, 1 request");

    // Stats contract on the shared store, exact.
    const auto stats = entry.store->TotalStats();
    EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  }
}

TEST(CrossQueryCacheTest, FuzzConcurrentRequestsOnOneColdStoreAgree) {
  constexpr uint64_t kCases = 6;
  constexpr int kThreads = 8;
  for (uint64_t i = 0; i < kCases; ++i) {
    const uint64_t seed = FuzzSeed(i + 5000);
    SCOPED_TRACE(FuzzTrace(i, seed));
    const char* predicate =
        kPredicates[seed % (sizeof(kPredicates) / sizeof(kPredicates[0]))];
    auto rec = Recommender::Create(MakeFilteredToy(predicate));
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    const SearchOptions base = DrawOptions(seed);

    SearchOptions isolated = base;
    isolated.shared_base_cache = nullptr;
    isolated.fused_coalescing = false;
    auto want = rec->Recommend(isolated);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    // Eight requests race ONE cold shared store — the server's stampede
    // shape.  Every one must reproduce the isolated result bit-for-bit.
    auto store = std::make_shared<storage::BaseHistogramCache>();
    std::vector<common::Result<Recommendation>> results;
    results.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      results.push_back(common::Status::Internal("not run"));
    }
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        SearchOptions shared = base;
        shared.shared_base_cache = store;
        results[t] = rec->Recommend(shared);
      });
    }
    for (auto& t : threads) t.join();
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(results[t].ok()) << results[t].status().ToString();
      AssertViewsBitIdentical(*want, *results[t], "concurrent shared");
    }
    const auto stats = store->TotalStats();
    EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  }
}

}  // namespace
}  // namespace muve::core
