#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace muve::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad weight");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad weight");
  EXPECT_EQ(status.ToString(), "invalid_argument: bad weight");
}

TEST(StatusTest, FactoryFunctionsSetDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "parse_error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "unavailable");
}

TEST(StatusTest, UnavailableMapsToExitCode7) {
  // The shed/overload outcome gets its own shell-visible exit code so a
  // scripted client can tell "back off and retry" (7) apart from both a
  // request-budget trip (6) and a hard failure (1-3).
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kUnavailable), 7);
  EXPECT_EQ(ExitCodeForStatus(StatusCode::kResourceExhausted), 6);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> result{Status::OK()};
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  MUVE_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

Result<int> ChainThroughMacro(int x) {
  MUVE_ASSIGN_OR_RETURN(const int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, MacrosPropagateErrors) {
  auto ok = ChainThroughMacro(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 9);

  auto err = ChainThroughMacro(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace muve::common
