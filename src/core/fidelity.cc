#include "core/fidelity.h"

#include <algorithm>

namespace muve::core {

double TotalUtility(const std::vector<ScoredView>& views) {
  double total = 0.0;
  for (const ScoredView& v : views) total += v.utility;
  return total;
}

double Fidelity(const std::vector<ScoredView>& optimal,
                const std::vector<ScoredView>& recommended) {
  const double u_opt = TotalUtility(optimal);
  if (u_opt <= 0.0) return 1.0;
  const double u_rec = TotalUtility(recommended);
  return std::clamp(1.0 - (u_opt - u_rec) / u_opt, 0.0, 1.0);
}

}  // namespace muve::core
