#include "core/top_k_tracker.h"

#include <algorithm>

#include "common/logging.h"

namespace muve::core {

void TopKTracker::Update(size_t view_index, const ScoredView& scored) {
  MUVE_CHECK(view_index < bests_.size()) << "view index out of range";
  std::optional<ScoredView>& slot = bests_[view_index];
  if (!slot.has_value()) {
    slot = scored;
    utilities_.insert(scored.utility);
    return;
  }
  if (scored.utility > slot->utility) {
    const auto it = utilities_.find(slot->utility);
    MUVE_DCHECK(it != utilities_.end());
    utilities_.erase(it);
    slot = scored;
    utilities_.insert(scored.utility);
  }
}

double TopKTracker::Threshold() const {
  if (static_cast<int>(utilities_.size()) < k_) {
    return -std::numeric_limits<double>::infinity();
  }
  auto it = utilities_.rbegin();
  std::advance(it, k_ - 1);
  return *it;
}

std::vector<ScoredView> TopKTracker::TopK() const {
  // Carry the view index through the sort so ties resolve by workload
  // position, not by std::sort's whims: the ranking must be a pure
  // function of the per-view bests for parallel runs to merge
  // deterministically into the serial result.
  std::vector<std::pair<size_t, ScoredView>> all;
  for (size_t i = 0; i < bests_.size(); ++i) {
    if (bests_[i].has_value()) all.emplace_back(i, *bests_[i]);
  }
  std::sort(all.begin(), all.end(),
            [](const std::pair<size_t, ScoredView>& a,
               const std::pair<size_t, ScoredView>& b) {
              if (a.second.utility != b.second.utility) {
                return a.second.utility > b.second.utility;
              }
              if (a.first != b.first) return a.first < b.first;
              return a.second.bins < b.second.bins;
            });
  if (all.size() > static_cast<size_t>(k_)) {
    all.resize(static_cast<size_t>(k_));
  }
  std::vector<ScoredView> out;
  out.reserve(all.size());
  for (auto& [index, scored] : all) out.push_back(std::move(scored));
  return out;
}

}  // namespace muve::core
