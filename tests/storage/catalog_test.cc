// Catalog semantics: create / drop / get / append under MVCC snapshots,
// the data_epoch / base_epoch contract, all-or-nothing appends, and
// snapshot immutability under concurrent ingest (run under
// -DMUVE_SANITIZE=thread via the `tsan` label).

#include "storage/catalog.h"

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace muve::storage {
namespace {

Schema TwoIntSchema() {
  return Schema({Field("id", ValueType::kInt64, FieldRole::kNone),
                 Field("v", ValueType::kInt64, FieldRole::kMeasure)});
}

// Rows [begin, end) with id = i, v = 2 * i.
Table MakeRows(size_t begin, size_t end, size_t chunk_rows = 8) {
  Table t(TwoIntSchema(), chunk_rows);
  for (size_t i = begin; i < end; ++i) {
    EXPECT_TRUE(
        t.AppendRow({Value(static_cast<int64_t>(i)),
                     Value(static_cast<int64_t>(2 * i))})
            .ok());
  }
  return t;
}

TEST(CatalogTest, CreateGetDropLifecycle) {
  Catalog catalog;
  EXPECT_FALSE(catalog.Contains("t"));
  EXPECT_EQ(catalog.Get("t").status().code(), common::StatusCode::kNotFound);

  ASSERT_TRUE(catalog.Create("t", MakeRows(0, 10)).ok());
  EXPECT_TRUE(catalog.Contains("t"));

  auto snap = catalog.Get("t");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->table->num_rows(), 10u);
  EXPECT_EQ(snap->data_epoch, 1u);

  EXPECT_EQ(catalog.Create("t", MakeRows(0, 1)).code(),
            common::StatusCode::kAlreadyExists);

  ASSERT_TRUE(catalog.Drop("t").ok());
  EXPECT_FALSE(catalog.Contains("t"));
  EXPECT_EQ(catalog.Drop("t").code(), common::StatusCode::kNotFound);

  // The snapshot taken before the drop stays readable.
  EXPECT_EQ(snap->table->num_rows(), 10u);
  EXPECT_EQ(snap->table->At(9, 1).AsInt64(), 18);
}

TEST(CatalogTest, ListIsSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Create("zeta", MakeRows(0, 1)).ok());
  ASSERT_TRUE(catalog.Create("alpha", MakeRows(0, 1)).ok());
  ASSERT_TRUE(catalog.Create("mid", MakeRows(0, 1)).ok());
  EXPECT_EQ(catalog.List(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(CatalogTest, AppendBumpsDataEpochPreservesBaseEpoch) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Create("t", MakeRows(0, 10)).ok());
  auto before = catalog.Get("t");
  ASSERT_TRUE(before.ok());

  auto appended = catalog.Append("t", MakeRows(10, 25));
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->rows_before, 10u);
  EXPECT_EQ(appended->rows_appended, 15u);
  EXPECT_EQ(appended->snapshot.table->num_rows(), 25u);
  EXPECT_EQ(appended->snapshot.data_epoch, before->data_epoch + 1);
  EXPECT_EQ(appended->snapshot.base_epoch, before->base_epoch);

  // Row ids are stable: the appended version extends, never reorders.
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(appended->snapshot.table->At(i, 0).AsInt64(),
              static_cast<int64_t>(i));
  }
  // The pre-append snapshot still sees exactly its 10 rows.
  EXPECT_EQ(before->table->num_rows(), 10u);

  EXPECT_EQ(catalog.Append("missing", MakeRows(0, 1)).status().code(),
            common::StatusCode::kNotFound);
}

TEST(CatalogTest, AppendIsAllOrNothing) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Create("t", MakeRows(0, 10)).ok());

  // A batch whose first column is string-typed cannot append into the
  // int64 id column; the whole batch must be rejected with the published
  // version untouched.
  Schema str_schema({Field("id", ValueType::kString, FieldRole::kNone),
                     Field("v", ValueType::kInt64, FieldRole::kMeasure)});
  Table bad_rows(str_schema, 8);
  ASSERT_TRUE(bad_rows.AppendRow({Value("x"), Value(int64_t{1})}).ok());

  auto result = catalog.Append("t", bad_rows);
  EXPECT_FALSE(result.ok());

  auto snap = catalog.Get("t");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->table->num_rows(), 10u);
  EXPECT_EQ(snap->data_epoch, 1u);
}

TEST(CatalogTest, RecreateAfterDropGetsFreshBaseEpoch) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Create("t", MakeRows(0, 4)).ok());
  auto first = catalog.Get("t");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(catalog.Drop("t").ok());
  ASSERT_TRUE(catalog.Create("t", MakeRows(0, 4)).ok());
  auto second = catalog.Get("t");
  ASSERT_TRUE(second.ok());
  // A recreated name must never alias derived state of its predecessor.
  EXPECT_NE(second->base_epoch, first->base_epoch);
}

TEST(CatalogTest, InvalidateBumpsBothEpochs) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Create("t", MakeRows(0, 4)).ok());
  auto before = catalog.Get("t");
  ASSERT_TRUE(before.ok());

  auto after = catalog.Invalidate("t");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->data_epoch, before->data_epoch + 1);
  EXPECT_NE(after->base_epoch, before->base_epoch);
  EXPECT_EQ(after->table->num_rows(), 4u);

  EXPECT_EQ(catalog.Invalidate("missing").status().code(),
            common::StatusCode::kNotFound);
}

// Readers snapshot while a writer appends: every snapshot must be a
// consistent prefix — id column equal to the row index everywhere, and
// the value sum matching the closed form for its row count.  Exercises
// the copy-on-write tail chunk under real concurrency (TSan-sensitive).
TEST(CatalogTest, ConcurrentReadersSeeConsistentSnapshots) {
  constexpr size_t kBatch = 7;       // deliberately not the chunk size
  constexpr size_t kAppends = 40;
  constexpr size_t kInitial = 16;

  Catalog catalog;
  ASSERT_TRUE(catalog.Create("t", MakeRows(0, kInitial)).ok());

  std::thread writer([&catalog]() {
    size_t next = kInitial;
    for (size_t i = 0; i < kAppends; ++i) {
      auto result = catalog.Append("t", MakeRows(next, next + kBatch));
      ASSERT_TRUE(result.ok());
      next += kBatch;
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&]() {
      for (int iter = 0; iter < 60; ++iter) {
        auto snap = catalog.Get("t");
        ASSERT_TRUE(snap.ok());
        const Table& table = *snap->table;
        const size_t n = table.num_rows();
        ASSERT_GE(n, kInitial);
        ASSERT_EQ((n - kInitial) % kBatch, 0u);
        int64_t sum = 0;
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(table.At(i, 0).AsInt64(), static_cast<int64_t>(i));
          sum += table.At(i, 1).AsInt64();
        }
        // v = 2 * i  =>  sum = n * (n - 1).
        ASSERT_EQ(sum, static_cast<int64_t>(n) * static_cast<int64_t>(n - 1));
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();

  auto final_snap = catalog.Get("t");
  ASSERT_TRUE(final_snap.ok());
  EXPECT_EQ(final_snap->table->num_rows(), kInitial + kAppends * kBatch);
  EXPECT_EQ(final_snap->data_epoch, 1u + kAppends);
}

}  // namespace
}  // namespace muve::storage
