#include "common/exec_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace muve::common {
namespace {

TEST(ExecContextTest, DefaultIsUnbounded) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.bounded());
  EXPECT_FALSE(ctx.Expired());
  EXPECT_EQ(ctx.expiry_code(), StatusCode::kOk);
  EXPECT_TRUE(ctx.ExpiryStatus().ok());
}

TEST(ExecContextTest, NullHelperNeverExpires) {
  EXPECT_FALSE(Expired(nullptr));
  ExecContext ctx;
  EXPECT_FALSE(Expired(&ctx));
}

TEST(ExecContextTest, ZeroDeadlineExpiresImmediately) {
  ExecContext ctx;
  ctx.SetDeadlineAfterMillis(0.0);
  EXPECT_TRUE(ctx.bounded());
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.expiry_code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.ExpiryStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, NegativeDeadlineExpiresImmediately) {
  ExecContext ctx;
  ctx.SetDeadlineAfterMillis(-5.0);
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.expiry_code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, GenerousDeadlineDoesNotExpire) {
  ExecContext ctx;
  ctx.SetDeadlineAfterMillis(60'000.0);
  EXPECT_TRUE(ctx.bounded());
  EXPECT_FALSE(ctx.Expired());
  EXPECT_EQ(ctx.expiry_code(), StatusCode::kOk);
}

TEST(ExecContextTest, DeadlineFiresAfterElapsing) {
  ExecContext ctx;
  ctx.SetDeadlineAfterMillis(1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.expiry_code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, CancellationTokenTrips) {
  ExecContext ctx;
  auto token = std::make_shared<CancellationToken>();
  ctx.SetCancellationToken(token);
  EXPECT_TRUE(ctx.bounded());
  EXPECT_FALSE(ctx.Expired());
  token->Cancel();
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.expiry_code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.ExpiryStatus().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, RowBudgetTripsAfterCharge) {
  ExecContext ctx;
  ctx.SetRowBudget(100);
  EXPECT_FALSE(ctx.Expired());
  ctx.ChargeRows(100);
  // At the budget, not over it: still alive.
  EXPECT_FALSE(ctx.Expired());
  ctx.ChargeRows(1);
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.expiry_code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.rows_charged(), 101);
}

TEST(ExecContextTest, ClearingRowBudgetUnbounds) {
  ExecContext ctx;
  ctx.SetRowBudget(10);
  EXPECT_TRUE(ctx.bounded());
  ctx.SetRowBudget(0);
  EXPECT_FALSE(ctx.bounded());
  ctx.ChargeRows(1'000'000);
  EXPECT_FALSE(ctx.Expired());
}

TEST(ExecContextTest, NegativeAndZeroChargesAreIgnored) {
  ExecContext ctx;
  ctx.ChargeRows(-50);
  ctx.ChargeRows(0);
  EXPECT_EQ(ctx.rows_charged(), 0);
}

TEST(ExecContextTest, ExpiryIsStickyAndKeepsFirstCause) {
  ExecContext ctx;
  auto token = std::make_shared<CancellationToken>();
  ctx.SetCancellationToken(token);
  ctx.SetRowBudget(10);
  token->Cancel();
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.expiry_code(), StatusCode::kCancelled);
  // A second bound tripping later must not overwrite the first cause.
  ctx.ChargeRows(1'000);
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.expiry_code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, CheckOrderPrefersCancellationOverBudget) {
  // When several bounds are simultaneously trippable at the first poll,
  // the documented check order (cancellation, budget, clock) decides the
  // reported cause deterministically.
  ExecContext ctx;
  auto token = std::make_shared<CancellationToken>();
  ctx.SetCancellationToken(token);
  ctx.SetRowBudget(1);
  ctx.SetDeadlineAfterMillis(0.0);
  token->Cancel();
  ctx.ChargeRows(100);
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.expiry_code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, ConcurrentChargesAndPollsAgreeOnOneCause) {
  ExecContext ctx;
  ctx.SetRowBudget(1'000);
  constexpr int kThreads = 8;
  std::atomic<int> expired_seen{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ctx, &expired_seen] {
      for (int i = 0; i < 1'000; ++i) {
        ctx.ChargeRows(10);
        if (ctx.Expired()) {
          ++expired_seen;
          break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.expiry_code(), StatusCode::kResourceExhausted);
  EXPECT_GT(expired_seen.load(), 0);
}

TEST(CancellationTokenTest, StartsAliveAndLatchesCancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // Idempotent.
  EXPECT_TRUE(token.cancelled());
}

}  // namespace
}  // namespace muve::common
