# Empty dependencies file for ablate_sharing.
# This may be replaced when dependencies are built.
