# Empty dependencies file for diabetes_exploration.
# This may be replaced when dependencies are built.
