#include "core/fidelity.h"

#include <algorithm>

namespace muve::core {

double TotalUtility(const ScoredView* views, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += views[i].utility;
  return total;
}

double TotalUtility(const std::vector<ScoredView>& views) {
  return TotalUtility(views.data(), views.size());
}

double Fidelity(const std::vector<ScoredView>& optimal,
                const std::vector<ScoredView>& recommended) {
  const double u_opt = TotalUtility(optimal);
  if (u_opt <= 0.0) return 1.0;
  const double u_rec = TotalUtility(recommended);
  return std::clamp(1.0 - (u_opt - u_rec) / u_opt, 0.0, 1.0);
}

}  // namespace muve::core
