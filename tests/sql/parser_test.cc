#include "sql/parser.h"

#include <gtest/gtest.h>

namespace muve::sql {
namespace {

SelectStatement MustParseSelect(const std::string& sql) {
  auto result = ParseSelect(sql);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  return result.ok() ? std::move(result).value() : SelectStatement{};
}

TEST(ParserTest, SelectStar) {
  auto stmt = MustParseSelect("SELECT * FROM players");
  ASSERT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].kind, SelectItem::Kind::kStar);
  EXPECT_EQ(stmt.table_name, "players");
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(ParserTest, PaperQueryQ) {
  // Q: SELECT * FROM players WHERE team=GSW (string literal quoted here).
  auto stmt = MustParseSelect("SELECT * FROM players WHERE team = 'GSW'");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->ToString(), "team = GSW");
}

TEST(ParserTest, PaperViewWithBins) {
  // V_{i,b}: SELECT A, F(M) ... GROUP BY A NUMBER OF BINS b.
  auto stmt = MustParseSelect(
      "SELECT MP, SUM(3PAr) FROM players WHERE team = 'GSW' "
      "GROUP BY MP NUMBER OF BINS 3");
  ASSERT_EQ(stmt.items.size(), 2u);
  EXPECT_EQ(stmt.items[0].column, "MP");
  EXPECT_EQ(stmt.items[1].kind, SelectItem::Kind::kAggregate);
  EXPECT_EQ(stmt.items[1].function, storage::AggregateFunction::kSum);
  EXPECT_EQ(stmt.items[1].column, "3PAr");
  ASSERT_TRUE(stmt.group_by.has_value());
  EXPECT_EQ(*stmt.group_by, "MP");
  ASSERT_TRUE(stmt.num_bins.has_value());
  EXPECT_EQ(*stmt.num_bins, 3);
}

TEST(ParserTest, CountStarAndAliases) {
  auto stmt = MustParseSelect(
      "SELECT age AS years, COUNT(*) AS n FROM t GROUP BY age");
  EXPECT_EQ(stmt.items[0].alias, "years");
  EXPECT_TRUE(stmt.items[1].count_star);
  EXPECT_EQ(stmt.items[1].OutputName(), "n");
}

TEST(ParserTest, StarOnlyForCount) {
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM t").ok());
}

TEST(ParserTest, WherePrecedenceAndParens) {
  auto stmt = MustParseSelect(
      "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  // AND binds tighter than OR.
  EXPECT_EQ(stmt.where->ToString(), "(a = 1 OR (b = 2 AND c = 3))");

  auto grouped = MustParseSelect(
      "SELECT * FROM t WHERE (a = 1 OR b = 2) AND NOT c > 3");
  EXPECT_EQ(grouped.where->ToString(),
            "((a = 1 OR b = 2) AND NOT (c > 3))");
}

TEST(ParserTest, InListPredicate) {
  auto stmt = MustParseSelect(
      "SELECT * FROM t WHERE team IN ('GSW', 'CLE', 'SAS')");
  EXPECT_EQ(stmt.where->ToString(), "team IN (GSW, CLE, SAS)");
  auto numeric = MustParseSelect("SELECT * FROM t WHERE a IN (1, 2.5, 3)");
  EXPECT_EQ(numeric.where->ToString(), "a IN (1, 2.500000, 3)");
}

TEST(ParserTest, NotInPredicate) {
  auto stmt = MustParseSelect("SELECT * FROM t WHERE a NOT IN (1, 2)");
  EXPECT_EQ(stmt.where->ToString(), "NOT (a IN (1, 2))");
}

TEST(ParserTest, IsNullPredicates) {
  auto is_null = MustParseSelect("SELECT * FROM t WHERE a IS NULL");
  EXPECT_EQ(is_null.where->ToString(), "a IS NULL");
  auto not_null = MustParseSelect("SELECT * FROM t WHERE a IS NOT NULL");
  EXPECT_EQ(not_null.where->ToString(), "a IS NOT NULL");
}

TEST(ParserTest, MalformedInAndIsForms) {
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a IN ()").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a IN (1,").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a IS 3").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a NOT 1").ok());
}

TEST(ParserTest, BetweenPredicate) {
  auto stmt = MustParseSelect(
      "SELECT * FROM t WHERE age BETWEEN 20 AND 30");
  EXPECT_EQ(stmt.where->ToString(), "age BETWEEN 20 AND 30");
}

TEST(ParserTest, OrderByAndLimit) {
  auto stmt = MustParseSelect(
      "SELECT a FROM t ORDER BY a DESC LIMIT 10");
  ASSERT_TRUE(stmt.order_by.has_value());
  EXPECT_EQ(stmt.order_by->column, "a");
  EXPECT_TRUE(stmt.order_by->descending);
  ASSERT_TRUE(stmt.limit.has_value());
  EXPECT_EQ(*stmt.limit, 10);
}

TEST(ParserTest, FloatAndNegations) {
  auto stmt = MustParseSelect("SELECT * FROM t WHERE w >= 2.5");
  EXPECT_EQ(stmt.where->ToString(), "w >= 2.500000");
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseSelect("SELECT * FROM t;").ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseSelect("SELECT * FROM t garbage").ok());
}

TEST(ParserTest, ErrorsCarryPositions) {
  auto result = ParseSelect("SELECT FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("position"), std::string::npos);
}

TEST(ParserTest, MalformedStatements) {
  EXPECT_FALSE(ParseSelect("SELECT * players").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t GROUP age").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t GROUP BY a NUMBER BINS 3").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t GROUP BY a NUMBER OF BINS 0").ok());
  EXPECT_FALSE(ParseSelect("SELECT FOO(x) FROM t").ok());
  EXPECT_FALSE(ParseSelect("").ok());
}

TEST(ParserTest, RecommendDefaults) {
  auto result = Parse("RECOMMEND VIEWS FROM players WHERE team = 'GSW'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->kind, Statement::Kind::kRecommend);
  const RecommendStatement& rec = result->recommend;
  EXPECT_EQ(rec.top_k, 5);
  EXPECT_EQ(rec.scheme, "MUVE");
  EXPECT_DOUBLE_EQ(rec.alpha_d, 0.2);
  EXPECT_DOUBLE_EQ(rec.alpha_s, 0.6);
  ASSERT_NE(rec.where, nullptr);
}

TEST(ParserTest, RecommendFullForm) {
  auto result = Parse(
      "RECOMMEND TOP 3 VIEWS FROM diab WHERE Outcome = 1 "
      "USING MUVE_LINEAR WEIGHTS (0.6, 0.2, 0.2) DISTANCE EMD;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RecommendStatement& rec = result->recommend;
  EXPECT_EQ(rec.top_k, 3);
  EXPECT_EQ(rec.scheme, "MUVE_LINEAR");
  EXPECT_DOUBLE_EQ(rec.alpha_d, 0.6);
  EXPECT_DOUBLE_EQ(rec.alpha_a, 0.2);
  EXPECT_DOUBLE_EQ(rec.alpha_s, 0.2);
  EXPECT_EQ(rec.distance, "EMD");
}

TEST(ParserTest, RecommendRejectsBadK) {
  EXPECT_FALSE(Parse("RECOMMEND TOP 0 VIEWS FROM t").ok());
}

TEST(ParserTest, ParseSelectRejectsRecommend) {
  EXPECT_FALSE(ParseSelect("RECOMMEND VIEWS FROM t").ok());
}

TEST(ParserTest, SelectToStringRoundTripParses) {
  const std::string sql =
      "SELECT MP, AVG(PER) FROM players WHERE team = 'GSW' "
      "GROUP BY MP NUMBER OF BINS 4";
  auto stmt = MustParseSelect(sql);
  // ToString output reparses to an equivalent statement (string literals
  // render unquoted, so compare structure via a second ToString).
  const std::string rendered = stmt.ToString();
  EXPECT_NE(rendered.find("NUMBER OF BINS 4"), std::string::npos);
  EXPECT_NE(rendered.find("AVG(PER)"), std::string::npos);
}

}  // namespace
}  // namespace muve::sql
