// Single-attribute group-by aggregation (the paper's non-binned views).
//
// `SELECT A, F(M) FROM ... GROUP BY A` over a RowSet produces the ordered
// series <(a_1, g_1), ..., (a_t, g_t)> of Section II-A, where t is the
// number of distinct A values among the selected rows.

#ifndef MUVE_STORAGE_GROUP_BY_H_
#define MUVE_STORAGE_GROUP_BY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/aggregate.h"
#include "storage/table.h"

namespace muve::storage {

// Result of a single-attribute group-by: parallel arrays sorted ascending
// by group key.
struct GroupByResult {
  std::vector<Value> keys;
  std::vector<double> aggregates;
  std::vector<size_t> row_counts;  // rows contributing to each group

  size_t num_groups() const { return keys.size(); }
};

// Groups `rows` of `table` by `dimension` and aggregates `measure` with
// `function`.  Rows whose dimension or measure is NULL are skipped
// (COUNT(M) follows SQL semantics and ignores NULL measures; its value is
// otherwise not read).
common::Result<GroupByResult> GroupByAggregate(const Table& table,
                                               const RowSet& rows,
                                               std::string_view dimension,
                                               std::string_view measure,
                                               AggregateFunction function);

}  // namespace muve::storage

#endif  // MUVE_STORAGE_GROUP_BY_H_
