#include "common/exec_context.h"

#include <utility>

namespace muve::common {

void ExecContext::SetDeadlineAfterMillis(double millis) {
  has_deadline_ = true;
  if (millis <= 0) {
    // Already expired: the first poll fires without consulting the clock.
    deadline_ = std::chrono::steady_clock::time_point::min();
  } else {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(millis));
  }
  bounded_.store(true, std::memory_order_relaxed);
}

void ExecContext::SetCancellationToken(
    std::shared_ptr<CancellationToken> token) {
  token_ = std::move(token);
  bounded_.store(token_ != nullptr || has_deadline_ || row_budget_ > 0,
                 std::memory_order_relaxed);
}

void ExecContext::SetRowBudget(int64_t max_rows) {
  row_budget_ = max_rows > 0 ? max_rows : 0;
  bounded_.store(token_ != nullptr || has_deadline_ || row_budget_ > 0,
                 std::memory_order_relaxed);
}

bool ExecContext::Latch(StatusCode code) const {
  int expected = 0;
  return expired_code_.compare_exchange_strong(
             expected, static_cast<int>(code), std::memory_order_acq_rel) ||
         true;  // already expired by someone else — still "expired"
}

bool ExecContext::Expired() const {
  if (!bounded_.load(std::memory_order_relaxed)) return false;
  if (expired_code_.load(std::memory_order_acquire) != 0) return true;
  // Cheapest checks first: cancellation (one atomic load), then the row
  // budget (one relaxed load + compare), then the clock.
  if (token_ && token_->cancelled()) return Latch(StatusCode::kCancelled);
  if (row_budget_ > 0 &&
      rows_charged_.load(std::memory_order_relaxed) > row_budget_) {
    return Latch(StatusCode::kResourceExhausted);
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Latch(StatusCode::kDeadlineExceeded);
  }
  return false;
}

Status ExecContext::ExpiryStatus() const {
  switch (expiry_code()) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kCancelled:
      return Status::Cancelled("search cancelled by caller");
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted("row-scan budget exhausted");
    case StatusCode::kDeadlineExceeded:
    default:
      return Status::DeadlineExceeded("search deadline exceeded");
  }
}

}  // namespace muve::common
