// Differential microbenchmark for the SIMD kernel layer
// (src/common/simd/): every kernel in the dispatch table, timed at every
// compiled-in dispatch level, reported as ns/element with the speedup
// over the scalar reference table.  This is the tentpole's speedup
// evidence — the vector tables are bit-identical to scalar by
// construction (see simd.h), so the ONLY thing this bench measures is
// time.
//
//   $ ./build/bench/kernel_bench [--smoke] [--repeat=N]
//         [--json-out[=path]]
//
// --smoke shrinks sizes and timing targets for CI.  With --json-out the
// shared BENCH_ schema gains one {"type":"record"} entry per
// (kernel, level, n) with ns_per_element (min over repetitions; median
// alongside) and speedup_vs_scalar.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/simd/aligned.h"
#include "common/simd/simd.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "harness.h"

namespace {

namespace simd = muve::common::simd;
using muve::common::FormatDouble;
using muve::common::Rng;
using muve::common::Stopwatch;

// Prevents the optimizer from discarding a kernel result (portable:
// a volatile store is a visible side effect on every target).
inline void Consume(double v) {
  volatile double sink = v;
  (void)sink;
}
inline void ConsumePtr(const void* p) {
  volatile const void* sink = p;
  (void)sink;
}

struct Timing {
  double ns_per_element_min = 0.0;
  double ns_per_element_median = 0.0;
};

// Times `fn` (one full kernel call over `elements` elements): calibrates
// an iteration count targeting `target_ms` per repetition, runs one
// unrecorded warmup repetition, then Repetitions() recorded ones, and
// reports min and median ns/element.
template <typename Fn>
Timing TimeKernel(size_t elements, double target_ms, Fn&& fn) {
  // Calibrate.
  Stopwatch calib;
  fn();
  double per_call_ms = std::max(calib.ElapsedMillis(), 1e-6);
  const int64_t iters = std::max<int64_t>(
      1, static_cast<int64_t>(target_ms / per_call_ms));
  const int reps = muve::bench::Repetitions();
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = -1; r < reps; ++r) {  // r == -1: warmup, unrecorded
    Stopwatch timer;
    for (int64_t i = 0; i < iters; ++i) fn();
    const double ns = static_cast<double>(timer.ElapsedNanos());
    if (r >= 0) {
      samples.push_back(ns / (static_cast<double>(iters) *
                              static_cast<double>(elements)));
    }
  }
  std::sort(samples.begin(), samples.end());
  Timing t;
  t.ns_per_element_min = samples.front();
  t.ns_per_element_median =
      (samples.size() % 2 == 1)
          ? samples[samples.size() / 2]
          : 0.5 * (samples[samples.size() / 2 - 1] + samples[samples.size() / 2]);
  return t;
}

// Shared random inputs for one problem size.
struct Inputs {
  simd::AlignedVector<double> p, q, scratch;
  std::vector<int32_t> idx;
  // Keyed-accumulator side: rows/keys over n positions into 64 groups.
  std::vector<uint32_t> rows, keys;
  simd::AlignedVector<double> f64_data;
  std::vector<int64_t> i64_data;
  simd::AlignedVector<int64_t> counts;
  simd::AlignedVector<double> sums, sum_sqs;
  // Coarsen side: sorted fine-bin values + prefix arrays.
  std::vector<double> fine_values;
  std::vector<int64_t> prefix_counts;
  std::vector<double> prefix_sums, prefix_sum_sqs;
  simd::AlignedVector<int64_t> out_counts;
  simd::AlignedVector<double> out_sums, out_sum_sqs;

  explicit Inputs(size_t n) {
    Rng rng(2024);
    p.resize(n);
    q.resize(n);
    scratch.resize(n);
    idx.resize(n);
    rows.resize(n);
    keys.resize(n);
    f64_data.resize(n);
    i64_data.resize(n);
    counts.assign(64, 0);
    sums.assign(64, 0.0);
    sum_sqs.assign(64, 0.0);
    for (size_t i = 0; i < n; ++i) {
      p[i] = rng.NextDouble();
      q[i] = rng.NextDouble();
      rows[i] = static_cast<uint32_t>(i);
      keys[i] = static_cast<uint32_t>(rng.UniformInt(0, 63));
      f64_data[i] = rng.NextDouble() * 100.0;
      i64_data[i] = rng.UniformInt(0, 999);
    }
    fine_values.resize(n);
    for (size_t i = 0; i < n; ++i) {
      fine_values[i] = static_cast<double>(i) / static_cast<double>(n);
    }
    prefix_counts.resize(n + 1);
    prefix_sums.resize(n + 1);
    prefix_sum_sqs.resize(n + 1);
    prefix_counts[0] = 0;
    prefix_sums[0] = 0.0;
    prefix_sum_sqs[0] = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double v = rng.NextDouble();
      prefix_counts[i + 1] = prefix_counts[i] + 1;
      prefix_sums[i + 1] = prefix_sums[i] + v;
      prefix_sum_sqs[i + 1] = prefix_sum_sqs[i] + v * v;
    }
    out_counts.assign(64, 0);
    out_sums.assign(64, 0.0);
    out_sum_sqs.assign(64, 0.0);
  }
};

struct KernelCase {
  const char* name;
  // Runs one call of this kernel from `table` over `in`.
  void (*run)(const simd::KernelTable& table, Inputs& in);
};

const KernelCase kCases[] = {
    {"squared_l2_diff",
     [](const simd::KernelTable& t, Inputs& in) {
       Consume(t.squared_l2_diff(in.p.data(), in.q.data(), in.p.size()));
     }},
    {"abs_diff_sum",
     [](const simd::KernelTable& t, Inputs& in) {
       Consume(t.abs_diff_sum(in.p.data(), in.q.data(), in.p.size()));
     }},
    {"max_abs_diff",
     [](const simd::KernelTable& t, Inputs& in) {
       Consume(t.max_abs_diff(in.p.data(), in.q.data(), in.p.size()));
     }},
    {"prefix_abs_diff_sum",
     [](const simd::KernelTable& t, Inputs& in) {
       Consume(t.prefix_abs_diff_sum(in.p.data(), in.q.data(), in.p.size()));
     }},
    {"sum",
     [](const simd::KernelTable& t, Inputs& in) {
       Consume(t.sum(in.p.data(), in.p.size()));
     }},
    {"relative_sse",
     [](const simd::KernelTable& t, Inputs& in) {
       Consume(t.relative_sse(in.p.data(), in.q.data(), in.p.size()));
     }},
    {"normalize_into",
     [](const simd::KernelTable& t, Inputs& in) {
       Consume(t.normalize_into(in.p.data(), in.p.size(), in.scratch.data()));
     }},
    {"bin_index_into",
     [](const simd::KernelTable& t, Inputs& in) {
       t.bin_index_into(in.p.data(), in.p.size(), 0.0, 1.0, 64,
                        in.idx.data());
       ConsumePtr(in.idx.data());
     }},
    {"coarsen_by_prefix_diff",
     [](const simd::KernelTable& t, Inputs& in) {
       t.coarsen_by_prefix_diff(
           in.fine_values.data(), in.fine_values.size(), 0.0, 1.0, 64,
           in.prefix_counts.data(), in.prefix_sums.data(),
           in.prefix_sum_sqs.data(), in.out_counts.data(),
           in.out_sums.data(), in.out_sum_sqs.data());
       ConsumePtr(in.out_sums.data());
     }},
    {"accumulate_count_sum_sq_f64",
     [](const simd::KernelTable& t, Inputs& in) {
       t.accumulate_count_sum_sq_f64(in.rows.data(), 0, in.rows.size(),
                                     in.keys.data(), nullptr,
                                     in.f64_data.data(), in.counts.data(),
                                     in.sums.data(), in.sum_sqs.data());
       ConsumePtr(in.sums.data());
     }},
    {"accumulate_count_sum_sq_i64",
     [](const simd::KernelTable& t, Inputs& in) {
       t.accumulate_count_sum_sq_i64(in.rows.data(), 0, in.rows.size(),
                                     in.keys.data(), nullptr,
                                     in.i64_data.data(), in.counts.data(),
                                     in.sums.data(), in.sum_sqs.data());
       ConsumePtr(in.sums.data());
     }},
};

}  // namespace

int main(int argc, char** argv) {
  const auto& options = muve::bench::InitBench(&argc, argv);
  const bool smoke = options.smoke;
  const double target_ms = smoke ? 1.0 : 20.0;
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{1024} : std::vector<size_t>{64, 4096, 65536};

  // Levels: scalar first (the baseline), then every other level this
  // binary + CPU supports.
  std::vector<const simd::KernelTable*> tables = {&simd::ScalarKernels()};
  for (const auto level :
       {simd::DispatchLevel::kNeon, simd::DispatchLevel::kAvx2}) {
    const simd::KernelTable* t = simd::KernelsFor(level);
    if (t != nullptr) tables.push_back(t);
  }

  std::cout << "=== SIMD kernel bench (active dispatch: "
            << simd::ActiveLevelName() << ", levels timed:";
  for (const auto* t : tables) std::cout << ' ' << t->name;
  std::cout << ") ===\n";

  for (const size_t n : sizes) {
    Inputs in(n);
    std::vector<std::string> headers = {"kernel"};
    for (const auto* t : tables) {
      headers.push_back(std::string(t->name) + "(ns/elem)");
    }
    if (tables.size() > 1) headers.push_back("speedup");
    muve::bench::TablePrinter table(headers);

    for (const KernelCase& kernel : kCases) {
      std::vector<std::string> row = {kernel.name};
      double scalar_ns = 0.0;
      double best_ns = 0.0;
      for (const auto* t : tables) {
        const Timing timing = TimeKernel(
            n, target_ms, [&] { kernel.run(*t, in); });
        if (t == tables.front()) scalar_ns = timing.ns_per_element_min;
        best_ns = timing.ns_per_element_min;
        row.push_back(FormatDouble(timing.ns_per_element_min, 3));
        muve::bench::RecordJsonResult(
            kernel.name, {{"level", t->name}},
            {{"n", static_cast<double>(n)},
             {"ns_per_element", timing.ns_per_element_min},
             {"median_ns_per_element", timing.ns_per_element_median},
             {"speedup_vs_scalar",
              timing.ns_per_element_min > 0.0
                  ? scalar_ns / timing.ns_per_element_min
                  : 0.0}});
      }
      if (tables.size() > 1) {
        row.push_back(FormatDouble(best_ns > 0.0 ? scalar_ns / best_ns : 0.0,
                                   2) +
                      "x");
      }
      table.AddRow(std::move(row));
    }
    table.Print("SIMD kernels, n = " + std::to_string(n) + " (min of " +
                std::to_string(muve::bench::Repetitions()) +
                " reps, warmup excluded)");
  }
  return 0;
}
