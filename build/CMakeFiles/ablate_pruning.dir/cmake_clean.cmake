file(REMOVE_RECURSE
  "CMakeFiles/ablate_pruning.dir/bench/ablate_pruning.cpp.o"
  "CMakeFiles/ablate_pruning.dir/bench/ablate_pruning.cpp.o.d"
  "bench/ablate_pruning"
  "bench/ablate_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
