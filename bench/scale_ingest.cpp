// Extension bench: incremental ingest at scale (DESIGN.md §15).
//
// The claim under test: with chunked columnar storage and the shared
// base-histogram cache, *appending 1% of the rows and re-recommending*
// costs O(new rows) — a small fraction of re-running the whole pipeline
// over the reloaded table — while returning the bit-identical top-k.
//
// For each table size N the bench runs one cold/warm/append/reload
// cycle over the deterministic scale workload (dims {x, y}, measures
// {m1, m2}, clustered predicate "day >= D"):
//
//   cold    recommend over rows [0, 0.99 N) with an empty shared cache
//           (pays the fused build passes).
//   warm    the same recommend again (every base served from cache; the
//           rows-scanned column is the cache's steady-state cost).
//   append  publish the last 1% through the Catalog, patch the cached
//           bases with ApplyAppendDeltas (O(new rows) fused passes over
//           the delta only), and recommend over the grown table.
//   reload  materialize all N rows in one shot and recommend with a
//           cold cache — the "reload from scratch" strawman the append
//           path replaces, and the bit-exactness reference.
//
// The bench FAILS (exit 1) if any invariant breaks: the append-path
// top-k must equal the reload top-k view-for-view and bit-for-bit, the
// append cycle (ingest scan + re-recommend) must scan <= 10% of the
// rows the reload scans, the delta-merge counters must be nonzero (the
// patch actually happened; nothing fell back to a rebuild), and the
// clustered predicate must skip chunks via zone maps.
//
// `--smoke` runs 10^6 rows only (the CI scale-smoke leg); the default
// adds 10^7.  `--rows=N` replaces the sweep with a single custom size
// (10^8 is the opt-in upper end; budget ~50 bytes/row of RAM for the
// grown + reloaded tables).

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "core/recommender.h"
#include "core/search_options.h"
#include "data/dataset.h"
#include "data/scale.h"
#include "harness.h"
#include "sql/parser.h"
#include "storage/base_histogram_cache.h"
#include "storage/catalog.h"
#include "storage/ingest.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace {

using muve::bench::RecordJsonResult;
using muve::bench::TablePrinter;

// The scale workload's exploration setup over one table snapshot.
muve::data::Dataset DatasetOver(
    std::shared_ptr<const muve::storage::Table> table,
    const std::string& predicate_sql) {
  muve::data::Dataset ds;
  ds.name = "scale";
  ds.table = std::move(table);
  ds.dimensions = {"x", "y"};
  ds.measures = {"m1", "m2"};
  ds.functions = {muve::storage::AggregateFunction::kSum,
                  muve::storage::AggregateFunction::kAvg};
  ds.query_predicate_sql = predicate_sql;

  auto stmt = muve::sql::ParseSelect("SELECT * FROM t WHERE " + predicate_sql);
  if (!stmt.ok()) {
    std::cerr << "predicate parse failed: " << stmt.status().ToString()
              << "\n";
    std::exit(1);
  }
  muve::storage::FilterStats stats;
  auto target = muve::storage::Filter(*ds.table, stmt->where.get(),
                                      /*base=*/nullptr, &stats);
  if (!target.ok()) {
    std::cerr << "predicate filter failed: " << target.status().ToString()
              << "\n";
    std::exit(1);
  }
  ds.target_rows = *std::move(target);
  ds.all_rows = muve::storage::AllRows(ds.table->num_rows());
  ds.predicate_rows_filtered = stats.rows_in - stats.rows_out;
  ds.chunks_skipped = stats.chunks_skipped;
  return ds;
}

struct Phase {
  double ms = 0.0;
  muve::core::Recommendation rec;
};

Phase Recommend(std::shared_ptr<const muve::storage::Table> table,
                const std::string& predicate_sql,
                std::shared_ptr<muve::storage::BaseHistogramCache> cache) {
  muve::common::Stopwatch timer;
  auto recommender = muve::core::Recommender::Create(
      DatasetOver(std::move(table), predicate_sql));
  if (!recommender.ok()) {
    std::cerr << "recommender: " << recommender.status().ToString() << "\n";
    std::exit(1);
  }
  muve::core::SearchOptions options;
  options.k = 5;
  options.shared_base_cache = std::move(cache);
  auto result = recommender->Recommend(options);
  if (!result.ok()) {
    std::cerr << "recommend: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  Phase phase;
  phase.ms = timer.ElapsedMillis();
  phase.rec = *std::move(result);
  return phase;
}

bool SameTopK(const muve::core::Recommendation& a,
              const muve::core::Recommendation& b) {
  if (a.views.size() != b.views.size()) return false;
  for (size_t i = 0; i < a.views.size(); ++i) {
    // Integer measures: delta-merged bases are bit-exact, so the
    // comparison is == on the doubles, not a tolerance.
    if (!(a.views[i].view == b.views[i].view) ||
        a.views[i].bins != b.views[i].bins ||
        a.views[i].utility != b.views[i].utility ||
        a.views[i].deviation != b.views[i].deviation) {
      return false;
    }
  }
  return true;
}

std::string Fmt(double v) { return muve::bench::Ms(v); }

bool RunCycle(size_t total_rows, TablePrinter* table) {
  muve::data::ScaleSpec spec;
  spec.rows = total_rows;
  const std::string predicate = muve::data::ScalePredicateSql(spec);
  const size_t appended = total_rows / 100;
  const size_t initial = total_rows - appended;

  // At least 8 chunks at every size, so zone-map skipping has something
  // to skip even at 10^6 rows (the default 2^20-row chunk would make
  // that table single-chunk); 10^7 rows and up use the default.
  size_t chunk_rows = muve::storage::kDefaultChunkRows;
  while (chunk_rows > 1024 && chunk_rows * 8 > total_rows) chunk_rows >>= 1;

  std::cout << "== " << total_rows << " rows (append "
            << appended << ") ==" << std::endl;

  muve::storage::Catalog catalog;
  {
    muve::common::Stopwatch timer;
    auto created = catalog.Create(
        "scale",
        std::move(*muve::data::MakeScaleTable(spec, 0, initial, chunk_rows)));
    if (!created.ok()) {
      std::cerr << "create: " << created.ToString() << "\n";
      return false;
    }
    std::cout << "  materialized " << initial << " rows in "
              << Fmt(timer.ElapsedMillis()) << " ms" << std::endl;
  }
  auto cache = std::make_shared<muve::storage::BaseHistogramCache>();

  auto snapshot = catalog.Get("scale");
  if (!snapshot.ok()) return false;
  Phase cold = Recommend(snapshot->table, predicate, cache);
  Phase warm = Recommend(snapshot->table, predicate, cache);

  // Append the last 1% through the catalog and patch the cached bases;
  // the timed region is everything the serving path would do: delta
  // materialization, publish, patch, re-recommend.
  muve::common::Stopwatch append_timer;
  auto delta =
      muve::data::MakeScaleTable(spec, initial, total_rows, chunk_rows);
  auto published = catalog.Append("scale", *delta);
  if (!published.ok()) {
    std::cerr << "append: " << published.status().ToString() << "\n";
    return false;
  }
  auto stmt = muve::sql::ParseSelect("SELECT * FROM t WHERE " + predicate);
  if (!stmt.ok() ||
      !stmt->where->Bind(published->snapshot.table->schema()).ok()) {
    return false;
  }
  muve::storage::IngestDeltaRequest request;
  request.table = published->snapshot.table.get();
  request.rows_before = published->rows_before;
  request.rows_appended = published->rows_appended;
  request.dimensions = {"x", "y"};
  request.measures = {"m1", "m2"};
  request.target_predicate = stmt->where.get();
  request.cache = cache.get();
  muve::storage::IngestDeltaStats ingest;
  if (!muve::storage::ApplyAppendDeltas(request, &ingest).ok()) {
    std::cerr << "delta patch failed\n";
    return false;
  }
  Phase after = Recommend(published->snapshot.table, predicate, cache);
  const double append_ms = append_timer.ElapsedMillis();

  // Reload-from-scratch reference (cold cache over all N rows in one
  // shot) — the bit-exactness oracle and the cost denominator.
  Phase reload =
      Recommend(muve::data::MakeScaleTable(spec, 0, total_rows, chunk_rows),
                predicate,
                std::make_shared<muve::storage::BaseHistogramCache>());

  const bool identical = SameTopK(after.rec, reload.rec);
  const int64_t append_scanned =
      ingest.rows_scanned + after.rec.stats.rows_scanned;
  const double ratio =
      reload.rec.stats.rows_scanned > 0
          ? static_cast<double>(append_scanned) /
                static_cast<double>(reload.rec.stats.rows_scanned)
          : 1.0;

  table->AddRow({std::to_string(total_rows), Fmt(cold.ms), Fmt(warm.ms),
                 Fmt(append_ms), Fmt(reload.ms),
                 std::to_string(reload.rec.stats.rows_scanned),
                 std::to_string(append_scanned),
                 muve::bench::Pct(ratio),
                 std::to_string(ingest.delta_merges),
                 std::to_string(after.rec.stats.chunks_skipped),
                 identical ? "yes" : "NO"});

  RecordJsonResult(
      "scale_" + std::to_string(total_rows), {},
      {{"rows", static_cast<double>(total_rows)},
       {"appended_rows", static_cast<double>(appended)},
       {"cold_ms", cold.ms},
       {"warm_ms", warm.ms},
       {"append_ms", append_ms},
       {"reload_ms", reload.ms},
       {"cold_rows_scanned",
        static_cast<double>(cold.rec.stats.rows_scanned)},
       {"warm_rows_scanned",
        static_cast<double>(warm.rec.stats.rows_scanned)},
       {"ingest_rows", static_cast<double>(ingest.rows_scanned)},
       {"delta_merges", static_cast<double>(ingest.delta_merges)},
       {"append_rec_rows_scanned",
        static_cast<double>(after.rec.stats.rows_scanned)},
       {"reload_rows_scanned",
        static_cast<double>(reload.rec.stats.rows_scanned)},
       {"append_over_reload_rows", ratio},
       {"chunks_skipped",
        static_cast<double>(after.rec.stats.chunks_skipped)},
       {"topk_identical", identical ? 1.0 : 0.0}});

  bool ok = true;
  if (!identical) {
    std::cerr << "FAIL: append-path top-k differs from reload at "
              << total_rows << " rows\n";
    ok = false;
  }
  if (ratio > 0.10) {
    std::cerr << "FAIL: append cycle scanned " << append_scanned << " rows ("
              << muve::bench::Pct(ratio) << " of reload's "
              << reload.rec.stats.rows_scanned << ") at " << total_rows
              << " rows — expected <= 10%\n";
    ok = false;
  }
  if (ingest.delta_merges <= 0) {
    std::cerr << "FAIL: no cached bases were delta-merged at " << total_rows
              << " rows\n";
    ok = false;
  }
  if (after.rec.stats.chunks_skipped <= 0) {
    std::cerr << "FAIL: the clustered predicate skipped no chunks at "
              << total_rows << " rows\n";
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const muve::bench::BenchOptions& options = muve::bench::InitBench(&argc, argv);

  size_t custom_rows = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      custom_rows = static_cast<size_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    }
  }

  std::vector<size_t> sizes;
  if (custom_rows > 0) {
    sizes = {custom_rows};
  } else if (options.smoke) {
    sizes = {1'000'000};
  } else {
    sizes = {1'000'000, 10'000'000};
  }

  TablePrinter table({"rows", "cold ms", "warm ms", "append ms", "reload ms",
                      "reload rows", "append rows", "append/reload",
                      "delta merges", "chunks skipped", "topk=="});
  bool ok = true;
  for (size_t rows : sizes) ok = RunCycle(rows, &table) && ok;
  table.Print("Incremental ingest: append 1% + re-recommend vs reload");
  return ok ? 0 : 1;
}
