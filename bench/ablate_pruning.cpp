// Ablation: MuVE's two pruning techniques (Section IV-A3).
//
// MuVE prunes with (1) incremental evaluation — the S-bound before any
// probe and the partial bound after the first probe — and (2) early
// termination of the S-list walk.  This ablation toggles each
// independently on MuVE-MuVE at the paper's default weights, where both
// should contribute (usability-weighted utilities make the S-bound
// bite).

#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/recommender.h"
#include "data/diab.h"
#include "data/nba.h"
#include "harness.h"

namespace {

void RunDataset(const muve::data::Dataset& dataset) {
  using muve::bench::Ms;
  using muve::bench::RunScheme;

  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  const struct {
    const char* label;
    bool early_termination;
    bool incremental;
  } variants[] = {
      {"both on (full MuVE)", true, true},
      {"early termination only", true, false},
      {"incremental evaluation only", false, true},
      {"both off (degenerates to Linear)", false, false},
  };

  muve::bench::TablePrinter table({"variant", "cost(ms)", "candidates",
                                   "pruned(S-bound)", "pruned(partial)",
                                   "fully probed", "early terms"});
  for (const auto& variant : variants) {
    auto options = muve::bench::MuveMuve();
    options.enable_early_termination = variant.early_termination;
    options.enable_incremental_evaluation = variant.incremental;
    const auto r = RunScheme(*recommender, options);
    table.AddRow({variant.label, Ms(r.cost_ms),
                  std::to_string(r.stats.candidates_considered),
                  std::to_string(r.stats.pruned_before_probes),
                  std::to_string(r.stats.pruned_after_first_probe),
                  std::to_string(r.stats.fully_probed),
                  std::to_string(r.stats.early_terminations)});
  }
  table.Print(dataset.name +
              ": MuVE-MuVE pruning ablation (paper default weights, k = "
              "5), mean of " +
              std::to_string(muve::bench::Repetitions()) + " runs");
}

}  // namespace

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  std::cout << "=== Ablation: early termination vs incremental "
               "evaluation ===\n";
  RunDataset(muve::data::WithWorkloadSize(muve::data::MakeDiabDataset(), 3,
                                          3, 3));
  RunDataset(muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 3,
                                          3));
  return 0;
}
