#include "core/exec_stats.h"

#include <gtest/gtest.h>

namespace muve::core {
namespace {

ExecStats MakeStats() {
  ExecStats s;
  s.target_queries = 3;
  s.comparison_queries = 2;
  s.deviation_evals = 2;
  s.accuracy_evals = 1;
  s.rows_scanned = 100;
  s.candidates_considered = 10;
  s.pruned_before_probes = 4;
  s.pruned_after_first_probe = 3;
  s.fully_probed = 3;
  s.early_terminations = 1;
  s.views_searched = 2;
  s.target_time_ms = 1.0;
  s.comparison_time_ms = 2.0;
  s.deviation_time_ms = 0.5;
  s.accuracy_time_ms = 0.25;
  return s;
}

TEST(ExecStatsTest, TotalCostIsSumOfComponents) {
  const ExecStats s = MakeStats();
  EXPECT_DOUBLE_EQ(s.TotalCostMillis(), 3.75);
  EXPECT_DOUBLE_EQ(ExecStats().TotalCostMillis(), 0.0);
}

TEST(ExecStatsTest, MergeAddsEveryField) {
  ExecStats a = MakeStats();
  a.Merge(MakeStats());
  EXPECT_EQ(a.target_queries, 6);
  EXPECT_EQ(a.comparison_queries, 4);
  EXPECT_EQ(a.deviation_evals, 4);
  EXPECT_EQ(a.accuracy_evals, 2);
  EXPECT_EQ(a.rows_scanned, 200);
  EXPECT_EQ(a.candidates_considered, 20);
  EXPECT_EQ(a.pruned_before_probes, 8);
  EXPECT_EQ(a.pruned_after_first_probe, 6);
  EXPECT_EQ(a.fully_probed, 6);
  EXPECT_EQ(a.early_terminations, 2);
  EXPECT_EQ(a.views_searched, 4);
  EXPECT_DOUBLE_EQ(a.TotalCostMillis(), 7.5);
}

TEST(ExecStatsTest, MergeWithEmptyIsIdentity) {
  ExecStats a = MakeStats();
  a.Merge(ExecStats());
  EXPECT_EQ(a.candidates_considered, 10);
  EXPECT_DOUBLE_EQ(a.TotalCostMillis(), 3.75);
}

TEST(ExecStatsTest, ToStringMentionsKeyCounters) {
  const std::string text = MakeStats().ToString();
  EXPECT_NE(text.find("cost="), std::string::npos);
  EXPECT_NE(text.find("candidates=10"), std::string::npos);
  EXPECT_NE(text.find("pruned0=4"), std::string::npos);
  EXPECT_NE(text.find("full=3"), std::string::npos);
}

// num_workers merges via max, not sum: folding W per-worker stat blocks
// into one run total must report the pool width W, not W * 1.
TEST(ExecStatsTest, MergeKeepsMaxWorkerCount) {
  ExecStats total;
  for (int w = 0; w < 4; ++w) {
    ExecStats per_worker = MakeStats();
    EXPECT_EQ(per_worker.num_workers, 1);
    total.Merge(per_worker);
  }
  EXPECT_EQ(total.num_workers, 1);  // four serial blocks stay width 1

  ExecStats wide = MakeStats();
  wide.num_workers = 4;
  total.Merge(wide);
  EXPECT_EQ(total.num_workers, 4);
  ExecStats narrow = MakeStats();
  narrow.num_workers = 2;
  total.Merge(narrow);
  EXPECT_EQ(total.num_workers, 4);  // merging a narrower run keeps 4
}

TEST(ExecStatsTest, ToStringMentionsWorkers) {
  ExecStats s = MakeStats();
  s.num_workers = 3;
  EXPECT_NE(s.ToString().find("workers=3"), std::string::npos);
}

// Accounting invariant maintained by the candidate evaluator:
// considered = pruned0 + pruned1 + fully_probed.
TEST(ExecStatsTest, CandidateAccountingInvariantHolds) {
  const ExecStats s = MakeStats();
  EXPECT_EQ(s.candidates_considered,
            s.pruned_before_probes + s.pruned_after_first_probe +
                s.fully_probed);
}

}  // namespace
}  // namespace muve::core
