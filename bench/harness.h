// Shared support for the figure-reproduction benchmarks.
//
// Each `fig*` binary regenerates one figure of the paper's evaluation
// (Section VI): it sweeps the figure's parameter, runs the figure's
// schemes through the Recommender, and prints the measured series as an
// aligned table — cost in milliseconds (the paper's wall-clock cost
// metric, Eq. 7), operation counts, and fidelity where the figure reports
// it.  Absolute numbers differ from the paper's Java/PostgreSQL testbed;
// the *shape* (who wins, by what factor, where crossovers fall) is the
// reproduction target, recorded in EXPERIMENTS.md.

#ifndef MUVE_BENCH_HARNESS_H_
#define MUVE_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/search_options.h"

namespace muve::bench {

// Number of repetitions per configuration (the paper averages 10 runs).
// Override with the MUVE_BENCH_REPS environment variable.
int Repetitions();

struct RunResult {
  double cost_ms = 0.0;  // mean TotalCostMillis over repetitions
  core::ExecStats stats;  // from the last repetition
  core::Recommendation recommendation;  // from the last repetition
};

// Runs `options` against `recommender` Repetitions() times and averages
// the cost.  Aborts on configuration errors (benchmark misuse).
RunResult RunScheme(const core::Recommender& recommender,
                    const core::SearchOptions& options);

// Convenience constructors for the paper's scheme combinations.
core::SearchOptions LinearLinear();
core::SearchOptions HcLinear();
core::SearchOptions MuveLinear();
core::SearchOptions MuveMuve();

// Simple aligned-column table printer for figure series.  When the
// MUVE_BENCH_CSV_DIR environment variable names a directory, every
// printed table is also written there as <slugified-title>.csv for
// external plotting.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders to stdout with a title line (and exports CSV when enabled).
  void Print(const std::string& title) const;

 private:
  void MaybeExportCsv(const std::string& title) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` ms with 3 decimals.
std::string Ms(double value);
// Formats a [0,1] fidelity as a percentage with 1 decimal.
std::string Pct(double fraction);

}  // namespace muve::bench

#endif  // MUVE_BENCH_HARNESS_H_
