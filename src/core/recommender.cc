#include "core/recommender.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/exec_context.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/simd/simd.h"
#include "common/thread_pool.h"
#include "core/horizontal_search.h"
#include "core/partitioner.h"
#include "core/top_k_tracker.h"

namespace muve::core {

namespace {

constexpr double kNoThreshold = -std::numeric_limits<double>::infinity();

// Bin-count value of the r-th position of a partitioned domain; every
// dimension's domain is a truncated prefix of this common sequence, which
// is what lets MuVE-MuVE's round-robin share one S value per round.
int SequenceBins(const PartitionSpec& spec, size_t position) {
  if (spec.kind == PartitionKind::kGeometric) {
    return static_cast<int>(int64_t{1} << position);
  }
  return 1 + static_cast<int>(position) * spec.step;
}

// Per-view RNG for Hill Climbing: seeding by view index makes the random
// start independent of evaluation order, so serial and parallel runs of
// HC-based schemes recommend identically.
common::Rng ViewRng(const SearchOptions& options, size_t view_index) {
  return common::Rng(options.hc_seed ^
                     (0x9E3779B97F4A7C15ULL * (view_index + 1)));
}

// One ViewEvaluator per pool worker: the evaluator's stats accounting and
// caches are single-threaded by design, so each lane gets its own and the
// recommender merges the ExecStats blocks at the end.  Worker 0's
// evaluator doubles as the "main" evaluator for the serial portions of a
// strategy (grouping passes, refinement's second phase).
class WorkerSet {
 public:
  WorkerSet(size_t num_workers, const data::Dataset& dataset,
            const ViewSpace& space, const ViewEvaluator::Options& options)
      : pool_(num_workers) {
    evaluators_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
      evaluators_.push_back(
          std::make_unique<ViewEvaluator>(dataset, space, options));
    }
  }

  common::ThreadPool& pool() { return pool_; }
  ViewEvaluator& evaluator(size_t worker) { return *evaluators_[worker]; }
  ViewEvaluator& main() { return *evaluators_[0]; }
  size_t num_workers() const { return evaluators_.size(); }

  // Per-worker work totals folded into one block; num_workers is set by
  // the caller-visible width, not the max of the per-lane defaults.
  ExecStats MergedStats() const {
    ExecStats merged;
    for (const auto& evaluator : evaluators_) {
      merged.Merge(evaluator->stats());
    }
    merged.num_workers = static_cast<int>(evaluators_.size());
    merged.simd_dispatch = common::simd::ActiveLevelName();
    return merged;
  }

 private:
  common::ThreadPool pool_;
  std::vector<std::unique_ptr<ViewEvaluator>> evaluators_;
};

// Vertical Linear: decoupled horizontal search per view (Section IV-B).
// Covers Linear-Linear, HC-Linear, and MuVE-Linear.  Per-view searches
// share nothing (matching the serial semantics, which never shared a
// threshold across views either), so parallel runs are bitwise-identical
// to serial ones — recommendations AND probe counters.
std::vector<ScoredView> VerticalLinear(WorkerSet& workers,
                                       const ViewSpace& space,
                                       const SearchOptions& options) {
  const std::vector<View>& views = space.views();
  SharedTopKTracker tracker(options.k, views.size());
  workers.pool().ParallelFor(
      views.size(), [&](size_t worker, size_t i) {
        ViewEvaluator& evaluator = workers.evaluator(worker);
        ExecCompleteness& comp = evaluator.stats().completeness;
        const View& view = views[i];
        const DimensionInfo& dim = space.dimension_info(view.dimension);
        const std::vector<int> domain =
            BinDomain(options.partition, dim.max_bins);
        // Boundary poll: an expired run skips whole views (the cheapest
        // unit of work not yet started); views already in flight finish
        // their own truncation below.
        if (common::Expired(evaluator.exec())) {
          comp.degraded = true;
          comp.bins_pruned_by_deadline += static_cast<int64_t>(domain.size());
          return;
        }
        common::Rng rng = ViewRng(options, i);
        const HorizontalResult result = RunHorizontalSearch(
            evaluator, view, domain, dim.max_bins, options, rng);
        if (result.truncated) {
          comp.degraded = true;
          comp.bins_pruned_by_deadline += result.bins_skipped;
        } else {
          ++comp.views_fully_searched;
        }
        if (result.best.has_value()) tracker.Update(i, *result.best);
      });
  return tracker.TopK();
}

// Vertical MuVE (MuVE-MuVE): round-robin the views' S-lists with the
// shared top-k threshold (Section IV-B).  Rounds stay sequential — the
// round order IS the S-list interleaving — but within a round every
// view's candidate evaluates in parallel against the shared tracker's
// threshold snapshot.
std::vector<ScoredView> VerticalMuve(WorkerSet& workers,
                                     const ViewSpace& space,
                                     const SearchOptions& options) {
  const std::vector<View>& views = space.views();
  SharedTopKTracker tracker(options.k, views.size());

  // Precompute per-view domains (charged to the main evaluator).
  std::vector<std::vector<int>> domains;
  domains.reserve(views.size());
  size_t max_len = 0;
  for (const View& view : views) {
    const DimensionInfo& dim = space.dimension_info(view.dimension);
    domains.push_back(BinDomain(options.partition, dim.max_bins));
    max_len = std::max(max_len, domains.back().size());
    ++workers.main().stats().views_searched;
  }

  std::vector<size_t> round_views;
  round_views.reserve(views.size());
  // Degradation accounting: the round loop IS the paper's S-list walk,
  // so stopping between rounds (or skipping in-round candidates) leaves
  // a valid anytime prefix of the exact search.
  std::atomic<bool> degraded{false};
  for (size_t r = 0; r < max_len; ++r) {
    const int bins_r = SequenceBins(options.partition, r);
    // Boundary poll per round: on expiry, charge every not-yet-walked
    // S-list entry as deadline-pruned and stop.
    if (common::Expired(workers.main().exec())) {
      int64_t remaining = 0;
      for (const std::vector<int>& domain : domains) {
        if (r < domain.size()) {
          remaining += static_cast<int64_t>(domain.size() - r);
        }
      }
      ExecCompleteness& comp = workers.main().stats().completeness;
      comp.degraded = true;
      comp.bins_pruned_by_deadline += remaining;
      degraded.store(true, std::memory_order_relaxed);
      break;
    }
    // Global early termination: every candidate from this round on (any
    // view) has usability <= 1/bins_r.
    if (options.enable_early_termination &&
        tracker.Threshold() >=
            UtilityUpperBound(options.weights, Usability(bins_r))) {
      ++workers.main().stats().early_terminations;
      break;
    }
    round_views.clear();
    for (size_t i = 0; i < views.size(); ++i) {
      if (r < domains[i].size()) round_views.push_back(i);
    }
    workers.pool().ParallelFor(
        round_views.size(), [&](size_t worker, size_t j) {
          ViewEvaluator& evaluator = workers.evaluator(worker);
          // In-round poll: expiry mid-round skips the remaining
          // candidates of THIS round; the round loop then stops at its
          // own boundary check.
          if (common::Expired(evaluator.exec())) {
            ExecCompleteness& comp = evaluator.stats().completeness;
            comp.degraded = true;
            ++comp.bins_pruned_by_deadline;
            degraded.store(true, std::memory_order_relaxed);
            return;
          }
          const size_t i = round_views[j];
          MUVE_DCHECK(domains[i][r] == bins_r);
          const CandidateResult cand = EvaluateCandidate(
              evaluator, views[i], domains[i][r], options,
              tracker.Threshold(), /*allow_pruning=*/true);
          if (cand.outcome == CandidateResult::Outcome::kFullyEvaluated) {
            tracker.Update(i, cand.scored);
          }
        });
  }
  if (!degraded.load(std::memory_order_relaxed)) {
    // The walk ended the way the unbounded walk would have (domains
    // exhausted or global early termination): every view completed.
    workers.main().stats().completeness.views_fully_searched +=
        static_cast<int64_t>(views.size());
  }
  return tracker.TopK();
}

// Shared-scan exhaustive search (SeeDB's shared-computation optimization):
// per dimension and bin count, one batch evaluates every (M, F) view.
// Identical recommendations to Linear-Linear.  Dimensions are independent
// batches, so they fan out across workers; no pruning is involved, which
// keeps parallel runs bitwise-identical to serial ones.  Categorical-
// dimension views fall back to per-view evaluation (their group-by is one
// scan already).
std::vector<ScoredView> VerticalSharedLinear(WorkerSet& workers,
                                             const ViewSpace& space,
                                             const SearchOptions& options) {
  const std::vector<View>& views = space.views();
  SharedTopKTracker tracker(options.k, views.size());

  std::unordered_map<std::string, std::vector<size_t>> groups;
  std::vector<std::string> dimension_order;
  for (size_t i = 0; i < views.size(); ++i) {
    auto [it, inserted] = groups.try_emplace(views[i].dimension);
    if (inserted) dimension_order.push_back(views[i].dimension);
    it->second.push_back(i);
    ++workers.main().stats().views_searched;
  }

  workers.pool().ParallelFor(
      dimension_order.size(), [&](size_t worker, size_t d) {
        ViewEvaluator& evaluator = workers.evaluator(worker);
        ExecCompleteness& comp = evaluator.stats().completeness;
        const std::vector<size_t>& group = groups[dimension_order[d]];
        const DimensionInfo& dim = space.dimension_info(dimension_order[d]);
        if (dim.categorical) {
          for (size_t g = 0; g < group.size(); ++g) {
            // Boundary poll per categorical view (each is one group-by).
            if (common::Expired(evaluator.exec())) {
              comp.degraded = true;
              comp.bins_pruned_by_deadline +=
                  static_cast<int64_t>(group.size() - g);
              return;
            }
            const size_t idx = group[g];
            const CandidateResult cand = EvaluateCandidate(
                evaluator, views[idx], 1, options, kNoThreshold,
                /*allow_pruning=*/false);
            tracker.Update(idx, cand.scored);
            ++comp.views_fully_searched;
          }
          return;
        }
        std::vector<View> batch;
        batch.reserve(group.size());
        for (size_t idx : group) batch.push_back(views[idx]);
        const std::vector<int> domain =
            BinDomain(options.partition, dim.max_bins);
        for (size_t b = 0; b < domain.size(); ++b) {
          const int bins = domain[b];
          // Boundary poll per shared bin count: skipping one bin skips it
          // for the whole batch.
          if (common::Expired(evaluator.exec())) {
            comp.degraded = true;
            comp.bins_pruned_by_deadline +=
                static_cast<int64_t>((domain.size() - b) * group.size());
            return;
          }
          const ViewEvaluator::BatchScores scores =
              evaluator.EvaluateSharedBatch(batch, bins);
          evaluator.stats().candidates_considered +=
              static_cast<int64_t>(group.size());
          evaluator.stats().fully_probed += static_cast<int64_t>(group.size());
          const double s = Usability(bins);
          for (size_t g = 0; g < group.size(); ++g) {
            ScoredView scored;
            scored.view = views[group[g]];
            scored.bins = bins;
            scored.deviation = scores.deviations[g];
            scored.accuracy = scores.accuracies[g];
            scored.usability = s;
            scored.utility = Utility(options.weights, scored.deviation,
                                     scored.accuracy, s);
            tracker.Update(group[g], scored);
          }
        }
        comp.views_fully_searched += static_cast<int64_t>(group.size());
      });
  return tracker.TopK();
}

// View refinement (Section IV-C1): score every view at `def` bins, pick
// the top-k, then refine only those k with a full horizontal search.  The
// first pass fans out per view (threshold snapshots keep MuVE's pruning
// live across workers); the second pass refines only k views and stays
// serial on the main evaluator, preserving the legacy shared-RNG behavior
// for Hill Climbing.
std::vector<ScoredView> VerticalRefinement(WorkerSet& workers,
                                           const ViewSpace& space,
                                           const SearchOptions& options,
                                           common::Rng& rng) {
  const std::vector<View>& views = space.views();
  SharedTopKTracker tracker(options.k, views.size());
  const bool muve_pruning = options.horizontal == HorizontalStrategy::kMuve;

  workers.pool().ParallelFor(
      views.size(), [&](size_t worker, size_t i) {
        ViewEvaluator& evaluator = workers.evaluator(worker);
        // Boundary poll per first-pass probe.
        if (common::Expired(evaluator.exec())) {
          ExecCompleteness& comp = evaluator.stats().completeness;
          comp.degraded = true;
          ++comp.bins_pruned_by_deadline;
          return;
        }
        const DimensionInfo& dim = space.dimension_info(views[i].dimension);
        const int def = std::min(options.refinement_default_bins, dim.max_bins);
        const CandidateResult cand = EvaluateCandidate(
            evaluator, views[i], def, options,
            tracker.Threshold(), muve_pruning);
        if (cand.outcome == CandidateResult::Outcome::kFullyEvaluated) {
          tracker.Update(i, cand.scored);
        }
      });

  std::vector<ScoredView> selected = tracker.TopK();
  std::vector<ScoredView> refined;
  refined.reserve(selected.size());
  ExecCompleteness& main_comp = workers.main().stats().completeness;
  for (const ScoredView& sv : selected) {
    const DimensionInfo& dim = space.dimension_info(sv.view.dimension);
    const std::vector<int> domain = BinDomain(options.partition, dim.max_bins);
    // Boundary poll per refinement: an expired run keeps the first-pass
    // def-bin score for the remaining selections — still a valid
    // refinement answer, just unrefined.
    if (common::Expired(workers.main().exec())) {
      main_comp.degraded = true;
      main_comp.bins_pruned_by_deadline += static_cast<int64_t>(domain.size());
      refined.push_back(sv);
      continue;
    }
    const HorizontalResult result = RunHorizontalSearch(
        workers.main(), sv.view, domain, dim.max_bins, options, rng);
    if (result.truncated) {
      main_comp.degraded = true;
      main_comp.bins_pruned_by_deadline += result.bins_skipped;
    } else {
      ++main_comp.views_fully_searched;
    }
    // A full horizontal search always finds at least the def-bin utility.
    refined.push_back(result.best.has_value() ? *result.best : sv);
  }
  std::sort(refined.begin(), refined.end(),
            [](const ScoredView& a, const ScoredView& b) {
              return a.utility > b.utility;
            });
  return refined;
}

// View skipping (Section IV-C2): one horizontal search per dimension; its
// optimal bin count is assigned to every view sharing that dimension.
// Dimensions are independent batches and fan out across workers; Hill
// Climbing seeds its random start from the representative's view index
// (not a shared sequential RNG), so results are thread-count invariant.
std::vector<ScoredView> VerticalSkipping(WorkerSet& workers,
                                         const ViewSpace& space,
                                         const SearchOptions& options) {
  const std::vector<View>& views = space.views();
  SharedTopKTracker tracker(options.k, views.size());
  const bool muve_pruning = options.horizontal == HorizontalStrategy::kMuve;

  // Views grouped by dimension, preserving order; the group's first view
  // is the arbitrarily-selected representative.
  std::unordered_map<std::string, std::vector<size_t>> groups;
  std::vector<std::string> dimension_order;
  for (size_t i = 0; i < views.size(); ++i) {
    auto [it, inserted] = groups.try_emplace(views[i].dimension);
    if (inserted) dimension_order.push_back(views[i].dimension);
    it->second.push_back(i);
  }

  workers.pool().ParallelFor(
      dimension_order.size(), [&](size_t worker, size_t d) {
        ViewEvaluator& evaluator = workers.evaluator(worker);
        ExecCompleteness& comp = evaluator.stats().completeness;
        const std::vector<size_t>& group = groups[dimension_order[d]];
        const DimensionInfo& dim = space.dimension_info(dimension_order[d]);
        const std::vector<int> domain =
            BinDomain(options.partition, dim.max_bins);

        // Boundary poll per dimension: skipping one dimension skips its
        // representative search AND the per-member probes.
        if (common::Expired(evaluator.exec())) {
          comp.degraded = true;
          comp.bins_pruned_by_deadline += static_cast<int64_t>(
              domain.size() + (group.size() - 1));
          return;
        }
        const size_t rep = group.front();
        common::Rng rng = ViewRng(options, rep);
        const HorizontalResult rep_result = RunHorizontalSearch(
            evaluator, views[rep], domain, dim.max_bins, options, rng);
        if (rep_result.truncated) {
          comp.degraded = true;
          comp.bins_pruned_by_deadline += rep_result.bins_skipped;
        } else {
          ++comp.views_fully_searched;
        }
        if (!rep_result.best.has_value()) return;
        tracker.Update(rep, *rep_result.best);
        const int opt_bins = rep_result.best->bins;

        for (size_t j = 1; j < group.size(); ++j) {
          // Boundary poll per member probe.
          if (common::Expired(evaluator.exec())) {
            comp.degraded = true;
            comp.bins_pruned_by_deadline +=
                static_cast<int64_t>(group.size() - j);
            return;
          }
          const size_t idx = group[j];
          const CandidateResult cand =
              EvaluateCandidate(evaluator, views[idx], opt_bins, options,
                                tracker.Threshold(), muve_pruning);
          if (cand.outcome == CandidateResult::Outcome::kFullyEvaluated) {
            tracker.Update(idx, cand.scored);
          }
          ++comp.views_fully_searched;
        }
      });
  return tracker.TopK();
}

}  // namespace

double Recommendation::TotalUtility() const {
  double total = 0.0;
  for (const ScoredView& v : views) total += v.utility;
  return total;
}

std::string Recommendation::ToString() const {
  std::ostringstream out;
  out << scheme << " top-" << views.size() << ":\n";
  for (size_t i = 0; i < views.size(); ++i) {
    out << "  " << (i + 1) << ". " << views[i].ToString() << "\n";
  }
  out << "  " << stats.ToString();
  return out.str();
}

common::Result<Recommender> Recommender::Create(data::Dataset dataset) {
  MUVE_ASSIGN_OR_RETURN(ViewSpace space, ViewSpace::Create(dataset));
  return Recommender(std::move(dataset), std::move(space));
}

common::Result<Recommendation> Recommender::Recommend(
    const SearchOptions& options) const {
  MUVE_RETURN_IF_ERROR(options.Validate());

  // Execution control for this run: one context shared (by pointer) with
  // every worker evaluator, the strategies' boundary polls, and the fused
  // scan engine.  The deadline clock starts HERE — option validation is
  // the only work not covered by it.  Unbounded when no knob is set, in
  // which case every poll is a single relaxed load.
  common::ExecContext ctx;
  if (options.deadline_ms >= 0.0) {
    ctx.SetDeadlineAfterMillis(options.deadline_ms);
  }
  if (options.cancel_token != nullptr) {
    ctx.SetCancellationToken(options.cancel_token);
  }
  if (options.max_rows_scanned > 0) {
    ctx.SetRowBudget(options.max_rows_scanned);
  }

  ViewEvaluator::Options eval_options;
  eval_options.distance = options.distance;
  eval_options.sample_fraction = options.sample_fraction;
  eval_options.sample_seed = options.sample_seed;
  eval_options.use_base_histogram_cache = options.base_histogram_cache;
  eval_options.fused_morsel_size = options.fused_morsel_size;
  eval_options.fused_miss_batching = options.fused_miss_batching;
  eval_options.fused_coalescing = options.fused_coalescing;
  eval_options.exec = &ctx;
  if (options.base_histogram_cache) {
    if (options.shared_base_cache != nullptr &&
        options.sample_fraction >= 1.0) {
      // Cross-request sharing: the caller's store outlives this run, so
      // a warm run's prewarm is all hits.  Valid only when every run on
      // the store probes identical row sets — sampling draws a run-local
      // subset, so sampled runs fall through to a private store.
      eval_options.base_cache = options.shared_base_cache;
    } else {
      // ONE store per run, shared by every worker evaluator: all workers
      // probe identical row sets (same dataset + sampling draw), so a
      // histogram built by any lane serves them all.
      storage::BaseHistogramCache::Options cache_options;
      if (options.max_cache_bytes > 0) {
        cache_options.max_bytes = options.max_cache_bytes;
      }
      eval_options.base_cache =
          std::make_shared<storage::BaseHistogramCache>(cache_options);
    }
  }

  // More workers than views can never help; everything degrades to the
  // serial inline path at one worker.
  const size_t num_workers = std::min<size_t>(
      static_cast<size_t>(options.num_threads),
      std::max<size_t>(space_.views().size(), 1));
  WorkerSet workers(num_workers, dataset_, space_, eval_options);
  common::Rng rng(options.hc_seed);

  Recommendation rec;
  rec.scheme = options.SchemeName();
  // Worker-task exceptions (third-party distance callbacks, injected
  // faults) are captured by the pool and rethrown here on the calling
  // thread; convert them to the library's Status idiom so Recommend()
  // never leaks an exception OR terminates the process.  The prewarm
  // fan-out runs the same pool, so it sits inside the same guard.
  try {
    if (options.base_histogram_cache && options.fused_prewarm) {
      // Fused prewarm: ONE morsel-parallel pass per side fills the shared
      // cache with every eligible (A, M) base histogram before any
      // strategy probes.  Must run here — before the strategy fan-out —
      // because ParallelFor is not reentrant, so builds triggered inside
      // worker lanes cannot themselves use the pool.
      workers.main().PrewarmBaseHistograms(&workers.pool());
    }
    switch (options.approximation) {
      case VerticalApproximation::kRefinement:
        rec.views = VerticalRefinement(workers, space_, options, rng);
        break;
      case VerticalApproximation::kSkipping:
        rec.views = VerticalSkipping(workers, space_, options);
        break;
      case VerticalApproximation::kNone:
        if (options.shared_scans) {
          rec.views = VerticalSharedLinear(workers, space_, options);
        } else if (options.vertical == VerticalStrategy::kMuve) {
          rec.views = VerticalMuve(workers, space_, options);
        } else {
          rec.views = VerticalLinear(workers, space_, options);
        }
        break;
    }
  } catch (const common::StatusError& e) {
    // Typed transport (e.g. a base-histogram build failing on a real or
    // injected I/O fault): unwrap the original Status so callers see the
    // true cause, not a generic kInternal.
    return e.status();
  } catch (const std::exception& e) {
    return common::Status::Internal(std::string("search worker failed: ") +
                                    e.what());
  } catch (...) {
    return common::Status::Internal("search worker failed: unknown exception");
  }
  rec.stats = workers.MergedStats();
  // Completeness finalization: degradation only ever happens after the
  // context expired, so the first cause recorded by the context IS the
  // run's degradation code.  A run whose deadline expired after its last
  // probe is complete, not degraded — `degraded` comes from actual skips.
  if (rec.stats.completeness.degraded) {
    rec.stats.completeness.status = ctx.expiry_code();
  }
  // One-off setup costs measured when the dataset was assembled (load +
  // predicate filtering).  Reported, not added to TotalCostMillis(): the
  // paper's C covers only the four per-probe components.
  rec.stats.predicate_rows_filtered = dataset_.predicate_rows_filtered;
  rec.stats.chunks_skipped = dataset_.chunks_skipped;
  rec.stats.setup_time_ms = dataset_.setup_time_ms;
  return rec;
}

}  // namespace muve::core
