// Differential fuzz suite for the SIMD kernel layer (common/simd/):
// every kernel, at every dispatch level compiled into this binary, must
// be BIT-IDENTICAL to the scalar reference table — the exactness
// contract simd.h pins (the shared 4-lane-strided reduction
// association).  Inputs sweep the shapes that break lane code: length
// 0, 1, odd, one-below/above a lane multiple, long; values include ±0,
// denormals, and mixed magnitudes.  Seeded via tests/fuzz_util.h
// (MUVE_FUZZ_SEED to soak).
//
// Also pins the dispatch plumbing itself: level naming, the
// BinIndexReference clamp semantics, and SetActiveLevel round-trips.

#include "common/simd/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd/aligned.h"
#include "fuzz_util.h"

namespace muve::common::simd {
namespace {

// Bitwise double equality (distinguishes +0/-0; NaN is outside the
// kernel contract and never generated here).
::testing::AssertionResult BitEqual(double a, double b) {
  uint64_t ab = 0;
  uint64_t bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ab == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits 0x" << std::hex << ab << " vs 0x"
         << bb << ")";
}

// The lengths that break lane code: empty, sub-lane, lane boundaries
// +/- 1, odd, and long-with-tail.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                           31, 33, 63, 64, 100, 255, 1024, 1027};

// Fills `out` with adversarial doubles: mixed magnitudes, negatives,
// exact zeros of both signs, and denormals.
void FillAdversarial(Rng& rng, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double roll = rng.NextDouble();
    if (roll < 0.05) {
      out[i] = 0.0;
    } else if (roll < 0.10) {
      out[i] = -0.0;
    } else if (roll < 0.15) {
      out[i] = std::numeric_limits<double>::denorm_min() *
               static_cast<double>(rng.UniformInt(1, 1000));
    } else if (roll < 0.25) {
      out[i] = rng.Uniform(-1e-12, 1e-12);
    } else if (roll < 0.35) {
      out[i] = rng.Uniform(-1e9, 1e9);
    } else {
      out[i] = rng.Uniform(-1.0, 1.0);
    }
  }
}

// Every non-scalar table compiled into this binary and supported by
// this CPU.
std::vector<const KernelTable*> VectorTables() {
  std::vector<const KernelTable*> tables;
  for (const auto level : {DispatchLevel::kNeon, DispatchLevel::kAvx2}) {
    const KernelTable* t = KernelsFor(level);
    if (t != nullptr && t != &ScalarKernels()) tables.push_back(t);
  }
  return tables;
}

class SimdKernelDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (VectorTables().empty()) {
      GTEST_SKIP() << "no vector dispatch level compiled in / supported; "
                      "scalar-only binary is trivially self-consistent";
    }
  }
};

TEST_F(SimdKernelDifferentialTest, ReductionsBitIdenticalAcrossLevels) {
  const KernelTable& ref = ScalarKernels();
  uint64_t case_index = 0;
  for (const KernelTable* table : VectorTables()) {
    for (const size_t n : kLengths) {
      for (int round = 0; round < 8; ++round) {
        const uint64_t seed = testutil::FuzzSeed(case_index++);
        SCOPED_TRACE(testutil::FuzzTrace(case_index - 1, seed));
        SCOPED_TRACE(std::string("level=") + table->name +
                     " n=" + std::to_string(n));
        Rng rng(seed);
        AlignedVector<double> p(n), q(n);
        FillAdversarial(rng, p.data(), n);
        FillAdversarial(rng, q.data(), n);
        EXPECT_TRUE(BitEqual(ref.squared_l2_diff(p.data(), q.data(), n),
                             table->squared_l2_diff(p.data(), q.data(), n)));
        EXPECT_TRUE(BitEqual(ref.abs_diff_sum(p.data(), q.data(), n),
                             table->abs_diff_sum(p.data(), q.data(), n)));
        EXPECT_TRUE(BitEqual(ref.max_abs_diff(p.data(), q.data(), n),
                             table->max_abs_diff(p.data(), q.data(), n)));
        EXPECT_TRUE(
            BitEqual(ref.prefix_abs_diff_sum(p.data(), q.data(), n),
                     table->prefix_abs_diff_sum(p.data(), q.data(), n)));
        EXPECT_TRUE(BitEqual(ref.sum(p.data(), n), table->sum(p.data(), n)));
        // relative_sse's guard (g != 0) must agree across levels even
        // with exact ±0 entries in g.
        EXPECT_TRUE(BitEqual(ref.relative_sse(p.data(), q.data(), n),
                             table->relative_sse(p.data(), q.data(), n)));
      }
    }
  }
}

TEST_F(SimdKernelDifferentialTest, NormalizeIntoBitIdenticalAcrossLevels) {
  const KernelTable& ref = ScalarKernels();
  uint64_t case_index = 1000;
  for (const KernelTable* table : VectorTables()) {
    for (const size_t n : kLengths) {
      for (int round = 0; round < 8; ++round) {
        const uint64_t seed = testutil::FuzzSeed(case_index++);
        SCOPED_TRACE(testutil::FuzzTrace(case_index - 1, seed));
        SCOPED_TRACE(std::string("level=") + table->name +
                     " n=" + std::to_string(n));
        Rng rng(seed);
        AlignedVector<double> src(n);
        FillAdversarial(rng, src.data(), n);
        // Round 0 forces the all-clamped branch (uniform fallback).
        if (round == 0) {
          for (size_t i = 0; i < n; ++i) src[i] = -std::fabs(src[i]);
        }
        AlignedVector<double> dst_ref(n, -7.0), dst_vec(n, -7.0);
        const double total_ref = ref.normalize_into(src.data(), n,
                                                    dst_ref.data());
        const double total_vec = table->normalize_into(src.data(), n,
                                                       dst_vec.data());
        EXPECT_TRUE(BitEqual(total_ref, total_vec));
        for (size_t i = 0; i < n; ++i) {
          EXPECT_TRUE(BitEqual(dst_ref[i], dst_vec[i])) << "i=" << i;
        }
      }
    }
  }
}

TEST_F(SimdKernelDifferentialTest, BinIndexIntoBitExactAcrossLevels) {
  const KernelTable& ref = ScalarKernels();
  uint64_t case_index = 2000;
  for (const KernelTable* table : VectorTables()) {
    for (const size_t n : kLengths) {
      const uint64_t seed = testutil::FuzzSeed(case_index++);
      SCOPED_TRACE(testutil::FuzzTrace(case_index - 1, seed));
      SCOPED_TRACE(std::string("level=") + table->name +
                   " n=" + std::to_string(n));
      Rng rng(seed);
      AlignedVector<double> values(n);
      // Values straddling [lo, hi] with exact-boundary hits.
      const double lo = -3.0, hi = 5.0;
      for (size_t i = 0; i < n; ++i) {
        const double roll = rng.NextDouble();
        if (roll < 0.1) {
          values[i] = lo;
        } else if (roll < 0.2) {
          values[i] = hi;
        } else {
          values[i] = rng.Uniform(lo - 2.0, hi + 2.0);
        }
      }
      for (const int num_bins : {1, 2, 7, 64, 1024}) {
        std::vector<int32_t> out_ref(n, -1), out_vec(n, -1);
        ref.bin_index_into(values.data(), n, lo, hi, num_bins,
                           out_ref.data());
        table->bin_index_into(values.data(), n, lo, hi, num_bins,
                              out_vec.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(out_ref[i], out_vec[i])
              << "i=" << i << " v=" << values[i] << " bins=" << num_bins;
          // And both must equal the reference semantics.
          ASSERT_EQ(out_ref[i],
                    BinIndexReference(values[i], lo, hi, num_bins));
        }
      }
    }
  }
}

TEST_F(SimdKernelDifferentialTest, CoarsenByPrefixDiffBitIdentical) {
  const KernelTable& ref = ScalarKernels();
  uint64_t case_index = 3000;
  for (const KernelTable* table : VectorTables()) {
    for (const size_t d : {size_t{0}, size_t{1}, size_t{5}, size_t{64},
                           size_t{513}, size_t{4096}}) {
      const uint64_t seed = testutil::FuzzSeed(case_index++);
      SCOPED_TRACE(testutil::FuzzTrace(case_index - 1, seed));
      SCOPED_TRACE(std::string("level=") + table->name +
                   " d=" + std::to_string(d));
      Rng rng(seed);
      // Sorted distinct fine-bin values with clustered duplicates of
      // coarse assignment.
      std::vector<double> values(d);
      double v = rng.Uniform(-2.0, 0.0);
      for (size_t i = 0; i < d; ++i) {
        v += rng.Uniform(1e-6, 0.05);
        values[i] = v;
      }
      std::vector<int64_t> prefix_counts(d + 1, 0);
      std::vector<double> prefix_sums(d + 1, 0.0), prefix_sum_sqs(d + 1, 0.0);
      for (size_t i = 0; i < d; ++i) {
        const int64_t c = rng.UniformInt(0, 9);
        const double s = rng.Uniform(-50.0, 50.0);
        prefix_counts[i + 1] = prefix_counts[i] + c;
        prefix_sums[i + 1] = prefix_sums[i] + s;
        prefix_sum_sqs[i + 1] = prefix_sum_sqs[i] + s * s;
      }
      for (const int num_bins : {1, 3, 16, 100}) {
        const double lo = -2.0, hi = v + 1.0;
        AlignedVector<int64_t> c_ref(num_bins, -1), c_vec(num_bins, -1);
        AlignedVector<double> s_ref(num_bins, -1), s_vec(num_bins, -1);
        AlignedVector<double> q_ref(num_bins, -1), q_vec(num_bins, -1);
        ref.coarsen_by_prefix_diff(values.data(), d, lo, hi, num_bins,
                                   prefix_counts.data(), prefix_sums.data(),
                                   prefix_sum_sqs.data(), c_ref.data(),
                                   s_ref.data(), q_ref.data());
        table->coarsen_by_prefix_diff(values.data(), d, lo, hi, num_bins,
                                      prefix_counts.data(),
                                      prefix_sums.data(),
                                      prefix_sum_sqs.data(), c_vec.data(),
                                      s_vec.data(), q_vec.data());
        for (int k = 0; k < num_bins; ++k) {
          ASSERT_EQ(c_ref[k], c_vec[k]) << "bin " << k;
          ASSERT_TRUE(BitEqual(s_ref[k], s_vec[k])) << "bin " << k;
          ASSERT_TRUE(BitEqual(q_ref[k], q_vec[k])) << "bin " << k;
        }
      }
    }
  }
}

TEST_F(SimdKernelDifferentialTest, KeyedAccumulatorsBitIdentical) {
  const KernelTable& ref = ScalarKernels();
  uint64_t case_index = 4000;
  for (const KernelTable* table : VectorTables()) {
    for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{8},
                           size_t{37}, size_t{1000}}) {
      for (const bool with_validity : {false, true}) {
        const uint64_t seed = testutil::FuzzSeed(case_index++);
        SCOPED_TRACE(testutil::FuzzTrace(case_index - 1, seed));
        SCOPED_TRACE(std::string("level=") + table->name +
                     " n=" + std::to_string(n) +
                     " validity=" + (with_validity ? "y" : "n"));
        Rng rng(seed);
        const size_t num_rows = n + 16;
        const int num_keys = 13;
        std::vector<uint32_t> rows(n), keys(num_rows);
        AlignedVector<double> f64(num_rows);
        std::vector<int64_t> i64(num_rows);
        std::vector<uint64_t> validity((num_rows + 63) / 64, 0);
        for (size_t i = 0; i < num_rows; ++i) {
          // ~10% NULL keys exercise the sentinel skip.
          keys[i] = rng.NextDouble() < 0.1
                        ? kNullKey32
                        : static_cast<uint32_t>(
                              rng.UniformInt(0, num_keys - 1));
          f64[i] = rng.Uniform(-100.0, 100.0);
          i64[i] = rng.UniformInt(-1000, 1000);
          if (rng.NextDouble() < 0.8) {
            validity[i >> 6] |= uint64_t{1} << (i & 63);
          }
        }
        for (size_t i = 0; i < n; ++i) {
          rows[i] = static_cast<uint32_t>(
              rng.UniformInt(0, static_cast<int64_t>(num_rows) - 1));
        }
        const uint64_t* words = with_validity ? validity.data() : nullptr;
        // Split the range mid-way: kernels must honor [begin, end).
        const size_t begin = n / 3;
        const size_t end = n;
        {
          AlignedVector<int64_t> c_ref(num_keys, 2), c_vec(num_keys, 2);
          AlignedVector<double> s_ref(num_keys, 0.5), s_vec(num_keys, 0.5);
          AlignedVector<double> q_ref(num_keys, 0.25), q_vec(num_keys, 0.25);
          ref.accumulate_count_sum_sq_f64(rows.data(), begin, end,
                                          keys.data(), words, f64.data(),
                                          c_ref.data(), s_ref.data(),
                                          q_ref.data());
          table->accumulate_count_sum_sq_f64(rows.data(), begin, end,
                                             keys.data(), words, f64.data(),
                                             c_vec.data(), s_vec.data(),
                                             q_vec.data());
          for (int k = 0; k < num_keys; ++k) {
            ASSERT_EQ(c_ref[k], c_vec[k]) << "f64 key " << k;
            ASSERT_TRUE(BitEqual(s_ref[k], s_vec[k])) << "f64 key " << k;
            ASSERT_TRUE(BitEqual(q_ref[k], q_vec[k])) << "f64 key " << k;
          }
        }
        {
          AlignedVector<int64_t> c_ref(num_keys, 2), c_vec(num_keys, 2);
          AlignedVector<double> s_ref(num_keys, 0.5), s_vec(num_keys, 0.5);
          AlignedVector<double> q_ref(num_keys, 0.25), q_vec(num_keys, 0.25);
          ref.accumulate_count_sum_sq_i64(rows.data(), begin, end,
                                          keys.data(), words, i64.data(),
                                          c_ref.data(), s_ref.data(),
                                          q_ref.data());
          table->accumulate_count_sum_sq_i64(rows.data(), begin, end,
                                             keys.data(), words, i64.data(),
                                             c_vec.data(), s_vec.data(),
                                             q_vec.data());
          for (int k = 0; k < num_keys; ++k) {
            ASSERT_EQ(c_ref[k], c_vec[k]) << "i64 key " << k;
            ASSERT_TRUE(BitEqual(s_ref[k], s_vec[k])) << "i64 key " << k;
            ASSERT_TRUE(BitEqual(q_ref[k], q_vec[k])) << "i64 key " << k;
          }
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// Dispatch plumbing.

TEST(SimdDispatchTest, ScalarTableAlwaysAvailable) {
  const KernelTable& scalar = ScalarKernels();
  EXPECT_EQ(scalar.level, DispatchLevel::kScalar);
  EXPECT_STREQ(scalar.name, "scalar");
  EXPECT_EQ(KernelsFor(DispatchLevel::kScalar), &scalar);
}

TEST(SimdDispatchTest, BestSupportedLevelHasTable) {
  const DispatchLevel best = BestSupportedLevel();
  const KernelTable* table = KernelsFor(best);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->level, best);
}

TEST(SimdDispatchTest, SetActiveLevelRoundTrips) {
  const DispatchLevel original = ActiveLevel();
  ASSERT_TRUE(SetActiveLevel(DispatchLevel::kScalar));
  EXPECT_EQ(ActiveLevel(), DispatchLevel::kScalar);
  EXPECT_STREQ(ActiveLevelName(), "scalar");
  // Restore.
  ASSERT_TRUE(SetActiveLevel(original));
  EXPECT_EQ(ActiveLevel(), original);
}

TEST(SimdDispatchTest, SetActiveLevelRejectsUnsupported) {
  // At most one of NEON/AVX2 can be supported on a given host; the other
  // must be rejected without disturbing the active table.
  const DispatchLevel original = ActiveLevel();
  int unsupported = 0;
  for (const auto level : {DispatchLevel::kNeon, DispatchLevel::kAvx2}) {
    if (KernelsFor(level) == nullptr) {
      EXPECT_FALSE(SetActiveLevel(level));
      EXPECT_EQ(ActiveLevel(), original);
      ++unsupported;
    }
  }
  EXPECT_GE(unsupported, 1);
}

TEST(SimdDispatchTest, BinIndexReferenceClampSemantics) {
  EXPECT_EQ(BinIndexReference(0.5, 0.0, 1.0, 1), 0);
  EXPECT_EQ(BinIndexReference(123.0, 0.0, 1.0, 0), 0);
  EXPECT_EQ(BinIndexReference(-5.0, 0.0, 1.0, 4), 0);
  EXPECT_EQ(BinIndexReference(0.0, 0.0, 1.0, 4), 0);
  EXPECT_EQ(BinIndexReference(1.0, 0.0, 1.0, 4), 3);
  EXPECT_EQ(BinIndexReference(7.0, 0.0, 1.0, 4), 3);
  EXPECT_EQ(BinIndexReference(0.25, 0.0, 1.0, 4), 1);
}

}  // namespace
}  // namespace muve::common::simd
