file(REMOVE_RECURSE
  "CMakeFiles/muve_storage.dir/aggregate.cc.o"
  "CMakeFiles/muve_storage.dir/aggregate.cc.o.d"
  "CMakeFiles/muve_storage.dir/binned_group_by.cc.o"
  "CMakeFiles/muve_storage.dir/binned_group_by.cc.o.d"
  "CMakeFiles/muve_storage.dir/column.cc.o"
  "CMakeFiles/muve_storage.dir/column.cc.o.d"
  "CMakeFiles/muve_storage.dir/csv.cc.o"
  "CMakeFiles/muve_storage.dir/csv.cc.o.d"
  "CMakeFiles/muve_storage.dir/group_by.cc.o"
  "CMakeFiles/muve_storage.dir/group_by.cc.o.d"
  "CMakeFiles/muve_storage.dir/histogram.cc.o"
  "CMakeFiles/muve_storage.dir/histogram.cc.o.d"
  "CMakeFiles/muve_storage.dir/multi_aggregate.cc.o"
  "CMakeFiles/muve_storage.dir/multi_aggregate.cc.o.d"
  "CMakeFiles/muve_storage.dir/predicate.cc.o"
  "CMakeFiles/muve_storage.dir/predicate.cc.o.d"
  "CMakeFiles/muve_storage.dir/schema.cc.o"
  "CMakeFiles/muve_storage.dir/schema.cc.o.d"
  "CMakeFiles/muve_storage.dir/table.cc.o"
  "CMakeFiles/muve_storage.dir/table.cc.o.d"
  "CMakeFiles/muve_storage.dir/value.cc.o"
  "CMakeFiles/muve_storage.dir/value.cc.o.d"
  "libmuve_storage.a"
  "libmuve_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muve_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
