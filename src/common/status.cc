#include "common/status.h"

namespace muve::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kTypeMismatch:
      return "type_mismatch";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

int ExitCodeForStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kTypeMismatch:
      return 2;
    case StatusCode::kIoError:
    case StatusCode::kNotFound:
      return 3;
    case StatusCode::kDeadlineExceeded:
      return 4;
    case StatusCode::kCancelled:
      return 5;
    case StatusCode::kResourceExhausted:
      return 6;
    case StatusCode::kUnavailable:
      return 7;
    default:
      return 1;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace muve::common
