// Cross-request shared execution ablation (DESIGN.md §13).
//
// Starts an in-process muved on a loopback ephemeral port, replays a
// duplicate-heavy workload — a small pool of fixed recommend frames,
// each issued many times, the shape a dashboard of analysts produces —
// once with every sharing layer enabled and once with all of them off,
// and reports per-request latency plus the server's own sharing
// counters.  The interesting numbers: the result-cache hit rate on the
// duplicate workload and the mean-latency win of sharing-on over
// sharing-off.
//
//   $ ablate_cross_query [--repeat=N] [--smoke] [--json-out=PATH]
//
// Differential guarantee (pinned by tests/storage/cross_query_cache_test
// and tests/server/muved_integration_test): the two runs' response
// payloads are byte-identical frame for frame; this bench re-checks that
// on the side and aborts on any divergence, so a regression cannot hide
// behind a speedup.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness.h"
#include "server/json.h"
#include "server/muved_server.h"
#include "server/protocol.h"

namespace {

using muve::server::JsonValue;

struct Frame {
  const char* dataset;
  const char* predicate;  // nullptr = built-in
  const char* scheme;
  int64_t k;
  double weights[3];
};

JsonValue FrameRequest(const Frame& frame) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::String("recommend"));
  request.Set("dataset", JsonValue::String(frame.dataset));
  if (frame.predicate != nullptr) {
    request.Set("predicate", JsonValue::String(frame.predicate));
  }
  request.Set("scheme", JsonValue::String(frame.scheme));
  request.Set("k", JsonValue::Int(frame.k));
  // Deterministic probe order: the default timing-driven priority rule
  // jitters the reported stats run to run, which would fail the on/off
  // payload diff for reasons that have nothing to do with sharing.
  request.Set("probe_order", JsonValue::String("deviation-first"));
  JsonValue weights = JsonValue::Array();
  weights.Append(JsonValue::Double(frame.weights[0]));
  weights.Append(JsonValue::Double(frame.weights[1]));
  weights.Append(JsonValue::Double(frame.weights[2]));
  request.Set("weights", std::move(weights));
  return request;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunStats {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double total_ms = 0.0;
  int64_t requests = 0;
  int64_t result_cache_hits = 0;
  int64_t selection_hits = 0;
  int64_t base_hits = 0;
  int64_t recommends_executed = 0;
  std::vector<std::string> payloads;  // one canonical body per request
};

int64_t IntField(const JsonValue& obj, const char* name) {
  const JsonValue* v = obj.Find(name);
  return (v != nullptr && v->is_int()) ? v->int_value() : 0;
}

int64_t NestedIntField(const JsonValue& obj, const char* outer,
                       const char* name) {
  const JsonValue* o = obj.Find(outer);
  return (o != nullptr && o->is_object()) ? IntField(*o, name) : 0;
}

RunStats RunWorkload(bool sharing, const std::vector<Frame>& frames,
                     int rounds) {
  muve::server::ServerOptions options;
  options.port = 0;
  options.enable_selection_cache = sharing;
  options.enable_shared_base_cache = sharing;
  options.enable_result_cache = sharing;
  muve::server::MuvedServer server(options);
  if (auto st = server.Start(); !st.ok()) {
    std::cerr << "ablate_cross_query: " << st.ToString() << "\n";
    std::exit(1);
  }
  auto fd = muve::server::DialLocal(server.port());
  if (!fd.ok()) {
    std::cerr << "ablate_cross_query: " << fd.status().ToString() << "\n";
    std::exit(1);
  }

  RunStats run;
  std::vector<double> latencies;
  const double wall_start = NowMs();
  for (int round = 0; round < rounds; ++round) {
    for (const Frame& frame : frames) {
      const JsonValue request = FrameRequest(frame);
      const double start = NowMs();
      auto response = muve::server::RoundTrip(*fd, request);
      latencies.push_back(NowMs() - start);
      const JsonValue* ok = response.ok() ? response->Find("ok") : nullptr;
      if (!response.ok() || ok == nullptr || !ok->bool_value()) {
        std::cerr << "ablate_cross_query: request failed\n";
        std::exit(1);
      }
      run.payloads.push_back(response->Write());
    }
  }
  run.total_ms = NowMs() - wall_start;
  run.requests = static_cast<int64_t>(latencies.size());

  JsonValue stats_request = JsonValue::Object();
  stats_request.Set("op", JsonValue::String("stats"));
  if (auto stats = muve::server::RoundTrip(*fd, stats_request); stats.ok()) {
    run.result_cache_hits = IntField(*stats, "result_cache_hits");
    run.recommends_executed = IntField(*stats, "recommends_executed");
    run.selection_hits = NestedIntField(*stats, "selection_cache", "hits");
    run.base_hits = NestedIntField(*stats, "base_cache", "hits");
  }
  ::close(*fd);
  server.Stop();

  for (double v : latencies) run.mean_ms += v;
  if (!latencies.empty()) {
    run.mean_ms /= static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    run.p50_ms = latencies[latencies.size() / 2];
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const auto& options = muve::bench::InitBench(&argc, argv);

  // The duplicate pool: one hot NBA frame spelled with its conjunction
  // both ways (exercising predicate canonicalization), a predicate-free
  // NBA frame, and a toy frame.  Every round replays the whole pool.
  std::vector<Frame> frames = {
      {"nba", nullptr, "muve-muve", 5, {0.8, 0.1, 0.1}},
      {"nba", "Age >= 30 AND MP > 500", "muve-muve", 5, {0.8, 0.1, 0.1}},
      {"nba", "MP > 500 AND Age >= 30", "muve-muve", 5, {0.8, 0.1, 0.1}},
      {"toy", nullptr, "muve-linear", 3, {0.4, 0.3, 0.3}},
  };
  int rounds = options.smoke ? 3 : 10;
  if (options.repeat > 0) rounds = options.repeat;

  const RunStats on = RunWorkload(/*sharing=*/true, frames, rounds);
  const RunStats off = RunWorkload(/*sharing=*/false, frames, rounds);

  // Differential check on the side: sharing must not change a single
  // response byte.  (The full proof lives in the test layer; failing
  // here means the bench numbers are meaningless.)
  if (on.payloads != off.payloads) {
    std::cerr << "ablate_cross_query: sharing changed response payloads — "
                 "differential violation\n";
    return 1;
  }

  const int64_t answered = on.recommends_executed + on.result_cache_hits;
  const double hit_rate =
      answered > 0 ? static_cast<double>(on.result_cache_hits) /
                         static_cast<double>(answered)
                   : 0.0;
  const double speedup = on.mean_ms > 0.0 ? off.mean_ms / on.mean_ms : 0.0;

  muve::bench::TablePrinter table(
      {"config", "requests", "mean_ms", "p50_ms", "result_hits", "sel_hits",
       "base_hits"});
  table.AddRow({"sharing-on", std::to_string(on.requests),
                muve::bench::Ms(on.mean_ms), muve::bench::Ms(on.p50_ms),
                std::to_string(on.result_cache_hits),
                std::to_string(on.selection_hits),
                std::to_string(on.base_hits)});
  table.AddRow({"sharing-off", std::to_string(off.requests),
                muve::bench::Ms(off.mean_ms), muve::bench::Ms(off.p50_ms),
                std::to_string(off.result_cache_hits),
                std::to_string(off.selection_hits),
                std::to_string(off.base_hits)});
  table.Print("Cross-request shared execution (duplicate-heavy workload)");
  std::cout << "result-cache hit rate: " << muve::bench::Pct(hit_rate)
            << "   mean-latency speedup: " << muve::bench::Ms(speedup)
            << "x\n";

  muve::bench::RecordJsonResult(
      "cross-query-sharing",
      {},
      {{"rounds", static_cast<double>(rounds)},
       {"requests", static_cast<double>(on.requests)},
       {"on_mean_ms", on.mean_ms},
       {"on_p50_ms", on.p50_ms},
       {"off_mean_ms", off.mean_ms},
       {"off_p50_ms", off.p50_ms},
       {"result_cache_hits", static_cast<double>(on.result_cache_hits)},
       {"selection_hits", static_cast<double>(on.selection_hits)},
       {"base_hits", static_cast<double>(on.base_hits)},
       {"hit_rate", hit_rate},
       {"mean_speedup", speedup}});
  return 0;
}
