// SVG / standalone-HTML rendering of recommended views.
//
// The terminal renderer (bar_chart.h) is for quick inspection; this
// module emits real charts: a grouped bar chart per recommended view
// showing the normalized target and comparison distributions side by
// side (the paper's Figure 3 layout), and an HTML report stitching the
// whole top-k recommendation together.  No external dependencies — the
// SVG is hand-assembled.

#ifndef MUVE_VIZ_SVG_CHART_H_
#define MUVE_VIZ_SVG_CHART_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace muve::viz {

struct SvgChartOptions {
  int width = 640;
  int height = 360;
  std::string target_color = "#1f77b4";      // target series bars
  std::string comparison_color = "#ff7f0e";  // comparison series bars
  int label_font_size = 12;
};

// One grouped-bar chart: per bin label, a target bar and a comparison
// bar.  `target` and `comparison` must match `labels` in length.  Values
// are rendered as given (normalize upstream for distributions).
struct GroupedBarChart {
  std::string title;
  std::string target_legend = "target";
  std::string comparison_legend = "comparison";
  std::vector<std::string> labels;
  std::vector<double> target;
  std::vector<double> comparison;
};

// Renders the chart as a self-contained <svg> element.
std::string RenderSvg(const GroupedBarChart& chart,
                      const SvgChartOptions& options = {});

// Wraps multiple charts into one standalone HTML document.
std::string RenderHtmlReport(const std::string& title,
                             const std::vector<GroupedBarChart>& charts,
                             const SvgChartOptions& options = {});

// Writes the HTML report to `path`.
common::Status WriteHtmlReport(const std::string& path,
                               const std::string& title,
                               const std::vector<GroupedBarChart>& charts,
                               const SvgChartOptions& options = {});

// Escapes &, <, >, " for embedding in SVG/HTML text nodes.
std::string EscapeXml(const std::string& text);

}  // namespace muve::viz

#endif  // MUVE_VIZ_SVG_CHART_H_
