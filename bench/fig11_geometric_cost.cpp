// Figure 11: impact of geometric range partitioning on cost (NBA).
//
// Paper findings to reproduce (alpha_A = 0.2, alpha_S sweeping): the cost
// of Linear(G)-Linear stays flat across alpha_S, while geometric
// partitioning plus MuVE pruning cuts MuVE(G)-Linear and MuVE(G)-MuVE by
// more than 50% at high alpha_S.

#include <iostream>

#include "core/recommender.h"
#include "data/nba.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "harness.h"

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  using muve::bench::Ms;
  using muve::bench::RunScheme;

  std::cout << "=== Figure 11: geometric partitioning vs cost (NBA) ===\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 3, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  muve::bench::TablePrinter table({"alpha_S", "alpha_D",
                                   "Linear(G)-Linear(ms)",
                                   "MuVE(G)-Linear(ms)",
                                   "MuVE(G)-MuVE(ms)", "MuVE(G)-MuVE vs "
                                   "Linear(G)"});
  for (const double alpha_s : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    const double alpha_d = 0.8 - alpha_s;
    const muve::core::Weights weights{alpha_d, 0.2, alpha_s};

    auto linear = muve::bench::LinearLinear();
    auto muve_linear = muve::bench::MuveLinear();
    auto muve_muve = muve::bench::MuveMuve();
    for (auto* opt : {&linear, &muve_linear, &muve_muve}) {
      opt->weights = weights;
      opt->partition.kind = muve::core::PartitionKind::kGeometric;
    }

    const auto r_lin = RunScheme(*recommender, linear);
    const auto r_ml = RunScheme(*recommender, muve_linear);
    const auto r_mm = RunScheme(*recommender, muve_muve);
    table.AddRow({muve::common::FormatDouble(alpha_s, 1),
                  muve::common::FormatDouble(alpha_d, 1), Ms(r_lin.cost_ms),
                  Ms(r_ml.cost_ms), Ms(r_mm.cost_ms),
                  muve::bench::Pct(1.0 - r_mm.cost_ms / r_lin.cost_ms)});
  }
  table.Print("Figure 11 — NBA: cost vs alpha_S under geometric "
              "partitioning (alpha_A = 0.2, k = 5), mean of " +
              std::to_string(muve::bench::Repetitions()) + " runs");
  return 0;
}
