// Recursive-descent parser for the MuVE SQL dialect.  See ast.h for the
// grammar surface.

#ifndef MUVE_SQL_PARSER_H_
#define MUVE_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace muve::sql {

// Parses a single statement (SELECT or RECOMMEND).  Trailing semicolons
// are allowed; trailing garbage is an error.
common::Result<Statement> Parse(const std::string& sql);

// Convenience wrapper that fails when the statement is not a SELECT.
common::Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace muve::sql

#endif  // MUVE_SQL_PARSER_H_
