#include "sql/executor.h"

#include <gtest/gtest.h>

#include "sql/catalog.h"
#include "storage/csv.h"

namespace muve::sql {
namespace {

using storage::Table;
using storage::Value;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    auto table = storage::ReadCsvString(
        "day,region,revenue\n"
        "1,north,10\n"
        "2,north,20\n"
        "3,north,30\n"
        "4,south,40\n"
        "5,south,50\n"
        "6,south,60\n"
        "7,south,70\n"
        "8,north,80\n");
    EXPECT_TRUE(table.ok());
    EXPECT_TRUE(
        catalog_.RegisterTable("sales", std::move(table).value()).ok());
  }

  Table Run(const std::string& sql) {
    auto result = ExecuteSql(sql, catalog_);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    if (result.ok()) return std::move(result).value();
    return Table(storage::Schema());
  }

  Catalog catalog_;
};

TEST_F(ExecutorTest, ProjectionAndFilter) {
  Table t = Run("SELECT day FROM sales WHERE region = 'south'");
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_columns(), 1u);
  EXPECT_EQ(t.At(0, 0), Value(int64_t{4}));
  EXPECT_EQ(t.At(3, 0), Value(int64_t{7}));
}

TEST_F(ExecutorTest, StarExpandsAllColumns) {
  Table t = Run("SELECT * FROM sales");
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 8u);
}

TEST_F(ExecutorTest, ProjectionAlias) {
  Table t = Run("SELECT day AS d FROM sales LIMIT 1");
  EXPECT_EQ(t.schema().field(0).name, "d");
}

TEST_F(ExecutorTest, ScalarAggregates) {
  Table t = Run("SELECT SUM(revenue), COUNT(*), MIN(day), MAX(day), "
                "AVG(revenue) FROM sales");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0), Value(360.0));
  EXPECT_EQ(t.At(0, 1), Value(int64_t{8}));
  EXPECT_EQ(t.At(0, 2), Value(1.0));
  EXPECT_EQ(t.At(0, 3), Value(8.0));
  EXPECT_EQ(t.At(0, 4), Value(45.0));
}

TEST_F(ExecutorTest, ScalarAggregateWithFilter) {
  Table t = Run("SELECT SUM(revenue) FROM sales WHERE region = 'north'");
  EXPECT_EQ(t.At(0, 0), Value(140.0));
}

TEST_F(ExecutorTest, GroupByString) {
  Table t = Run(
      "SELECT region, SUM(revenue) FROM sales GROUP BY region");
  ASSERT_EQ(t.num_rows(), 2u);
  // Keys sorted ascending: north, south.
  EXPECT_EQ(t.At(0, 0), Value("north"));
  EXPECT_EQ(t.At(0, 1), Value(140.0));
  EXPECT_EQ(t.At(1, 0), Value("south"));
  EXPECT_EQ(t.At(1, 1), Value(220.0));
}

TEST_F(ExecutorTest, GroupByMultipleAggregates) {
  Table t = Run(
      "SELECT region, COUNT(*), AVG(revenue) FROM sales GROUP BY region");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.At(0, 1), Value(int64_t{4}));
  EXPECT_EQ(t.At(1, 2), Value(55.0));
}

TEST_F(ExecutorTest, GroupByWithoutKeyColumn) {
  Table t = Run("SELECT SUM(revenue) FROM sales GROUP BY region");
  EXPECT_EQ(t.num_columns(), 1u);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(ExecutorTest, BinnedGroupBy) {
  Table t = Run(
      "SELECT day, SUM(revenue) FROM sales GROUP BY day NUMBER OF BINS 2");
  ASSERT_EQ(t.num_rows(), 2u);
  // Range [1, 8], width 3.5: days 1-4 -> bin 0 (100), 5-8 -> bin 1 (260).
  EXPECT_EQ(t.At(0, 0), Value(1.0));
  EXPECT_EQ(t.At(0, 1), Value(4.5));
  EXPECT_EQ(t.At(0, 2), Value(100.0));
  EXPECT_EQ(t.At(1, 2), Value(260.0));
}

TEST_F(ExecutorTest, BinnedGroupByUsesWholeTableRange) {
  // Filtered to 'south' (days 4-7) but binned over the full range [1, 8]:
  // bin 0 covers days 1-4 and must contain only day 4's revenue.
  Table t = Run(
      "SELECT day, SUM(revenue) FROM sales WHERE region = 'south' "
      "GROUP BY day NUMBER OF BINS 2");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.At(0, 0), Value(1.0));  // bin_lo still 1, not 4
  EXPECT_EQ(t.At(0, 2), Value(40.0));
  EXPECT_EQ(t.At(1, 2), Value(180.0));
}

TEST_F(ExecutorTest, BinnedEmptyBinsRenderZero) {
  Table t = Run(
      "SELECT day, SUM(revenue) FROM sales WHERE day <= 2 "
      "GROUP BY day NUMBER OF BINS 7");
  ASSERT_EQ(t.num_rows(), 7u);
  EXPECT_EQ(t.At(6, 2), Value(0.0));
}

TEST_F(ExecutorTest, HavingFiltersAggregatedGroups) {
  Table t = Run(
      "SELECT region, SUM(revenue) AS total FROM sales GROUP BY region "
      "HAVING total > 150");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 0), Value("south"));
}

TEST_F(ExecutorTest, HavingOnCountWithOrdering) {
  Table t = Run(
      "SELECT day, COUNT(*) AS n FROM sales GROUP BY day HAVING n >= 1 "
      "ORDER BY day DESC LIMIT 2");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.At(0, 0), Value(int64_t{8}));
}

TEST_F(ExecutorTest, HavingCanEliminateEverything) {
  Table t = Run(
      "SELECT region, SUM(revenue) AS total FROM sales GROUP BY region "
      "HAVING total > 10000");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(ExecutorTest, HavingErrors) {
  // Without GROUP BY.
  EXPECT_FALSE(ExecuteSql("SELECT day FROM sales HAVING day > 1", catalog_)
                   .ok());
  // Unknown output column.
  EXPECT_FALSE(ExecuteSql(
                   "SELECT region, SUM(revenue) AS total FROM sales "
                   "GROUP BY region HAVING nope > 1",
                   catalog_)
                   .ok());
}

TEST_F(ExecutorTest, OrderByDescAndLimit) {
  Table t = Run(
      "SELECT day, revenue FROM sales ORDER BY revenue DESC LIMIT 3");
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.At(0, 1), Value(int64_t{80}));
  EXPECT_EQ(t.At(1, 1), Value(int64_t{70}));
  EXPECT_EQ(t.At(2, 1), Value(int64_t{60}));
}

TEST_F(ExecutorTest, OrderByOutputColumnOfGroupBy) {
  Table t = Run(
      "SELECT region, SUM(revenue) AS total FROM sales GROUP BY region "
      "ORDER BY total DESC");
  EXPECT_EQ(t.At(0, 0), Value("south"));
}

TEST_F(ExecutorTest, LimitZero) {
  Table t = Run("SELECT * FROM sales LIMIT 0");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(ExecutorTest, Errors) {
  EXPECT_FALSE(ExecuteSql("SELECT * FROM missing", catalog_).ok());
  EXPECT_FALSE(ExecuteSql("SELECT nope FROM sales", catalog_).ok());
  EXPECT_FALSE(
      ExecuteSql("SELECT day, SUM(revenue) FROM sales", catalog_).ok());
  EXPECT_FALSE(
      ExecuteSql("SELECT revenue FROM sales GROUP BY region", catalog_).ok());
  EXPECT_FALSE(
      ExecuteSql("SELECT * FROM sales GROUP BY region", catalog_).ok());
  EXPECT_FALSE(ExecuteSql("SELECT region FROM sales GROUP BY region",
                          catalog_)
                   .ok());  // no aggregate
  EXPECT_FALSE(ExecuteSql(
                   "SELECT region, SUM(revenue) FROM sales GROUP BY region "
                   "NUMBER OF BINS 3",
                   catalog_)
                   .ok());  // cannot bin a string dimension
  EXPECT_FALSE(ExecuteSql("SELECT SUM(region) FROM sales", catalog_).ok());
  EXPECT_FALSE(
      ExecuteSql("SELECT * FROM sales ORDER BY nope", catalog_).ok());
  EXPECT_FALSE(ExecuteSql("RECOMMEND VIEWS FROM sales WHERE day = 1",
                          catalog_)
                   .ok());  // wrong entry point
}

TEST_F(ExecutorTest, CatalogBasics) {
  EXPECT_TRUE(catalog_.HasTable("SALES"));  // case-insensitive
  EXPECT_FALSE(catalog_.HasTable("nope"));
  EXPECT_FALSE(catalog_
                   .RegisterTable("sales", Table(storage::Schema()))
                   .ok());  // duplicate
  EXPECT_EQ(catalog_.TableNames().size(), 1u);
}

}  // namespace
}  // namespace muve::sql
