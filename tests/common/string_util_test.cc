#include "common/string_util.h"

#include <gtest/gtest.h>

namespace muve::common {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("xyz", ','), (std::vector<std::string>{"xyz"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(CaseTest, LowerUpper) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("AbC1"), "ABC1");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Select", "SELECT"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(PadTest, PadsToWidth) {
  EXPECT_EQ(PadLeft("7", 3), "  7");
  EXPECT_EQ(PadRight("7", 3), "7  ");
  EXPECT_EQ(PadLeft("long", 2), "long");
}

}  // namespace
}  // namespace muve::common
