file(REMOVE_RECURSE
  "CMakeFiles/muve_sql.dir/ast.cc.o"
  "CMakeFiles/muve_sql.dir/ast.cc.o.d"
  "CMakeFiles/muve_sql.dir/catalog.cc.o"
  "CMakeFiles/muve_sql.dir/catalog.cc.o.d"
  "CMakeFiles/muve_sql.dir/executor.cc.o"
  "CMakeFiles/muve_sql.dir/executor.cc.o.d"
  "CMakeFiles/muve_sql.dir/lexer.cc.o"
  "CMakeFiles/muve_sql.dir/lexer.cc.o.d"
  "CMakeFiles/muve_sql.dir/parser.cc.o"
  "CMakeFiles/muve_sql.dir/parser.cc.o.d"
  "CMakeFiles/muve_sql.dir/token.cc.o"
  "CMakeFiles/muve_sql.dir/token.cc.o.d"
  "libmuve_sql.a"
  "libmuve_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muve_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
