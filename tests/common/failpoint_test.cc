// Registry-level failpoint tests.  These exercise the spec grammar and the
// configuration API, which compile in EVERY build; tests that need a site
// to actually fire (MUVE_FAILPOINT in production code) live in
// tests/integration/fault_injection_test.cc and skip when the build did
// not define MUVE_FAILPOINTS.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <chrono>

namespace muve::common {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { ClearFailpoints(); }
};

TEST_F(FailpointTest, SetAcceptsEveryActionSpelling) {
  EXPECT_TRUE(SetFailpoint("x", "error").ok());
  EXPECT_TRUE(SetFailpoint("x", "oom").ok());
  EXPECT_TRUE(SetFailpoint("x", "throw").ok());
  EXPECT_TRUE(SetFailpoint("x", "delay(5ms)").ok());
  EXPECT_TRUE(SetFailpoint("x", "off").ok());
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_EQ(SetFailpoint("x", "").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(SetFailpoint("x", "explode").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SetFailpoint("x", "delay").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(SetFailpoint("x", "delay(ms)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SetFailpoint("x", "delay(5s)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SetFailpoint("x", "delay(5ms").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailpointTest, DelayBeyondCapIsRejected) {
  EXPECT_EQ(SetFailpoint("x", "delay(600000ms)").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailpointTest, HitReflectsConfiguredAction) {
  ASSERT_TRUE(SetFailpoint("site.a", "error").ok());
  EXPECT_EQ(FailpointHit("site.a"), FailpointAction::kError);
  EXPECT_EQ(FailpointHit("site.unconfigured"), FailpointAction::kOff);
}

TEST_F(FailpointTest, OffRemovesASite) {
  ASSERT_TRUE(SetFailpoint("site.a", "oom").ok());
  EXPECT_EQ(FailpointHit("site.a"), FailpointAction::kOom);
  ASSERT_TRUE(SetFailpoint("site.a", "off").ok());
  EXPECT_EQ(FailpointHit("site.a"), FailpointAction::kOff);
}

TEST_F(FailpointTest, ClearRemovesEverything) {
  ASSERT_TRUE(SetFailpoint("a", "error").ok());
  ASSERT_TRUE(SetFailpoint("b", "oom").ok());
  ClearFailpoints();
  EXPECT_EQ(FailpointHit("a"), FailpointAction::kOff);
  EXPECT_EQ(FailpointHit("b"), FailpointAction::kOff);
}

TEST_F(FailpointTest, ConfigureFromStringParsesMultipleSites) {
  ASSERT_TRUE(
      ConfigureFailpointsFromString("a=error;b=oom;;c=delay(1ms)").ok());
  EXPECT_EQ(FailpointHit("a"), FailpointAction::kError);
  EXPECT_EQ(FailpointHit("b"), FailpointAction::kOom);
  EXPECT_EQ(FailpointHit("c"), FailpointAction::kDelay);
}

TEST_F(FailpointTest, ConfigureFromStringRejectsMalformedEntry) {
  EXPECT_EQ(ConfigureFailpointsFromString("a=error;b").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ConfigureFailpointsFromString("=error").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailpointTest, DelaySleepsBeforeReturning) {
  ASSERT_TRUE(SetFailpoint("slow", "delay(20ms)").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(FailpointHit("slow"), FailpointAction::kDelay);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
}

TEST_F(FailpointTest, FailpointErrorCarriesSiteName) {
  const FailpointError err("csv.read");
  EXPECT_STREQ(err.what(), "failpoint csv.read threw");
}

TEST_F(FailpointTest, CompiledInMatchesBuildFlag) {
#ifdef MUVE_FAILPOINTS
  EXPECT_TRUE(FailpointsCompiledIn());
#else
  EXPECT_FALSE(FailpointsCompiledIn());
#endif
}

}  // namespace
}  // namespace muve::common
