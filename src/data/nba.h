// Synthetic stand-in for the 2015 NBA player statistics dataset
// (basketball-reference.com, paper ref [2]).
//
// The paper's NBA workload: 651 tuples, 28 attributes; dimensions are
// independent numeric attributes (age, games, minutes played), measures
// are observation rates (player efficiency rating, 3-point attempt rate,
// ...), up to 13 measures.  The analyst query is `team = 'GSW'`.
//
// Dimension ranges are pinned to MP [0,1440], G [0,82], Age [19,39], so
// sum-of-max-bins = 1440 + 82 + 20 = 1542 and the default binned-view
// space is 2 x 3 x 3 x 1542 = 27,756 views — exactly the count the paper
// reports for NBA.
//
// The generator plants the paper's Example 1 pattern: league-wide, 3PAr
// declines as minutes played grow (fatigue), but GSW players keep a high
// 3PAr at high MP (roughly 4x the league at the top bins), so the
// MP/SUM(3PAr) view binned coarsely surfaces as a highly-deviating
// recommendation, mirroring Figures 1-3.

#ifndef MUVE_DATA_NBA_H_
#define MUVE_DATA_NBA_H_

#include <cstdint>

#include "data/dataset.h"

namespace muve::data {

inline constexpr size_t kNbaRows = 651;
inline constexpr uint64_t kNbaDefaultSeed = 20151506;
inline constexpr size_t kNbaMaxMeasures = 13;

// Builds the NBA dataset with its default workload:
//   dimensions: MP, G, Age
//   measures:   first 3 of {3PAr, PER, TS_pct, FTr, TRB_pct, AST_pct,
//               STL_pct, BLK_pct, TOV_pct, USG_pct, WS, DWS, OWS}
//   functions:  SUM, AVG, COUNT
//   predicate:  team = 'GSW'
Dataset MakeNbaDataset(uint64_t seed = kNbaDefaultSeed);

}  // namespace muve::data

#endif  // MUVE_DATA_NBA_H_
