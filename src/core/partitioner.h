// Bin-domain generation (Section IV-C3, range partitioning).
//
// The default domain for a dimension with maximum bin count B is
// {1, 2, ..., B} (additive, step 1).  Additive with step s samples
// {1, 1+s, 1+2s, ...}; geometric samples {1, 2, 4, 8, ...}.  All domains
// are ascending in bin count, i.e. descending in usability — the order
// MuVE's S-list traversal requires.

#ifndef MUVE_CORE_PARTITIONER_H_
#define MUVE_CORE_PARTITIONER_H_

#include <vector>

#include "core/search_options.h"

namespace muve::core {

// Returns the candidate bin counts for a dimension with `max_bins`
// choices under `spec`.  Always non-empty (contains at least 1).
std::vector<int> BinDomain(const PartitionSpec& spec, int max_bins);

}  // namespace muve::core

#endif  // MUVE_CORE_PARTITIONER_H_
