// muved wire protocol: length-prefixed JSON frames over TCP.
//
// Frame layout (both directions):
//
//   +----------------+----------------------+
//   | 4 bytes, big-  | N bytes of UTF-8     |
//   | endian uint32 N| JSON (one object)    |
//   +----------------+----------------------+
//
// N must be in [1, kMaxFrameBytes].  Requests are objects with an "op"
// field ("ping", "use", "defaults", "recommend", "shutdown" — see
// README "muved" for the full field tables); responses always carry
// "ok" (bool) and echo "op".  Errors are
//
//   {"ok":false,"error":{"code":"<StatusCodeName>",
//                        "exit_code":<ExitCodeForStatus>,
//                        "message":"..."}}
//
// — the same typed-code table muve_cli exits with, so a scripted client
// can branch on cause identically over the wire and at the shell.
//
// This header also carries the blocking socket helpers both muved and
// the muve_loadgen client use.  All I/O loops over EINTR; a frame read
// distinguishes clean EOF (kNotFound — peer closed between frames) from
// a truncated frame or oversized length (kParseError / kIoError).  Reads
// and writes optionally take poll()-based timeouts (FrameTimeouts /
// timeout_ms) so a stalled or never-reading peer surfaces as
// kDeadlineExceeded instead of pinning the calling thread forever.

#ifndef MUVE_SERVER_PROTOCOL_H_
#define MUVE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/json.h"

namespace muve::server {

// Hard cap on one frame's payload: large enough for any recommendation
// response, small enough that a hostile length prefix cannot make the
// server allocate gigabytes.
constexpr uint32_t kMaxFrameBytes = 16u * 1024u * 1024u;

// Read-side timeout policy for one frame (0 = no limit on that phase).
//
//   idle_ms  — how long the peer may stay silent BETWEEN frames: the
//              budget for the frame's first byte to arrive.  A quiet but
//              healthy session trips this, so servers usually set it
//              much higher than frame_ms.
//   frame_ms — once the first byte has arrived, the budget for the REST
//              of the frame (header remainder + body).  This is the
//              anti-slowloris bound: a peer trickling one byte per poll
//              interval still has to land the whole frame inside one
//              frame_ms window, so a stalled or drip-feeding client is
//              disconnected in bounded time.
struct FrameTimeouts {
  int idle_ms = 0;
  int frame_ms = 0;
};

// Which read-timeout phase fired (out-param of the timeout-aware
// ReadFrame), so callers can count idle disconnects apart from
// mid-frame (slowloris) disconnects.
enum class FrameTimeoutKind { kNone, kIdle, kMidFrame };

// Reads exactly one frame's payload from `fd` into `*payload`.
//   kNotFound         — clean EOF before any length byte (peer hung up).
//   kParseError       — length prefix of 0 or > kMaxFrameBytes (the
//                       connection cannot be resynchronized afterwards).
//   kIoError          — read error or EOF mid-frame.
//   kDeadlineExceeded — a FrameTimeouts phase expired (`*timed_out` says
//                       which); the frame is torn, so the connection
//                       should be dropped.
common::Status ReadFrame(int fd, std::string* payload);
common::Status ReadFrame(int fd, std::string* payload,
                         const FrameTimeouts& timeouts,
                         FrameTimeoutKind* timed_out = nullptr);

// Writes one frame (length prefix + payload).  kInvalidArgument when the
// payload exceeds kMaxFrameBytes; kIoError on short/failed writes;
// kDeadlineExceeded when `timeout_ms` > 0 and the peer would not accept
// the whole frame within it (a never-reading peer with a full socket
// buffer must not pin a handler thread).
common::Status WriteFrame(int fd, std::string_view payload,
                          int timeout_ms = 0);

// Convenience: WriteFrame(message.Write()).
common::Status WriteMessage(int fd, const JsonValue& message,
                            int timeout_ms = 0);

// Builds the protocol's error response for `status` (see header comment).
JsonValue ErrorResponse(const common::Status& status);

// The overload-shed error frame: ErrorResponse(status) with an
// additional `error.retry_after_ms` hint — the server's suggestion for
// how long a well-behaved client should back off before retrying
// (recommends are idempotent and result-cached, so retrying is safe).
JsonValue OverloadedResponse(const common::Status& status,
                             int64_t retry_after_ms);

// Builds an ok response skeleton {"ok":true,"op":<op>}.
JsonValue OkResponse(std::string_view op);

// Client-side: connects to 127.0.0.1:`port` (muved binds loopback only),
// returning the connected fd.  The caller owns/closes it.
common::Result<int> DialLocal(int port);

// One blocking request/response exchange on an open connection.
common::Result<JsonValue> RoundTrip(int fd, const JsonValue& request);

}  // namespace muve::server

#endif  // MUVE_SERVER_PROTOCOL_H_
