// Typed columnar storage.
//
// Each column stores its native type as a sequence of fixed-capacity
// chunks (storage/chunk.h), each carrying its own validity bitmap, zone
// map, and (for strings) dictionary.  Scans run chunk-at-a-time over the
// raw per-chunk arrays; `Value`-based access is provided for the generic
// boundary (SQL results, CSV, tests).
//
// Chunk capacity is a power of two, so a global row id resolves to its
// (chunk, offset) pair by shift/mask.  Sealed (full) chunks are shared by
// shared_ptr between column copies — Column's copy constructor is O(chunks),
// not O(rows) — and the open tail chunk copy-on-writes on the first append
// after a copy, so growing one copy never mutates data the other can see.

#ifndef MUVE_STORAGE_COLUMN_H_
#define MUVE_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/chunk.h"
#include "storage/value.h"

namespace muve::storage {

// A single column of one ValueType with per-row validity.
class Column {
 public:
  // `chunk_rows` must be a power of two (checked).
  explicit Column(ValueType type, size_t chunk_rows = kDefaultChunkRows);

  // Copies share every chunk; the first append to either side deep-copies
  // the (partial) tail chunk it is about to grow.
  Column(const Column&) = default;
  Column& operator=(const Column&) = default;
  Column(Column&&) = default;
  Column& operator=(Column&&) = default;

  ValueType type() const { return type_; }
  size_t size() const { return size_; }

  // Appends a cell.  AppendValue type-checks and coerces numerics
  // (int64 column accepts an integral double and vice versa).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();
  common::Status AppendValue(const Value& v);

  bool IsNull(size_t row) const {
    return chunks_[row >> shift_]->IsNull(row & mask_);
  }

  // Typed fast-path accessors.  Undefined for null cells or wrong types
  // (checked in debug builds).
  int64_t Int64At(size_t row) const {
    MUVE_DCHECK(type_ == ValueType::kInt64 && row < size_);
    return chunks_[row >> shift_]->Int64At(row & mask_);
  }
  double DoubleAt(size_t row) const {
    MUVE_DCHECK(type_ == ValueType::kDouble && row < size_);
    return chunks_[row >> shift_]->DoubleAt(row & mask_);
  }
  const std::string& StringAt(size_t row) const {
    MUVE_DCHECK(type_ == ValueType::kString && row < size_);
    return chunks_[row >> shift_]->StringAt(row & mask_);
  }

  // Numeric read regardless of int64/double storage; aborts for strings.
  double NumericAt(size_t row) const;

  // Generic access (allocates for strings).
  Value ValueAt(size_t row) const;

  // Min / max over non-null numeric cells, answered from the per-chunk
  // zone maps in O(chunks).  Error for string columns or when the column
  // has no non-null cell.  NaN cells are excluded (a column whose every
  // non-null cell is NaN reports NaN).
  common::Result<double> NumericMin() const;
  common::Result<double> NumericMax() const;

  void Reserve(size_t n);

  // --- Chunk access for scan kernels ---
  size_t num_chunks() const { return chunks_.size(); }
  const ColumnChunk& chunk(size_t i) const { return *chunks_[i]; }
  size_t chunk_rows() const { return chunk_rows_; }
  // Global row id -> (chunk index, chunk-local offset).
  uint32_t chunk_shift() const { return shift_; }
  uint32_t chunk_mask() const { return mask_; }
  // True when no cell of any chunk is NULL (scan fast path).
  bool AllValid() const;
  size_t null_count() const;

  size_t ApproxBytes() const;

 private:
  // Returns the open tail chunk, creating or copy-on-writing it so the
  // append below cannot be observed through any shared copy.
  ColumnChunk* MutableTail();

  ValueType type_;
  size_t chunk_rows_;
  uint32_t shift_ = 0;
  uint32_t mask_ = 0;
  size_t size_ = 0;
  std::vector<std::shared_ptr<ColumnChunk>> chunks_;
};

}  // namespace muve::storage

#endif  // MUVE_STORAGE_COLUMN_H_
