# Empty compiler generated dependencies file for muve_cli.
# This may be replaced when dependencies are built.
