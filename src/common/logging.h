// Minimal leveled logging and assertion macros.
//
// MUVE_LOG(INFO) << "...";     stream-style logging
// MUVE_CHECK(cond) << "...";   aborts with the streamed message when false
// MUVE_DCHECK(cond)            same, compiled out in NDEBUG builds

#ifndef MUVE_COMMON_LOGGING_H_
#define MUVE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace muve::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Minimum level that is emitted.  Defaults to kInfo; tests may lower it.
LogLevel GetLogThreshold();
void SetLogThreshold(LogLevel level);

const char* LogLevelName(LogLevel level);

// Accumulates one log line and emits it (to stderr) on destruction.
// Fatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows streamed values when a log statement is disabled.
class NullLogStream {
 public:
  template <typename T>
  NullLogStream& operator<<(const T&) {
    return *this;
  }
};

// Turns a streamed LogMessage expression into void so it can sit in the
// false branch of the CHECK ternary (operator& binds looser than <<).
class LogMessageVoidify {
 public:
  void operator&(LogMessage&) {}
};

}  // namespace muve::common

#define MUVE_LOG_LEVEL_DEBUG ::muve::common::LogLevel::kDebug
#define MUVE_LOG_LEVEL_INFO ::muve::common::LogLevel::kInfo
#define MUVE_LOG_LEVEL_WARNING ::muve::common::LogLevel::kWarning
#define MUVE_LOG_LEVEL_ERROR ::muve::common::LogLevel::kError
#define MUVE_LOG_LEVEL_FATAL ::muve::common::LogLevel::kFatal

#define MUVE_LOG(severity)                                              \
  ::muve::common::LogMessage(MUVE_LOG_LEVEL_##severity, __FILE__, __LINE__)

#define MUVE_CHECK(cond)                                                  \
  (cond) ? (void)0                                                        \
         : ::muve::common::LogMessageVoidify() &                          \
               ::muve::common::LogMessage(MUVE_LOG_LEVEL_FATAL, __FILE__, \
                                          __LINE__)                       \
                   << "Check failed: " #cond " "

#ifdef NDEBUG
// Keeps `cond` syntactically checked but never evaluated or enforced.
#define MUVE_DCHECK(cond) MUVE_CHECK(true || (cond))
#else
#define MUVE_DCHECK(cond) MUVE_CHECK(cond)
#endif

#endif  // MUVE_COMMON_LOGGING_H_
