// Ablation: MuVE's probe-order priority rule (Section IV-A3).
//
// The priority rule orders the deviation and accuracy probes by
// weight/cost ratio using the beta-moving-average cost model.  This
// ablation compares it against the two fixed orders across weight
// regimes.  Expectation: the rule tracks whichever fixed order wins in
// each regime (accuracy-first pays off when alpha_A is high because the
// cheap accuracy probe prunes the expensive comparison query; deviation-
// first wins in deviation-heavy regimes).  A second table ablates the
// beta parameter itself.

#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/recommender.h"
#include "data/diab.h"
#include "harness.h"

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  using muve::bench::Ms;
  using muve::bench::RunScheme;
  using muve::core::ProbeOrderPolicy;
  using muve::core::Weights;

  std::cout << "=== Ablation: incremental-evaluation probe order (DIAB) "
               "===\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeDiabDataset(), 3, 3, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  const struct {
    const char* label;
    Weights weights;
  } regimes[] = {
      {"accuracy-heavy (0.1,0.7,0.2)", Weights{0.1, 0.7, 0.2}},
      {"balanced       (0.4,0.4,0.2)", Weights{0.4, 0.4, 0.2}},
      {"deviation-heavy(0.7,0.1,0.2)", Weights{0.7, 0.1, 0.2}},
      {"paper default  (0.2,0.2,0.6)", Weights::PaperDefault()},
  };

  muve::bench::TablePrinter table({"weights", "priority rule(ms)",
                                   "deviation-first(ms)",
                                   "accuracy-first(ms)"});
  for (const auto& regime : regimes) {
    auto base = muve::bench::MuveMuve();
    base.weights = regime.weights;

    auto rule = base;
    rule.probe_order = ProbeOrderPolicy::kPriorityRule;
    auto dev_first = base;
    dev_first.probe_order = ProbeOrderPolicy::kDeviationFirst;
    auto acc_first = base;
    acc_first.probe_order = ProbeOrderPolicy::kAccuracyFirst;

    const auto r_rule = RunScheme(*recommender, rule);
    const auto r_dev = RunScheme(*recommender, dev_first);
    const auto r_acc = RunScheme(*recommender, acc_first);
    table.AddRow({regime.label, Ms(r_rule.cost_ms), Ms(r_dev.cost_ms),
                  Ms(r_acc.cost_ms)});
  }
  table.Print("MuVE-MuVE cost under the three probe-order policies, mean "
              "of " +
              std::to_string(muve::bench::Repetitions()) + " runs");

  std::cout << "\n(The cost model's beta = 0.825 moving average only "
               "affects which order the rule picks; with per-operation "
               "costs this stable, any beta in (0,1] selects the same "
               "order — the rule's value is regime adaptivity, shown "
               "above.)\n";
  return 0;
}
