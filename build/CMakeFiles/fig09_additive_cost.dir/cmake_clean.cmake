file(REMOVE_RECURSE
  "CMakeFiles/fig09_additive_cost.dir/bench/fig09_additive_cost.cpp.o"
  "CMakeFiles/fig09_additive_cost.dir/bench/fig09_additive_cost.cpp.o.d"
  "bench/fig09_additive_cost"
  "bench/fig09_additive_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_additive_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
