#include "storage/multi_aggregate.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/table.h"

namespace muve::storage {
namespace {

class MultiAggregateTest : public ::testing::Test {
 protected:
  MultiAggregateTest()
      : table_(Schema({{"d", ValueType::kInt64},
                       {"m1", ValueType::kDouble},
                       {"m2", ValueType::kDouble}})) {
    common::Rng rng(9);
    for (int i = 0; i < 80; ++i) {
      std::vector<Value> row = {
          Value(rng.UniformInt(0, 19)),
          Value(rng.Uniform(0.0, 10.0)),
          Value(rng.Uniform(-5.0, 5.0)),
      };
      // Sprinkle NULLs into m2 so per-spec group sets diverge.
      if (i % 7 == 0) row[2] = Value::Null();
      EXPECT_TRUE(table_.AppendRow(row).ok());
    }
  }

  Table table_;
};

std::vector<AggregateSpec> AllSpecs() {
  std::vector<AggregateSpec> specs;
  for (const AggregateFunction f : AllAggregateFunctions()) {
    specs.push_back({"m1", f});
    specs.push_back({"m2", f});
  }
  return specs;
}

TEST_F(MultiAggregateTest, BinnedMatchesPerViewKernels) {
  const std::vector<AggregateSpec> specs = AllSpecs();
  for (const int bins : {1, 3, 7, 20}) {
    auto multi = MultiBinnedAggregate(table_, AllRows(80), "d", specs, bins,
                                      0.0, 19.0);
    ASSERT_TRUE(multi.ok()) << multi.status().ToString();
    ASSERT_EQ(multi->size(), specs.size());
    for (size_t s = 0; s < specs.size(); ++s) {
      auto single =
          BinnedAggregate(table_, AllRows(80), "d", specs[s].measure,
                          specs[s].function, bins, 0.0, 19.0);
      ASSERT_TRUE(single.ok());
      ASSERT_EQ((*multi)[s].aggregates.size(), single->aggregates.size());
      for (size_t b = 0; b < single->aggregates.size(); ++b) {
        EXPECT_DOUBLE_EQ((*multi)[s].aggregates[b], single->aggregates[b])
            << AggregateName(specs[s].function) << "(" << specs[s].measure
            << ") bins=" << bins << " bin=" << b;
        EXPECT_EQ((*multi)[s].row_counts[b], single->row_counts[b]);
      }
    }
  }
}

TEST_F(MultiAggregateTest, GroupByMatchesPerViewKernels) {
  const std::vector<AggregateSpec> specs = AllSpecs();
  auto multi = MultiGroupByAggregate(table_, AllRows(80), "d", specs);
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  for (size_t s = 0; s < specs.size(); ++s) {
    auto single = GroupByAggregate(table_, AllRows(80), "d",
                                   specs[s].measure, specs[s].function);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*multi)[s].num_groups(), single->num_groups())
        << AggregateName(specs[s].function) << "(" << specs[s].measure
        << ")";
    for (size_t g = 0; g < single->num_groups(); ++g) {
      EXPECT_EQ((*multi)[s].keys[g], single->keys[g]);
      EXPECT_DOUBLE_EQ((*multi)[s].aggregates[g], single->aggregates[g]);
      EXPECT_EQ((*multi)[s].row_counts[g], single->row_counts[g]);
    }
  }
}

TEST_F(MultiAggregateTest, RestrictedRowSet) {
  const RowSet rows = {0, 5, 10, 15, 20};
  const std::vector<AggregateSpec> specs = {
      {"m1", AggregateFunction::kSum}};
  auto multi =
      MultiBinnedAggregate(table_, rows, "d", specs, 4, 0.0, 19.0);
  auto single = BinnedAggregate(table_, rows, "d", "m1",
                                AggregateFunction::kSum, 4, 0.0, 19.0);
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE(single.ok());
  EXPECT_EQ((*multi)[0].aggregates, single->aggregates);
}

TEST_F(MultiAggregateTest, Validation) {
  EXPECT_FALSE(
      MultiBinnedAggregate(table_, AllRows(80), "d", {}, 3, 0, 19).ok());
  EXPECT_FALSE(MultiBinnedAggregate(table_, AllRows(80), "d",
                                    {{"nope", AggregateFunction::kSum}}, 3,
                                    0, 19)
                   .ok());
  EXPECT_FALSE(MultiBinnedAggregate(table_, AllRows(80), "d",
                                    {{"m1", AggregateFunction::kSum}}, 0, 0,
                                    19)
                   .ok());
  EXPECT_FALSE(MultiGroupByAggregate(table_, AllRows(80), "nope",
                                     {{"m1", AggregateFunction::kSum}})
                   .ok());
}

}  // namespace
}  // namespace muve::storage
