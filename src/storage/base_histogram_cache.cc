#include "storage/base_histogram_cache.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/simd/aligned.h"
#include "common/simd/simd.h"
#include "storage/fused_scan.h"

namespace muve::storage {

size_t BaseHistogram::ApproxBytes() const {
  const size_t d = values.size();
  // Three double arrays of size d, three prefix arrays of size d + 1
  // (one int64, two double), plus the struct itself.
  return sizeof(BaseHistogram) + d * 3 * sizeof(double) +
         (d + 1) * (sizeof(int64_t) + 2 * sizeof(double));
}

bool BaseServableFunction(AggregateFunction function) {
  switch (function) {
    case AggregateFunction::kSum:
    case AggregateFunction::kCount:
    case AggregateFunction::kAvg:
    case AggregateFunction::kStd:
    case AggregateFunction::kVar:
      return true;
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return false;
  }
  return false;
}

double FinishFromMoments(AggregateFunction function, int64_t count, double sum,
                         double sum_sq) {
  // Conventions mirror AggregateAccumulator::Finish: empty groups are 0
  // for every function, and STD/VAR are 0 for fewer than two observations.
  if (count == 0) return 0.0;
  switch (function) {
    case AggregateFunction::kSum:
      return sum;
    case AggregateFunction::kCount:
      return static_cast<double>(count);
    case AggregateFunction::kAvg:
      return sum / static_cast<double>(count);
    case AggregateFunction::kStd:
    case AggregateFunction::kVar: {
      if (count < 2) return 0.0;
      const double n = static_cast<double>(count);
      const double mean = sum / n;
      // Population variance from raw moments; clamp against catastrophic
      // cancellation producing a tiny negative.
      double var = sum_sq / n - mean * mean;
      if (var < 0.0) var = 0.0;
      return function == AggregateFunction::kVar ? var : std::sqrt(var);
    }
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      break;
  }
  MUVE_CHECK(false) << "FinishFromMoments: unservable function";
  return 0.0;
}

common::Result<BaseHistogram> BuildBaseHistogram(const Table& table,
                                                 const RowSet& rows,
                                                 std::string_view dimension,
                                                 std::string_view measure,
                                                 FusedScanScratch* scratch) {
  // Single-pair fused build with ONE morsel: per-fine-bin sums accumulate
  // in row order, bit-identical to the historical sort-based builder (and
  // to GroupByAggregate's association).  The old builder's per-build
  // (value, measure) pair vector + stable sort are gone; `scratch` reuses
  // the engine's arenas across builds.
  std::vector<FusedScanPair> pairs{
      {std::string(dimension), std::string(measure)}};
  const size_t one_morsel = std::max<size_t>(rows.size(), 1);
  MUVE_ASSIGN_OR_RETURN(
      std::vector<BaseHistogram> built,
      FusedBuildBaseHistograms(table, rows, pairs, /*pool=*/nullptr,
                               one_morsel, /*stats=*/nullptr, scratch));
  return std::move(built[0]);
}

BinnedResult CoarsenBaseHistogram(const BaseHistogram& base,
                                  AggregateFunction function, int num_bins,
                                  double lo, double hi) {
  MUVE_CHECK(num_bins >= 1);
  MUVE_CHECK(BaseServableFunction(function));

  BinnedResult out;
  out.lo = lo;
  out.hi = hi;
  out.num_bins = num_bins;
  out.aggregates.resize(static_cast<size_t>(num_bins), 0.0);
  out.row_counts.resize(static_cast<size_t>(num_bins), 0);

  const size_t d = base.num_fine_bins();
  // Group consecutive fine bins by their coarse bin under the SAME
  // BinIndexFor the direct scan uses, so the row-to-bin assignment is
  // identical by construction.  BinIndexFor is monotone non-decreasing
  // in the value and the fine bins are sorted, so one forward pass
  // suffices: O(d) bin-index evaluations, independent of num_bins —
  // which matters when b greatly exceeds the number of distinct values
  // (e.g. b_max = 1440 over a few hundred distinct minutes-played
  // values; the earlier per-bin binary search was O(b log d) and
  // dominated the probe).  Empty coarse bins are skipped implicitly
  // (left at 0).  The pass runs through the SIMD kernel table's
  // coarsen_by_prefix_diff (bit-identical across dispatch levels: the
  // index computation is pinned bit-exact and the moment diffs subtract
  // identical prefix values); per-thread aligned scratch keeps the
  // moment slabs allocation-free across probes.
  thread_local common::simd::AlignedVector<int64_t> counts;
  thread_local common::simd::AlignedVector<double> sums;
  thread_local common::simd::AlignedVector<double> sum_sqs;
  const size_t nb = static_cast<size_t>(num_bins);
  if (counts.size() < nb) {
    counts.resize(nb);
    sums.resize(nb);
    sum_sqs.resize(nb);
  }
  common::simd::ActiveKernels().coarsen_by_prefix_diff(
      base.values.data(), d, lo, hi, num_bins, base.prefix_counts.data(),
      base.prefix_sums.data(), base.prefix_sum_sqs.data(), counts.data(),
      sums.data(), sum_sqs.data());
  for (size_t k = 0; k < nb; ++k) {
    const int64_t count = counts[k];
    if (count > 0) {
      out.aggregates[k] =
          FinishFromMoments(function, count, sums[k], sum_sqs[k]);
      out.row_counts[k] = static_cast<size_t>(count);
    }
  }
  return out;
}

void BaseRawSeries(const BaseHistogram& base, AggregateFunction function,
                   std::vector<double>* keys,
                   std::vector<double>* aggregates) {
  MUVE_CHECK(BaseServableFunction(function));
  const size_t d = base.num_fine_bins();
  keys->assign(base.values.begin(), base.values.end());
  aggregates->clear();
  aggregates->reserve(d);
  for (size_t j = 0; j < d; ++j) {
    aggregates->push_back(FinishFromMoments(function, base.CountOf(j),
                                            base.sums[j], base.sum_sqs[j]));
  }
}

BaseHistogram MergeBaseHistograms(const BaseHistogram& a,
                                  const BaseHistogram& delta) {
  BaseHistogram out;
  const size_t da = a.values.size();
  const size_t db = delta.values.size();
  out.values.reserve(da + db);
  out.sums.reserve(da + db);
  out.sum_sqs.reserve(da + db);
  out.prefix_counts.reserve(da + db + 1);
  out.prefix_sums.reserve(da + db + 1);
  out.prefix_sum_sqs.reserve(da + db + 1);
  out.prefix_counts.push_back(0);
  out.prefix_sums.push_back(0.0);
  out.prefix_sum_sqs.push_back(0.0);
  out.source_rows = a.source_rows + delta.source_rows;

  auto push = [&out](double value, int64_t count, double sum,
                     double sum_sq) {
    out.values.push_back(value);
    out.sums.push_back(sum);
    out.sum_sqs.push_back(sum_sq);
    out.prefix_counts.push_back(out.prefix_counts.back() + count);
    out.prefix_sums.push_back(out.prefix_sums.back() + sum);
    out.prefix_sum_sqs.push_back(out.prefix_sum_sqs.back() + sum_sq);
  };

  // Sorted dictionary union; a shared fine bin adds old moments first,
  // then the delta's — the "all pre-append rows precede appended rows"
  // association a full rebuild would also use.
  size_t i = 0;
  size_t j = 0;
  while (i < da && j < db) {
    if (a.values[i] < delta.values[j]) {
      push(a.values[i], a.CountOf(i), a.sums[i], a.sum_sqs[i]);
      ++i;
    } else if (delta.values[j] < a.values[i]) {
      push(delta.values[j], delta.CountOf(j), delta.sums[j],
           delta.sum_sqs[j]);
      ++j;
    } else {
      push(a.values[i], a.CountOf(i) + delta.CountOf(j),
           a.sums[i] + delta.sums[j], a.sum_sqs[i] + delta.sum_sqs[j]);
      ++i;
      ++j;
    }
  }
  for (; i < da; ++i) push(a.values[i], a.CountOf(i), a.sums[i], a.sum_sqs[i]);
  for (; j < db; ++j) {
    push(delta.values[j], delta.CountOf(j), delta.sums[j], delta.sum_sqs[j]);
  }
  return out;
}

BaseHistogramCache::BaseHistogramCache() : BaseHistogramCache(Options()) {}

BaseHistogramCache::BaseHistogramCache(Options options)
    : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  per_shard_budget_ =
      std::max<size_t>(1, options_.max_bytes / options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BaseHistogramCache::Shard& BaseHistogramCache::ShardFor(
    const std::string& key) {
  const size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

const BaseHistogramCache::Shard& BaseHistogramCache::ShardFor(
    const std::string& key) const {
  const size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

void BaseHistogramCache::InsertLocked(
    Shard& shard, const std::string& key,
    std::shared_ptr<const BaseHistogram> histogram) {
  // Injected allocation refusal: behave as if caching the entry failed.
  // The histogram the caller already holds stays usable — the cache
  // simply "forgets", so later probes of this key rebuild directly.
  // This is the OOM degradation contract: losing the cache costs rescans,
  // never correctness.
  if (MUVE_FAILPOINT("cache.insert") == common::FailpointAction::kOom) {
    return;
  }
  const size_t bytes = histogram->ApproxBytes();
  shard.lru.push_front(key);
  Shard::Entry entry;
  entry.histogram = std::move(histogram);
  entry.lru_it = shard.lru.begin();
  entry.bytes = bytes;
  shard.entries.emplace(key, std::move(entry));
  shard.bytes += bytes;
  ++shard.builds;

  // Per-shard LRU eviction under the byte budget.  The entry just
  // inserted (LRU front) is never evicted, so an oversized histogram
  // still serves the probes that triggered its build.
  while (shard.bytes > per_shard_budget_ && shard.entries.size() > 1) {
    const std::string& victim_key = shard.lru.back();
    const auto victim = shard.entries.find(victim_key);
    MUVE_CHECK(victim != shard.entries.end());
    shard.bytes -= victim->second.bytes;
    shard.entries.erase(victim);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

common::Result<std::shared_ptr<const BaseHistogram>>
BaseHistogramCache::GetOrBuild(const std::string& key, const Builder& builder,
                               bool* built,
                               int64_t expected_source_rows) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.lookups;
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    if (expected_source_rows < 0 ||
        it->second.histogram->source_rows == expected_source_rows) {
      ++shard.hits;
      if (built != nullptr) *built = false;
      // Move to LRU front.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      return it->second.histogram;
    }
    // Stale: the entry covers a different row count than this caller's
    // (append-only) row set.  Drop it and rebuild as a miss.
    shard.bytes -= it->second.bytes;
    shard.lru.erase(it->second.lru_it);
    shard.entries.erase(it);
  }
  ++shard.misses;

  // Build under the shard lock: concurrent requests for one key build
  // once (the second requester blocks and then hits).  Builds are row
  // scans — expensive relative to any lock hold we could save.
  common::Result<BaseHistogram> result = builder();
  if (!result.ok()) return result.status();
  auto histogram =
      std::make_shared<const BaseHistogram>(std::move(result).value());
  InsertLocked(shard, key, histogram);
  if (built != nullptr) *built = true;
  return histogram;
}

bool BaseHistogramCache::Contains(const std::string& key,
                                  int64_t expected_source_rows) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  return expected_source_rows < 0 ||
         it->second.histogram->source_rows == expected_source_rows;
}

common::Status BaseHistogramCache::FusedBuild(
    const Table& table, const FusedHistogramBuildRequest& request,
    FusedBuildOutcome* outcome, FusedScanScratch* scratch) {
  MUVE_CHECK(request.rows != nullptr);
  FusedBuildOutcome local;
  FusedBuildOutcome* result = outcome != nullptr ? outcome : &local;

  // The retry loop only ever iterates when coalescing makes this call
  // wait out another thread's pass; each iteration re-snapshots and
  // either finds everything cached, waits again, or leads a pass itself
  // — every iteration follows a completed pass, so the loop terminates.
  for (;;) {
    // Snapshot which pairs are still missing.  A concurrent builder may
    // insert one of them before we do — handled first-wins below, so the
    // worst case is redundant work, never inconsistency.  `cached_now`
    // folds into the outcome only on the iteration that completes, so a
    // coalesced retry does not double-count.
    const int64_t expected_rows =
        static_cast<int64_t>(request.rows->size());
    std::vector<size_t> missing;
    missing.reserve(request.pairs.size());
    int64_t cached_now = 0;
    for (size_t i = 0; i < request.pairs.size(); ++i) {
      if (Contains(request.pairs[i].key, expected_rows)) {
        ++cached_now;
      } else {
        missing.push_back(i);
      }
    }
    if (missing.empty()) {
      result->already_cached += cached_now;
      return common::Status::OK();
    }

    // Single-flight admission: the pass's identity is its sorted set of
    // missing cache keys.  First thread in registers the flight and
    // scans; threads arriving with the SAME set wait for it and then
    // re-snapshot (normally all hits — zero rows scanned).  A waiter
    // polls its own ExecContext between time-boxed waits, so a tripped
    // deadline abandons the wait without touching the shared pass.
    std::string flight_key;
    if (request.coalesce) {
      std::vector<size_t> order = missing;
      std::sort(order.begin(), order.end(),
                [&request](size_t a, size_t b) {
                  return request.pairs[a].key < request.pairs[b].key;
                });
      for (const size_t i : order) {
        flight_key += request.pairs[i].key;
        flight_key += '\n';
      }
      std::unique_lock<std::mutex> lock(flights_mu_);
      if (!flights_.insert(flight_key).second) {
        ++result->coalesced;
        while (flights_.count(flight_key) != 0) {
          if (request.exec != nullptr && request.exec->Expired()) {
            return request.exec->ExpiryStatus();
          }
          flights_cv_.wait_for(lock, std::chrono::milliseconds(2));
        }
        continue;  // the pass landed: hits now, or lead a retry
      }
    }
    // Leader (or coalescing off): deregister the flight on EVERY exit,
    // success or error, and wake waiters.
    struct FlightGuard {
      BaseHistogramCache* cache;
      const std::string* key;
      ~FlightGuard() {
        if (key->empty()) return;
        {
          std::lock_guard<std::mutex> lock(cache->flights_mu_);
          cache->flights_.erase(*key);
        }
        cache->flights_cv_.notify_all();
      }
    } flight_guard{this, &flight_key};

    std::vector<FusedScanPair> pairs;
    pairs.reserve(missing.size());
    for (const size_t i : missing) {
      pairs.push_back(
          {request.pairs[i].dimension, request.pairs[i].measure});
    }

    // ONE pass over the row set builds every missing pair; the scan runs
    // outside any shard lock (it may fan out over the thread pool).
    FusedScanStats scan_stats;
    MUVE_ASSIGN_OR_RETURN(
        std::vector<BaseHistogram> built,
        FusedBuildBaseHistograms(table, *request.rows, pairs, request.pool,
                                 request.morsel_size, &scan_stats, scratch,
                                 request.exec));
    ++result->passes;
    result->rows_scanned += static_cast<int64_t>(request.rows->size());
    result->morsels += scan_stats.morsels;
    result->already_cached += cached_now;

    for (size_t j = 0; j < missing.size(); ++j) {
      const std::string& key = request.pairs[missing[j]].key;
      Shard& shard = ShardFor(key);
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        if (it->second.histogram->source_rows == expected_rows) {
          // First-wins: a concurrent build landed this key already; both
          // histograms cover identical row sets, keep the cached one.
          ++result->already_cached;
          continue;
        }
        // A stale entry (different row count) raced in; replace it with
        // the histogram just built over the current row set.
        shard.bytes -= it->second.bytes;
        shard.lru.erase(it->second.lru_it);
        shard.entries.erase(it);
      }
      InsertLocked(shard, key,
                   std::make_shared<const BaseHistogram>(std::move(built[j])));
      ++result->histograms_built;
    }
    return common::Status::OK();
  }
}

bool BaseHistogramCache::MergeDelta(const std::string& key,
                                    const BaseHistogram& delta) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  auto merged = std::make_shared<const BaseHistogram>(
      MergeBaseHistograms(*it->second.histogram, delta));
  const size_t new_bytes = merged->ApproxBytes();
  shard.bytes -= it->second.bytes;
  shard.bytes += new_bytes;
  it->second.bytes = new_bytes;
  it->second.histogram = std::move(merged);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  ++shard.delta_merges;
  // A patched entry can push the shard over budget; evict from the cold
  // end, never the entry just refreshed (it is LRU front).
  while (shard.bytes > per_shard_budget_ && shard.entries.size() > 1) {
    const std::string& victim_key = shard.lru.back();
    const auto victim = shard.entries.find(victim_key);
    MUVE_CHECK(victim != shard.entries.end());
    shard.bytes -= victim->second.bytes;
    shard.entries.erase(victim);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return true;
}

void BaseHistogramCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

BaseHistogramCache::CacheStats BaseHistogramCache::TotalStats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.lookups += shard->lookups;
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.builds += shard->builds;
    total.evictions += shard->evictions;
    total.delta_merges += shard->delta_merges;
    total.bytes += static_cast<int64_t>(shard->bytes);
  }
  return total;
}

}  // namespace muve::storage
