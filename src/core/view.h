// View model (Section II-A / III-A).
//
// A non-binned view V_i is the triple (A, M, F): group the analyst's data
// by dimension A and aggregate measure M with function F.  A binned view
// V_{i,b} additionally fixes the number of equi-width bins b over A's
// range.  `ViewSpace` enumerates the candidate views of a dataset's
// workload (|A| x |M| x |F| views) and knows each dimension's binning
// range and maximum bin count B_j.

#ifndef MUVE_CORE_VIEW_H_
#define MUVE_CORE_VIEW_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "storage/aggregate.h"

namespace muve::core {

// A non-binned candidate view (A, M, F).
struct View {
  std::string dimension;
  std::string measure;
  storage::AggregateFunction function = storage::AggregateFunction::kSum;

  // "SUM(3PAr) BY MP" — used in logs, examples, and test failure messages.
  std::string Label() const;

  // Stable key for hashing/caching.
  std::string Key() const;

  bool operator==(const View& other) const {
    return dimension == other.dimension && measure == other.measure &&
           function == other.function;
  }
};

// Binning metadata for one dimension.  Categorical dimensions carry no
// range and exactly one binning choice (their distinct groups ARE the
// bars); numeric dimensions span [lo, hi] with B_j = ceil(range) choices.
struct DimensionInfo {
  std::string name;
  bool categorical = false;
  double lo = 0.0;        // min over the whole database D_B (numeric only)
  double hi = 0.0;        // max over the whole database D_B (numeric only)
  int max_bins = 1;       // the paper's B_j = ceil(range L); 1 if categorical
  size_t distinct_values = 0;  // t, the raw group count over D_B

  double range() const { return hi - lo; }
};

// The enumerated candidate-view space of a dataset workload.
class ViewSpace {
 public:
  // Enumerates |A| x |M| x |F| views in (dimension, measure, function)
  // lexicographic workload order, and computes each dimension's binning
  // range from the dataset's full table.
  static common::Result<ViewSpace> Create(const data::Dataset& dataset);

  const std::vector<View>& views() const { return views_; }
  const std::vector<DimensionInfo>& dimensions() const { return dims_; }

  const DimensionInfo& dimension_info(const std::string& name) const;

  // Maximum bin count across all dimensions (the vertical round-robin's
  // round limit).
  int max_bins_overall() const;

  // Total number of binned views N_B = sum_j 2 |M| |F| B_j (Section III-C).
  int64_t TotalBinnedViews() const;

 private:
  std::vector<View> views_;
  std::vector<DimensionInfo> dims_;
  std::unordered_map<std::string, size_t> dim_index_;
  size_t measures_per_dimension_ = 0;
};

}  // namespace muve::core

#endif  // MUVE_CORE_VIEW_H_
