// Reproduces the paper's motivating Example 1 (Figures 1-3) on the
// synthetic NBA dataset.
//
//   $ ./build/examples/nba_exploration
//
// An analyst asks what distinguishes the GSW team:
//   Q: SELECT * FROM players WHERE team = 'GSW'
// and MuVE recommends binned views.  With the Example-1 weights
// (alpha_D = 0.6, alpha_A = 0.2, alpha_S = 0.2) the MP/SUM(3PAr) view at
// a coarse binning should surface near the top: league-wide 3PAr drops
// with minutes played, but GSW's stays high (the planted pattern).

#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/recommender.h"
#include "data/nba.h"
#include "storage/binned_group_by.h"
#include "storage/group_by.h"
#include "viz/bar_chart.h"

namespace {

using muve::core::ScoredView;
using muve::data::Dataset;

// Renders the paper's Figure 3 analogue: target (GSW) vs comparison
// (all players) distributions of a recommended binned view.
void RenderView(const Dataset& dataset, const ScoredView& scored) {
  const muve::core::View& view = scored.view;
  const auto& table = *dataset.table;
  auto dim_col = table.ColumnByName(view.dimension);
  MUVE_CHECK(dim_col.ok());
  const double lo = *(*dim_col)->NumericMin();
  const double hi = *(*dim_col)->NumericMax();

  auto target = muve::storage::BinnedAggregate(
      table, dataset.target_rows, view.dimension, view.measure,
      view.function, scored.bins, lo, hi);
  auto comparison = muve::storage::BinnedAggregate(
      table, dataset.all_rows, view.dimension, view.measure, view.function,
      scored.bins, lo, hi);
  MUVE_CHECK(target.ok());
  MUVE_CHECK(comparison.ok());

  muve::viz::Series left;
  left.title = "target: GSW players";
  left.labels = muve::viz::BinLabels(lo, hi, scored.bins);
  left.values = target->aggregates;
  muve::viz::Series right;
  right.title = "comparison: all players";
  right.labels = left.labels;
  right.values = comparison->aggregates;

  muve::viz::BarChartOptions options;
  options.normalize = true;  // probability distributions, as in Eq. 1
  std::cout << view.Label() << " with " << scored.bins << " bins "
            << "(normalized distributions):\n"
            << muve::viz::RenderSideBySide(left, right, options) << "\n";
}

}  // namespace

int main() {
  std::cout << "=== NBA exploration: why did GSW win the 2015 "
               "championship? ===\n\n";
  // The paper's default workload: 3 dimensions x 3 measures x 3 functions.
  const Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 3, 3);

  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();
  std::cout << "Candidate views: " << recommender->space().views().size()
            << " (A,M,F) triples over dimensions MP, G, Age; binned view "
               "space: "
            << recommender->space().TotalBinnedViews() << " views\n\n";

  // The Example-1 weight setting (Section III-B).
  muve::core::SearchOptions options;
  options.weights = muve::core::Weights{0.6, 0.2, 0.2};
  options.k = 5;
  options.horizontal = muve::core::HorizontalStrategy::kMuve;
  options.vertical = muve::core::VerticalStrategy::kMuve;

  auto rec = recommender->Recommend(options);
  MUVE_CHECK(rec.ok()) << rec.status().ToString();
  std::cout << rec->ToString() << "\n\n";

  // Show the paper's Figures 1/2 analogue for the top view: the unbinned
  // target view is accurate but unusable (one bar per distinct value).
  const ScoredView& top = rec->views.front();
  const auto& dim_info = recommender->space().dimension_info(
      top.view.dimension);
  std::cout << "Unbinned, the top view would have "
            << dim_info.distinct_values
            << " bars (usability ~ 1/" << dim_info.max_bins
            << " — the cluttered Figures 1-2 of the paper).\n"
            << "Binned at b=" << top.bins
            << " it reveals the pattern (the paper's Figure 3):\n\n";
  RenderView(dataset, top);

  // Contrast with the deviation-only (SeeDB-style) utility: without the
  // usability/accuracy objectives the recommended binning degenerates.
  muve::core::SearchOptions seedb = options;
  seedb.weights = muve::core::Weights::DeviationOnly();
  auto seedb_rec = recommender->Recommend(seedb);
  MUVE_CHECK(seedb_rec.ok());
  const ScoredView& seedb_top = seedb_rec->views.front();
  std::cout << "For contrast, deviation-only (SeeDB-style) top view: "
            << seedb_top.ToString() << "\n"
            << "(deviation alone ignores how usable or faithful the "
               "binning is — usability "
            << muve::common::FormatDouble(seedb_top.usability, 2)
            << ", accuracy "
            << muve::common::FormatDouble(seedb_top.accuracy, 2) << ")\n";
  return 0;
}
