file(REMOVE_RECURSE
  "CMakeFiles/muve_common.dir/logging.cc.o"
  "CMakeFiles/muve_common.dir/logging.cc.o.d"
  "CMakeFiles/muve_common.dir/rng.cc.o"
  "CMakeFiles/muve_common.dir/rng.cc.o.d"
  "CMakeFiles/muve_common.dir/stats.cc.o"
  "CMakeFiles/muve_common.dir/stats.cc.o.d"
  "CMakeFiles/muve_common.dir/status.cc.o"
  "CMakeFiles/muve_common.dir/status.cc.o.d"
  "CMakeFiles/muve_common.dir/string_util.cc.o"
  "CMakeFiles/muve_common.dir/string_util.cc.o.d"
  "libmuve_common.a"
  "libmuve_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muve_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
