#include "core/cost_model.h"

#include <gtest/gtest.h>

namespace muve::core {
namespace {

TEST(CostModelTest, NoObservationsEstimateZero) {
  CostModel model;
  EXPECT_DOUBLE_EQ(model.Estimate(CostKind::kTargetQuery), 0.0);
  EXPECT_EQ(model.ObservationCount(CostKind::kTargetQuery), 0);
}

TEST(CostModelTest, SingleObservationIsTheEstimate) {
  CostModel model;
  model.Observe(CostKind::kDeviation, 4.0);
  EXPECT_DOUBLE_EQ(model.Estimate(CostKind::kDeviation), 4.0);
}

TEST(CostModelTest, PaperFormulaBlendsLastWithPriorMean) {
  // C = beta * last + (1 - beta) * mean(all earlier observations).
  CostModel model(0.825);
  model.Observe(CostKind::kAccuracy, 2.0);
  model.Observe(CostKind::kAccuracy, 4.0);
  // last=4, prior mean=2.
  EXPECT_NEAR(model.Estimate(CostKind::kAccuracy),
              0.825 * 4.0 + 0.175 * 2.0, 1e-12);
  model.Observe(CostKind::kAccuracy, 6.0);
  // last=6, prior mean=(2+4)/2=3.
  EXPECT_NEAR(model.Estimate(CostKind::kAccuracy),
              0.825 * 6.0 + 0.175 * 3.0, 1e-12);
}

TEST(CostModelTest, KindsAreIndependent) {
  CostModel model;
  model.Observe(CostKind::kTargetQuery, 1.0);
  model.Observe(CostKind::kComparisonQuery, 10.0);
  EXPECT_DOUBLE_EQ(model.Estimate(CostKind::kTargetQuery), 1.0);
  EXPECT_DOUBLE_EQ(model.Estimate(CostKind::kComparisonQuery), 10.0);
  EXPECT_DOUBLE_EQ(model.Estimate(CostKind::kDeviation), 0.0);
}

TEST(CostModelTest, RecentObservationsDominate) {
  // After a regime change the estimate tracks the new level quickly.
  CostModel model;
  for (int i = 0; i < 10; ++i) model.Observe(CostKind::kDeviation, 1.0);
  model.Observe(CostKind::kDeviation, 100.0);
  EXPECT_GT(model.Estimate(CostKind::kDeviation), 80.0);
}

TEST(CostModelTest, CustomBeta) {
  CostModel model(0.5);
  model.Observe(CostKind::kTargetQuery, 2.0);
  model.Observe(CostKind::kTargetQuery, 4.0);
  EXPECT_NEAR(model.Estimate(CostKind::kTargetQuery), 0.5 * 4 + 0.5 * 2,
              1e-12);
  EXPECT_DOUBLE_EQ(model.beta(), 0.5);
}

}  // namespace
}  // namespace muve::core
