file(REMOVE_RECURSE
  "CMakeFiles/muve_cli.dir/muve_cli.cpp.o"
  "CMakeFiles/muve_cli.dir/muve_cli.cpp.o.d"
  "muve_cli"
  "muve_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muve_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
