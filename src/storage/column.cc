#include "storage/column.h"

#include <cmath>

#include "common/logging.h"

namespace muve::storage {

void Column::AppendInt64(int64_t v) {
  MUVE_DCHECK(type_ == ValueType::kInt64);
  ints_.push_back(v);
  valid_.PushBack(true);
}

void Column::AppendDouble(double v) {
  MUVE_DCHECK(type_ == ValueType::kDouble);
  doubles_.push_back(v);
  valid_.PushBack(true);
}

void Column::AppendString(std::string v) {
  MUVE_DCHECK(type_ == ValueType::kString);
  strings_.push_back(std::move(v));
  valid_.PushBack(true);
}

void Column::AppendNull() {
  switch (type_) {
    case ValueType::kInt64:
      ints_.push_back(0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      strings_.emplace_back();
      break;
    case ValueType::kNull:
      break;
  }
  valid_.PushBack(false);
}

common::Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return common::Status::OK();
  }
  switch (type_) {
    case ValueType::kInt64: {
      if (v.type() == ValueType::kInt64) {
        AppendInt64(v.AsInt64());
        return common::Status::OK();
      }
      if (v.type() == ValueType::kDouble) {
        const double d = v.AsDoubleExact();
        if (d == std::floor(d)) {
          AppendInt64(static_cast<int64_t>(d));
          return common::Status::OK();
        }
        return common::Status::TypeMismatch(
            "cannot store non-integral double in int64 column");
      }
      break;
    }
    case ValueType::kDouble: {
      if (v.is_numeric()) {
        MUVE_ASSIGN_OR_RETURN(const double d, v.ToDouble());
        AppendDouble(d);
        return common::Status::OK();
      }
      break;
    }
    case ValueType::kString: {
      if (v.type() == ValueType::kString) {
        AppendString(v.AsString());
        return common::Status::OK();
      }
      break;
    }
    case ValueType::kNull:
      break;
  }
  return common::Status::TypeMismatch(
      std::string("cannot store ") + ValueTypeName(v.type()) + " in " +
      ValueTypeName(type_) + " column");
}

int64_t Column::Int64At(size_t row) const {
  MUVE_DCHECK(type_ == ValueType::kInt64);
  MUVE_DCHECK(row < valid_.size());
  return ints_[row];
}

double Column::DoubleAt(size_t row) const {
  MUVE_DCHECK(type_ == ValueType::kDouble);
  MUVE_DCHECK(row < valid_.size());
  return doubles_[row];
}

const std::string& Column::StringAt(size_t row) const {
  MUVE_DCHECK(type_ == ValueType::kString);
  MUVE_DCHECK(row < valid_.size());
  return strings_[row];
}

double Column::NumericAt(size_t row) const {
  switch (type_) {
    case ValueType::kInt64:
      return static_cast<double>(ints_[row]);
    case ValueType::kDouble:
      return doubles_[row];
    default:
      MUVE_CHECK(false) << "NumericAt on non-numeric column";
      return 0.0;
  }
}

Value Column::ValueAt(size_t row) const {
  MUVE_DCHECK(row < valid_.size());
  if (!valid_.Get(row)) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value(ints_[row]);
    case ValueType::kDouble:
      return Value(doubles_[row]);
    case ValueType::kString:
      return Value(strings_[row]);
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

common::Result<double> Column::NumericMin() const {
  if (type_ == ValueType::kString || type_ == ValueType::kNull) {
    return common::Status::TypeMismatch("NumericMin on non-numeric column");
  }
  bool found = false;
  double best = 0.0;
  for (size_t i = 0; i < size(); ++i) {
    if (!valid_.Get(i)) continue;
    const double v = NumericAt(i);
    if (!found || v < best) {
      best = v;
      found = true;
    }
  }
  if (!found) return common::Status::NotFound("column has no non-null cells");
  return best;
}

common::Result<double> Column::NumericMax() const {
  if (type_ == ValueType::kString || type_ == ValueType::kNull) {
    return common::Status::TypeMismatch("NumericMax on non-numeric column");
  }
  bool found = false;
  double best = 0.0;
  for (size_t i = 0; i < size(); ++i) {
    if (!valid_.Get(i)) continue;
    const double v = NumericAt(i);
    if (!found || v > best) {
      best = v;
      found = true;
    }
  }
  if (!found) return common::Status::NotFound("column has no non-null cells");
  return best;
}

void Column::Reserve(size_t n) {
  valid_.Reserve(n);
  switch (type_) {
    case ValueType::kInt64:
      ints_.reserve(n);
      break;
    case ValueType::kDouble:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      strings_.reserve(n);
      break;
    case ValueType::kNull:
      break;
  }
}

}  // namespace muve::storage
