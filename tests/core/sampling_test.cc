// Sampling-based approximation: deterministic, cheaper, and bounded-loss
// on well-behaved data.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/fidelity.h"
#include "core/recommender.h"
#include "core/view_evaluator.h"
#include "data/diab.h"
#include "storage/predicate.h"
#include "test_util.h"

namespace muve::core {
namespace {

TEST(SamplingTest, FullFractionIsExactlyTheBaseline) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions exact;
  exact.horizontal = HorizontalStrategy::kLinear;
  exact.vertical = VerticalStrategy::kLinear;
  SearchOptions sampled = exact;
  sampled.sample_fraction = 1.0;
  auto a = recommender->Recommend(exact);
  auto b = recommender->Recommend(sampled);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->views.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->views[i].utility, b->views[i].utility);
  }
  EXPECT_EQ(b->scheme, "Linear-Linear");  // no (Smp) marker at 1.0
}

TEST(SamplingTest, DeterministicForFixedSeed) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;
  options.horizontal = HorizontalStrategy::kLinear;
  options.vertical = VerticalStrategy::kLinear;
  options.sample_fraction = 0.5;
  options.sample_seed = 42;
  auto a = recommender->Recommend(options);
  auto b = recommender->Recommend(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->views.size(), b->views.size());
  for (size_t i = 0; i < a->views.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->views[i].utility, b->views[i].utility);
    EXPECT_EQ(a->views[i].view.Key(), b->views[i].view.Key());
  }
  EXPECT_EQ(a->scheme, "Linear-Linear(Smp)");
}

TEST(SamplingTest, ScansProportionallyFewerRows) {
  const data::Dataset diab =
      data::WithWorkloadSize(data::MakeDiabDataset(), 3, 3, 3);
  auto recommender = Recommender::Create(diab);
  ASSERT_TRUE(recommender.ok());
  SearchOptions exact;
  exact.horizontal = HorizontalStrategy::kLinear;
  exact.vertical = VerticalStrategy::kLinear;
  SearchOptions quarter = exact;
  quarter.sample_fraction = 0.25;
  auto full = recommender->Recommend(exact);
  auto sampled = recommender->Recommend(quarter);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sampled.ok());
  const double ratio = static_cast<double>(sampled->stats.rows_scanned) /
                       static_cast<double>(full->stats.rows_scanned);
  EXPECT_GT(ratio, 0.15);
  EXPECT_LT(ratio, 0.35);
}

TEST(SamplingTest, HighFractionKeepsHighFidelityOnDiab) {
  const data::Dataset diab =
      data::WithWorkloadSize(data::MakeDiabDataset(), 3, 3, 3);
  auto recommender = Recommender::Create(diab);
  ASSERT_TRUE(recommender.ok());
  SearchOptions exact;
  exact.horizontal = HorizontalStrategy::kLinear;
  exact.vertical = VerticalStrategy::kLinear;
  auto baseline = recommender->Recommend(exact);
  ASSERT_TRUE(baseline.ok());

  SearchOptions sampled = exact;
  sampled.sample_fraction = 0.8;
  auto rec = recommender->Recommend(sampled);
  ASSERT_TRUE(rec.ok());
  // Fidelity is computed against the *exact* utilities of the same view
  // choices, so re-score the sampled picks exactly via a fresh session.
  EXPECT_GE(Fidelity(baseline->views, rec->views), 0.85);
}

TEST(SamplingTest, ComposesWithMuve) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;  // MuVE-MuVE default
  options.sample_fraction = 0.5;
  auto rec = recommender->Recommend(options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->scheme, "MuVE-MuVE(Smp)");
  EXPECT_FALSE(rec->views.empty());
  // Sampled MuVE must equal sampled Linear (exactness holds on whatever
  // rows are scanned, since the sample is seed-deterministic).
  SearchOptions linear = options;
  linear.horizontal = HorizontalStrategy::kLinear;
  linear.vertical = VerticalStrategy::kLinear;
  auto lin = recommender->Recommend(linear);
  ASSERT_TRUE(lin.ok());
  ASSERT_EQ(lin->views.size(), rec->views.size());
  for (size_t i = 0; i < lin->views.size(); ++i) {
    EXPECT_NEAR(lin->views[i].utility, rec->views[i].utility, 1e-9);
  }
}

// The sampling invariant behind every sampled probe: the row sample is a
// per-row-id Bernoulli decision shared by the target and comparison row
// sets, so sample(D_Q) = D_Q ∩ sample(D_B).  Independent draws (the old
// behavior) would leave sampled target rows outside the sampled
// comparison set, biasing every deviation comparison.
TEST(SamplingTest, SampledTargetRowsAreSubsetOfSampledComparisonRows) {
  const data::Dataset ds = testutil::MakeToyDataset();
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok());
  for (const double fraction : {0.2, 0.5, 0.8}) {
    for (const uint64_t seed : {1ull, 7ull, 42ull, 12345ull}) {
      ViewEvaluatorOptions options;
      options.sample_fraction = fraction;
      options.sample_seed = seed;
      ViewEvaluator eval(ds, *space, options);
      const storage::RowSet& target = eval.target_rows();
      const storage::RowSet& all = eval.all_rows();
      // Subset: every sampled target row survives in the comparison set.
      for (const auto row : target) {
        EXPECT_TRUE(std::binary_search(all.begin(), all.end(), row))
            << "fraction " << fraction << " seed " << seed << " row "
            << row;
      }
      // Exactly the intersection: a target row of the dataset is sampled
      // iff its row id is kept in the comparison sample.
      for (const auto row : ds.target_rows) {
        const bool in_target =
            std::binary_search(target.begin(), target.end(), row);
        const bool in_all = std::binary_search(all.begin(), all.end(), row);
        EXPECT_EQ(in_target, in_all)
            << "fraction " << fraction << " seed " << seed << " row "
            << row;
      }
    }
  }
}

// Crafted categorical fixture: uniform category frequencies and constant
// per-category measures, large enough that a 50% sample preserves the
// normalized per-category SUM distribution closely.  The sampled
// deviation must track the unsampled one — the regression this guards is
// the misaligned group merge, which under sampling silently compared
// category A's target against category B's comparison.
TEST(SamplingTest, CategoricalDeviationSurvivesSampling) {
  auto table = std::make_shared<storage::Table>(storage::Schema({
      {"cat", storage::ValueType::kString,
       storage::FieldRole::kCategoricalDimension},
      {"grp", storage::ValueType::kString, storage::FieldRole::kNone},
      {"m", storage::ValueType::kDouble, storage::FieldRole::kMeasure},
  }));
  const char* cats[] = {"a", "b", "c", "d"};
  // 400 rows, categories uniform; target rows ('t') skew the measure of
  // category "a" upward so the deviation is comfortably nonzero.
  for (int i = 0; i < 400; ++i) {
    const char* cat = cats[i % 4];
    const bool target = i % 2 == 0;
    const double m = (target && i % 4 == 0) ? 8.0 : 2.0;
    ASSERT_TRUE(table
                    ->AppendRow({storage::Value(cat),
                                 storage::Value(target ? "t" : "u"),
                                 storage::Value(m)})
                    .ok());
  }
  data::Dataset ds;
  ds.name = "catfix";
  ds.table = table;
  ds.categorical_dimensions = {"cat"};
  ds.measures = {"m"};
  ds.functions = {storage::AggregateFunction::kSum};
  ds.query_predicate_sql = "grp = 't'";
  auto pred = storage::MakeComparison("grp", storage::CompareOp::kEq,
                                      storage::Value("t"));
  auto rows = storage::Filter(*table, pred.get());
  ASSERT_TRUE(rows.ok());
  ds.target_rows = std::move(rows).value();
  ds.all_rows = storage::AllRows(table->num_rows());

  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  const View view{"cat", "m", storage::AggregateFunction::kSum};

  ViewEvaluator exact(ds, *space);
  const double exact_dev = exact.EvaluateDeviation(view, 1);
  EXPECT_GT(exact_dev, 0.01);  // the fixture plants a real deviation

  ViewEvaluatorOptions half;
  half.sample_fraction = 0.5;
  for (const uint64_t seed : {3ull, 11ull, 2026ull}) {
    half.sample_seed = seed;
    ViewEvaluator sampled(ds, *space, half);
    const double sampled_dev = sampled.EvaluateDeviation(view, 1);
    EXPECT_NEAR(sampled_dev, exact_dev, 0.1) << "seed " << seed;
  }
}

TEST(SamplingTest, InvalidFractionRejected) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions zero;
  zero.sample_fraction = 0.0;
  EXPECT_FALSE(recommender->Recommend(zero).ok());
  SearchOptions over;
  over.sample_fraction = 1.5;
  EXPECT_FALSE(recommender->Recommend(over).ok());
}

}  // namespace
}  // namespace muve::core
