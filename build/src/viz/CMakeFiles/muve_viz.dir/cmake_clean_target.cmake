file(REMOVE_RECURSE
  "libmuve_viz.a"
)
