#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/string_util.h"

namespace muve::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",    "WHERE",  "GROUP",  "BY",    "NUMBER", "OF",
      "BINS",   "AND",     "OR",     "NOT",    "BETWEEN", "ORDER", "LIMIT",
      "IN",     "IS",      "HAVING",
      "ASC",    "DESC",    "AS",     "NULL",   "TRUE",  "FALSE",
      "RECOMMEND", "VIEWS", "TOP",   "USING",  "WEIGHTS", "DISTANCE",
      "CREATE", "TABLE", "INSERT", "INTO", "VALUES", "LOAD", "CSV",
  };
  return *kKeywords;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

common::Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    // Negative numeric literal: '-' directly followed by a digit or '.'
    // (the dialect has no arithmetic, so '-' is unambiguous here).
    if (c == '-' && i + 1 < n &&
        (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
         input[i + 1] == '.')) {
      size_t j = i + 1;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
        ++j;
      }
      if (j < n && input[j] == '.') {
        is_float = true;
        ++j;
        while (j < n &&
               std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      const std::string run = input.substr(i, j - i);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::strtod(run.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(run.c_str(), nullptr, 10);
      }
      i = j;
      tokens.push_back(tok);
      continue;
    }
    switch (c) {
      case '*':
        tok.type = TokenType::kStar;
        ++i;
        tokens.push_back(tok);
        continue;
      case ',':
        tok.type = TokenType::kComma;
        ++i;
        tokens.push_back(tok);
        continue;
      case '(':
        tok.type = TokenType::kLParen;
        ++i;
        tokens.push_back(tok);
        continue;
      case ')':
        tok.type = TokenType::kRParen;
        ++i;
        tokens.push_back(tok);
        continue;
      case ';':
        tok.type = TokenType::kSemicolon;
        ++i;
        tokens.push_back(tok);
        continue;
      case '=':
        tok.type = TokenType::kEq;
        ++i;
        tokens.push_back(tok);
        continue;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kLe;
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          tok.type = TokenType::kNe;
          i += 2;
        } else {
          tok.type = TokenType::kLt;
          ++i;
        }
        tokens.push_back(tok);
        continue;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kGe;
          i += 2;
        } else {
          tok.type = TokenType::kGt;
          ++i;
        }
        tokens.push_back(tok);
        continue;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kNe;
          i += 2;
          tokens.push_back(tok);
          continue;
        }
        return common::Status::ParseError("unexpected '!' at position " +
                                          std::to_string(i));
      case '\'': {
        // Single-quoted string with '' escape.
        std::string text;
        size_t j = i + 1;
        bool closed = false;
        while (j < n) {
          if (input[j] == '\'') {
            if (j + 1 < n && input[j + 1] == '\'') {
              text.push_back('\'');
              j += 2;
              continue;
            }
            closed = true;
            ++j;
            break;
          }
          text.push_back(input[j]);
          ++j;
        }
        if (!closed) {
          return common::Status::ParseError(
              "unterminated string literal at position " + std::to_string(i));
        }
        tok.type = TokenType::kString;
        tok.text = std::move(text);
        i = j;
        tokens.push_back(tok);
        continue;
      }
      default:
        break;
    }

    if (IsIdentChar(c)) {
      // Scan the maximal identifier/number run (letters, digits, '_'),
      // optionally extended with a fractional part when numeric so far.
      size_t j = i;
      bool all_digits = true;
      while (j < n && IsIdentChar(input[j])) {
        if (!std::isdigit(static_cast<unsigned char>(input[j]))) {
          all_digits = false;
        }
        ++j;
      }
      if (all_digits && j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        // Float: digits '.' digits [identifier chars turn it into an error]
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
        tok.type = TokenType::kFloat;
        tok.float_value = std::strtod(input.substr(i, j - i).c_str(), nullptr);
        i = j;
        tokens.push_back(tok);
        continue;
      }
      const std::string run = input.substr(i, j - i);
      if (all_digits) {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(run.c_str(), nullptr, 10);
      } else {
        const std::string upper = common::ToUpper(run);
        if (Keywords().contains(upper)) {
          tok.type = TokenType::kKeyword;
          tok.text = upper;
        } else {
          tok.type = TokenType::kIdentifier;
          tok.text = run;
        }
      }
      i = j;
      tokens.push_back(tok);
      continue;
    }

    // A bare '.5' style float.
    if (c == '.' && i + 1 < n &&
        std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      tok.type = TokenType::kFloat;
      tok.float_value = std::strtod(input.substr(i, j - i).c_str(), nullptr);
      i = j;
      tokens.push_back(tok);
      continue;
    }

    return common::Status::ParseError("unexpected character '" +
                                      std::string(1, c) + "' at position " +
                                      std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace muve::sql
