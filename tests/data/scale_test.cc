// The scale workload's contracts: position-pure row generation (prefix +
// append is bit-identical to one-shot), streaming CSV emission that
// round-trips through the strict schema parser, and chunk skipping on
// its clustered day predicate.

#include "data/scale.h"

#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "storage/csv.h"
#include "storage/predicate.h"
#include "storage/table.h"
#include "storage/value.h"

namespace muve::data {
namespace {

void ExpectSameCells(const storage::Table& a, const storage::Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      const storage::Value va = a.At(r, c);
      const storage::Value vb = b.At(r, c);
      ASSERT_EQ(va.type(), vb.type()) << "row " << r << " col " << c;
      ASSERT_EQ(va.ToString(), vb.ToString())
          << "row " << r << " col " << c;
    }
  }
}

TEST(ScaleTest, RowsArePureFunctionsOfIndex) {
  ScaleSpec spec;
  spec.rows = 1000;
  const ScaleRow once = ScaleRowAt(spec, 123);
  const ScaleRow again = ScaleRowAt(spec, 123);
  EXPECT_EQ(once.day, again.day);
  EXPECT_EQ(once.region, again.region);
  EXPECT_EQ(once.x, again.x);
  EXPECT_EQ(once.m2, again.m2);
  EXPECT_LT(once.region, 4u);

  // Days are clustered: monotone non-decreasing with the row index.
  int64_t prev = 0;
  for (size_t i = 0; i < 1000; ++i) {
    const int64_t day = ScaleRowAt(spec, i).day;
    EXPECT_GE(day, prev);
    prev = day;
  }
}

TEST(ScaleTest, PrefixPlusAppendIsBitIdenticalToOneShot) {
  ScaleSpec spec;
  spec.rows = 500;
  auto one_shot = MakeScaleTable(spec, 0, 500, /*chunk_rows=*/64);

  auto grown = MakeScaleTable(spec, 0, 200, /*chunk_rows=*/64);
  auto tail = MakeScaleTable(spec, 200, 500, /*chunk_rows=*/64);
  for (size_t r = 0; r < tail->num_rows(); ++r) {
    std::vector<storage::Value> row;
    for (size_t c = 0; c < tail->num_columns(); ++c) {
      row.push_back(tail->At(r, c));
    }
    ASSERT_TRUE(grown->AppendRow(row).ok());
  }
  ExpectSameCells(*grown, *one_shot);
}

TEST(ScaleTest, StreamedCsvConcatenatesAndRoundTrips) {
  ScaleSpec spec;
  spec.rows = 300;

  // One-shot emission vs two slabs: byte-identical.
  std::ostringstream whole;
  WriteScaleCsv(whole, spec, 0, 300);
  std::ostringstream slabs;
  WriteScaleCsv(slabs, spec, 0, 128);
  WriteScaleCsv(slabs, spec, 128, 300);
  ASSERT_EQ(whole.str(), slabs.str());

  // Strict-schema parse reproduces the materialized table cell-for-cell.
  storage::CsvOptions options;
  options.schema = ScaleSchema();
  auto parsed = storage::ReadCsvString(whole.str(), options);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto direct = MakeScaleTable(spec, 0, 300);
  ExpectSameCells(*parsed, *direct);

  // And matches the generic writer byte-for-byte, so streamed files and
  // WriteCsvFile(MakeScaleTable(...)) are interchangeable.
  ASSERT_EQ(whole.str(), storage::WriteCsvString(*direct));
}

TEST(ScaleTest, DatasetSkipsChunksUnderClusteredPredicate) {
  ScaleSpec spec;
  spec.rows = 4096;
  Dataset ds = MakeScaleDataset(spec, /*chunk_rows=*/256);
  EXPECT_EQ(ds.table->num_rows(), 4096u);
  EXPECT_EQ(ds.dimensions, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(ds.measures, (std::vector<std::string>{"m1", "m2"}));

  // The day predicate keeps roughly the last quarter of rows...
  EXPECT_GT(ds.target_rows.size(), ds.table->num_rows() / 8);
  EXPECT_LT(ds.target_rows.size(), ds.table->num_rows() / 2);
  // ...and the clustered layout lets zone maps discard most chunks.
  EXPECT_GT(ds.chunks_skipped, 0);

  // Oracle: target rows are exactly those matching day >= threshold.
  auto stmt_pred = storage::MakeComparison(
      "day", storage::CompareOp::kGe,
      storage::Value(ds.table->At(ds.target_rows.front(), 0).AsInt64()));
  ASSERT_TRUE(stmt_pred->Bind(ds.table->schema()).ok());
  storage::RowSet expected;
  for (size_t i = 0; i < ds.table->num_rows(); ++i) {
    if (stmt_pred->Matches(*ds.table, i)) {
      expected.push_back(static_cast<uint32_t>(i));
    }
  }
  EXPECT_EQ(ds.target_rows, expected);
}

}  // namespace
}  // namespace muve::data
