#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace muve::sql {
namespace {

std::vector<Token> MustTokenize(const std::string& input) {
  auto result = Tokenize(input);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : std::vector<Token>{};
}

TEST(LexerTest, KeywordsAreCaseInsensitiveAndUppercased) {
  const auto tokens = MustTokenize("select From wHeRe");
  ASSERT_EQ(tokens.size(), 4u);  // + end
  EXPECT_TRUE(IsKeyword(tokens[0], "SELECT"));
  EXPECT_TRUE(IsKeyword(tokens[1], "FROM"));
  EXPECT_TRUE(IsKeyword(tokens[2], "WHERE"));
  EXPECT_EQ(tokens[3].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersKeepSpelling) {
  const auto tokens = MustTokenize("BloodPressure team_name");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "BloodPressure");
  EXPECT_EQ(tokens[1].text, "team_name");
}

TEST(LexerTest, LeadingDigitIdentifier) {
  // The NBA schema's "3PAr" must lex as one identifier.
  const auto tokens = MustTokenize("SUM(3PAr)");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "SUM");
  EXPECT_EQ(tokens[1].type, TokenType::kLParen);
  EXPECT_EQ(tokens[2].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[2].text, "3PAr");
  EXPECT_EQ(tokens[3].type, TokenType::kRParen);
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  const auto tokens = MustTokenize("42 3.14 .5 100");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.14);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 0.5);
  EXPECT_EQ(tokens[3].type, TokenType::kInteger);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  const auto tokens = MustTokenize("'GSW' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "GSW");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, ComparisonOperators) {
  const auto tokens = MustTokenize("= <> != < <= > >=");
  EXPECT_EQ(tokens[0].type, TokenType::kEq);
  EXPECT_EQ(tokens[1].type, TokenType::kNe);
  EXPECT_EQ(tokens[2].type, TokenType::kNe);
  EXPECT_EQ(tokens[3].type, TokenType::kLt);
  EXPECT_EQ(tokens[4].type, TokenType::kLe);
  EXPECT_EQ(tokens[5].type, TokenType::kGt);
  EXPECT_EQ(tokens[6].type, TokenType::kGe);
}

TEST(LexerTest, PunctuationAndStar) {
  const auto tokens = MustTokenize("(*, );");
  EXPECT_EQ(tokens[0].type, TokenType::kLParen);
  EXPECT_EQ(tokens[1].type, TokenType::kStar);
  EXPECT_EQ(tokens[2].type, TokenType::kComma);
  EXPECT_EQ(tokens[3].type, TokenType::kRParen);
  EXPECT_EQ(tokens[4].type, TokenType::kSemicolon);
}

TEST(LexerTest, LineCommentsSkipped) {
  const auto tokens = MustTokenize("SELECT -- comment here\n x");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(IsKeyword(tokens[0], "SELECT"));
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(LexerTest, BareBangFails) {
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

TEST(LexerTest, NumberOfBinsKeywords) {
  const auto tokens = MustTokenize("GROUP BY mp NUMBER OF BINS 3");
  EXPECT_TRUE(IsKeyword(tokens[0], "GROUP"));
  EXPECT_TRUE(IsKeyword(tokens[1], "BY"));
  EXPECT_TRUE(IsKeyword(tokens[3], "NUMBER"));
  EXPECT_TRUE(IsKeyword(tokens[4], "OF"));
  EXPECT_TRUE(IsKeyword(tokens[5], "BINS"));
  EXPECT_EQ(tokens[6].int_value, 3);
}

TEST(LexerTest, PositionsRecorded) {
  const auto tokens = MustTokenize("ab cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 3u);
}

}  // namespace
}  // namespace muve::sql
