#include "core/horizontal_search.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/partitioner.h"
#include "test_util.h"

namespace muve::core {
namespace {

constexpr double kNoThreshold = -std::numeric_limits<double>::infinity();

class HorizontalSearchTest : public ::testing::Test {
 protected:
  HorizontalSearchTest() : dataset_(testutil::MakeToyDataset()) {
    auto space = ViewSpace::Create(dataset_);
    EXPECT_TRUE(space.ok());
    space_ = std::make_unique<ViewSpace>(std::move(space).value());
    view_ = View{"x", "m1", storage::AggregateFunction::kSum};
    domain_ = BinDomain(PartitionSpec{}, space_->dimension_info("x").max_bins);
  }

  data::Dataset dataset_;
  std::unique_ptr<ViewSpace> space_;
  View view_;
  std::vector<int> domain_;
};

TEST_F(HorizontalSearchTest, LinearFindsTheArgmax) {
  ViewEvaluator eval(dataset_, *space_);
  SearchOptions options;
  const HorizontalResult result =
      HorizontalLinear(eval, view_, domain_, options);
  ASSERT_TRUE(result.best.has_value());
  // Cross-check against direct evaluation of every candidate.
  ViewEvaluator check(dataset_, *space_);
  double best_utility = -1.0;
  for (int bins : domain_) {
    const auto cand = EvaluateCandidate(check, view_, bins, options,
                                        kNoThreshold, false);
    best_utility = std::max(best_utility, cand.scored.utility);
  }
  EXPECT_DOUBLE_EQ(result.best->utility, best_utility);
  // Exhaustive: every domain entry fully probed.
  EXPECT_EQ(eval.stats().fully_probed,
            static_cast<int64_t>(domain_.size()));
}

// MuVE must return exactly the Linear optimum across weight settings
// (Section IV-C: MuVE is exact; only HC is approximate).
class MuveExactnessTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MuveExactnessTest, MuveMatchesLinearOptimum) {
  const auto [alpha_d, alpha_s] = GetParam();
  const double alpha_a = 1.0 - alpha_d - alpha_s;
  ASSERT_GE(alpha_a, -1e-9);

  const data::Dataset dataset = testutil::MakeToyDataset();
  auto space = ViewSpace::Create(dataset);
  ASSERT_TRUE(space.ok());
  SearchOptions options;
  options.weights = Weights{alpha_d, std::max(alpha_a, 0.0), alpha_s};
  const View view{"x", "m2", storage::AggregateFunction::kAvg};
  const auto domain =
      BinDomain(PartitionSpec{}, space->dimension_info("x").max_bins);

  ViewEvaluator linear_eval(dataset, *space);
  const auto linear = HorizontalLinear(linear_eval, view, domain, options);
  ViewEvaluator muve_eval(dataset, *space);
  const auto muve =
      HorizontalMuve(muve_eval, view, domain, options, kNoThreshold);

  ASSERT_TRUE(linear.best.has_value());
  ASSERT_TRUE(muve.best.has_value());
  EXPECT_NEAR(muve.best->utility, linear.best->utility, 1e-12)
      << "weights " << options.weights.ToString();
  // MuVE never probes more than Linear.
  EXPECT_LE(muve_eval.stats().fully_probed, linear_eval.stats().fully_probed);
}

INSTANTIATE_TEST_SUITE_P(
    WeightSweep, MuveExactnessTest,
    ::testing::Values(std::make_tuple(0.2, 0.6), std::make_tuple(0.6, 0.2),
                      std::make_tuple(0.2, 0.2), std::make_tuple(0.0, 0.8),
                      std::make_tuple(0.8, 0.0), std::make_tuple(0.1, 0.9),
                      std::make_tuple(1.0, 0.0), std::make_tuple(0.0, 0.0),
                      std::make_tuple(0.34, 0.33)));

TEST_F(HorizontalSearchTest, MuveEarlyTerminationFiresAtHighUsabilityWeight) {
  ViewEvaluator eval(dataset_, *space_);
  SearchOptions options;
  options.weights = Weights{0.05, 0.05, 0.9};
  const HorizontalResult result =
      HorizontalMuve(eval, view_, domain_, options, kNoThreshold);
  EXPECT_TRUE(result.early_terminated);
  // Far fewer candidates touched than the domain holds.
  EXPECT_LT(eval.stats().candidates_considered,
            static_cast<int64_t>(domain_.size()) / 2);
  ASSERT_TRUE(result.best.has_value());
  // ...and still exact.
  ViewEvaluator linear_eval(dataset_, *space_);
  const auto linear = HorizontalLinear(linear_eval, view_, domain_, options);
  EXPECT_DOUBLE_EQ(result.best->utility, linear.best->utility);
}

TEST_F(HorizontalSearchTest, MuveWithoutPruningStillExact) {
  SearchOptions options;
  options.enable_early_termination = false;
  options.enable_incremental_evaluation = false;
  ViewEvaluator eval(dataset_, *space_);
  const auto muve =
      HorizontalMuve(eval, view_, domain_, options, kNoThreshold);
  ViewEvaluator linear_eval(dataset_, *space_);
  const auto linear = HorizontalLinear(linear_eval, view_, domain_, options);
  ASSERT_TRUE(muve.best.has_value());
  EXPECT_DOUBLE_EQ(muve.best->utility, linear.best->utility);
  // With both optimizations off, MuVE degenerates to Linear's probe count.
  EXPECT_EQ(eval.stats().fully_probed, linear_eval.stats().fully_probed);
}

TEST_F(HorizontalSearchTest, MuveMaximalThresholdTerminatesImmediately) {
  // At b=1 the utility upper bound is exactly 1.0; an initial threshold of
  // 1.0 triggers early termination before any probe runs.
  ViewEvaluator eval(dataset_, *space_);
  SearchOptions options;
  const HorizontalResult result =
      HorizontalMuve(eval, view_, domain_, options, 1.0);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_TRUE(result.early_terminated);
  EXPECT_EQ(eval.stats().target_queries, 0);
  EXPECT_EQ(eval.stats().candidates_considered, 0);
}

TEST_F(HorizontalSearchTest, MuveNearMaximalThresholdProbesOnlyFirstBin) {
  // Threshold just under 1.0: b=1 (bound exactly 1.0) is still probed,
  // everything after is pruned/terminated.
  ViewEvaluator eval(dataset_, *space_);
  SearchOptions options;
  const HorizontalResult result =
      HorizontalMuve(eval, view_, domain_, options, 0.999);
  EXPECT_TRUE(result.early_terminated);
  EXPECT_FALSE(result.best.has_value());  // b=1 cannot beat 0.999
  EXPECT_LE(eval.stats().candidates_considered, 1);
}

TEST_F(HorizontalSearchTest, HillClimbingReturnsValidCandidate) {
  ViewEvaluator eval(dataset_, *space_);
  SearchOptions options;
  common::Rng rng(options.hc_seed);
  const HorizontalResult result = HorizontalHillClimbing(
      eval, view_, space_->dimension_info("x").max_bins, options, rng);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_GE(result.best->bins, 1);
  EXPECT_LE(result.best->bins, space_->dimension_info("x").max_bins);
  EXPECT_GT(result.best->utility, 0.0);
}

TEST_F(HorizontalSearchTest, HillClimbingNeverBeatsLinear) {
  SearchOptions options;
  for (uint64_t seed : {1ull, 2ull, 3ull, 17ull, 99ull}) {
    ViewEvaluator hc_eval(dataset_, *space_);
    common::Rng rng(seed);
    const auto hc = HorizontalHillClimbing(
        hc_eval, view_, space_->dimension_info("x").max_bins, options, rng);
    ViewEvaluator linear_eval(dataset_, *space_);
    const auto linear =
        HorizontalLinear(linear_eval, view_, domain_, options);
    ASSERT_TRUE(hc.best.has_value());
    EXPECT_LE(hc.best->utility, linear.best->utility + 1e-12);
  }
}

TEST_F(HorizontalSearchTest, HillClimbingDeterministicGivenSeed) {
  SearchOptions options;
  ViewEvaluator eval_a(dataset_, *space_);
  common::Rng rng_a(7);
  const auto a = HorizontalHillClimbing(eval_a, view_, 29, options, rng_a);
  ViewEvaluator eval_b(dataset_, *space_);
  common::Rng rng_b(7);
  const auto b = HorizontalHillClimbing(eval_b, view_, 29, options, rng_b);
  ASSERT_TRUE(a.best.has_value());
  ASSERT_TRUE(b.best.has_value());
  EXPECT_EQ(a.best->bins, b.best->bins);
  EXPECT_DOUBLE_EQ(a.best->utility, b.best->utility);
}

// Regression guard for HorizontalHillClimbing's memoization lifetime:
// `evaluate` used to return a reference into the memo (an unordered_map)
// and one climbing step held that reference across a *second* evaluate
// call, which inserts and can rehash.  unordered_map's node stability
// kept that accidentally correct, but any flat/open-addressing memo
// would turn it into a read from reallocated storage.  `evaluate` now
// returns by value; this test drives long downhill walks
// (usability-dominant weights push the climber toward b = 1 from a
// random high start) over a large bin range, so each step freshly
// evaluates b - s and b + s back to back and the memo crosses several
// rehash boundaries mid-step — if a future memo swap reintroduces
// reference-holding, the re-evaluation cross-check below (run under
// -DMUVE_SANITIZE=address in CI) catches it.
TEST_F(HorizontalSearchTest, MemoRehashDoesNotInvalidateCandidates) {
  SearchOptions options;
  options.weights = Weights{0.1, 0.1, 0.8};  // utility falls with bins
  const int max_bins = 300;
  for (uint64_t seed : {1ull, 2ull, 3ull, 5ull, 8ull, 13ull, 21ull, 34ull,
                        55ull, 89ull}) {
    ViewEvaluator eval(dataset_, *space_);
    common::Rng rng(seed);
    const HorizontalResult result =
        HorizontalHillClimbing(eval, view_, max_bins, options, rng);
    ASSERT_TRUE(result.best.has_value());
    ASSERT_GE(result.best->bins, 1);
    ASSERT_LE(result.best->bins, max_bins);
    // The returned candidate must be internally consistent: re-evaluating
    // the same (view, bins) pair from scratch yields the same utility.
    ViewEvaluator check(dataset_, *space_);
    const auto recomputed = EvaluateCandidate(
        check, view_, result.best->bins, options, kNoThreshold, false);
    EXPECT_DOUBLE_EQ(result.best->utility, recomputed.scored.utility)
        << "seed " << seed << " bins " << result.best->bins;
    EXPECT_DOUBLE_EQ(result.best->deviation, recomputed.scored.deviation)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(result.best->accuracy, recomputed.scored.accuracy)
        << "seed " << seed;
  }
}

TEST_F(HorizontalSearchTest, GeometricDomainRestrictsCandidates) {
  PartitionSpec geo;
  geo.kind = PartitionKind::kGeometric;
  const auto domain = BinDomain(geo, 29);  // {1,2,4,8,16}
  ViewEvaluator eval(dataset_, *space_);
  SearchOptions options;
  const auto result = HorizontalLinear(eval, view_, domain, options);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(eval.stats().fully_probed, 5);
  // The winner's bin count is a power of two.
  const int b = result.best->bins;
  EXPECT_EQ(b & (b - 1), 0);
}

TEST_F(HorizontalSearchTest, DispatcherRoutesEachStrategy) {
  SearchOptions options;
  common::Rng rng(1);
  for (const HorizontalStrategy strategy :
       {HorizontalStrategy::kLinear, HorizontalStrategy::kHillClimbing,
        HorizontalStrategy::kMuve}) {
    options.horizontal = strategy;
    ViewEvaluator eval(dataset_, *space_);
    const auto result =
        RunHorizontalSearch(eval, view_, domain_, 29, options, rng);
    EXPECT_TRUE(result.best.has_value());
  }
}

}  // namespace
}  // namespace muve::core
