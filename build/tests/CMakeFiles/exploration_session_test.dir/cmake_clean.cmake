file(REMOVE_RECURSE
  "CMakeFiles/exploration_session_test.dir/core/exploration_session_test.cc.o"
  "CMakeFiles/exploration_session_test.dir/core/exploration_session_test.cc.o.d"
  "exploration_session_test"
  "exploration_session_test.pdb"
  "exploration_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exploration_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
