// Synthetic stand-in for the UCI Pima Indians Diabetes dataset [paper ref 1].
//
// The paper's DIAB workload: 768 tuples, 9 attributes; 3 numeric dimensions
// (independent attributes like age and blood pressure), 3 measures
// (observations like glucose and insulin), 3 aggregate functions; analyst
// query selects the diabetic patients (Outcome = 1).
//
// The generator reproduces the schema, cardinality, attribute ranges, and
// plausible correlations (outcome probability rises with glucose, BMI, and
// age) with a seeded RNG, and pins each dimension's min/max so the
// view-space size is deterministic: dimensions Age [21,81], BloodPressure
// [24,110], Pregnancies [0,17] give sum-of-max-bins 163 and a binned-view
// space of 2 x 3 x 3 x 163 = 2934 views (paper reports 2961; within 1%).

#ifndef MUVE_DATA_DIAB_H_
#define MUVE_DATA_DIAB_H_

#include <cstdint>

#include "data/dataset.h"

namespace muve::data {

inline constexpr size_t kDiabRows = 768;
inline constexpr uint64_t kDiabDefaultSeed = 20160501;

// Builds the DIAB dataset with its default workload:
//   dimensions: Age, BloodPressure, Pregnancies (BMI available as a 4th)
//   measures:   Glucose, Insulin, SkinThickness (DiabetesPedigree as 4th)
//   functions:  SUM, AVG, COUNT
//   predicate:  Outcome = 1
Dataset MakeDiabDataset(uint64_t seed = kDiabDefaultSeed);

}  // namespace muve::data

#endif  // MUVE_DATA_DIAB_H_
