file(REMOVE_RECURSE
  "CMakeFiles/ablate_histogram.dir/bench/ablate_histogram.cpp.o"
  "CMakeFiles/ablate_histogram.dir/bench/ablate_histogram.cpp.o.d"
  "bench/ablate_histogram"
  "bench/ablate_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
