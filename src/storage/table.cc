#include "storage/table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace muve::storage {

RowSet AllRows(size_t n) {
  RowSet rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
  return rows;
}

Table::Table(Schema schema, size_t chunk_rows)
    : schema_(std::move(schema)), chunk_rows_(chunk_rows) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.push_back(std::make_unique<Column>(f.type, chunk_rows_));
  }
}

common::Result<const Column*> Table::ColumnByName(std::string_view name) const {
  MUVE_ASSIGN_OR_RETURN(const size_t idx, schema_.FieldIndex(name));
  return columns_[idx].get();
}

common::Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return common::Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  // Validate all cells before mutating any column so a failed append
  // leaves the table unchanged.
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (v.is_null()) continue;
    const ValueType ct = columns_[i]->type();
    const bool ok =
        (ct == ValueType::kString && v.type() == ValueType::kString) ||
        (ct == ValueType::kDouble && v.is_numeric()) ||
        (ct == ValueType::kInt64 && v.type() == ValueType::kInt64) ||
        (ct == ValueType::kInt64 && v.type() == ValueType::kDouble &&
         v.AsDoubleExact() == static_cast<int64_t>(v.AsDoubleExact()));
    if (!ok) {
      return common::Status::TypeMismatch(
          "column '" + schema_.field(i).name + "' expects " +
          ValueTypeName(ct) + ", got " + ValueTypeName(v.type()));
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const common::Status st = columns_[i]->AppendValue(values[i]);
    MUVE_CHECK(st.ok()) << st.ToString();
  }
  ++num_rows_;
  return common::Status::OK();
}

void Table::Reserve(size_t n) {
  for (auto& c : columns_) c->Reserve(n);
}

Table Table::Clone() const {
  Table copy(schema_, chunk_rows_);
  copy.columns_.clear();
  for (const auto& col : columns_) {
    // Column's copy constructor shares chunks; appends copy-on-write the
    // tail, so neither side can observe the other's growth.
    copy.columns_.push_back(std::make_unique<Column>(*col));
  }
  copy.num_rows_ = num_rows_;
  return copy;
}

size_t Table::ApproxBytes() const {
  size_t bytes = sizeof(Table);
  for (const auto& col : columns_) bytes += col->ApproxBytes();
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream out;
  std::vector<size_t> widths(num_columns());
  const size_t shown = std::min(max_rows, num_rows_);
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < num_columns(); ++c) {
    widths[c] = schema_.field(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(num_columns());
    for (size_t c = 0; c < num_columns(); ++c) {
      cells[r][c] = At(r, c).ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  for (size_t c = 0; c < num_columns(); ++c) {
    if (c > 0) out << "  ";
    out << common::PadRight(schema_.field(c).name, widths[c]);
  }
  out << "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      if (c > 0) out << "  ";
      out << common::PadRight(cells[r][c], widths[c]);
    }
    out << "\n";
  }
  if (shown < num_rows_) {
    out << "... (" << num_rows_ - shown << " more rows)\n";
  }
  return out.str();
}

}  // namespace muve::storage
