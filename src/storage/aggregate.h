// Aggregate functions over measure attributes.
//
// The paper's F = {SUM, COUNT, AVG, STD, VAR, MIN, MAX} (Section II-A).
// Each function is realized as a small accumulator so one scan computes a
// whole group-by; STD/VAR use Welford's algorithm for stability.

#ifndef MUVE_STORAGE_AGGREGATE_H_
#define MUVE_STORAGE_AGGREGATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace muve::storage {

enum class AggregateFunction {
  kSum = 0,
  kCount,
  kAvg,
  kMin,
  kMax,
  kStd,
  kVar,
};

// Canonical SQL spelling ("SUM", "COUNT", ...).
const char* AggregateName(AggregateFunction f);

// Parses a (case-insensitive) aggregate name; also accepts STDDEV/VARIANCE.
common::Result<AggregateFunction> AggregateFromName(std::string_view name);

// All seven functions, in enum order.
const std::vector<AggregateFunction>& AllAggregateFunctions();

// Streaming accumulator for a single group.  Empty groups finish to 0
// for every function (bar charts render empty groups as zero-height bars).
class AggregateAccumulator {
 public:
  explicit AggregateAccumulator(AggregateFunction function)
      : function_(function) {}

  void Add(double value);
  double Finish() const;
  size_t count() const { return count_; }

 private:
  AggregateFunction function_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  common::WelfordAccumulator welford_;
};

}  // namespace muve::storage

#endif  // MUVE_STORAGE_AGGREGATE_H_
