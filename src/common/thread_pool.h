// A small work-stealing thread pool for data-parallel index loops.
//
// `ThreadPool(n)` spawns `n - 1` background workers; the calling thread
// participates as worker 0 of every `ParallelFor`, so `n == 1` means
// fully inline (and deterministic, in submission order) execution with
// zero synchronization.  Indices are dealt round-robin into one deque
// per worker; a worker drains its own deque from the front and, when
// empty, steals from the back of its siblings — imbalanced items (one
// view's horizontal search can be 100x another's) migrate to idle
// workers instead of serializing behind their home shard.
//
// Contract:
//   * `fn(worker_id, index)` runs exactly once per index in [0, count);
//     `worker_id < num_workers()` identifies the executing lane, which
//     is how callers bind per-worker state (e.g. one ViewEvaluator per
//     lane) without locking.
//   * ParallelFor blocks until every index has finished; it must not be
//     called concurrently from two threads or reentrantly from inside
//     `fn`.
//   * A task that throws no longer brings the process down: the pool
//     captures the first exception (std::exception_ptr), keeps draining
//     the remaining indices (so the exactly-once contract holds and the
//     round's bookkeeping stays consistent), and rethrows on the CALLING
//     thread after the round completes.  The library itself is
//     no-exception on hot paths — this exists so third-party callbacks
//     and injected faults degrade to a caller-side error instead of
//     std::terminate.
//
// The pool is cheap enough to construct per recommendation request but
// reusable across any number of ParallelFor rounds (the MuVE-MuVE
// round-robin issues one round per shared bin count).

#ifndef MUVE_COMMON_THREAD_POOL_H_
#define MUVE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace muve::common {

class ThreadPool {
 public:
  // `num_workers` >= 1 is clamped up from 0; hardware concurrency is NOT
  // consulted — callers decide how wide to go.
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return num_workers_; }

  // Runs fn(worker_id, index) for every index in [0, count), work-stealing
  // across workers; blocks the caller (worker 0) until all are done.  If
  // any task threw, rethrows the first captured exception here (on the
  // caller's thread) after every index has been attempted.
  void ParallelFor(size_t count,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  struct Shard {
    std::mutex mu;
    std::deque<size_t> items;
  };

  void WorkerLoop(size_t id);
  // Drains work for worker `id`: own shard first, then steals.  Returns
  // when no shard holds an unclaimed index.
  void RunShard(size_t id);
  bool PopOwn(size_t id, size_t* index);
  bool StealFromSiblings(size_t id, size_t* index);
  // Records std::current_exception() as the round's failure; first wins.
  void CaptureTaskException();

  const size_t num_workers_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // background workers wait here
  std::condition_variable done_cv_;  // ParallelFor's caller waits here
  uint64_t generation_ = 0;          // bumped once per ParallelFor
  size_t workers_finished_ = 0;      // background workers done this round
  const std::function<void(size_t, size_t)>* fn_ = nullptr;
  bool stop_ = false;

  // First exception thrown by any task this round; rethrown by
  // ParallelFor on the calling thread once the round has drained.
  std::mutex exception_mu_;
  std::exception_ptr first_exception_;
};

}  // namespace muve::common

#endif  // MUVE_COMMON_THREAD_POOL_H_
