// Fused morsel-parallel scan engine: ONE pass over a row set builds the
// base histograms of EVERY requested (dimension, measure) pair.
//
// MuVE's dominant cost is query execution against D_Q / D_B (Section IV),
// and the base-histogram cache already collapsed per-(view, b) probes into
// O(d) re-binning — but each (A, M) pair still paid a full row scan for
// its build, so a run over |A| dimensions x |M| measures traversed the
// same rows |A| x |M| times per side.  This module fuses all those builds
// into a single traversal (SeeDB's shared-scan idea applied to the build
// phase):
//
//   Phase A (dictionaries, parallel across dimensions): for each distinct
//     dimension, gather its non-NULL values over the row set, sort,
//     dedupe -> the sorted fine-bin key dictionary, built ONCE and shared
//     by every measure paired with that dimension (the per-pair stable
//     sort of the old builder disappears).
//   Phase B (key arrays, morsel x dimension parallel): map each row
//     position to its dense dictionary index (kNullKey for NULL cells),
//     so Phase C's accumulators are plain array indexing.
//   Phase C (accumulation, morsel-parallel): the row set splits into
//     ~64K-row morsels dispatched on the shared ThreadPool; each morsel
//     accumulates count / sum / sum-of-squares per (pair, fine bin) into
//     its OWN partial arena slab (no sharing, no locks).
//   Phase D (merge, serial): partials fold in ascending morsel order —
//     a fixed association independent of which worker ran which morsel,
//     so results are identical for 1 and N threads.  Fine bins whose
//     merged count is 0 (every row NULL on the measure) are compacted
//     away, restoring the exact per-(A, M) fine-bin set of the old
//     per-pair builder.
//
// Determinism / exactness contract (pinned by
// tests/storage/fused_scan_differential_test.cc):
//   * Thread-count invariant: the output depends on the morsel
//     partitioning, never on the worker schedule.
//   * With a single morsel (morsel_size >= rows), per-fine-bin sums
//     accumulate in row order — bit-identical to the legacy per-pair
//     builder (which BuildBaseHistogram now delegates to).
//   * With multiple morsels, per-bin sums re-associate at morsel
//     boundaries: still bit-exact for COUNT and for integer-valued
//     measures, and within ~1e-12 relative error otherwise (the same
//     contract the prefix-sum cache already carries for AVG/STD/VAR).

#ifndef MUVE_STORAGE_FUSED_SCAN_H_
#define MUVE_STORAGE_FUSED_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/simd/aligned.h"
#include "common/status.h"
#include "storage/base_histogram_cache.h"
#include "storage/table.h"

namespace muve::common {
class ExecContext;
class ThreadPool;
}  // namespace muve::common

namespace muve::storage {

// Default morsel width: large enough that per-morsel fixed costs vanish,
// small enough that a few hundred thousand rows still split across
// workers.
inline constexpr size_t kDefaultFusedMorselSize = size_t{64} * 1024;

// One (dimension, measure) pair whose base histogram the fused pass
// should produce.
struct FusedScanPair {
  std::string dimension;
  std::string measure;
};

// Accounting for one fused build pass.
struct FusedScanStats {
  // Morsel tasks dispatched in the accumulation phase (Phase C).
  int64_t morsels = 0;
  // Distinct dimensions whose dictionary was built (Phase A).
  int64_t dimensions = 0;
};

// Reusable scratch arena: dictionaries, dense key arrays, and the
// per-morsel partial accumulators.  Passing the same scratch across
// builds reuses the allocations (the old per-pair builder allocated and
// sorted a fresh (value, measure) pair vector on every build — that
// churn is gone).  A scratch instance must not be shared by concurrent
// builds; per-evaluator ownership is the intended pattern.
// The key arrays and morsel-partial arenas are 64-byte aligned
// (common/simd/aligned.h): Phase C feeds them straight into the SIMD
// keyed accumulators, and cache-line-aligned slabs keep the per-morsel
// partials from straddling lines.
struct FusedScanScratch {
  std::vector<std::vector<double>> dicts;  // per-dimension sorted values
  // per-dimension dense keys
  std::vector<common::simd::AlignedVector<uint32_t>> keys;
  // Chunk-local row offsets (rows[p] & chunk_mask), position-aligned
  // with `rows`: Phase C feeds them to the SIMD keyed accumulators one
  // chunk run at a time, with the run's chunk data pointer — the kernels
  // keep their flat-array signature while the storage underneath is
  // chunked.
  common::simd::AlignedVector<uint32_t> local_rows;
  common::simd::AlignedVector<int64_t> counts;  // morsel-partial arenas
  common::simd::AlignedVector<double> sums;
  common::simd::AlignedVector<double> sum_sqs;
};

// Builds the base histogram of every pair in `pairs` over `rows` in one
// fused pass.  Output order matches `pairs`.  Errors mirror the per-pair
// builder's (unknown column, string dimension, string measure) and are
// reported for the FIRST offending pair; nothing is built on error.
//
//   * `pool` — when non-null, phases A-C run data-parallel on it (the
//     caller participates as worker 0; the pool must not be mid-
//     ParallelFor).  Null runs fully inline.
//   * `morsel_size` — rows per morsel; 0 selects
//     kDefaultFusedMorselSize.  The morsel partitioning (not the worker
//     count) is what determines FP association, so fixing it fixes the
//     output bits.
//   * `stats` / `scratch` — optional accounting and allocation reuse.
//   * `ctx` — execution control (common/exec_context.h).  The pass polls
//     it before each phase and per Phase-C morsel; once it expires no new
//     morsel starts and the whole build aborts with the context's expiry
//     Status.  NOTHING is returned or cached from an aborted pass —
//     partial histograms must never be mistaken for complete ones — so
//     callers degrade to direct single-pair builds for the probes they
//     still run.  Null = unbounded (today's behavior).
common::Result<std::vector<BaseHistogram>> FusedBuildBaseHistograms(
    const Table& table, const RowSet& rows,
    const std::vector<FusedScanPair>& pairs,
    common::ThreadPool* pool = nullptr, size_t morsel_size = 0,
    FusedScanStats* stats = nullptr, FusedScanScratch* scratch = nullptr,
    common::ExecContext* ctx = nullptr);

}  // namespace muve::storage

#endif  // MUVE_STORAGE_FUSED_SCAN_H_
