#include <gtest/gtest.h>

#include "core/view.h"
#include "data/diab.h"
#include "data/nba.h"

namespace muve::data {
namespace {

TEST(DiabTest, ShapeMatchesPaper) {
  const Dataset ds = MakeDiabDataset();
  EXPECT_EQ(ds.table->num_rows(), kDiabRows);   // 768 tuples
  EXPECT_EQ(ds.table->num_columns(), 9u);       // 9 attributes
  EXPECT_GE(ds.dimensions.size(), 3u);
  EXPECT_GE(ds.measures.size(), 3u);
  EXPECT_EQ(ds.functions.size(), 3u);
}

TEST(DiabTest, DimensionRangesArePinned) {
  const Dataset ds = MakeDiabDataset();
  auto age = *ds.table->ColumnByName("Age");
  EXPECT_DOUBLE_EQ(*age->NumericMin(), 21.0);
  EXPECT_DOUBLE_EQ(*age->NumericMax(), 81.0);
  auto bp = *ds.table->ColumnByName("BloodPressure");
  EXPECT_DOUBLE_EQ(*bp->NumericMin(), 24.0);
  EXPECT_DOUBLE_EQ(*bp->NumericMax(), 110.0);
  auto preg = *ds.table->ColumnByName("Pregnancies");
  EXPECT_DOUBLE_EQ(*preg->NumericMin(), 0.0);
  EXPECT_DOUBLE_EQ(*preg->NumericMax(), 17.0);
}

TEST(DiabTest, ValuesWithinDocumentedBounds) {
  const Dataset ds = MakeDiabDataset();
  auto glucose = *ds.table->ColumnByName("Glucose");
  auto insulin = *ds.table->ColumnByName("Insulin");
  auto bmi = *ds.table->ColumnByName("BMI");
  for (size_t r = 0; r < ds.table->num_rows(); ++r) {
    EXPECT_GE(glucose->NumericAt(r), 44.0);
    EXPECT_LE(glucose->NumericAt(r), 199.0);
    EXPECT_GE(insulin->NumericAt(r), 14.0);
    EXPECT_LE(insulin->NumericAt(r), 846.0);
    EXPECT_GE(bmi->NumericAt(r), 18.0);
    EXPECT_LE(bmi->NumericAt(r), 67.0);
  }
}

TEST(DiabTest, TargetRowsAreDiabeticOutcomes) {
  const Dataset ds = MakeDiabDataset();
  EXPECT_FALSE(ds.target_rows.empty());
  EXPECT_LT(ds.target_rows.size(), ds.all_rows.size());
  auto outcome = *ds.table->ColumnByName("Outcome");
  for (uint32_t r : ds.target_rows) {
    EXPECT_EQ(outcome->Int64At(r), 1);
  }
  // Roughly a third of patients are diabetic (plausible class balance).
  EXPECT_GT(ds.target_rows.size(), kDiabRows / 5);
  EXPECT_LT(ds.target_rows.size(), kDiabRows * 3 / 5);
}

TEST(DiabTest, DeterministicForSameSeed) {
  const Dataset a = MakeDiabDataset(99);
  const Dataset b = MakeDiabDataset(99);
  ASSERT_EQ(a.table->num_rows(), b.table->num_rows());
  for (size_t r = 0; r < a.table->num_rows(); r += 37) {
    for (size_t c = 0; c < a.table->num_columns(); ++c) {
      EXPECT_EQ(a.table->At(r, c), b.table->At(r, c));
    }
  }
  const Dataset other = MakeDiabDataset(100);
  bool any_diff = false;
  for (size_t r = 8; r < a.table->num_rows() && !any_diff; ++r) {
    if (!(a.table->At(r, 1) == other.table->At(r, 1))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(NbaTest, ShapeMatchesPaper) {
  const Dataset ds = MakeNbaDataset();
  EXPECT_EQ(ds.table->num_rows(), kNbaRows);  // 651 tuples
  EXPECT_EQ(ds.table->num_columns(), 28u);    // 28 attributes
  EXPECT_EQ(ds.dimensions.size(), 3u);
  EXPECT_EQ(ds.measures.size(), kNbaMaxMeasures);  // up to 13 measures
}

TEST(NbaTest, ViewSpaceMatchesPaperCount) {
  // Paper: 3 dims, 3 measures, 3 functions -> 27,756 binned views.
  Dataset ds = MakeNbaDataset();
  ds.measures.resize(3);
  auto space = core::ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  EXPECT_EQ(space->TotalBinnedViews(), 27756);
  EXPECT_EQ(space->views().size(), 27u);  // 3 x 3 x 3 non-binned views
}

TEST(NbaTest, DimensionRangesArePinned) {
  const Dataset ds = MakeNbaDataset();
  auto mp = *ds.table->ColumnByName("MP");
  EXPECT_DOUBLE_EQ(*mp->NumericMin(), 0.0);
  EXPECT_DOUBLE_EQ(*mp->NumericMax(), 1440.0);
  auto g = *ds.table->ColumnByName("G");
  EXPECT_DOUBLE_EQ(*g->NumericMin(), 0.0);
  EXPECT_DOUBLE_EQ(*g->NumericMax(), 82.0);
  auto age = *ds.table->ColumnByName("Age");
  EXPECT_DOUBLE_EQ(*age->NumericMin(), 19.0);
  EXPECT_DOUBLE_EQ(*age->NumericMax(), 39.0);
}

TEST(NbaTest, GswTargetRows) {
  const Dataset ds = MakeNbaDataset();
  EXPECT_FALSE(ds.target_rows.empty());
  auto team = *ds.table->ColumnByName("Team");
  for (uint32_t r : ds.target_rows) {
    EXPECT_EQ(team->StringAt(r), "GSW");
  }
  // ~651/30 players per team.
  EXPECT_GE(ds.target_rows.size(), 15u);
  EXPECT_LE(ds.target_rows.size(), 30u);
}

TEST(NbaTest, Example1PatternPlanted) {
  // GSW keeps high 3PAr at high minutes; the league declines (Figure 3:
  // roughly 4x at the top bins).
  const Dataset ds = MakeNbaDataset();
  auto mp = *ds.table->ColumnByName("MP");
  auto par3 = *ds.table->ColumnByName("3PAr");
  auto team = *ds.table->ColumnByName("Team");
  double gsw_sum = 0.0;
  int gsw_n = 0;
  double league_sum = 0.0;
  int league_n = 0;
  for (size_t r = 0; r < ds.table->num_rows(); ++r) {
    if (mp->NumericAt(r) < 960.0) continue;  // top third of minutes
    if (team->StringAt(r) == "GSW") {
      gsw_sum += par3->NumericAt(r);
      ++gsw_n;
    } else {
      league_sum += par3->NumericAt(r);
      ++league_n;
    }
  }
  ASSERT_GT(gsw_n, 0);
  ASSERT_GT(league_n, 0);
  const double gsw_avg = gsw_sum / gsw_n;
  const double league_avg = league_sum / league_n;
  EXPECT_GT(gsw_avg, 2.0 * league_avg);
}

TEST(NbaTest, DeterministicForSameSeed) {
  const Dataset a = MakeNbaDataset(5);
  const Dataset b = MakeNbaDataset(5);
  for (size_t r = 0; r < a.table->num_rows(); r += 53) {
    for (size_t c = 0; c < a.table->num_columns(); ++c) {
      EXPECT_EQ(a.table->At(r, c), b.table->At(r, c));
    }
  }
}

TEST(WorkloadSizeTest, TruncatesLists) {
  const Dataset ds = MakeNbaDataset();
  const Dataset small = WithWorkloadSize(ds, 2, 5, 1);
  EXPECT_EQ(small.dimensions.size(), 2u);
  EXPECT_EQ(small.measures.size(), 5u);
  EXPECT_EQ(small.functions.size(), 1u);
  // Clamped when asking for more than available.
  const Dataset big = WithWorkloadSize(ds, 99, 99, 99);
  EXPECT_EQ(big.dimensions.size(), ds.dimensions.size());
  EXPECT_EQ(big.measures.size(), ds.measures.size());
}

}  // namespace
}  // namespace muve::data
