// Ablation: choice of distance function for the deviation objective.
//
// Section II-A lists Euclidean (default), Earth Mover's, and K-L
// divergence as candidate `dist` functions; the implementation adds
// Manhattan (total variation), Chebyshev, and Jensen-Shannon.  This
// ablation reports, per distance: MuVE-MuVE cost, how much pruning
// survives, whether the top-1 view changes, and the fidelity of
// MuVE-MuVE against its own Linear-Linear baseline (always 100% — the
// schemes stay exact under every distance; what shifts is *which* views
// win and how early pruning can start).

#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/fidelity.h"
#include "core/recommender.h"
#include "data/diab.h"
#include "harness.h"

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  using muve::bench::Ms;
  using muve::bench::RunScheme;
  using muve::core::DistanceKind;

  std::cout << "=== Ablation: distance function for the deviation "
               "objective (DIAB) ===\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeDiabDataset(), 3, 3, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  // Deviation-heavy weights so the distance choice can actually reorder
  // the ranking.
  const muve::core::Weights weights{0.6, 0.2, 0.2};

  muve::bench::TablePrinter table({"distance", "Linear(ms)", "MuVE(ms)",
                                   "fidelity", "top-1 view"});
  for (const DistanceKind kind :
       {DistanceKind::kEuclidean, DistanceKind::kManhattan,
        DistanceKind::kChebyshev, DistanceKind::kEarthMovers,
        DistanceKind::kKlDivergence, DistanceKind::kJensenShannon}) {
    auto linear = muve::bench::LinearLinear();
    auto muve = muve::bench::MuveMuve();
    linear.weights = muve.weights = weights;
    linear.distance = muve.distance = kind;

    const auto r_lin = RunScheme(*recommender, linear);
    const auto r_muve = RunScheme(*recommender, muve);
    const auto& top = r_muve.recommendation.views.front();
    table.AddRow({muve::core::DistanceKindName(kind), Ms(r_lin.cost_ms),
                  Ms(r_muve.cost_ms),
                  muve::bench::Pct(muve::core::Fidelity(
                      r_lin.recommendation.views,
                      r_muve.recommendation.views)),
                  top.view.Label() + " b=" + std::to_string(top.bins)});
  }
  table.Print("Distance-function ablation (aD=0.6 aA=0.2 aS=0.2, k = 5), "
              "mean of " +
              std::to_string(muve::bench::Repetitions()) + " runs");
  return 0;
}
