// Property tests for CanonicalPredicateKey (storage/predicate.h): the
// cache key the cross-request sharing layers (DESIGN.md §13) key on.
//
// The contract under test:
//   * equal keys for operand-permuted / reassociated / duplicated
//     spellings of one AND/OR chain;
//   * distinct keys whenever a fuzzed pair of predicates disagrees on
//     any row of the oracle table (equal key ==> equal Matches
//     semantics — the direction a cache needs; the converse is not
//     promised and not tested);
//   * literal canonicalization: `x = 10` and `x = 10.0` share a key;
//   * the grammar cannot be forged by literal content.

#include "storage/predicate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "fuzz_util.h"
#include "storage/table.h"

namespace muve::storage {
namespace {

using muve::testutil::FuzzSeed;
using muve::testutil::FuzzTrace;

PredicatePtr Cmp(const char* col, CompareOp op, Value v) {
  return MakeComparison(col, op, std::move(v));
}

class PredicateCanonTest : public ::testing::Test {
 protected:
  PredicateCanonTest()
      : table_(Schema({{"x", ValueType::kInt64},
                       {"name", ValueType::kString},
                       {"w", ValueType::kDouble}})) {
    // Small but adversarial: duplicates, a NULL, negative values, and
    // boundary-adjacent doubles so off-by-one predicates disagree.
    const struct {
      Value x, name, w;
    } rows[] = {
        {Value(int64_t{1}), Value("a"), Value(0.5)},
        {Value(int64_t{2}), Value("b"), Value(1.5)},
        {Value(int64_t{2}), Value("a"), Value(2.0)},
        {Value(int64_t{3}), Value("c"), Value(2.5)},
        {Value(int64_t{-4}), Value("d"), Value(-3.5)},
        {Value::Null(), Value("e"), Value(4.5)},
        {Value(int64_t{7}), Value("a"), Value(0.0)},
    };
    for (const auto& r : rows) {
      EXPECT_TRUE(table_.AppendRow({r.x, r.name, r.w}).ok());
    }
  }

  RowSet Rows(const Predicate& pred) {
    // Matches-oracle evaluation: clone-free, works on any bound tree.
    RowSet out;
    for (size_t row = 0; row < table_.num_rows(); ++row) {
      if (pred.Matches(table_, row)) out.push_back(static_cast<uint32_t>(row));
    }
    return out;
  }

  Table table_;
};

TEST_F(PredicateCanonTest, AndOperandOrderIsCanonical) {
  auto a = [] { return Cmp("x", CompareOp::kGe, Value(int64_t{2})); };
  auto b = [] { return Cmp("w", CompareOp::kLt, Value(2.5)); };
  EXPECT_EQ(CanonicalPredicateKey(*MakeAnd(a(), b())),
            CanonicalPredicateKey(*MakeAnd(b(), a())));
  EXPECT_EQ(CanonicalPredicateKey(*MakeOr(a(), b())),
            CanonicalPredicateKey(*MakeOr(b(), a())));
  // AND and OR of the same operands must NOT collide.
  EXPECT_NE(CanonicalPredicateKey(*MakeAnd(a(), b())),
            CanonicalPredicateKey(*MakeOr(a(), b())));
}

TEST_F(PredicateCanonTest, ChainsFlattenAcrossAssociativity) {
  auto a = [] { return Cmp("x", CompareOp::kGe, Value(int64_t{2})); };
  auto b = [] { return Cmp("w", CompareOp::kLt, Value(2.5)); };
  auto c = [] { return Cmp("name", CompareOp::kEq, Value("a")); };
  const std::string left =
      CanonicalPredicateKey(*MakeAnd(MakeAnd(a(), b()), c()));
  const std::string right =
      CanonicalPredicateKey(*MakeAnd(a(), MakeAnd(b(), c())));
  const std::string rotated =
      CanonicalPredicateKey(*MakeAnd(MakeAnd(c(), a()), b()));
  EXPECT_EQ(left, right);
  EXPECT_EQ(left, rotated);
}

TEST_F(PredicateCanonTest, DuplicateClausesCollapse) {
  auto a = [] { return Cmp("x", CompareOp::kGt, Value(int64_t{1})); };
  // p AND p keys exactly like p (idempotence), including through nesting.
  EXPECT_EQ(CanonicalPredicateKey(*MakeAnd(a(), a())),
            CanonicalPredicateKey(*a()));
  EXPECT_EQ(CanonicalPredicateKey(*MakeOr(a(), MakeOr(a(), a()))),
            CanonicalPredicateKey(*a()));
  auto b = [] { return Cmp("w", CompareOp::kLe, Value(0.5)); };
  EXPECT_EQ(CanonicalPredicateKey(*MakeAnd(MakeAnd(a(), b()), a())),
            CanonicalPredicateKey(*MakeAnd(a(), b())));
}

TEST_F(PredicateCanonTest, NumericLiteralFormsShareAKey) {
  EXPECT_EQ(CanonicalPredicateKey(*Cmp("x", CompareOp::kEq,
                                       Value(int64_t{10}))),
            CanonicalPredicateKey(*Cmp("x", CompareOp::kEq, Value(10.0))));
  EXPECT_EQ(
      CanonicalPredicateKey(*MakeBetween("x", Value(int64_t{2}),
                                         Value(int64_t{5}))),
      CanonicalPredicateKey(*MakeBetween("x", Value(2.0), Value(5.0))));
  // ...but different values never do.
  EXPECT_NE(CanonicalPredicateKey(*Cmp("x", CompareOp::kEq,
                                       Value(int64_t{10}))),
            CanonicalPredicateKey(*Cmp("x", CompareOp::kEq, Value(10.5))));
}

TEST_F(PredicateCanonTest, InListSortsAndDedupes) {
  EXPECT_EQ(CanonicalPredicateKey(*MakeInList(
                "x", {Value(int64_t{3}), Value(int64_t{1}), Value(int64_t{2}),
                      Value(int64_t{2})})),
            CanonicalPredicateKey(*MakeInList(
                "x", {Value(int64_t{1}), Value(int64_t{2}),
                      Value(int64_t{3})})));
}

TEST_F(PredicateCanonTest, LiteralContentCannotForgeTheGrammar) {
  // A string literal that *spells* another predicate's key must not
  // collide with it — length prefixes make content inert.
  auto honest = Cmp("name", CompareOp::kEq, Value("a"));
  auto forged = Cmp("name", CompareOp::kEq,
                    Value(CanonicalPredicateKey(*honest).c_str()));
  EXPECT_NE(CanonicalPredicateKey(*honest), CanonicalPredicateKey(*forged));
  // Column vs string-literal confusion: cmp(c4:name,=,s1:a) must differ
  // from a spelling where column and literal content swap roles.
  EXPECT_NE(CanonicalPredicateKey(*Cmp("a", CompareOp::kEq, Value("name"))),
            CanonicalPredicateKey(*honest));
}

TEST_F(PredicateCanonTest, DistinctStructuresKeepDistinctKeys) {
  auto a = [] { return Cmp("x", CompareOp::kLt, Value(int64_t{5})); };
  EXPECT_NE(CanonicalPredicateKey(*a()),
            CanonicalPredicateKey(*MakeNot(a())));
  EXPECT_NE(CanonicalPredicateKey(*Cmp("x", CompareOp::kLt, Value(5.0))),
            CanonicalPredicateKey(*Cmp("x", CompareOp::kLe, Value(5.0))));
  EXPECT_NE(CanonicalPredicateKey(*Cmp("x", CompareOp::kLt, Value(5.0))),
            CanonicalPredicateKey(*Cmp("w", CompareOp::kLt, Value(5.0))));
  EXPECT_NE(CanonicalPredicateKey(*MakeIsNull("x")),
            CanonicalPredicateKey(*MakeIsNull("x", /*negate=*/true)));
  EXPECT_NE(CanonicalPredicateKey(*MakeTrue()),
            CanonicalPredicateKey(*MakeIsNull("x")));
}

// ---------------------------------------------------------------------------
// Fuzz: random trees, checked two ways against the Matches oracle.
// ---------------------------------------------------------------------------

// Deterministic random predicate generator.  `Leaf(i)` regenerates the
// SAME leaf for one `Gen`, so semantically-equal rearranged chains can be
// built from a shared leaf pool.
class Gen {
 public:
  explicit Gen(uint64_t seed) : rng_(seed) {}

  PredicatePtr Leaf(uint64_t salt) {
    std::mt19937_64 rng(salt * 0x9E3779B97F4A7C15ULL + 1);
    switch (rng() % 6) {
      case 0:
        return Cmp("x", Op(rng), Value(static_cast<int64_t>(rng() % 9) - 4));
      case 1:
        return Cmp("w", Op(rng),
                   Value(static_cast<double>(rng() % 17) / 2.0 - 4.0));
      case 2:
        return Cmp("name", rng() % 2 == 0 ? CompareOp::kEq : CompareOp::kNe,
                   Value(kNames[rng() % 5]));
      case 3:
        return MakeBetween("x", Value(static_cast<int64_t>(rng() % 5) - 2),
                           Value(static_cast<int64_t>(rng() % 5) + 1));
      case 4:
        return MakeInList("x", {Value(static_cast<int64_t>(rng() % 4)),
                                Value(static_cast<int64_t>(rng() % 8))});
      default:
        return MakeIsNull("x", rng() % 2 == 0);
    }
  }

  PredicatePtr Tree(int depth) {
    if (depth <= 0 || rng_() % 3 == 0) return Leaf(rng_() % 32);
    switch (rng_() % 3) {
      case 0:
        return MakeAnd(Tree(depth - 1), Tree(depth - 1));
      case 1:
        return MakeOr(Tree(depth - 1), Tree(depth - 1));
      default:
        return MakeNot(Tree(depth - 1));
    }
  }

  std::mt19937_64& rng() { return rng_; }

 private:
  static CompareOp Op(std::mt19937_64& rng) {
    static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                     CompareOp::kLt, CompareOp::kLe,
                                     CompareOp::kGt, CompareOp::kGe};
    return kOps[rng() % 6];
  }
  static constexpr const char* kNames[5] = {"a", "b", "c", "d", "e"};
  std::mt19937_64 rng_;
};

TEST_F(PredicateCanonTest, FuzzPermutedChainsShareKeyAndSemantics) {
  for (uint64_t i = 0; i < 200; ++i) {
    const uint64_t seed = FuzzSeed(i);
    SCOPED_TRACE(FuzzTrace(i, seed));
    Gen gen(seed);
    // A chain over a pooled leaf set, folded in two shuffled orders with
    // a duplicated operand thrown into one of them.
    const bool conjunction = gen.rng()() % 2 == 0;
    const size_t n = 2 + gen.rng()() % 4;
    std::vector<uint64_t> salts;
    for (size_t j = 0; j < n; ++j) salts.push_back(gen.rng()() % 16);
    auto fold = [&](std::vector<uint64_t> order) {
      order.push_back(order[gen.rng()() % order.size()]);  // duplicate
      PredicatePtr acc = gen.Leaf(order[0]);
      for (size_t j = 1; j < order.size(); ++j) {
        acc = conjunction ? MakeAnd(std::move(acc), gen.Leaf(order[j]))
                          : MakeOr(std::move(acc), gen.Leaf(order[j]));
      }
      return acc;
    };
    std::vector<uint64_t> shuffled = salts;
    std::shuffle(shuffled.begin(), shuffled.end(), gen.rng());
    PredicatePtr lhs = fold(salts);
    PredicatePtr rhs = fold(shuffled);
    EXPECT_EQ(CanonicalPredicateKey(*lhs), CanonicalPredicateKey(*rhs));
    ASSERT_TRUE(lhs->Bind(table_.schema()).ok());
    ASSERT_TRUE(rhs->Bind(table_.schema()).ok());
    EXPECT_EQ(Rows(*lhs), Rows(*rhs));
  }
}

TEST_F(PredicateCanonTest, FuzzEqualKeysImplyEqualRowSets) {
  // Generate a pile of random trees; any two that land on one canonical
  // key must select identical rows.  (Collisions DO happen by design —
  // that is exactly the sharing the cache exploits.)
  std::map<std::string, RowSet> by_key;
  for (uint64_t i = 0; i < 400; ++i) {
    const uint64_t seed = FuzzSeed(i + 10000);
    SCOPED_TRACE(FuzzTrace(i, seed));
    Gen gen(seed);
    PredicatePtr pred = gen.Tree(3);
    const std::string key = CanonicalPredicateKey(*pred);
    ASSERT_TRUE(pred->Bind(table_.schema()).ok());
    const RowSet rows = Rows(*pred);
    auto [it, inserted] = by_key.emplace(key, rows);
    if (!inserted) {
      EXPECT_EQ(it->second, rows) << "key collision with divergent "
                                     "semantics on key: " << key;
    }
  }
}

}  // namespace
}  // namespace muve::storage
