#include "core/view_evaluator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace muve::core {
namespace {

class ViewEvaluatorTest : public ::testing::Test {
 protected:
  ViewEvaluatorTest() : dataset_(testutil::MakeToyDataset()) {
    auto space = ViewSpace::Create(dataset_);
    EXPECT_TRUE(space.ok());
    space_ = std::make_unique<ViewSpace>(std::move(space).value());
  }

  View SumM1ByX() const {
    return View{"x", "m1", storage::AggregateFunction::kSum};
  }

  data::Dataset dataset_;
  std::unique_ptr<ViewSpace> space_;
};

TEST_F(ViewEvaluatorTest, DeviationDeterministicAndBounded) {
  ViewEvaluator eval(dataset_, *space_);
  const double d1 = eval.EvaluateDeviation(SumM1ByX(), 5);
  const double d2 = eval.EvaluateDeviation(SumM1ByX(), 5);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_GE(d1, 0.0);
  EXPECT_LE(d1, 1.0);
}

TEST_F(ViewEvaluatorTest, TargetDiffersFromComparisonSoDeviationPositive) {
  // m1 rises with x for the target subset but is flat overall.
  ViewEvaluator eval(dataset_, *space_);
  EXPECT_GT(eval.EvaluateDeviation(SumM1ByX(), 5), 0.01);
}

TEST_F(ViewEvaluatorTest, SingleBinDeviationIsZero) {
  ViewEvaluator eval(dataset_, *space_);
  EXPECT_DOUBLE_EQ(eval.EvaluateDeviation(SumM1ByX(), 1), 0.0);
}

TEST_F(ViewEvaluatorTest, AccuracyBoundedAndImprovesWithFullBinning) {
  ViewEvaluator eval(dataset_, *space_);
  const double coarse = eval.EvaluateAccuracy(SumM1ByX(), 2);
  EXPECT_GE(coarse, 0.0);
  EXPECT_LE(coarse, 1.0);
  // 29 bins over range [0,29]: splits 30 distinct values into bins of at
  // most 2 values; with max bins accuracy should be >= the 2-bin one.
  const double fine = eval.EvaluateAccuracy(SumM1ByX(), 29);
  EXPECT_GE(fine + 1e-12, coarse);
}

TEST_F(ViewEvaluatorTest, StatsCountOperations) {
  ViewEvaluator eval(dataset_, *space_);
  eval.EvaluateDeviation(SumM1ByX(), 4);
  EXPECT_EQ(eval.stats().target_queries, 1);
  EXPECT_EQ(eval.stats().comparison_queries, 1);
  EXPECT_EQ(eval.stats().deviation_evals, 1);
  EXPECT_EQ(eval.stats().accuracy_evals, 0);
  // Accuracy at the same (view, bins) reuses the cached binned target.
  eval.EvaluateAccuracy(SumM1ByX(), 4);
  EXPECT_EQ(eval.stats().target_queries, 1);
  EXPECT_EQ(eval.stats().accuracy_evals, 1);
  EXPECT_GT(eval.stats().rows_scanned, 0);
}

TEST_F(ViewEvaluatorTest, NoReuseReExecutesTargetQuery) {
  ViewEvaluatorOptions options;
  options.reuse_target_within_candidate = false;
  ViewEvaluator eval(dataset_, *space_, options);
  eval.EvaluateDeviation(SumM1ByX(), 4);
  eval.EvaluateAccuracy(SumM1ByX(), 4);
  EXPECT_EQ(eval.stats().target_queries, 2);
}

TEST_F(ViewEvaluatorTest, ReuseCacheInvalidatedByDifferentBins) {
  ViewEvaluator eval(dataset_, *space_);
  eval.EvaluateDeviation(SumM1ByX(), 4);
  eval.EvaluateAccuracy(SumM1ByX(), 5);  // different bins -> new query
  EXPECT_EQ(eval.stats().target_queries, 2);
}

TEST_F(ViewEvaluatorTest, RawSeriesCachedPerView) {
  ViewEvaluator eval(dataset_, *space_);
  eval.EvaluateAccuracy(SumM1ByX(), 2);
  const int64_t scans_after_first = eval.stats().rows_scanned;
  eval.EvaluateAccuracy(SumM1ByX(), 3);
  // Second accuracy evaluation: one binned target scan, no raw re-scan.
  EXPECT_EQ(eval.stats().rows_scanned - scans_after_first,
            static_cast<int64_t>(dataset_.target_rows.size()));
}

TEST_F(ViewEvaluatorTest, ReuseNeverChangesValues) {
  ViewEvaluatorOptions reuse_off;
  reuse_off.reuse_target_within_candidate = false;
  ViewEvaluator with_reuse(dataset_, *space_);
  ViewEvaluator without_reuse(dataset_, *space_, reuse_off);
  for (int bins : {1, 3, 7, 15, 29}) {
    EXPECT_DOUBLE_EQ(with_reuse.EvaluateDeviation(SumM1ByX(), bins),
                     without_reuse.EvaluateDeviation(SumM1ByX(), bins));
    EXPECT_DOUBLE_EQ(with_reuse.EvaluateAccuracy(SumM1ByX(), bins),
                     without_reuse.EvaluateAccuracy(SumM1ByX(), bins));
  }
}

TEST_F(ViewEvaluatorTest, DistanceKindChangesDeviationNotAccuracy) {
  ViewEvaluatorOptions emd;
  emd.distance = DistanceKind::kEarthMovers;
  ViewEvaluator euclid(dataset_, *space_);
  ViewEvaluator earth(dataset_, *space_, emd);
  const double d_euclid = euclid.EvaluateDeviation(SumM1ByX(), 6);
  const double d_emd = earth.EvaluateDeviation(SumM1ByX(), 6);
  EXPECT_NE(d_euclid, d_emd);
  EXPECT_DOUBLE_EQ(euclid.EvaluateAccuracy(SumM1ByX(), 6),
                   earth.EvaluateAccuracy(SumM1ByX(), 6));
}

TEST_F(ViewEvaluatorTest, PriorityRuleBootstrapsDeviationFirst) {
  ViewEvaluator eval(dataset_, *space_);
  EXPECT_FALSE(eval.AccuracyFirst(Weights::PaperDefault()));
}

TEST_F(ViewEvaluatorTest, PriorityRulePrefersCheapHighWeightObjective) {
  ViewEvaluator eval(dataset_, *space_);
  // Seed cost estimates: deviation path much more expensive.
  eval.EvaluateDeviation(SumM1ByX(), 4);
  eval.EvaluateAccuracy(SumM1ByX(), 4);
  // With overwhelming accuracy weight, accuracy goes first...
  EXPECT_TRUE(eval.AccuracyFirst(Weights{0.0, 0.9, 0.1}));
  // ...and with overwhelming deviation weight, deviation does.
  EXPECT_FALSE(eval.AccuracyFirst(Weights{0.9, 0.0, 0.1}));
}

TEST_F(ViewEvaluatorTest, ResetAccountingClearsStatsKeepsDeterminism) {
  ViewEvaluator eval(dataset_, *space_);
  const double d = eval.EvaluateDeviation(SumM1ByX(), 3);
  eval.ResetAccounting();
  EXPECT_EQ(eval.stats().target_queries, 0);
  EXPECT_DOUBLE_EQ(eval.stats().TotalCostMillis(), 0.0);
  EXPECT_DOUBLE_EQ(eval.EvaluateDeviation(SumM1ByX(), 3), d);
}

TEST_F(ViewEvaluatorTest, CostComponentsAccumulate) {
  ViewEvaluator eval(dataset_, *space_);
  for (int b = 1; b <= 10; ++b) eval.EvaluateDeviation(SumM1ByX(), b);
  EXPECT_GT(eval.stats().target_time_ms, 0.0);
  EXPECT_GT(eval.stats().comparison_time_ms, 0.0);
  EXPECT_GT(eval.stats().TotalCostMillis(), 0.0);
  EXPECT_GT(eval.cost_model().Estimate(CostKind::kTargetQuery), 0.0);
}

}  // namespace
}  // namespace muve::core
