// Top-k tracking with the paper's distinct-view constraint (Section IV-B):
// the recommendation list holds at most one binned view per non-binned
// view, so the tracker keeps the best scored candidate *per view* and
// exposes the k-th best of those as the vertical pruning threshold.

#ifndef MUVE_CORE_TOP_K_TRACKER_H_
#define MUVE_CORE_TOP_K_TRACKER_H_

#include <limits>
#include <optional>
#include <set>
#include <vector>

#include "core/candidate.h"

namespace muve::core {

class TopKTracker {
 public:
  TopKTracker(int k, size_t num_views)
      : k_(k), bests_(num_views) {}

  // Records `scored` as view `view_index`'s candidate; keeps the better
  // of old and new.
  void Update(size_t view_index, const ScoredView& scored);

  // Lower bound a candidate must beat to change the final top-k: the k-th
  // largest per-view best utility, or -infinity while fewer than k views
  // have a fully-evaluated best (pruning would be unsound earlier).
  double Threshold() const;

  // Number of views with a best so far.
  size_t num_views_scored() const { return utilities_.size(); }

  // The current top-k per-view bests, utility-descending.
  std::vector<ScoredView> TopK() const;

 private:
  int k_;
  std::vector<std::optional<ScoredView>> bests_;
  std::multiset<double> utilities_;  // per-view best utilities
};

}  // namespace muve::core

#endif  // MUVE_CORE_TOP_K_TRACKER_H_
