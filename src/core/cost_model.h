// Moving-average operation cost estimator (Section IV-A3).
//
// MuVE's incremental evaluation orders the deviation and accuracy probes
// by a cost/benefit priority rule.  The per-operation costs feeding that
// rule are estimated with the paper's moving average
//
//   C_x(V_{i,b}) = beta * C_x(V_{i,b-1})
//                + (1-beta)/(b-2) * sum_{j=1}^{b-2} C_x(V_{i,j})
//
// i.e. the latest observation weighted by beta = 0.825 blended with the
// mean of all earlier ones.  Deviation from the paper: we keep one
// estimator per operation kind for the whole run rather than one per view
// — in this engine an operation's cost depends on the scanned row count,
// not on which (M, F) pair defines the view, so sharing observations
// across views only makes the estimate converge faster.  The ablation
// bench `ablate_probe_order` quantifies the (negligible) effect.

#ifndef MUVE_CORE_COST_MODEL_H_
#define MUVE_CORE_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <string>

namespace muve::core {

// The four operation kinds of Section III-C.
enum class CostKind {
  kTargetQuery = 0,      // C_t
  kComparisonQuery = 1,  // C_c
  kDeviation = 2,        // C_d
  kAccuracy = 3,         // C_a
};

inline constexpr double kDefaultCostBeta = 0.825;

// Per-operation moving-average cost estimator.
class CostModel {
 public:
  explicit CostModel(double beta = kDefaultCostBeta) : beta_(beta) {}

  // Records one observed cost (milliseconds) for `kind`.
  void Observe(CostKind kind, double millis);

  // Current estimate for `kind`; 0 when nothing was observed yet.
  double Estimate(CostKind kind) const;

  // Number of observations recorded for `kind`.
  int64_t ObservationCount(CostKind kind) const;

  double beta() const { return beta_; }

  std::string ToString() const;

 private:
  struct Entry {
    int64_t count = 0;
    double last = 0.0;
    double sum_before_last = 0.0;  // sum of all observations except `last`
  };

  double beta_;
  std::array<Entry, 4> entries_;
};

}  // namespace muve::core

#endif  // MUVE_CORE_COST_MODEL_H_
