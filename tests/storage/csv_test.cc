#include "storage/csv.h"

#include <gtest/gtest.h>

namespace muve::storage {
namespace {

TEST(CsvReadTest, InfersTypes) {
  auto table = ReadCsvString("id,score,name\n1,0.5,ann\n2,1.5,bob\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().field(0).type, ValueType::kInt64);
  EXPECT_EQ(table->schema().field(1).type, ValueType::kDouble);
  EXPECT_EQ(table->schema().field(2).type, ValueType::kString);
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->At(1, 2), Value("bob"));
}

TEST(CsvReadTest, MixedIntAndFloatBecomesDouble) {
  auto table = ReadCsvString("v\n1\n2.5\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().field(0).type, ValueType::kDouble);
}

TEST(CsvReadTest, EmptyFieldsAreNull) {
  auto table = ReadCsvString("a,b\n1,\n,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->At(0, 1).is_null());
  EXPECT_TRUE(table->At(1, 0).is_null());
  EXPECT_EQ(table->At(0, 0), Value(int64_t{1}));
}

TEST(CsvReadTest, QuotedFieldsWithDelimitersAndEscapes) {
  auto table = ReadCsvString(
      "name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\nplain,ok\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->At(0, 0), Value("Smith, John"));
  EXPECT_EQ(table->At(0, 1), Value("said \"hi\""));
}

TEST(CsvReadTest, CrLfLineEndings) {
  auto table = ReadCsvString("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->At(1, 1), Value(int64_t{4}));
}

TEST(CsvReadTest, FieldCountMismatchFails) {
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());
}

TEST(CsvReadTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ReadCsvString("a\n\"oops\n").ok());
}

TEST(CsvReadTest, EmptyInputFails) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvReadTest, ExplicitSchemaEnforcesTypes) {
  CsvOptions options;
  options.schema = Schema({{"id", ValueType::kInt64},
                           {"score", ValueType::kDouble}});
  auto ok = ReadCsvString("id,score\n1,2.5\n", options);
  ASSERT_TRUE(ok.ok());
  // Non-numeric cell in an int column fails.
  auto bad = ReadCsvString("id,score\nx,2.5\n", options);
  EXPECT_FALSE(bad.ok());
  // Header mismatch fails.
  auto wrong = ReadCsvString("idx,score\n1,2.5\n", options);
  EXPECT_FALSE(wrong.ok());
}

TEST(CsvReadTest, SchemaHeaderIsCaseInsensitive) {
  CsvOptions options;
  options.schema = Schema({{"ID", ValueType::kInt64}});
  auto table = ReadCsvString("id\n3\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().field(0).name, "ID");
}

TEST(CsvRoundTripTest, WriteThenReadPreservesData) {
  auto original = ReadCsvString(
      "i,d,s\n1,0.5,\"a,b\"\n2,1.5,\"quote\"\"d\"\n-3,2.0,plain\n");
  ASSERT_TRUE(original.ok());
  const std::string text = WriteCsvString(*original);
  auto reread = ReadCsvString(text);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread->num_rows(), original->num_rows());
  for (size_t r = 0; r < original->num_rows(); ++r) {
    for (size_t c = 0; c < original->num_columns(); ++c) {
      EXPECT_EQ(original->At(r, c), reread->At(r, c)) << r << "," << c;
    }
  }
}

TEST(CsvFileTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path.csv").ok());
}

TEST(CsvFileTest, WriteAndReadBack) {
  auto table = ReadCsvString("a,b\n1,two\n");
  ASSERT_TRUE(table.ok());
  const std::string path = ::testing::TempDir() + "/muve_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*table, path).ok());
  auto reread = ReadCsvFile(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->num_rows(), 1u);
  EXPECT_EQ(reread->At(0, 1), Value("two"));
}

}  // namespace
}  // namespace muve::storage
