#include "storage/fused_scan.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <utility>

#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/simd/simd.h"
#include "common/thread_pool.h"
#include "storage/chunk_run.h"
#include "storage/column.h"

namespace muve::storage {

namespace {

// Dense-key sentinel for NULL dimension cells (the SIMD keyed
// accumulators share the same sentinel).
constexpr uint32_t kNullKey = common::simd::kNullKey32;
static_assert(kNullKey == std::numeric_limits<uint32_t>::max());

// Runs fn(index) for every index in [0, count): inline when no pool (or
// trivially small), data-parallel on the shared pool otherwise.  Every
// task writes disjoint state, so results never depend on the schedule.
void RunIndexed(common::ThreadPool* pool, size_t count,
                const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (pool == nullptr || pool->num_workers() == 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->ParallelFor(count, [&fn](size_t, size_t index) { fn(index); });
}

// Phase A kernel: gather the non-NULL values of one chunk run of `rows`
// into `out` through the chunk's raw typed array (no Value boxing, no
// virtual calls).
template <typename T>
void GatherValuesRun(const ColumnChunk& chunk, const T* data,
                     const RowSet& rows, size_t begin, size_t end,
                     uint32_t mask, std::vector<double>* out) {
  if (chunk.AllValid()) {
    for (size_t p = begin; p < end; ++p) {
      out->push_back(static_cast<double>(data[rows[p] & mask]));
    }
    return;
  }
  const ValidityBitmap& valid = chunk.validity();
  for (size_t p = begin; p < end; ++p) {
    const uint32_t i = rows[p] & mask;
    if (valid.Get(i)) out->push_back(static_cast<double>(data[i]));
  }
}

void GatherValues(const Column& col, const RowSet& rows,
                  std::vector<double>* out) {
  const uint32_t mask = col.chunk_mask();
  ForEachChunkRun(rows, 0, rows.size(), col.chunk_shift(),
                  [&](uint32_t c, size_t begin, size_t end) {
                    const ColumnChunk& chunk = col.chunk(c);
                    if (col.type() == ValueType::kInt64) {
                      GatherValuesRun(chunk, chunk.int64_data(), rows, begin,
                                      end, mask, out);
                    } else {
                      GatherValuesRun(chunk, chunk.double_data(), rows, begin,
                                      end, mask, out);
                    }
                  });
}

// Phase B kernel: dense dictionary key per row position of one chunk run
// within a morsel.
template <typename T>
void FillKeysRun(const ColumnChunk& chunk, const T* data,
                 const std::vector<double>& dict, const RowSet& rows,
                 size_t begin, size_t end, uint32_t mask, uint32_t* keys) {
  const bool all_valid = chunk.AllValid();
  const ValidityBitmap& valid = chunk.validity();
  for (size_t p = begin; p < end; ++p) {
    const uint32_t i = rows[p] & mask;
    if (!all_valid && !valid.Get(i)) {
      keys[p] = kNullKey;
      continue;
    }
    const double v = static_cast<double>(data[i]);
    const auto it = std::lower_bound(dict.begin(), dict.end(), v);
    MUVE_DCHECK(it != dict.end() && *it == v);
    keys[p] = static_cast<uint32_t>(it - dict.begin());
  }
}

void FillKeys(const Column& col, const std::vector<double>& dict,
              const RowSet& rows, size_t begin, size_t end, uint32_t* keys) {
  const uint32_t mask = col.chunk_mask();
  ForEachChunkRun(rows, begin, end, col.chunk_shift(),
                  [&](uint32_t c, size_t rb, size_t re) {
                    const ColumnChunk& chunk = col.chunk(c);
                    if (col.type() == ValueType::kInt64) {
                      FillKeysRun(chunk, chunk.int64_data(), dict, rows, rb,
                                  re, mask, keys);
                    } else {
                      FillKeysRun(chunk, chunk.double_data(), dict, rows, rb,
                                  re, mask, keys);
                    }
                  });
}

}  // namespace

common::Result<std::vector<BaseHistogram>> FusedBuildBaseHistograms(
    const Table& table, const RowSet& rows,
    const std::vector<FusedScanPair>& pairs, common::ThreadPool* pool,
    size_t morsel_size, FusedScanStats* stats, FusedScanScratch* scratch,
    common::ExecContext* ctx) {
  std::vector<BaseHistogram> out(pairs.size());
  if (pairs.empty()) return out;
  if (morsel_size == 0) morsel_size = kDefaultFusedMorselSize;
  // A pass that is out of time before it starts builds nothing.
  if (common::Expired(ctx)) return ctx->ExpiryStatus();

  // Resolve and validate every column up front (nothing builds on error).
  std::vector<std::string_view> dim_names;  // first-appearance order
  std::vector<const Column*> dim_cols;
  std::vector<size_t> pair_dim(pairs.size());
  std::vector<const Column*> mea_cols(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    MUVE_ASSIGN_OR_RETURN(const Column* dim,
                          table.ColumnByName(pairs[i].dimension));
    if (dim->type() == ValueType::kString) {
      return common::Status::TypeMismatch(
          "cannot bin string dimension '" + pairs[i].dimension + "'");
    }
    MUVE_ASSIGN_OR_RETURN(mea_cols[i], table.ColumnByName(pairs[i].measure));
    if (mea_cols[i]->type() == ValueType::kString) {
      // String measures are only aggregatable with COUNT; that
      // combination keeps using the direct scan (BaseHistogram stores
      // measure moments).
      return common::Status::TypeMismatch(
          "cannot build base histogram over string measure '" +
          pairs[i].measure + "'");
    }
    size_t slot = dim_names.size();
    for (size_t d = 0; d < dim_names.size(); ++d) {
      if (dim_names[d] == pairs[i].dimension) {
        slot = d;
        break;
      }
    }
    if (slot == dim_names.size()) {
      dim_names.push_back(pairs[i].dimension);
      dim_cols.push_back(dim);
    }
    pair_dim[i] = slot;
  }

  const size_t num_dims = dim_cols.size();
  const size_t n = rows.size();
  const size_t num_morsels = n == 0 ? 0 : (n + morsel_size - 1) / morsel_size;

  FusedScanScratch local;
  if (scratch == nullptr) scratch = &local;
  if (scratch->dicts.size() < num_dims) scratch->dicts.resize(num_dims);
  if (scratch->keys.size() < num_dims) scratch->keys.resize(num_dims);

  // Every column of a table shares one chunk geometry (Table constructs
  // all columns with the same chunk_rows), so one shift/mask serves the
  // whole pass.
  const uint32_t chunk_shift = dim_cols[0]->chunk_shift();
  const uint32_t chunk_mask = dim_cols[0]->chunk_mask();

  // Phase A: one sorted distinct-value dictionary per dimension, shared
  // by every measure paired with it.
  RunIndexed(pool, num_dims, [&](size_t d) {
    std::vector<double>& dict = scratch->dicts[d];
    dict.clear();
    dict.reserve(n);
    GatherValues(*dim_cols[d], rows, &dict);
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  });

  // Phase B: dense key arrays, morsel x dimension parallel, plus the
  // position-aligned chunk-local row offsets Phase C's kernels consume.
  // A morsel planner note on skipping: the morsel grid partitions the
  // ROW SET, not the table — a chunk with no selected rows (e.g. one the
  // predicate's zone map discarded) contributes no positions, so no
  // morsel, no key fill, and no accumulation ever touches it.
  for (size_t d = 0; d < num_dims; ++d) scratch->keys[d].resize(n);
  scratch->local_rows.resize(n);
  RunIndexed(pool, num_morsels, [&](size_t m) {
    const size_t begin = m * morsel_size;
    const size_t end = std::min(n, begin + morsel_size);
    uint32_t* local = scratch->local_rows.data();
    for (size_t p = begin; p < end; ++p) local[p] = rows[p] & chunk_mask;
  });
  RunIndexed(pool, num_dims * num_morsels, [&](size_t t) {
    const size_t d = t / num_morsels;
    const size_t m = t % num_morsels;
    const size_t begin = m * morsel_size;
    const size_t end = std::min(n, begin + morsel_size);
    FillKeys(*dim_cols[d], scratch->dicts[d], rows, begin, end,
             scratch->keys[d].data());
  });

  // Phase boundary poll: dictionaries and key arrays for a large row set
  // are themselves row-order work, so re-check before committing to the
  // accumulation phase.
  if (common::Expired(ctx)) return ctx->ExpiryStatus();

  // Arena layout: one slab per morsel; within a slab, pair i owns
  // [pair_offset[i], pair_offset[i] + dict_size(i)).
  std::vector<size_t> pair_offset(pairs.size());
  size_t slab = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    pair_offset[i] = slab;
    slab += scratch->dicts[pair_dim[i]].size();
  }
  scratch->counts.assign(slab * num_morsels, 0);
  scratch->sums.assign(slab * num_morsels, 0.0);
  scratch->sum_sqs.assign(slab * num_morsels, 0.0);

  // Mid-pass abort plumbing: once any morsel observes an expired context
  // (or an injected fault), every not-yet-started morsel returns
  // immediately.  In-flight morsels finish — they only write their own
  // partial slab, which the abort below discards wholesale.
  std::atomic<bool> aborted{false};
  std::atomic<bool> fault_injected{false};

  // Phase C: morsel-parallel accumulation into per-morsel partials.
  // The keyed scatter-adds run through the SIMD kernel table; `keys` is
  // indexed by row POSITION, measure data by row id, and per fine bin
  // the additions happen in row order within the morsel — the
  // association the exactness contract relies on (the kernels are
  // bit-identical across dispatch levels here).
  const common::simd::KernelTable& kernels = common::simd::ActiveKernels();
  RunIndexed(pool, num_morsels, [&](size_t m) {
    if (aborted.load(std::memory_order_relaxed)) return;
    switch (MUVE_FAILPOINT("fused_scan.morsel")) {
      case common::FailpointAction::kError:
      case common::FailpointAction::kOom:
        fault_injected.store(true, std::memory_order_relaxed);
        aborted.store(true, std::memory_order_relaxed);
        return;
      default:
        break;  // kDelay already slept inside the failpoint lookup
    }
    if (common::Expired(ctx)) {
      aborted.store(true, std::memory_order_relaxed);
      return;
    }
    const size_t begin = m * morsel_size;
    const size_t end = std::min(n, begin + morsel_size);
    int64_t* counts = scratch->counts.data() + m * slab;
    double* sums = scratch->sums.data() + m * slab;
    double* sum_sqs = scratch->sum_sqs.data() + m * slab;
    // One chunk-run decomposition per morsel, shared by every pair: the
    // kernels receive the chunk-local row array plus the run's chunk
    // data/validity pointers — same positions, same per-key row order,
    // same accumulation association as the flat layout, so the output
    // bits do not depend on the chunking.
    const uint32_t* local = scratch->local_rows.data();
    ForEachChunkRun(rows, begin, end, chunk_shift, [&](uint32_t c,
                                                      size_t rb, size_t re) {
      for (size_t i = 0; i < pairs.size(); ++i) {
        const uint32_t* keys = scratch->keys[pair_dim[i]].data();
        const ColumnChunk& mea = mea_cols[i]->chunk(c);
        const size_t off = pair_offset[i];
        const uint64_t* validity_words =
            mea.AllValid() ? nullptr : mea.validity().words();
        if (mea.type() == ValueType::kInt64) {
          kernels.accumulate_count_sum_sq_i64(
              local, rb, re, keys, validity_words, mea.int64_data(),
              counts + off, sums + off, sum_sqs + off);
        } else {
          kernels.accumulate_count_sum_sq_f64(
              local, rb, re, keys, validity_words, mea.double_data(),
              counts + off, sums + off, sum_sqs + off);
        }
      }
    });
  });

  // An aborted pass returns NOTHING: some morsels never ran, so the
  // merged histograms would silently under-count.  The caller degrades
  // (direct per-pair builds for whatever probes still run).
  if (aborted.load(std::memory_order_relaxed)) {
    if (fault_injected.load(std::memory_order_relaxed)) {
      return common::Status::IoError(
          "fused scan aborted by failpoint fused_scan.morsel");
    }
    return ctx->ExpiryStatus();
  }

  // Phase D: serial merge in ascending morsel order (fixed association —
  // identical output for any worker count), then compact fine bins with
  // zero rows (dimension values whose every row is NULL on this measure),
  // which restores the exact per-(A, M) fine-bin set of the per-pair
  // builder.
  for (size_t i = 0; i < pairs.size(); ++i) {
    const std::vector<double>& dict = scratch->dicts[pair_dim[i]];
    const size_t off = pair_offset[i];
    BaseHistogram& base = out[i];
    base.source_rows = static_cast<int64_t>(n);
    base.prefix_counts.push_back(0);
    base.prefix_sums.push_back(0.0);
    base.prefix_sum_sqs.push_back(0.0);
    for (size_t j = 0; j < dict.size(); ++j) {
      int64_t count = 0;
      double sum = 0.0;
      double sum_sq = 0.0;
      for (size_t m = 0; m < num_morsels; ++m) {
        const size_t idx = m * slab + off + j;
        count += scratch->counts[idx];
        sum += scratch->sums[idx];
        sum_sq += scratch->sum_sqs[idx];
      }
      if (count == 0) continue;
      base.values.push_back(dict[j]);
      base.sums.push_back(sum);
      base.sum_sqs.push_back(sum_sq);
      base.prefix_counts.push_back(base.prefix_counts.back() + count);
      base.prefix_sums.push_back(base.prefix_sums.back() + sum);
      base.prefix_sum_sqs.push_back(base.prefix_sum_sqs.back() + sum_sq);
    }
  }

  if (stats != nullptr) {
    stats->morsels += static_cast<int64_t>(num_morsels);
    stats->dimensions += static_cast<int64_t>(num_dims);
  }
  return out;
}

}  // namespace muve::storage
