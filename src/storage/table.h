// In-memory columnar table.
//
// Tables are append-only collections of typed columns.  Query operators
// (filter, group-by, binned aggregation) work over a `RowSet` — a list of
// selected row indexes — so subsets like the paper's D_Q (the query result
// being visually analyzed) never copy the data.

#ifndef MUVE_STORAGE_TABLE_H_
#define MUVE_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace muve::storage {

// Indexes of selected rows, sorted ascending by construction.
using RowSet = std::vector<uint32_t>;

// Returns {0, 1, ..., n-1}.
RowSet AllRows(size_t n);

class Table {
 public:
  // `chunk_rows` (power of two) sets the capacity of every column chunk;
  // tests use tiny chunks to exercise boundaries, production tables keep
  // the default (storage/chunk.h).
  explicit Table(Schema schema, size_t chunk_rows = kDefaultChunkRows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return *columns_[i]; }
  // Column lookup by (case-insensitive) name; NotFound on miss.
  common::Result<const Column*> ColumnByName(std::string_view name) const;

  // Appends one row; `values` must match the schema arity and types
  // (numeric coercion per Column::AppendValue applies).
  common::Status AppendRow(const std::vector<Value>& values);

  // Cell access via Value (allocates for strings).
  Value At(size_t row, size_t col) const { return columns_[col]->ValueAt(row); }

  void Reserve(size_t n);

  // Copy sharing every sealed chunk with the original: O(chunks), not
  // O(rows).  The open tail chunk copy-on-writes on the first append to
  // either side, so growing the clone never mutates data visible through
  // the original (the mechanism behind the catalog's O(new rows) append).
  Table Clone() const;

  // Rows per column chunk (uniform across columns).
  size_t chunk_rows() const { return chunk_rows_; }

  // Approximate resident bytes of all column data (stats observability).
  size_t ApproxBytes() const;

  // First `max_rows` rows rendered as an aligned text table (debugging).
  std::string ToString(size_t max_rows = 10) const;

 private:
  Schema schema_;
  size_t chunk_rows_;
  std::vector<std::unique_ptr<Column>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace muve::storage

#endif  // MUVE_STORAGE_TABLE_H_
