// Differential oracle for the selection-vector predicate kernels: for
// ANY predicate tree, FilterInto (typed tight loops over raw column
// arrays, AND = cascade, OR = sorted union, NOT = sorted difference)
// must return exactly the rows the per-row virtual Matches path accepts,
// in ascending order.  Covers every CompareOp, BETWEEN, IN (with NaN
// probes), IS [NOT] NULL, AND/OR/NOT nesting, TRUE, restricted candidate
// bases, and mixed-type comparisons that fall back to the Matches loop.
//
// Seeding: per-case seeds derive from MUVE_FUZZ_SEED (fixed default) via
// tests/fuzz_util.h; every failure prints the seeds to reproduce it.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "fuzz_util.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace muve::storage {
namespace {

// Ground truth: per-row Matches over the candidate set.
RowSet MatchesOracle(const Table& table, const Predicate& pred,
                     const RowSet& candidates) {
  RowSet out;
  for (const size_t row : candidates) {
    if (pred.Matches(table, row)) out.push_back(row);
  }
  return out;
}

void ExpectEquivalent(const Table& table, Predicate* pred,
                      const RowSet* base = nullptr) {
  ASSERT_TRUE(pred->Bind(table.schema()).ok()) << pred->ToString();
  RowSet candidates;
  if (base != nullptr) {
    candidates = *base;
  } else {
    candidates = AllRows(table.num_rows());
  }
  const RowSet expected = MatchesOracle(table, *pred, candidates);
  RowSet actual;
  pred->FilterInto(table, candidates, &actual);
  EXPECT_EQ(actual, expected) << pred->ToString();

  // The Filter() entry point must agree and report exact stats.
  FilterStats stats;
  auto filtered = Filter(table, pred, base, &stats);
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_EQ(*filtered, expected) << pred->ToString();
  EXPECT_EQ(stats.rows_in, static_cast<int64_t>(candidates.size()));
  EXPECT_EQ(stats.rows_out, static_cast<int64_t>(expected.size()));
}

// ---------------------------------------------------------------------------
// Directed coverage: every operator over a small table with NULLs in
// every column and all three column types.

class SelectionVectorTest : public ::testing::Test {
 protected:
  SelectionVectorTest()
      : table_(Schema({{"i", ValueType::kInt64},
                       {"d", ValueType::kDouble},
                       {"s", ValueType::kString}})) {
    Append(Value(static_cast<int64_t>(1)), Value(0.5), Value("a"));
    Append(Value(static_cast<int64_t>(2)), Value(1.5), Value("b"));
    Append(Value::Null(), Value(2.5), Value("a"));
    Append(Value(static_cast<int64_t>(4)), Value::Null(), Value("c"));
    Append(Value(static_cast<int64_t>(5)), Value(4.5), Value::Null());
    Append(Value(static_cast<int64_t>(2)), Value(-1.0), Value("b"));
    Append(Value(static_cast<int64_t>(7)), Value(0.0), Value(""));
  }

  void Append(Value i, Value d, Value s) {
    ASSERT_TRUE(table_.AppendRow({i, d, s}).ok());
  }

  Table table_;
};

TEST_F(SelectionVectorTest, EveryCompareOpIntColumn) {
  for (const CompareOp op :
       {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt, CompareOp::kLe,
        CompareOp::kGt, CompareOp::kGe}) {
    auto pred = MakeComparison("i", op, Value(static_cast<int64_t>(2)));
    ExpectEquivalent(table_, pred.get());
  }
}

TEST_F(SelectionVectorTest, EveryCompareOpDoubleColumn) {
  for (const CompareOp op :
       {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt, CompareOp::kLe,
        CompareOp::kGt, CompareOp::kGe}) {
    auto pred = MakeComparison("d", op, Value(0.5));
    ExpectEquivalent(table_, pred.get());
  }
}

TEST_F(SelectionVectorTest, EveryCompareOpStringColumn) {
  for (const CompareOp op :
       {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt, CompareOp::kLe,
        CompareOp::kGt, CompareOp::kGe}) {
    auto pred = MakeComparison("s", op, Value("b"));
    ExpectEquivalent(table_, pred.get());
  }
}

TEST_F(SelectionVectorTest, IntColumnDoubleLiteralCoercion) {
  // 1.5 sits between int cells: every op must coerce through double
  // exactly as Value's comparison does.
  for (const CompareOp op :
       {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt, CompareOp::kLe,
        CompareOp::kGt, CompareOp::kGe}) {
    auto pred = MakeComparison("i", op, Value(1.5));
    ExpectEquivalent(table_, pred.get());
  }
}

TEST_F(SelectionVectorTest, MixedTypeComparisonFallsBackToMatches) {
  // String column vs numeric literal (and vice versa): rank-based
  // comparison handled by the Matches fallback — must stay equivalent.
  auto p1 = MakeComparison("s", CompareOp::kGt, Value(3.0));
  ExpectEquivalent(table_, p1.get());
  auto p2 = MakeComparison("i", CompareOp::kLt, Value("b"));
  ExpectEquivalent(table_, p2.get());
}

TEST_F(SelectionVectorTest, NullLiteralNeverMatches) {
  for (const CompareOp op : {CompareOp::kEq, CompareOp::kNe}) {
    auto pred = MakeComparison("i", op, Value::Null());
    ExpectEquivalent(table_, pred.get());
  }
}

TEST_F(SelectionVectorTest, Between) {
  auto p1 = MakeBetween("i", Value(static_cast<int64_t>(2)),
                        Value(static_cast<int64_t>(5)));
  ExpectEquivalent(table_, p1.get());
  auto p2 = MakeBetween("d", Value(0.0), Value(2.0));
  ExpectEquivalent(table_, p2.get());
  auto p3 = MakeBetween("s", Value("a"), Value("b"));
  ExpectEquivalent(table_, p3.get());
  // Empty range.
  auto p4 = MakeBetween("i", Value(static_cast<int64_t>(5)),
                        Value(static_cast<int64_t>(2)));
  ExpectEquivalent(table_, p4.get());
}

TEST_F(SelectionVectorTest, InList) {
  auto p1 = MakeInList("i", {Value(static_cast<int64_t>(2)),
                             Value(static_cast<int64_t>(7))});
  ExpectEquivalent(table_, p1.get());
  auto p2 = MakeInList("s", {Value("a"), Value("")});
  ExpectEquivalent(table_, p2.get());
  // Mixed numeric literal types.
  auto p3 = MakeInList("d", {Value(static_cast<int64_t>(0)), Value(4.5)});
  ExpectEquivalent(table_, p3.get());
  // Empty list matches nothing.
  auto p4 = MakeInList("i", {});
  ExpectEquivalent(table_, p4.get());
}

TEST_F(SelectionVectorTest, InListWithNaNLiteralNeverMatches) {
  // Value(NaN) != anything under IEEE semantics; a binary-search kernel
  // would wrongly return true for a NaN probe, so this pins the linear
  // probe's behavior against the Matches oracle.
  auto pred = MakeInList(
      "d", {Value(std::numeric_limits<double>::quiet_NaN()), Value(0.5)});
  ExpectEquivalent(table_, pred.get());
}

TEST_F(SelectionVectorTest, IsNullAndIsNotNull) {
  for (const char* col : {"i", "d", "s"}) {
    auto p1 = MakeIsNull(col);
    ExpectEquivalent(table_, p1.get());
    auto p2 = MakeIsNull(col, /*negate=*/true);
    ExpectEquivalent(table_, p2.get());
  }
}

TEST_F(SelectionVectorTest, LogicalComposition) {
  auto p1 = MakeAnd(
      MakeComparison("i", CompareOp::kGe, Value(static_cast<int64_t>(2))),
      MakeComparison("d", CompareOp::kLt, Value(2.0)));
  ExpectEquivalent(table_, p1.get());
  auto p2 = MakeOr(MakeComparison("s", CompareOp::kEq, Value("a")),
                   MakeComparison("i", CompareOp::kGt,
                                  Value(static_cast<int64_t>(4))));
  ExpectEquivalent(table_, p2.get());
  auto p3 = MakeNot(MakeComparison("s", CompareOp::kEq, Value("b")));
  ExpectEquivalent(table_, p3.get());
  auto p4 = MakeNot(MakeIsNull("d"));
  ExpectEquivalent(table_, p4.get());
  auto p5 = MakeTrue();
  ExpectEquivalent(table_, p5.get());
}

TEST_F(SelectionVectorTest, RestrictedCandidateBase) {
  const RowSet base = {0, 2, 3, 6};
  auto pred = MakeComparison("i", CompareOp::kGe,
                             Value(static_cast<int64_t>(2)));
  ExpectEquivalent(table_, pred.get(), &base);
  auto pred2 = MakeOr(MakeIsNull("i"),
                      MakeComparison("s", CompareOp::kEq, Value("")));
  ExpectEquivalent(table_, pred2.get(), &base);
}

TEST_F(SelectionVectorTest, EmptyTable) {
  Table empty(Schema({{"x", ValueType::kInt64}}));
  auto pred = MakeComparison("x", CompareOp::kEq,
                             Value(static_cast<int64_t>(1)));
  ExpectEquivalent(empty, pred.get());
}

// ---------------------------------------------------------------------------
// Fuzzed coverage: random tables and random predicate trees.

struct FuzzTable {
  std::shared_ptr<Table> table;
};

FuzzTable RandomTable(common::Rng& rng) {
  Schema schema({{"i", ValueType::kInt64},
                 {"d", ValueType::kDouble},
                 {"s", ValueType::kString}});
  auto table = std::make_shared<Table>(schema);
  const size_t rows = static_cast<size_t>(rng.UniformInt(0, 200));
  const char* strings[] = {"a", "b", "c", "dd", ""};
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value(rng.UniformInt(-10, 10)));
    row.push_back(rng.Bernoulli(0.1) ? Value::Null()
                                     : Value(rng.Uniform(-5.0, 5.0)));
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value(strings[rng.UniformInt(0, 4)]));
    MUVE_CHECK(table->AppendRow(row).ok());
  }
  return {table};
}

Value RandomLiteral(common::Rng& rng) {
  switch (rng.UniformInt(0, 3)) {
    case 0:
      return Value(rng.UniformInt(-10, 10));
    case 1:
      return Value(rng.Uniform(-5.0, 5.0));
    case 2: {
      const char* strings[] = {"a", "b", "c", "dd", ""};
      return Value(strings[rng.UniformInt(0, 4)]);
    }
    default:
      return Value::Null();
  }
}

std::string RandomColumn(common::Rng& rng) {
  const char* cols[] = {"i", "d", "s"};
  return cols[rng.UniformInt(0, 2)];
}

PredicatePtr RandomPredicate(common::Rng& rng, int depth) {
  const int64_t choice = rng.UniformInt(0, depth > 0 ? 6 : 3);
  switch (choice) {
    case 0: {
      const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe,
                               CompareOp::kLt, CompareOp::kLe,
                               CompareOp::kGt, CompareOp::kGe};
      return MakeComparison(RandomColumn(rng), ops[rng.UniformInt(0, 5)],
                            RandomLiteral(rng));
    }
    case 1:
      return MakeBetween(RandomColumn(rng), RandomLiteral(rng),
                         RandomLiteral(rng));
    case 2: {
      std::vector<Value> values;
      const int64_t n = rng.UniformInt(0, 4);
      for (int64_t i = 0; i < n; ++i) values.push_back(RandomLiteral(rng));
      return MakeInList(RandomColumn(rng), std::move(values));
    }
    case 3:
      return MakeIsNull(RandomColumn(rng), rng.Bernoulli(0.5));
    case 4:
      return MakeAnd(RandomPredicate(rng, depth - 1),
                     RandomPredicate(rng, depth - 1));
    case 5:
      return MakeOr(RandomPredicate(rng, depth - 1),
                    RandomPredicate(rng, depth - 1));
    default:
      return MakeNot(RandomPredicate(rng, depth - 1));
  }
}

TEST(SelectionVectorFuzzTest, RandomTreesMatchOracle) {
  for (uint64_t c = 0; c < 150; ++c) {
    const uint64_t seed = testutil::FuzzSeed(c);
    SCOPED_TRACE(testutil::FuzzTrace(c, seed));
    common::Rng rng(seed);
    FuzzTable fuzz = RandomTable(rng);
    auto pred = RandomPredicate(rng, 3);
    ExpectEquivalent(*fuzz.table, pred.get());

    // Also over a random subset of candidate rows.
    if (fuzz.table->num_rows() > 0) {
      RowSet base;
      for (size_t r = 0; r < fuzz.table->num_rows(); ++r) {
        if (rng.Bernoulli(0.5)) base.push_back(r);
      }
      auto pred2 = RandomPredicate(rng, 3);
      ExpectEquivalent(*fuzz.table, pred2.get(), &base);
    }
  }
}

}  // namespace
}  // namespace muve::storage
