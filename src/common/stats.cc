#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace muve::common {

void WelfordAccumulator::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double WelfordAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double WelfordAccumulator::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  WelfordAccumulator acc;
  for (double v : values) acc.Add(v);
  return acc.stddev();
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace muve::common
