#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace muve::common {
namespace {

struct FailpointSpec {
  FailpointAction action = FailpointAction::kOff;
  int delay_ms = 0;  // only for kDelay
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, FailpointSpec> sites;
  bool env_loaded = false;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: no exit-order issues
  return *registry;
}

// Parses a single spec ("error", "delay(5ms)", ...).  Returns false on a
// malformed spec.
bool ParseSpec(const std::string& spec, FailpointSpec* out) {
  if (spec == "off") {
    out->action = FailpointAction::kOff;
    return true;
  }
  if (spec == "error") {
    out->action = FailpointAction::kError;
    return true;
  }
  if (spec == "oom") {
    out->action = FailpointAction::kOom;
    return true;
  }
  if (spec == "throw") {
    out->action = FailpointAction::kThrow;
    return true;
  }
  // delay(<N>ms)
  const std::string prefix = "delay(";
  if (spec.size() > prefix.size() + 3 && spec.compare(0, prefix.size(), prefix) == 0 &&
      spec.compare(spec.size() - 3, 3, "ms)") == 0) {
    const std::string digits =
        spec.substr(prefix.size(), spec.size() - prefix.size() - 3);
    if (digits.empty()) return false;
    int value = 0;
    for (char c : digits) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + (c - '0');
      if (value > 60'000) return false;  // cap injected sleeps at 1 min
    }
    out->action = FailpointAction::kDelay;
    out->delay_ms = value;
    return true;
  }
  return false;
}

// Must hold registry.mu.
Status ConfigureLocked(Registry& registry, const std::string& config) {
  size_t pos = 0;
  while (pos <= config.size()) {
    size_t end = config.find(';', pos);
    if (end == std::string::npos) end = config.size();
    const std::string entry = config.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed failpoint entry: '" + entry +
                                     "' (want site=spec)");
    }
    const std::string site = entry.substr(0, eq);
    const std::string spec = entry.substr(eq + 1);
    FailpointSpec parsed;
    if (!ParseSpec(spec, &parsed)) {
      return Status::InvalidArgument("malformed failpoint spec for '" + site +
                                     "': '" + spec + "'");
    }
    if (parsed.action == FailpointAction::kOff) {
      registry.sites.erase(site);
    } else {
      registry.sites[site] = parsed;
    }
  }
  return Status::OK();
}

// Must hold registry.mu.  Loads MUVE_FAILPOINTS from the environment on
// the first registry access; a malformed env var is ignored (the process
// must not die because of a typo in a debugging knob).
void MaybeLoadEnvLocked(Registry& registry) {
  if (registry.env_loaded) return;
  registry.env_loaded = true;
  const char* env = std::getenv("MUVE_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    (void)ConfigureLocked(registry, env);
  }
}

}  // namespace

bool FailpointsCompiledIn() {
#ifdef MUVE_FAILPOINTS
  return true;
#else
  return false;
#endif
}

FailpointAction FailpointHit(const char* site) {
  Registry& registry = GetRegistry();
  FailpointSpec spec;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    MaybeLoadEnvLocked(registry);
    auto it = registry.sites.find(site);
    if (it == registry.sites.end()) return FailpointAction::kOff;
    spec = it->second;
  }
  if (spec.action == FailpointAction::kDelay && spec.delay_ms > 0) {
    // Sleep outside the lock so concurrent sites don't serialize.
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
  }
  return spec.action;
}

Status SetFailpoint(const std::string& site, const std::string& spec) {
  if (site.empty()) return Status::InvalidArgument("empty failpoint site");
  FailpointSpec parsed;
  if (!ParseSpec(spec, &parsed)) {
    return Status::InvalidArgument("malformed failpoint spec for '" + site +
                                   "': '" + spec + "'");
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  MaybeLoadEnvLocked(registry);
  if (parsed.action == FailpointAction::kOff) {
    registry.sites.erase(site);
  } else {
    registry.sites[site] = parsed;
  }
  return Status::OK();
}

Status ConfigureFailpointsFromString(const std::string& config) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  MaybeLoadEnvLocked(registry);
  return ConfigureLocked(registry, config);
}

void ClearFailpoints() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  MaybeLoadEnvLocked(registry);
  registry.sites.clear();
}

}  // namespace muve::common
