// DDL / DML statements: CREATE TABLE (with recommendation roles),
// INSERT INTO ... VALUES, and LOAD CSV.

#include <gtest/gtest.h>

#include <fstream>

#include "core/recommend_sql.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace muve::sql {
namespace {

common::Result<StatementResult> RunSql(const std::string& sql,
                                    Catalog& catalog) {
  auto parsed = Parse(sql);
  if (!parsed.ok()) return parsed.status();
  return ExecuteStatement(*parsed, catalog);
}

StatementResult MustRun(const std::string& sql, Catalog& catalog) {
  auto result = RunSql(sql, catalog);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  return result.ok() ? std::move(result).value() : StatementResult{};
}

TEST(CreateTableTest, RegistersSchemaWithRoles) {
  Catalog catalog;
  MustRun(
      "CREATE TABLE sales (day INT DIMENSION, region TEXT CATEGORICAL, "
      "revenue DOUBLE MEASURE, note TEXT)",
      catalog);
  auto table = catalog.GetTable("sales");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 0u);
  const storage::Schema& schema = (*table)->schema();
  EXPECT_EQ(schema.field(0).type, storage::ValueType::kInt64);
  EXPECT_EQ(schema.field(0).role, storage::FieldRole::kDimension);
  EXPECT_EQ(schema.field(1).role,
            storage::FieldRole::kCategoricalDimension);
  EXPECT_EQ(schema.field(2).type, storage::ValueType::kDouble);
  EXPECT_EQ(schema.field(2).role, storage::FieldRole::kMeasure);
  EXPECT_EQ(schema.field(3).role, storage::FieldRole::kNone);
}

TEST(CreateTableTest, TypeAliases) {
  Catalog catalog;
  MustRun(
      "CREATE TABLE t (a INTEGER, b BIGINT, c FLOAT, d REAL, e STRING, "
      "f VARCHAR)",
      catalog);
  auto table = catalog.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->schema().field(1).type, storage::ValueType::kInt64);
  EXPECT_EQ((*table)->schema().field(3).type, storage::ValueType::kDouble);
  EXPECT_EQ((*table)->schema().field(5).type, storage::ValueType::kString);
}

TEST(CreateTableTest, Errors) {
  Catalog catalog;
  EXPECT_FALSE(RunSql("CREATE TABLE t (a BLOB)", catalog).ok());
  EXPECT_FALSE(RunSql("CREATE TABLE t (a INT UNKNOWNROLE)", catalog).ok());
  EXPECT_FALSE(RunSql("CREATE TABLE t ()", catalog).ok());
  EXPECT_FALSE(RunSql("CREATE TABLE t (a INT, a INT)", catalog).ok());
  MustRun("CREATE TABLE t (a INT)", catalog);
  EXPECT_FALSE(RunSql("CREATE TABLE t (b INT)", catalog).ok());  // duplicate
}

TEST(InsertTest, AppendsRows) {
  Catalog catalog;
  MustRun("CREATE TABLE t (a INT, b DOUBLE, c TEXT)", catalog);
  MustRun("INSERT INTO t VALUES (1, 2.5, 'x'), (-3, -0.5, 'y'), "
          "(4, 7, NULL)",
          catalog);
  auto table = catalog.GetTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ((*table)->num_rows(), 3u);
  EXPECT_EQ((*table)->At(1, 0), storage::Value(int64_t{-3}));
  EXPECT_EQ((*table)->At(1, 1), storage::Value(-0.5));
  EXPECT_EQ((*table)->At(2, 1), storage::Value(7.0));  // int coerces
  EXPECT_TRUE((*table)->At(2, 2).is_null());
}

TEST(InsertTest, AtomicOnBadRow) {
  Catalog catalog;
  MustRun("CREATE TABLE t (a INT)", catalog);
  // Second row has wrong arity: nothing lands.
  EXPECT_FALSE(RunSql("INSERT INTO t VALUES (1), (2, 3)", catalog).ok());
  EXPECT_EQ((*catalog.GetTable("t"))->num_rows(), 0u);
  // Type error in second row: nothing lands either.
  EXPECT_FALSE(RunSql("INSERT INTO t VALUES (1), ('oops')", catalog).ok());
  EXPECT_EQ((*catalog.GetTable("t"))->num_rows(), 0u);
}

TEST(InsertTest, UnknownTableFails) {
  Catalog catalog;
  EXPECT_FALSE(RunSql("INSERT INTO missing VALUES (1)", catalog).ok());
}

TEST(LoadCsvTest, AppendsCsvRows) {
  Catalog catalog;
  MustRun("CREATE TABLE t (a INT, b TEXT)", catalog);
  const std::string path = ::testing::TempDir() + "/muve_ddl_load.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,x\n2,y\n";
  }
  const StatementResult result =
      MustRun("LOAD CSV '" + path + "' INTO t", catalog);
  EXPECT_NE(result.message.find("2 rows"), std::string::npos);
  EXPECT_EQ((*catalog.GetTable("t"))->num_rows(), 2u);
  // Loading again appends.
  MustRun("LOAD CSV '" + path + "' INTO t", catalog);
  EXPECT_EQ((*catalog.GetTable("t"))->num_rows(), 4u);
}

TEST(LoadCsvTest, HeaderMismatchFails) {
  Catalog catalog;
  MustRun("CREATE TABLE t (a INT, b TEXT)", catalog);
  const std::string path = ::testing::TempDir() + "/muve_ddl_bad.csv";
  {
    std::ofstream out(path);
    out << "x,y\n1,2\n";
  }
  EXPECT_FALSE(RunSql("LOAD CSV '" + path + "' INTO t", catalog).ok());
  EXPECT_FALSE(RunSql("LOAD CSV '/no/such/file.csv' INTO t", catalog).ok());
}

TEST(DdlEndToEndTest, CreateInsertRecommend) {
  Catalog catalog;
  MustRun(
      "CREATE TABLE sales (day INT DIMENSION, region TEXT, "
      "revenue DOUBLE MEASURE)",
      catalog);
  std::string insert = "INSERT INTO sales VALUES ";
  for (int i = 0; i < 30; ++i) {
    if (i > 0) insert += ", ";
    const bool south = i % 2 == 0;
    insert += "(" + std::to_string(i % 15) + ", '" +
              (south ? "south" : "north") + "', " +
              std::to_string(south ? 10 + i : 20) + ")";
  }
  MustRun(insert, catalog);
  auto rec = core::RecommendSql(
      "RECOMMEND TOP 2 VIEWS FROM sales WHERE region = 'south' USING MUVE",
      catalog);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->views.size(), 2u);
}

TEST(DdlEndToEndTest, ExecuteStatementRejectsRecommend) {
  Catalog catalog;
  auto parsed = Parse("RECOMMEND VIEWS FROM t WHERE a = 1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(ExecuteStatement(*parsed, catalog).ok());
}

TEST(NegativeLiteralTest, WorksInWhereToo) {
  Catalog catalog;
  MustRun("CREATE TABLE t (a INT)", catalog);
  MustRun("INSERT INTO t VALUES (-5), (0), (5)", catalog);
  auto result = MustRun("SELECT a FROM t WHERE a <= -5", catalog);
  ASSERT_TRUE(result.table.has_value());
  ASSERT_EQ(result.table->num_rows(), 1u);
  EXPECT_EQ(result.table->At(0, 0), storage::Value(int64_t{-5}));
}

}  // namespace
}  // namespace muve::sql
