// Execution control for bounded, cancellable, anytime searches.
//
// A search that serves interactive traffic must return in bounded time with
// whatever it has found so far, not run to completion or die.  ExecContext
// is the contract object for that: it carries an optional monotonic
// wall-clock deadline, an optional shared CancellationToken, and an optional
// row-scan budget.  The search stack polls `Expired()` at natural work
// boundaries (per view, per bin count, per vertical round, per fused-scan
// morsel, per base-histogram build) and, when it fires, stops starting new
// work and returns the partial result built so far together with a
// completeness report (core/exec_stats.h).
//
// Expiry is *sticky* and records its first cause: once any bound trips, the
// context stays expired with that StatusCode (kDeadlineExceeded, kCancelled
// or kResourceExhausted) even if, say, the clock answer would flap or more
// budget is notionally available.  This makes concurrent polls race-free and
// the degradation decision deterministic per run.
//
// Thread safety: configure (Set*) before sharing the context with workers;
// after that, Expired() / ChargeRows() / expiry_code() are safe to call
// concurrently from any thread.  An unbounded context (the default) answers
// Expired() with a single relaxed load and never takes a lock or reads the
// clock, so threading a context through hot loops costs nothing when no
// bound is set.

#ifndef MUVE_COMMON_EXEC_CONTEXT_H_
#define MUVE_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace muve::common {

// A shared cancel flag: the owner (e.g. a frontend handling a user's
// "stop") calls Cancel(); every search holding the token observes it at
// the next boundary poll.  Copyable via shared_ptr; cheap to test.
class CancellationToken {
 public:
  CancellationToken() : cancelled_(false) {}

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_;
};

class ExecContext {
 public:
  // Default: unbounded.  Expired() is always false, ChargeRows() only
  // counts.
  ExecContext() = default;

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  // --- Configuration (call before sharing across threads) ---

  // Sets a wall-clock deadline `millis` from now (steady clock).  millis
  // <= 0 means the deadline has already passed: the very first Expired()
  // poll fires.  Calling again replaces the previous deadline.
  void SetDeadlineAfterMillis(double millis);

  // Attaches a cancellation token; polls observe token->cancelled().
  void SetCancellationToken(std::shared_ptr<CancellationToken> token);

  // Caps the total rows charged via ChargeRows() across all threads.
  // `max_rows` <= 0 clears the budget (unbounded).  The cap is best-effort
  // under concurrency: workers poll at boundaries, so a run may scan a few
  // morsels past the cap before every worker observes expiry.
  void SetRowBudget(int64_t max_rows);

  // --- Runtime (thread-safe) ---

  // Adds `rows` to the shared scanned-row counter.  Cheap (one relaxed
  // fetch_add); does not itself check the budget — Expired() does.
  void ChargeRows(int64_t rows) {
    if (rows > 0) rows_charged_.fetch_add(rows, std::memory_order_relaxed);
  }

  int64_t rows_charged() const {
    return rows_charged_.load(std::memory_order_relaxed);
  }

  // True once any bound has tripped.  First call that observes a tripped
  // bound latches the cause; later calls return true without re-checking.
  // On an unbounded context this is a single relaxed load.
  bool Expired() const;

  // kOk while not expired; else the first cause (kDeadlineExceeded,
  // kCancelled, kResourceExhausted).
  StatusCode expiry_code() const {
    return static_cast<StatusCode>(
        expired_code_.load(std::memory_order_acquire));
  }

  // OK while not expired; else an error Status describing the first cause.
  Status ExpiryStatus() const;

  bool bounded() const { return bounded_.load(std::memory_order_relaxed); }

 private:
  // Tries to latch `code` as the expiry cause; first writer wins.
  bool Latch(StatusCode code) const;

  std::atomic<bool> bounded_{false};

  // StatusCode::kOk (0) while alive; else the first tripped cause.
  mutable std::atomic<int> expired_code_{0};

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};

  std::shared_ptr<CancellationToken> token_;

  int64_t row_budget_ = 0;  // 0 = unbounded
  std::atomic<int64_t> rows_charged_{0};
};

// Null-tolerant poll helper: strategies hold `ExecContext*` that is
// nullptr on unbounded runs.
inline bool Expired(const ExecContext* ctx) {
  return ctx != nullptr && ctx->Expired();
}

}  // namespace muve::common

#endif  // MUVE_COMMON_EXEC_CONTEXT_H_
