// Golden-file regression test for tools/muve_cli on the library-owned toy
// dataset (src/data/toy): the CLI's end-to-end output — dataset summary,
// top-k lines, and the ExecStats counters — is pinned byte-for-byte
// against checked-in golden files.  Wall-clock tokens (cost= / Ct= /
// Cc= / Cd= / Ca= / setup=) and the host-dependent SIMD dispatch token
// (simd=) are scrubbed to `*` before comparison; everything else
// (utilities, objective values, query/row/base-histogram counters) is
// deterministic on the toy workload and must not drift silently.
//
// Refreshing after an intentional output change:
//
//   MUVE_UPDATE_GOLDEN=1 ./cli_golden_test
//
// rewrites tests/golden/*.golden in the source tree; re-run without the
// variable and commit the diff alongside the change that caused it.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef MUVE_CLI_BINARY
#error "MUVE_CLI_BINARY must be defined by the build"
#endif
#ifndef MUVE_GOLDEN_DIR
#error "MUVE_GOLDEN_DIR must be defined by the build"
#endif

namespace muve {
namespace {

// Runs `command` and captures its combined stdout+stderr.
std::string RunCommand(const std::string& command, int* exit_code) {
  const std::string full = command + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << full;
  if (pipe == nullptr) return "";
  std::string output;
  char buffer[4096];
  size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = pclose(pipe);
  *exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return output;
}

// Scrubs the nondeterministic wall-clock tokens: any space-separated
// token whose key (ignoring a leading '(') is cost/Ct/Cc/Cd/Ca has its
// value replaced by `*`, keeping surrounding punctuation.
std::string ScrubTimings(const std::string& text) {
  std::istringstream lines(text);
  std::ostringstream out;
  std::string line;
  bool first = true;
  while (std::getline(lines, line)) {
    if (!first) out << '\n';
    first = false;
    std::istringstream tokens(line);
    std::string token;
    std::ostringstream rebuilt;
    // Preserve the line's leading indentation.
    const size_t indent = line.find_first_not_of(' ');
    if (indent != std::string::npos) rebuilt << line.substr(0, indent);
    bool first_token = true;
    while (tokens >> token) {
      if (!first_token) rebuilt << ' ';
      first_token = false;
      const size_t key_start = (!token.empty() && token[0] == '(') ? 1 : 0;
      const size_t eq = token.find('=');
      const std::string key = eq == std::string::npos
                                  ? ""
                                  : token.substr(key_start, eq - key_start);
      if (key == "cost" || key == "Ct" || key == "Cc" || key == "Cd" ||
          key == "Ca" || key == "setup" || key == "simd") {
        rebuilt << token.substr(0, eq + 1) << '*';
        if (!token.empty() && token.back() == ')') rebuilt << ')';
      } else {
        rebuilt << token;
      }
    }
    out << rebuilt.str();
  }
  return out.str();
}

void CheckGolden(const std::string& name, const std::string& args,
                 int expected_exit = 0) {
  const std::string golden_path =
      std::string(MUVE_GOLDEN_DIR) + "/" + name + ".golden";
  int exit_code = -1;
  const std::string raw =
      RunCommand(std::string(MUVE_CLI_BINARY) + " " + args, &exit_code);
  ASSERT_EQ(exit_code, expected_exit) << "CLI exit drifted:\n" << raw;
  const std::string actual = ScrubTimings(raw);

  if (std::getenv("MUVE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << actual;
    GTEST_SKIP() << "golden refreshed: " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " — run with MUVE_UPDATE_GOLDEN=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "CLI output drifted from " << golden_path
      << "; if intentional, refresh with MUVE_UPDATE_GOLDEN=1";
}

TEST(CliGoldenTest, ToyLinearLinear) {
  CheckGolden("muve_cli_toy_linear", "--dataset=toy --scheme=linear-linear --k=5");
}

TEST(CliGoldenTest, ToyMuveMuve) {
  // The probe order is pinned: the priority rule consults wall-clock cost
  // estimates, and with the fused prewarm every probe is a cache hit whose
  // nanosecond-scale timing noise can flip the rule between runs.  The
  // fixed order keeps the probe counters byte-stable.
  CheckGolden("muve_cli_toy_muve",
              "--dataset=toy --scheme=muve-muve --k=3 "
              "--probe-order=deviation-first");
}

// The cache-off run must recommend the SAME top-k (only the row/base
// counters change) — the CLI-level form of the differential guarantee.
TEST(CliGoldenTest, ToyLinearLinearNoBaseCache) {
  CheckGolden("muve_cli_toy_linear_nocache",
              "--dataset=toy --scheme=linear-linear --k=5 --no-base-cache");
}

// Anytime contract at the CLI surface: an already-expired deadline prints
// an empty-but-valid top-k, the completeness tokens in the stats line, a
// DEGRADED banner, and exits 4 (deadline_exceeded).  Deterministic because
// nothing is probed: every counter is zero except the skip accounting.
TEST(CliGoldenTest, ToyLinearLinearDeadlineZero) {
  CheckGolden("muve_cli_toy_deadline0",
              "--dataset=toy --scheme=linear-linear --k=5 --deadline-ms=0",
              /*expected_exit=*/4);
}

}  // namespace
}  // namespace muve
