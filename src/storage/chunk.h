// Fixed-capacity column chunk: the unit of storage, sharing, and skipping.
//
// A Column is a sequence of ColumnChunks of one power-of-two capacity.
// Chunks are the granularity at which
//   * appended data becomes visible (a catalog append copies only the
//     open tail chunk; every sealed chunk is shared by pointer between
//     table versions — O(new rows) ingest, never a table rebuild),
//   * scans skip work (each chunk carries a zone map: min / max over its
//     non-NULL, non-NaN numeric cells plus a null count, letting
//     Predicate::FilterInto discard or bulk-accept a whole chunk without
//     touching cell bytes), and
//   * strings deduplicate (per-chunk dictionary encoding: each distinct
//     string stored once, rows hold dense uint32 codes — equality and IN
//     predicates compare codes, and a literal absent from the dictionary
//     skips the chunk outright).
//
// Chunks are structurally immutable once full ("sealed"); only a column's
// open tail chunk ever mutates, and copy-on-write in Column keeps a tail
// shared across table versions safe to grow.

#ifndef MUVE_STORAGE_CHUNK_H_
#define MUVE_STORAGE_CHUNK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "storage/validity_bitmap.h"
#include "storage/value.h"

namespace muve::storage {

// Default rows per chunk.  Power of two so global row ids resolve to
// (chunk, offset) by shift/mask.  1M rows keeps every current benchmark
// dataset single-chunk (identical scan order and cache keys as the
// pre-chunking engine) while bounding the copy-on-append unit at scale.
inline constexpr size_t kDefaultChunkRows = size_t{1} << 20;

class ColumnChunk {
 public:
  // Sentinel code for NULL cells of a string chunk.  Never a valid
  // dictionary index, and never equal to any probe code — scan loops over
  // codes treat NULL rows as non-matching for free.
  static constexpr uint32_t kNoCode = 0xFFFFFFFFu;

  ColumnChunk(ValueType type, size_t capacity)
      : type_(type), capacity_(capacity) {}

  ValueType type() const { return type_; }
  size_t size() const { return valid_.size(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return size() >= capacity_; }

  // --- Appends (chunk-local; caller checks !full()) ---
  void AppendInt64(int64_t v) {
    MUVE_DCHECK(type_ == ValueType::kInt64 && !full());
    ints_.push_back(v);
    valid_.PushBack(true);
    ObserveNumeric(static_cast<double>(v));
  }
  void AppendDouble(double v) {
    MUVE_DCHECK(type_ == ValueType::kDouble && !full());
    doubles_.push_back(v);
    valid_.PushBack(true);
    ObserveNumeric(v);
  }
  void AppendString(const std::string& v);
  void AppendNull();

  // --- Cell access (chunk-local offsets) ---
  bool IsNull(size_t i) const { return !valid_.Get(i); }
  int64_t Int64At(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return dict_[codes_[i]]; }
  double NumericAt(size_t i) const {
    return type_ == ValueType::kInt64 ? static_cast<double>(ints_[i])
                                      : doubles_[i];
  }

  // --- Raw arrays for scan kernels ---
  const ValidityBitmap& validity() const { return valid_; }
  const int64_t* int64_data() const {
    MUVE_DCHECK(type_ == ValueType::kInt64);
    return ints_.data();
  }
  const double* double_data() const {
    MUVE_DCHECK(type_ == ValueType::kDouble);
    return doubles_.data();
  }
  const uint32_t* codes() const {
    MUVE_DCHECK(type_ == ValueType::kString);
    return codes_.data();
  }

  // --- String dictionary ---
  // Distinct strings in first-appearance order; rows store indexes into
  // this vector (kNoCode for NULL rows).
  const std::vector<std::string>& dict() const { return dict_; }
  // Dictionary code of `s` in this chunk, or kNoCode when absent (an
  // equality probe for an absent literal skips the whole chunk).
  uint32_t CodeOf(const std::string& s) const {
    const auto it = dict_index_.find(s);
    return it == dict_index_.end() ? kNoCode : it->second;
  }

  // --- Zone map ---
  size_t null_count() const { return null_count_; }
  bool AllValid() const { return null_count_ == 0; }
  // True when the chunk holds at least one non-NULL, non-NaN numeric
  // cell; min()/max() are only meaningful then.
  bool HasRange() const { return has_range_; }
  double min() const { return min_; }
  double max() const { return max_; }
  // Whether any appended double was NaN.  NaN is excluded from min/max,
  // so zone-map decisions that depend on "every cell compares false/true"
  // must consult this (a NaN cell satisfies every `!=` comparison).
  bool HasNaN() const { return has_nan_; }

  size_t ApproxBytes() const;

 private:
  void ObserveNumeric(double v);

  ValueType type_;
  size_t capacity_;
  ValidityBitmap valid_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> dict_;
  std::vector<uint32_t> codes_;
  std::unordered_map<std::string, uint32_t> dict_index_;
  size_t null_count_ = 0;
  bool has_range_ = false;
  bool has_nan_ = false;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace muve::storage

#endif  // MUVE_STORAGE_CHUNK_H_
