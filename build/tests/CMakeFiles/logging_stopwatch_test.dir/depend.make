# Empty dependencies file for logging_stopwatch_test.
# This may be replaced when dependencies are built.
