// Schema description for in-memory tables.
//
// In the MuVE data model (Section II-A) a multi-dimensional database
// consists of dimension attributes (group-by candidates) and measure
// attributes (aggregation candidates).  `FieldRole` records that
// designation directly in the schema so dataset definitions, the SQL
// binder, and the view-space enumerator all agree on which attributes are
// dimensions and which are measures.

#ifndef MUVE_STORAGE_SCHEMA_H_
#define MUVE_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace muve::storage {

// How an attribute participates in view recommendation.
enum class FieldRole {
  kNone = 0,   // neither dimension nor measure (e.g. primary key, label)
  kDimension,  // numerical group-by attribute (the paper's A)
  kMeasure,    // aggregated attribute (the paper's M)
  // Categorical group-by attribute: views over it need no binning (the
  // SeeDB setting the paper extends); its single candidate view is
  // scored with usability 1/(number of distinct groups) and accuracy 1.
  kCategoricalDimension,
};

const char* FieldRoleName(FieldRole role);

// One column's name, storage type, and recommendation role.
struct Field {
  std::string name;
  ValueType type = ValueType::kDouble;
  FieldRole role = FieldRole::kNone;

  Field() = default;
  Field(std::string name_in, ValueType type_in,
        FieldRole role_in = FieldRole::kNone)
      : name(std::move(name_in)), type(type_in), role(role_in) {}
};

// An ordered list of fields with O(1) name lookup.  Field names are
// case-insensitive for lookup (SQL semantics) but preserve their declared
// spelling.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  // Appends a field.  Returns AlreadyExists when the (case-insensitive)
  // name is taken.
  common::Status AddField(Field field);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  // Index of the named field, or NotFound.
  common::Result<size_t> FieldIndex(std::string_view name) const;
  bool HasField(std::string_view name) const;

  // All field names whose role matches, in declaration order.
  std::vector<std::string> FieldNamesWithRole(FieldRole role) const;

  // "name:type:role, ..." for debugging.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;  // lowercase name -> index
};

}  // namespace muve::storage

#endif  // MUVE_STORAGE_SCHEMA_H_
