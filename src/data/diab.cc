#include "data/diab.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "storage/predicate.h"

namespace muve::data {

namespace {

using storage::Field;
using storage::FieldRole;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

int64_t ClampInt(double v, int64_t lo, int64_t hi) {
  const int64_t r = static_cast<int64_t>(std::llround(v));
  return std::clamp(r, lo, hi);
}

}  // namespace

Dataset MakeDiabDataset(uint64_t seed) {
  common::Stopwatch setup_timer;
  Schema schema({
      Field("Pregnancies", ValueType::kInt64, FieldRole::kDimension),
      Field("Glucose", ValueType::kInt64, FieldRole::kMeasure),
      Field("BloodPressure", ValueType::kInt64, FieldRole::kDimension),
      Field("SkinThickness", ValueType::kInt64, FieldRole::kMeasure),
      Field("Insulin", ValueType::kInt64, FieldRole::kMeasure),
      Field("BMI", ValueType::kDouble, FieldRole::kDimension),
      Field("DiabetesPedigree", ValueType::kDouble, FieldRole::kMeasure),
      Field("Age", ValueType::kInt64, FieldRole::kDimension),
      Field("Outcome", ValueType::kInt64, FieldRole::kNone),
  });

  common::Rng rng(seed);
  auto table = std::make_shared<Table>(schema);
  table->Reserve(kDiabRows);

  for (size_t i = 0; i < kDiabRows; ++i) {
    int64_t age = ClampInt(rng.Normal(33.0, 11.0), 21, 81);
    // Parity loosely follows age.
    int64_t pregnancies =
        ClampInt(rng.Normal(0.1 * static_cast<double>(age) - 0.5, 3.0), 0, 17);
    double bmi = rng.ClampedNormal(32.0, 7.0, 18.0, 67.0);
    int64_t glucose = ClampInt(
        rng.Normal(110.0 + 0.4 * bmi, 28.0), 44, 199);
    int64_t blood_pressure = ClampInt(
        rng.Normal(62.0 + 0.2 * static_cast<double>(age), 11.0), 24, 110);
    int64_t skin = ClampInt(rng.Normal(0.9 * bmi - 8.0, 9.0), 7, 99);
    int64_t insulin = ClampInt(
        rng.Normal(2.0 * static_cast<double>(glucose) - 120.0, 85.0), 14, 846);
    double pedigree =
        std::min(0.08 + rng.Exponential(2.4), 2.42);

    // Pin each dimension's endpoints so ranges (and hence the view space)
    // are deterministic regardless of seed.
    if (i == 0) age = 21;
    if (i == 1) age = 81;
    if (i == 2) blood_pressure = 24;
    if (i == 3) blood_pressure = 110;
    if (i == 4) pregnancies = 0;
    if (i == 5) pregnancies = 17;
    if (i == 6) bmi = 18.0;
    if (i == 7) bmi = 67.0;

    const double risk =
        0.028 * (static_cast<double>(glucose) - 123.0) +
        0.075 * (bmi - 32.0) +
        0.022 * (static_cast<double>(age) - 33.0) - 0.45;
    const int64_t outcome = rng.Bernoulli(Sigmoid(risk)) ? 1 : 0;

    const common::Status st = table->AppendRow({
        Value(pregnancies),
        Value(glucose),
        Value(blood_pressure),
        Value(skin),
        Value(insulin),
        Value(bmi),
        Value(pedigree),
        Value(age),
        Value(outcome),
    });
    MUVE_CHECK(st.ok()) << st.ToString();
  }

  Dataset out;
  out.name = "DIAB";
  out.table = table;
  out.dimensions = {"Age", "BloodPressure", "Pregnancies", "BMI"};
  out.measures = {"Glucose", "Insulin", "SkinThickness", "DiabetesPedigree"};
  out.functions = {storage::AggregateFunction::kSum,
                   storage::AggregateFunction::kAvg,
                   storage::AggregateFunction::kCount};
  out.query_predicate_sql = "Outcome = 1";

  auto pred = storage::MakeComparison("Outcome", storage::CompareOp::kEq,
                                      Value(static_cast<int64_t>(1)));
  storage::FilterStats filter_stats;
  auto rows = storage::Filter(*table, pred.get(), nullptr, &filter_stats);
  MUVE_CHECK(rows.ok()) << rows.status().ToString();
  out.target_rows = std::move(rows).value();
  out.all_rows = storage::AllRows(table->num_rows());
  out.predicate_rows_filtered = filter_stats.rows_in - filter_stats.rows_out;
  out.chunks_skipped = filter_stats.chunks_skipped;
  out.setup_time_ms = setup_timer.ElapsedMillis();
  return out;
}

}  // namespace muve::data
