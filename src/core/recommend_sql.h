// Glue between the SQL front end and the recommender: executes a parsed
// RECOMMEND statement against a catalog table.
//
//   RECOMMEND TOP 5 VIEWS FROM players WHERE team = 'GSW'
//     USING MUVE WEIGHTS (0.2, 0.2, 0.6) DISTANCE EUCLIDEAN;
//
// The table's schema roles (FieldRole::kDimension / kMeasure) define the
// workload; USING selects the SearchH-SearchV combination by name:
// LINEAR (Linear-Linear), HC (HC-Linear), MUVE_LINEAR (MuVE-Linear), or
// MUVE (MuVE-MuVE).

#ifndef MUVE_CORE_RECOMMEND_SQL_H_
#define MUVE_CORE_RECOMMEND_SQL_H_

#include <string>

#include "common/status.h"
#include "core/recommender.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace muve::core {

// Builds the dataset workload for `stmt` from the catalog and runs the
// recommendation.  The statement's WHERE predicate selects D_Q; an absent
// predicate is an error (there would be no deviation to measure).
common::Result<Recommendation> ExecuteRecommend(sql::RecommendStatement& stmt,
                                                const sql::Catalog& catalog);

// Parses `sql` (must be a RECOMMEND statement) and executes it.
common::Result<Recommendation> RecommendSql(const std::string& sql,
                                            const sql::Catalog& catalog);

}  // namespace muve::core

#endif  // MUVE_CORE_RECOMMEND_SQL_H_
