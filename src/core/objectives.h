// The accuracy objective (Section III-A, Eq. 4).
//
// A binned view V_{i,b} approximates the raw series <(a_1,g_1)..(a_t,g_t)>
// by one representative value per bin: g'_x = g_hat_x / n_x, where g_hat_x
// is the bin's aggregate and n_x the number of distinct dimension values
// inside bin x.  Every raw g_j inside bin x is estimated as g'_x, giving
// the relative sum-squared error
//
//   R(V_{i,b}) = sum_p (g_p - g'_p)^2 / g_p^2
//
// and accuracy A(V_{i,b}) = 1 - R / t, clamped into [0, 1].
//
// Two documented generalizations of the paper's integer-attribute setup:
//  * n_x counts *observed* distinct values in the bin (equals e_x - s_x + 1
//    for dense integer attributes; stays meaningful for sparse or float
//    dimensions).
//  * raw values with g_p = 0 contribute no relative-error term (the
//    paper's formula divides by g_p^2); they still count towards t.

#ifndef MUVE_CORE_OBJECTIVES_H_
#define MUVE_CORE_OBJECTIVES_H_

#include <vector>

#include "storage/binned_group_by.h"

namespace muve::core {

// Computes A(V_{i,b}) from the raw (non-binned) series and the binned
// aggregates.  `raw_keys` are the sorted distinct dimension values, and
// `raw_aggregates` their per-value aggregates; `binned` is the same view
// binned over [binned.lo, binned.hi].  Returns 1.0 for an empty raw
// series (nothing to misrepresent).
double AccuracyFromSeries(const std::vector<double>& raw_keys,
                          const std::vector<double>& raw_aggregates,
                          const storage::BinnedResult& binned);

}  // namespace muve::core

#endif  // MUVE_CORE_OBJECTIVES_H_
