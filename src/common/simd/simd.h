// Runtime-dispatched SIMD kernel layer for the probe hot path.
//
// After the prefix-sum cache (PR 2) and the fused scan engine (PR 3) the
// recommender's cost is dominated by dense, branch-free array loops: the
// distance kernels behind Eq. 2, the relative-SSE accuracy of Eq. 4, the
// O(d) prefix-sum coarsening of every (view, b) probe, and the
// count/sum/sum-sq morsel accumulators of the fused scan.  This module
// provides those primitives behind ONE dispatch table selected at
// startup:
//
//   * `scalar`  — portable reference implementations, bit-identical to
//                 the historical open-coded loops.  Always available.
//   * `avx2`    — 4-lane double kernels (x86-64, compiled with -mavx2 in
//                 its own TU, selected only when the CPU reports AVX2).
//   * `neon`    — 2-lane double kernels (aarch64, `#ifdef`-guarded; falls
//                 back to scalar entries for the non-ported kernels).
//
// Selection happens once, at first use: the best level the CPU supports,
// overridable with the MUVE_SIMD environment variable
// (`MUVE_SIMD=scalar|avx2|neon|native`).  Tests and benchmarks can force
// a level in-process via SetActiveLevel().
//
// Exactness contract (pinned by tests/common/simd_kernel_test.cc and the
// recommender-level dispatch-invariance suite): EVERY kernel is
// BIT-IDENTICAL across every dispatch level, by construction:
//   * Integer outputs (bin_index_into, accumulate counts, coarsen
//     counts) use the same IEEE divide / truncate / clamp sequence in
//     every table.
//   * The keyed accumulators and the coarsen kernel preserve the row /
//     fine-bin-order association (vector tables vectorize only the
//     gathers; the scatter-adds stay in order).
//   * The floating-point reductions (squared_l2_diff, abs_diff_sum,
//     prefix_abs_diff_sum, sum, relative_sse, normalize_into) all use
//     ONE pinned 4-lane-strided association — lane j owns elements
//     i % 4 == j, lanes combine as (l0+l2)+(l1+l3), tails fold
//     sequentially (see kernels_scalar.cc) — which every vector table
//     reproduces exactly.  max_abs_diff is association-free (max never
//     rounds).  Consequence: recommender top-k output can never depend
//     on the dispatch path.
//   * Versus the PRE-SIMD engine: results are unchanged for n < 4 and
//     differ by O(n * eps) re-association for longer reductions (the
//     goldens were refreshed once for this).
//   * NaN inputs are outside the contract (no recommender path produces
//     them); ±0 and denormals are inside it and fuzzed explicitly.
//
// Alignment contract: every kernel uses unaligned loads, so callers MAY
// pass arbitrary pointers; hot callers (fused scan arenas, evaluator
// distribution buffers) use AlignedVector (aligned.h) so accumulator
// slabs are cache-line aligned.

#ifndef MUVE_COMMON_SIMD_SIMD_H_
#define MUVE_COMMON_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace muve::common::simd {

// Dispatch levels, ordered by preference (higher = wider).
enum class DispatchLevel : int {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
};

// Sentinel dense-dictionary key for NULL cells in the keyed accumulators
// (shared with the fused scan engine's Phase B key arrays).
inline constexpr uint32_t kNullKey32 = 0xFFFFFFFFu;

// Reference bin-index semantics, shared with storage::BinIndexFor (which
// delegates here): values outside [lo, hi] clamp to the first/last bin.
// Every bin_index_into kernel must reproduce this function bit-exactly.
inline int BinIndexReference(double value, double lo, double hi,
                             int num_bins) {
  if (num_bins <= 1) return 0;
  if (value <= lo) return 0;
  if (value >= hi) return num_bins - 1;
  const double width = (hi - lo) / static_cast<double>(num_bins);
  int idx = static_cast<int>((value - lo) / width);
  if (idx >= num_bins) idx = num_bins - 1;
  if (idx < 0) idx = 0;
  return idx;
}

// One dispatch path: a table of function pointers over the hot
// primitives.  All tables expose identical semantics (see the exactness
// contract above); only the instruction mix differs.
struct KernelTable {
  DispatchLevel level = DispatchLevel::kScalar;
  const char* name = "scalar";

  // sum_i (p[i] - q[i])^2  — Euclidean deviation core (Eq. 2) and SSE.
  double (*squared_l2_diff)(const double* p, const double* q, size_t n);
  // sum_i |p[i] - q[i]|  — Manhattan / total-variation core.
  double (*abs_diff_sum)(const double* p, const double* q, size_t n);
  // max_i |p[i] - q[i]|  — Chebyshev core.  Exact across levels.
  double (*max_abs_diff)(const double* p, const double* q, size_t n);
  // sum_{i<n} |sum_{j<=i} (p[j] - q[j])|  — 1-D earth mover's core.
  double (*prefix_abs_diff_sum)(const double* p, const double* q, size_t n);
  // sum_i a[i].
  double (*sum)(const double* a, size_t n);
  // sum over i with g[i] != 0 of (g[i] - rep[i])^2 / g[i]^2 — the
  // relative SSE behind the accuracy objective (Eq. 4).
  double (*relative_sse)(const double* g, const double* rep, size_t n);
  // Clamps negatives to 0 and normalizes into a probability distribution
  // (uniform fallback when the clamped total is <= 0).  dst may not alias
  // src.  Returns the clamped pre-normalization total.
  double (*normalize_into)(const double* src, size_t n, double* dst);
  // out[i] = BinIndexReference(values[i], lo, hi, num_bins).  Bit-exact.
  void (*bin_index_into)(const double* values, size_t n, double lo,
                         double hi, int num_bins, int32_t* out);
  // Prefix-sum coarsening (base_histogram_cache): groups the d sorted
  // fine-bin values by their coarse bin and emits per-coarse-bin
  // count/sum/sum_sq as prefix-array differences.  out_* have num_bins
  // entries and are fully overwritten (untouched coarse bins become 0).
  // Bit-identical across levels (indices exact, diffs of identical
  // prefix values).
  void (*coarsen_by_prefix_diff)(const double* values, size_t d, double lo,
                                 double hi, int num_bins,
                                 const int64_t* prefix_counts,
                                 const double* prefix_sums,
                                 const double* prefix_sum_sqs,
                                 int64_t* out_counts, double* out_sums,
                                 double* out_sum_sqs);
  // Keyed scatter-add over one morsel of row positions [begin, end):
  // for each position p with keys[p] != kNullKey32 and (validity_words ==
  // nullptr or bit rows[p] set), accumulates counts/sums/sum_sqs[keys[p]]
  // with m = (double)data[rows[p]].  Additions stay in row order per key
  // (bit-identical across levels).  `validity_words` is the Arrow-style
  // word array of the measure's validity bitmap (nullptr = all valid).
  void (*accumulate_count_sum_sq_f64)(const uint32_t* rows, size_t begin,
                                      size_t end, const uint32_t* keys,
                                      const uint64_t* validity_words,
                                      const double* data, int64_t* counts,
                                      double* sums, double* sum_sqs);
  void (*accumulate_count_sum_sq_i64)(const uint32_t* rows, size_t begin,
                                      size_t end, const uint32_t* keys,
                                      const uint64_t* validity_words,
                                      const int64_t* data, int64_t* counts,
                                      double* sums, double* sum_sqs);
};

// "scalar" / "neon" / "avx2".
const char* DispatchLevelName(DispatchLevel level);

// The always-available portable reference table.
const KernelTable& ScalarKernels();

// The table for `level`, or nullptr when that level is not compiled in /
// not supported by this CPU.  ScalarKernels() is never null.
const KernelTable* KernelsFor(DispatchLevel level);

// The widest level this binary + CPU supports.
DispatchLevel BestSupportedLevel();

// The table all hot paths dispatch through.  Resolved once on first use:
// BestSupportedLevel(), overridden by MUVE_SIMD
// (scalar|neon|avx2|native; unsupported or unparsable values fall back
// to the best supported level with a warning to stderr).
const KernelTable& ActiveKernels();
DispatchLevel ActiveLevel();
const char* ActiveLevelName();

// Forces the active table in-process (tests, differential benches, the
// recommender-level dispatch-invariance suite).  Returns false — leaving
// the active table unchanged — when `level` is unsupported.  Thread-safe
// but not synchronized with in-flight kernel calls; call between runs.
bool SetActiveLevel(DispatchLevel level);

// Convenience alias: sum of squared differences (identical primitive to
// squared_l2_diff, named for the accuracy/fidelity call sites).
inline double SumSquaredError(const double* a, const double* b, size_t n) {
  return ActiveKernels().squared_l2_diff(a, b, n);
}

}  // namespace muve::common::simd

#endif  // MUVE_COMMON_SIMD_SIMD_H_
