file(REMOVE_RECURSE
  "CMakeFiles/horizontal_search_test.dir/core/horizontal_search_test.cc.o"
  "CMakeFiles/horizontal_search_test.dir/core/horizontal_search_test.cc.o.d"
  "horizontal_search_test"
  "horizontal_search_test.pdb"
  "horizontal_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizontal_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
