// Extension bench: multi-threaded scaling for every scheme.
//
// All vertical strategies run on the shared work-stealing pool, so this
// bench sweeps threads x schemes: the three vertical-Linear combinations,
// MuVE-MuVE, shared scans, view refinement, and view skipping.  The
// paper's cost metric (Eq. 7) sums *work*, so it stays roughly flat with
// thread count (pruning schemes can inflate slightly: a lagging threshold
// snapshot prunes less); the latency (elapsed wall-clock) is what drops.
// Both are reported, per scheme, plus a machine-readable JSON block for
// plotting scaling curves.

#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/recommender.h"
#include "data/nba.h"
#include "harness.h"

namespace {

struct SchemeSpec {
  std::string label;
  muve::core::SearchOptions options;
};

std::vector<SchemeSpec> Schemes() {
  using muve::core::HorizontalStrategy;
  using muve::core::VerticalApproximation;
  std::vector<SchemeSpec> specs;
  specs.push_back({"Linear-Linear", muve::bench::LinearLinear()});
  specs.push_back({"HC-Linear", muve::bench::HcLinear()});
  specs.push_back({"MuVE-Linear", muve::bench::MuveLinear()});
  specs.push_back({"MuVE-MuVE", muve::bench::MuveMuve()});
  {
    auto shared = muve::bench::LinearLinear();
    shared.shared_scans = true;
    specs.push_back({"Linear-Linear(Sh)", shared});
    auto refine = muve::bench::LinearLinear();
    refine.approximation = VerticalApproximation::kRefinement;
    specs.push_back({"Linear-Linear(R)", refine});
    auto skip = muve::bench::LinearLinear();
    skip.approximation = VerticalApproximation::kSkipping;
    specs.push_back({"Linear-Linear(S)", skip});
  }
  return specs;
}

bool SameTopK(const muve::core::Recommendation& a,
              const muve::core::Recommendation& b, double tolerance) {
  if (a.views.size() != b.views.size()) return false;
  for (size_t i = 0; i < a.views.size(); ++i) {
    if (std::abs(a.views[i].utility - b.views[i].utility) > tolerance) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  std::cout << "=== Extension: parallel scaling across schemes (NBA, 13 "
               "measures) ===\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 13, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::ostringstream json;
  json << "{\n  \"hardware_threads\": "
       << std::thread::hardware_concurrency() << ",\n  \"schemes\": [";
  bool first_scheme = true;

  for (const SchemeSpec& spec : Schemes()) {
    muve::bench::TablePrinter table({"threads", "elapsed(ms)",
                                     "work cost(ms)", "speedup",
                                     "matches serial top-k"});
    double elapsed_1 = 0.0;
    muve::core::Recommendation reference;
    if (!first_scheme) json << ",";
    first_scheme = false;
    json << "\n    {\"scheme\": \"" << spec.label << "\", \"points\": [";

    for (size_t t = 0; t < thread_counts.size(); ++t) {
      const int threads = thread_counts[t];
      muve::core::SearchOptions options = spec.options;
      options.num_threads = threads;
      // Warmup.
      MUVE_CHECK(recommender->Recommend(options).ok());
      muve::common::Stopwatch timer;
      auto rec = recommender->Recommend(options);
      const double elapsed = timer.ElapsedMillis();
      MUVE_CHECK(rec.ok()) << rec.status().ToString();
      if (threads == 1) {
        elapsed_1 = elapsed;
        reference = *rec;
      }
      // Exact vertical-Linear schemes match serial view-for-view; the
      // pruning/approximation schemes match on recommended utilities.
      const bool identical = SameTopK(*rec, reference, 1e-9);

      table.AddRow({std::to_string(threads), muve::bench::Ms(elapsed),
                    muve::bench::Ms(rec->stats.TotalCostMillis()),
                    muve::common::FormatDouble(elapsed_1 / elapsed, 2) + "x",
                    identical ? "yes" : "NO"});
      json << (t == 0 ? "" : ", ")
           << "{\"threads\": " << threads << ", \"elapsed_ms\": " << elapsed
           << ", \"work_cost_ms\": " << rec->stats.TotalCostMillis()
           << ", \"workers\": " << rec->stats.num_workers
           << ", \"rows_scanned\": " << rec->stats.rows_scanned
           << ", \"build_rows_scanned\": " << rec->stats.build_rows_scanned
           << ", \"probe_rows_scanned\": " << rec->stats.probe_rows_scanned
           << ", \"base_builds\": " << rec->stats.base_builds
           << ", \"base_cache_hits\": " << rec->stats.base_cache_hits
           << ", \"fused_builds\": " << rec->stats.fused_builds
           << ", \"morsels\": " << rec->stats.morsels_dispatched
           << ", \"matches_serial\": " << (identical ? "true" : "false")
           << "}";
    }
    json << "]}";
    table.Print(spec.label + ": elapsed latency vs summed work cost");
    std::cout << "\n";
  }
  json << "\n  ]\n}";

  std::cout << "JSON:\n" << json.str() << "\n\n";
  std::cout << "(hardware threads available: "
            << std::thread::hardware_concurrency()
            << "; on a single-core host latency stays flat and the summed "
               "work cost inflates with timeslicing — the 'matches serial "
               "top-k' column is the correctness claim, the speedup "
               "column needs real cores)\n";
  return 0;
}
