// Extension bench: multi-threaded vertical-Linear scaling.
//
// Parallel workers split the view list; recommendations are identical to
// the serial run.  The paper's cost metric (Eq. 7) sums *work*, so it
// stays roughly flat with thread count; the latency (elapsed wall-clock)
// is what drops.  Both are reported here.

#include <iostream>

#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/recommender.h"
#include "data/nba.h"
#include "harness.h"

int main() {
  std::cout << "=== Extension: parallel Linear-Linear scaling (NBA, 13 "
               "measures) ===\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 13, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  // Serial reference for correctness checking.
  auto serial = muve::bench::LinearLinear();
  auto reference = recommender->Recommend(serial);
  MUVE_CHECK(reference.ok());

  muve::bench::TablePrinter table({"threads", "elapsed(ms)",
                                   "work cost(ms)", "speedup",
                                   "identical top-k"});
  double elapsed_1 = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    auto options = muve::bench::LinearLinear();
    options.num_threads = threads;
    // Warmup.
    MUVE_CHECK(recommender->Recommend(options).ok());
    muve::common::Stopwatch timer;
    auto rec = recommender->Recommend(options);
    const double elapsed = timer.ElapsedMillis();
    MUVE_CHECK(rec.ok());
    if (threads == 1) elapsed_1 = elapsed;

    bool identical = rec->views.size() == reference->views.size();
    for (size_t i = 0; identical && i < rec->views.size(); ++i) {
      identical = rec->views[i].view.Key() ==
                      reference->views[i].view.Key() &&
                  rec->views[i].bins == reference->views[i].bins;
    }
    table.AddRow({std::to_string(threads), muve::bench::Ms(elapsed),
                  muve::bench::Ms(rec->stats.TotalCostMillis()),
                  muve::common::FormatDouble(elapsed_1 / elapsed, 2) + "x",
                  identical ? "yes" : "NO"});
  }
  table.Print("Elapsed latency vs summed work cost by thread count");
  std::cout << "\n(hardware threads available: "
            << std::thread::hardware_concurrency()
            << "; on a single-core host latency stays flat and the summed "
               "work cost inflates with timeslicing — the 'identical "
               "top-k' column is the correctness claim, the speedup "
               "column needs real cores)\n";
  return 0;
}
