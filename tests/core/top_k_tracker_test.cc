#include "core/top_k_tracker.h"

#include <gtest/gtest.h>

#include <cmath>

namespace muve::core {
namespace {

ScoredView Make(double utility, int bins = 1) {
  ScoredView sv;
  sv.bins = bins;
  sv.utility = utility;
  return sv;
}

TEST(TopKTrackerTest, ThresholdUndefinedUntilKViews) {
  TopKTracker tracker(2, 5);
  EXPECT_TRUE(std::isinf(tracker.Threshold()));
  EXPECT_LT(tracker.Threshold(), 0);
  tracker.Update(0, Make(0.9));
  EXPECT_TRUE(std::isinf(tracker.Threshold()));
  tracker.Update(1, Make(0.5));
  EXPECT_DOUBLE_EQ(tracker.Threshold(), 0.5);
}

TEST(TopKTrackerTest, ThresholdIsKthLargest) {
  TopKTracker tracker(2, 5);
  tracker.Update(0, Make(0.3));
  tracker.Update(1, Make(0.7));
  tracker.Update(2, Make(0.5));
  EXPECT_DOUBLE_EQ(tracker.Threshold(), 0.5);
  tracker.Update(3, Make(0.9));
  EXPECT_DOUBLE_EQ(tracker.Threshold(), 0.7);
}

TEST(TopKTrackerTest, PerViewBestOnlyImproves) {
  TopKTracker tracker(1, 3);
  tracker.Update(0, Make(0.6, 2));
  tracker.Update(0, Make(0.4, 3));  // worse; ignored
  auto top = tracker.TopK();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_DOUBLE_EQ(top[0].utility, 0.6);
  EXPECT_EQ(top[0].bins, 2);
  tracker.Update(0, Make(0.8, 5));
  EXPECT_DOUBLE_EQ(tracker.TopK()[0].utility, 0.8);
}

TEST(TopKTrackerTest, DistinctViewConstraint) {
  // One view improving repeatedly still occupies a single top-k slot.
  TopKTracker tracker(2, 3);
  tracker.Update(0, Make(0.5));
  tracker.Update(0, Make(0.6));
  tracker.Update(0, Make(0.7));
  tracker.Update(1, Make(0.2));
  const auto top = tracker.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].utility, 0.7);
  EXPECT_DOUBLE_EQ(top[1].utility, 0.2);
}

TEST(TopKTrackerTest, TopKSortedDescendingAndTruncated) {
  TopKTracker tracker(3, 6);
  const double utilities[] = {0.1, 0.9, 0.3, 0.7, 0.5, 0.2};
  for (size_t i = 0; i < 6; ++i) tracker.Update(i, Make(utilities[i]));
  const auto top = tracker.TopK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_DOUBLE_EQ(top[0].utility, 0.9);
  EXPECT_DOUBLE_EQ(top[1].utility, 0.7);
  EXPECT_DOUBLE_EQ(top[2].utility, 0.5);
}

TEST(TopKTrackerTest, FewerViewsThanK) {
  TopKTracker tracker(10, 3);
  tracker.Update(0, Make(0.4));
  tracker.Update(2, Make(0.6));
  const auto top = tracker.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].utility, 0.6);
}

TEST(TopKTrackerTest, ThresholdAfterReplacement) {
  TopKTracker tracker(2, 3);
  tracker.Update(0, Make(0.3));
  tracker.Update(1, Make(0.4));
  EXPECT_DOUBLE_EQ(tracker.Threshold(), 0.3);
  // View 0 improves past view 1: threshold becomes 0.4.
  tracker.Update(0, Make(0.9));
  EXPECT_DOUBLE_EQ(tracker.Threshold(), 0.4);
}

TEST(TopKTrackerTest, DuplicateUtilitiesHandled) {
  TopKTracker tracker(2, 4);
  tracker.Update(0, Make(0.5));
  tracker.Update(1, Make(0.5));
  tracker.Update(2, Make(0.5));
  EXPECT_DOUBLE_EQ(tracker.Threshold(), 0.5);
  tracker.Update(1, Make(0.6));
  EXPECT_DOUBLE_EQ(tracker.Threshold(), 0.5);
  EXPECT_EQ(tracker.num_views_scored(), 3u);
}

}  // namespace
}  // namespace muve::core
