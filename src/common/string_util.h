// String helpers used by the CSV reader, the SQL lexer, and the benchmark
// table printers.

#ifndef MUVE_COMMON_STRING_UTIL_H_
#define MUVE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace muve::common {

// Splits `input` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char delim);

// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view input);

// ASCII-lowercased copy.
std::string ToLower(std::string_view input);

// ASCII-uppercased copy.
std::string ToUpper(std::string_view input);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Formats `value` with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

// Left/right pads `text` with spaces to at least `width` characters.
std::string PadLeft(std::string text, size_t width);
std::string PadRight(std::string text, size_t width);

}  // namespace muve::common

#endif  // MUVE_COMMON_STRING_UTIL_H_
