file(REMOVE_RECURSE
  "CMakeFiles/objectives_test.dir/core/objectives_test.cc.o"
  "CMakeFiles/objectives_test.dir/core/objectives_test.cc.o.d"
  "objectives_test"
  "objectives_test.pdb"
  "objectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
