#include "storage/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace muve::storage {
namespace {

using Kind = Histogram::Kind;

Histogram MustBuild(Kind kind, std::vector<double> values, int buckets) {
  auto result = BuildHistogram(kind, std::move(values), buckets);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : Histogram{};
}

TEST(SegmentSseTest, MatchesDirectComputation) {
  const std::vector<double> values = {1.0, 2.0, 4.0, 8.0};
  // Whole range: mean 3.75, SSE = sum (v - 3.75)^2 = 29.75... compute:
  // (2.75)^2 + (1.75)^2 + (0.25)^2 + (4.25)^2 = 7.5625+3.0625+0.0625+18.0625
  EXPECT_NEAR(SegmentSse(values, 0, 4), 28.75, 1e-9);
  EXPECT_DOUBLE_EQ(SegmentSse(values, 1, 2), 0.0);  // singleton
  EXPECT_NEAR(SegmentSse(values, 0, 2), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(SegmentSse(values, 2, 2), 0.0);  // empty
}

TEST(HistogramTest, InvalidInputs) {
  EXPECT_FALSE(BuildHistogram(Kind::kEquiWidth, {}, 3).ok());
  EXPECT_FALSE(BuildHistogram(Kind::kEquiWidth, {1.0}, 0).ok());
}

TEST(HistogramTest, SingleBucketCoversEverything) {
  for (const Kind kind :
       {Kind::kEquiWidth, Kind::kEquiDepth, Kind::kVOptimal}) {
    const Histogram h = MustBuild(kind, {3.0, 1.0, 2.0}, 1);
    ASSERT_EQ(h.buckets.size(), 1u) << HistogramKindName(kind);
    EXPECT_EQ(h.buckets[0].count(), 3u);
    EXPECT_DOUBLE_EQ(h.buckets[0].lo, 1.0);
    EXPECT_DOUBLE_EQ(h.buckets[0].hi, 3.0);
    EXPECT_DOUBLE_EQ(h.buckets[0].mean, 2.0);
    EXPECT_NEAR(h.buckets[0].sse, 2.0, 1e-12);
  }
}

TEST(HistogramTest, ConstantSeriesHasZeroSse) {
  for (const Kind kind :
       {Kind::kEquiWidth, Kind::kEquiDepth, Kind::kVOptimal}) {
    const Histogram h = MustBuild(kind, std::vector<double>(10, 5.0), 4);
    EXPECT_DOUBLE_EQ(h.TotalSse(), 0.0) << HistogramKindName(kind);
  }
}

TEST(EquiWidthTest, SplitsRangeUniformly) {
  // Values 0..9, 2 buckets of width 4.5: [0..4], [5..9].
  std::vector<double> values;
  for (int i = 0; i < 10; ++i) values.push_back(i);
  const Histogram h = MustBuild(Kind::kEquiWidth, values, 2);
  ASSERT_EQ(h.buckets.size(), 2u);
  EXPECT_EQ(h.buckets[0].count(), 5u);
  EXPECT_EQ(h.buckets[1].count(), 5u);
  EXPECT_DOUBLE_EQ(h.buckets[0].mean, 2.0);
  EXPECT_DOUBLE_EQ(h.buckets[1].mean, 7.0);
}

TEST(EquiWidthTest, SkewedDataLeavesEmptyIntervalsOut) {
  // Mass clustered at both ends: middle intervals have no bucket.
  const Histogram h =
      MustBuild(Kind::kEquiWidth, {0.0, 0.1, 0.2, 9.8, 9.9, 10.0}, 5);
  EXPECT_LT(h.buckets.size(), 5u);
  size_t total = 0;
  for (const auto& b : h.buckets) total += b.count();
  EXPECT_EQ(total, 6u);
}

TEST(EquiDepthTest, UniformMassPerBucket) {
  std::vector<double> values;
  for (int i = 0; i < 12; ++i) values.push_back(std::pow(2.0, i));
  const Histogram h = MustBuild(Kind::kEquiDepth, values, 4);
  ASSERT_EQ(h.buckets.size(), 4u);
  for (const auto& b : h.buckets) EXPECT_EQ(b.count(), 3u);
}

TEST(EquiDepthTest, RemainderSpreadEvenly) {
  std::vector<double> values;
  for (int i = 0; i < 10; ++i) values.push_back(i);
  const Histogram h = MustBuild(Kind::kEquiDepth, values, 3);
  ASSERT_EQ(h.buckets.size(), 3u);
  size_t total = 0;
  for (const auto& b : h.buckets) {
    EXPECT_GE(b.count(), 3u);
    EXPECT_LE(b.count(), 4u);
    total += b.count();
  }
  EXPECT_EQ(total, 10u);
}

TEST(EquiDepthTest, MoreBucketsThanValuesClamps) {
  const Histogram h = MustBuild(Kind::kEquiDepth, {1.0, 2.0}, 5);
  EXPECT_EQ(h.buckets.size(), 2u);
}

TEST(VOptimalTest, FindsTheObviousSplit) {
  // Two tight clusters: the optimal 2-bucket split separates them.
  const Histogram h = MustBuild(
      Kind::kVOptimal, {1.0, 1.1, 0.9, 100.0, 100.1, 99.9}, 2);
  ASSERT_EQ(h.buckets.size(), 2u);
  EXPECT_EQ(h.buckets[0].count(), 3u);
  EXPECT_EQ(h.buckets[1].count(), 3u);
  EXPECT_LT(h.TotalSse(), 0.1);
}

TEST(VOptimalTest, ExactBucketsPerValueIsPerfect) {
  const Histogram h = MustBuild(Kind::kVOptimal, {5.0, 1.0, 9.0}, 3);
  EXPECT_EQ(h.buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(h.TotalSse(), 0.0);
}

// The defining property: V-optimal minimizes SSE, so it never loses to
// the other partitioning schemes on any input.
class VOptimalDominanceTest : public ::testing::TestWithParam<int> {};

TEST_P(VOptimalDominanceTest, NeverWorseThanOtherSchemes) {
  const int buckets = GetParam();
  common::Rng rng(1234 + static_cast<uint64_t>(buckets));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> values;
    const int n = 5 + static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < n; ++i) {
      // Mixture of clusters and outliers to stress the partitioners.
      values.push_back(rng.Bernoulli(0.2) ? rng.Uniform(90, 100)
                                          : rng.Normal(10, 3));
    }
    const double v_opt =
        MustBuild(Kind::kVOptimal, values, buckets).TotalSse();
    const double equi_w =
        MustBuild(Kind::kEquiWidth, values, buckets).TotalSse();
    const double equi_d =
        MustBuild(Kind::kEquiDepth, values, buckets).TotalSse();
    EXPECT_LE(v_opt, equi_w + 1e-9) << "trial " << trial << " n=" << n;
    EXPECT_LE(v_opt, equi_d + 1e-9) << "trial " << trial << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(BucketSweep, VOptimalDominanceTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(HistogramTest, SseMonotoneInBuckets) {
  // More buckets never hurt the optimal SSE.
  common::Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 60; ++i) values.push_back(rng.Uniform(0, 100));
  double prev = std::numeric_limits<double>::infinity();
  for (int b : {1, 2, 4, 8, 16, 32}) {
    const Histogram h = MustBuild(Kind::kVOptimal, values, b);
    EXPECT_LE(h.TotalSse(), prev + 1e-9) << "buckets=" << b;
    prev = h.TotalSse();
  }
}

TEST(HistogramTest, ToStringMentionsKindAndSse) {
  const Histogram h = MustBuild(Kind::kEquiDepth, {1.0, 2.0, 3.0}, 2);
  const std::string text = h.ToString();
  EXPECT_NE(text.find("equi-depth"), std::string::npos);
  EXPECT_NE(text.find("SSE="), std::string::npos);
}

}  // namespace
}  // namespace muve::storage
