// Horizontal search (Section IV-A): find the optimal binning V_{i,opt}
// for one non-binned view V_i.
//
// Three strategies:
//   * Linear        — exhaustive over the bin domain (optimal baseline).
//   * Hill Climbing — dynamic HC with halving step (approximate baseline);
//                     random start, considers b-s and b+s each iteration,
//                     halves s when neither improves, stops at s < 1.
//   * MuVE          — S-list traversal with early termination and
//                     incremental probe pruning (Section IV-A3).
//
// All strategies share the candidate evaluation in candidate.h; MuVE
// additionally accepts an initial threshold so the vertical search can
// seed it with the global top-k bar (MuVE-MuVE integration).

#ifndef MUVE_CORE_HORIZONTAL_SEARCH_H_
#define MUVE_CORE_HORIZONTAL_SEARCH_H_

#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/candidate.h"
#include "core/search_options.h"
#include "core/view_evaluator.h"

namespace muve::core {

struct HorizontalResult {
  // Best fully-evaluated binned view; empty when every candidate was
  // pruned by the initial threshold (meaning no binning of this view can
  // enter the top-k).
  std::optional<ScoredView> best;
  bool early_terminated = false;
  // Execution control tripped mid-search: `best` reflects only the bin
  // counts probed before expiry (a valid partial answer — the strategies
  // never return a half-evaluated candidate).  `bins_skipped` counts the
  // domain entries never probed (Linear/MuVE; Hill Climbing reports 0 —
  // its remaining trajectory has no fixed length to count).  All checks
  // happen BETWEEN candidates via the evaluator's ExecContext, so an
  // unexpired run takes the exact same probe sequence as an unbounded
  // one.
  bool truncated = false;
  int64_t bins_skipped = 0;
};

// Exhaustive scan of `domain` (ascending bin counts).
HorizontalResult HorizontalLinear(ViewEvaluator& evaluator, const View& view,
                                  const std::vector<int>& domain,
                                  const SearchOptions& options);

// Dynamic Hill Climbing over bins in [1, max_bins].  Evaluations are
// memoized within the call so re-visited bin counts incur no cost.
HorizontalResult HorizontalHillClimbing(ViewEvaluator& evaluator,
                                        const View& view, int max_bins,
                                        const SearchOptions& options,
                                        common::Rng& rng);

// MuVE's optimized search.  `initial_threshold` is the utility bar that a
// candidate must beat to matter (-infinity / 0 for standalone top-1 use;
// the current top-k floor under MuVE-MuVE).  The returned best may be
// empty when the threshold pruned everything.
HorizontalResult HorizontalMuve(ViewEvaluator& evaluator, const View& view,
                                const std::vector<int>& domain,
                                const SearchOptions& options,
                                double initial_threshold);

// Dispatches on options.horizontal.  `rng` is only used by Hill Climbing.
HorizontalResult RunHorizontalSearch(ViewEvaluator& evaluator,
                                     const View& view,
                                     const std::vector<int>& domain,
                                     int max_bins,
                                     const SearchOptions& options,
                                     common::Rng& rng);

}  // namespace muve::core

#endif  // MUVE_CORE_HORIZONTAL_SEARCH_H_
