// Unit tests for the base-histogram prefix-sum cache: build correctness
// against the direct BinnedAggregate scan, coarsening across the whole
// bin-count domain, raw-series derivation, LRU eviction, and concurrent
// GetOrBuild (runs under -L tsan).

#include "storage/base_histogram_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "storage/binned_group_by.h"
#include "storage/group_by.h"
#include "storage/table.h"

namespace muve::storage {
namespace {

Table MakeTable(uint64_t seed, int num_rows, int num_distinct,
                bool integer_measures) {
  Table table(Schema({{"d", ValueType::kInt64},
                      {"m", ValueType::kDouble},
                      {"s", ValueType::kString}}));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dim(0, num_distinct - 1);
  std::uniform_real_distribution<double> mea(-50.0, 50.0);
  for (int i = 0; i < num_rows; ++i) {
    const double m = integer_measures ? std::floor(mea(rng)) : mea(rng);
    std::vector<Value> row = {Value(dim(rng)), Value(m), Value("x")};
    if (rng() % 17 == 0) row[1] = Value();  // sporadic NULL measures
    if (rng() % 23 == 0) row[0] = Value();  // sporadic NULL dimensions
    EXPECT_TRUE(table.AppendRow(row).ok());
  }
  return table;
}

TEST(BaseHistogramTest, ServableFunctions) {
  EXPECT_TRUE(BaseServableFunction(AggregateFunction::kSum));
  EXPECT_TRUE(BaseServableFunction(AggregateFunction::kCount));
  EXPECT_TRUE(BaseServableFunction(AggregateFunction::kAvg));
  EXPECT_TRUE(BaseServableFunction(AggregateFunction::kStd));
  EXPECT_TRUE(BaseServableFunction(AggregateFunction::kVar));
  EXPECT_FALSE(BaseServableFunction(AggregateFunction::kMin));
  EXPECT_FALSE(BaseServableFunction(AggregateFunction::kMax));
}

TEST(BaseHistogramTest, BuildErrorsMirrorBinnedAggregate) {
  Table table = MakeTable(1, 50, 8, true);
  EXPECT_FALSE(BuildBaseHistogram(table, AllRows(50), "nope", "m").ok());
  EXPECT_FALSE(BuildBaseHistogram(table, AllRows(50), "s", "m").ok());
  EXPECT_FALSE(BuildBaseHistogram(table, AllRows(50), "d", "s").ok());
}

TEST(BaseHistogramTest, FineBinsAreSortedDistinct) {
  Table table = MakeTable(2, 300, 12, false);
  auto base = BuildBaseHistogram(table, AllRows(300), "d", "m");
  ASSERT_TRUE(base.ok());
  for (size_t j = 1; j < base->num_fine_bins(); ++j) {
    EXPECT_LT(base->values[j - 1], base->values[j]);
  }
  EXPECT_EQ(base->prefix_counts.size(), base->num_fine_bins() + 1);
  EXPECT_EQ(base->source_rows, 300);
}

// The core exactness claim: coarsening the base histogram to ANY bin
// count over ANY range yields the same bins as the direct scan —
// bit-identical for COUNT and integer-measure SUM, FP-tolerant otherwise.
TEST(BaseHistogramTest, CoarsenMatchesDirectScanAllBinCounts) {
  for (const bool integral : {true, false}) {
    Table table = MakeTable(integral ? 3 : 4, 500, 20, integral);
    const RowSet rows = AllRows(500);
    auto base = BuildBaseHistogram(table, rows, "d", "m");
    ASSERT_TRUE(base.ok());
    const double lo = 0.0, hi = 19.0;
    for (const auto function :
         {AggregateFunction::kSum, AggregateFunction::kCount,
          AggregateFunction::kAvg, AggregateFunction::kStd,
          AggregateFunction::kVar}) {
      for (int bins = 1; bins <= 40; ++bins) {
        auto direct = BinnedAggregate(table, rows, "d", "m", function,
                                      bins, lo, hi);
        ASSERT_TRUE(direct.ok());
        const BinnedResult derived =
            CoarsenBaseHistogram(*base, function, bins, lo, hi);
        ASSERT_EQ(derived.num_bins, direct->num_bins);
        for (int b = 0; b < bins; ++b) {
          // Row-to-bin assignment must match exactly in all cases.
          ASSERT_EQ(derived.row_counts[b], direct->row_counts[b])
              << "fn=" << AggregateName(function) << " bins=" << bins
              << " b=" << b;
          const double got = derived.aggregates[b];
          const double want = direct->aggregates[b];
          if (function == AggregateFunction::kCount ||
              (integral && function == AggregateFunction::kSum)) {
            ASSERT_EQ(got, want)
                << "fn=" << AggregateName(function) << " bins=" << bins
                << " b=" << b;
          } else {
            ASSERT_NEAR(got, want, 1e-9 * (1.0 + std::abs(want)))
                << "fn=" << AggregateName(function) << " bins=" << bins
                << " b=" << b;
          }
        }
      }
    }
  }
}

// Coarsening with a range narrower than the data exercises BinIndexFor's
// clamping (out-of-range values land in the first/last bin).
TEST(BaseHistogramTest, CoarsenMatchesDirectScanWithClampedRange) {
  Table table = MakeTable(5, 400, 16, true);
  const RowSet rows = AllRows(400);
  auto base = BuildBaseHistogram(table, rows, "d", "m");
  ASSERT_TRUE(base.ok());
  for (int bins : {1, 2, 3, 7}) {
    auto direct = BinnedAggregate(table, rows, "d", "m",
                                  AggregateFunction::kSum, bins, 4.0, 11.0);
    ASSERT_TRUE(direct.ok());
    const BinnedResult derived = CoarsenBaseHistogram(
        *base, AggregateFunction::kSum, bins, 4.0, 11.0);
    for (int b = 0; b < bins; ++b) {
      EXPECT_EQ(derived.row_counts[b], direct->row_counts[b]) << b;
      EXPECT_EQ(derived.aggregates[b], direct->aggregates[b]) << b;
    }
  }
}

TEST(BaseHistogramTest, RawSeriesMatchesGroupBy) {
  Table table = MakeTable(6, 350, 14, true);
  const RowSet rows = AllRows(350);
  auto base = BuildBaseHistogram(table, rows, "d", "m");
  ASSERT_TRUE(base.ok());
  for (const auto function :
       {AggregateFunction::kSum, AggregateFunction::kCount,
        AggregateFunction::kAvg}) {
    auto grouped = GroupByAggregate(table, rows, "d", "m", function);
    ASSERT_TRUE(grouped.ok());
    std::vector<double> keys, aggregates;
    BaseRawSeries(*base, function, &keys, &aggregates);
    ASSERT_EQ(keys.size(), grouped->num_groups());
    for (size_t g = 0; g < keys.size(); ++g) {
      auto key = grouped->keys[g].ToDouble();
      ASSERT_TRUE(key.ok());
      EXPECT_EQ(keys[g], *key);
      // Integer measures, per-group row-order association: bit-exact.
      EXPECT_EQ(aggregates[g], grouped->aggregates[g])
          << "fn=" << AggregateName(function) << " g=" << g;
    }
  }
}

TEST(BaseHistogramCacheTest, HitAfterBuildAndStats) {
  Table table = MakeTable(7, 100, 10, true);
  BaseHistogramCache cache;
  int builder_calls = 0;
  const auto builder = [&]() {
    ++builder_calls;
    return BuildBaseHistogram(table, AllRows(100), "d", "m");
  };
  bool built = false;
  auto first = cache.GetOrBuild("t|d|m", builder, &built);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(built);
  auto second = cache.GetOrBuild("t|d|m", builder, &built);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(built);
  EXPECT_EQ(builder_calls, 1);
  EXPECT_EQ(first.value().get(), second.value().get());
  const auto stats = cache.TotalStats();
  EXPECT_EQ(stats.builds, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_GT(stats.bytes, 0);
}

TEST(BaseHistogramCacheTest, BuilderErrorIsPropagatedAndNotCached) {
  Table table = MakeTable(8, 40, 6, true);
  BaseHistogramCache cache;
  const auto bad = [&]() {
    return BuildBaseHistogram(table, AllRows(40), "d", "s");
  };
  bool built = true;
  EXPECT_FALSE(cache.GetOrBuild("k", bad, &built).ok());
  // A later good builder under the same key still runs (nothing cached).
  const auto good = [&]() {
    return BuildBaseHistogram(table, AllRows(40), "d", "m");
  };
  auto ok = cache.GetOrBuild("k", good, &built);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(built);
}

TEST(BaseHistogramCacheTest, LruEvictionUnderByteBudget) {
  Table table = MakeTable(9, 2000, 400, false);
  auto probe = BuildBaseHistogram(table, AllRows(2000), "d", "m");
  ASSERT_TRUE(probe.ok());
  const size_t entry_bytes = probe->ApproxBytes();

  // One shard with room for ~2 entries.
  BaseHistogramCache::Options options;
  options.num_shards = 1;
  options.max_bytes = entry_bytes * 2 + entry_bytes / 2;
  BaseHistogramCache cache(options);
  const auto builder = [&]() {
    return BuildBaseHistogram(table, AllRows(2000), "d", "m");
  };
  auto a = cache.GetOrBuild("a", builder, nullptr);
  auto b = cache.GetOrBuild("b", builder, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Touch "a" so "b" is the LRU victim when "c" lands.
  ASSERT_TRUE(cache.GetOrBuild("a", builder, nullptr).ok());
  ASSERT_TRUE(cache.GetOrBuild("c", builder, nullptr).ok());
  auto stats = cache.TotalStats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_LE(stats.bytes, static_cast<int64_t>(options.max_bytes));
  // "a" survives (hit, no rebuild) while "b" rebuilds.
  bool built = true;
  ASSERT_TRUE(cache.GetOrBuild("a", builder, &built).ok());
  EXPECT_FALSE(built);
  ASSERT_TRUE(cache.GetOrBuild("b", builder, &built).ok());
  EXPECT_TRUE(built);
  // Evicted histograms handed out earlier stay valid (immutable entries).
  EXPECT_EQ(b.value()->num_fine_bins(), probe->num_fine_bins());
}

TEST(BaseHistogramCacheTest, OversizedEntryStillServesItsProbe) {
  Table table = MakeTable(10, 1000, 300, false);
  BaseHistogramCache::Options options;
  options.num_shards = 1;
  options.max_bytes = 16;  // smaller than any histogram
  BaseHistogramCache cache(options);
  const auto builder = [&]() {
    return BuildBaseHistogram(table, AllRows(1000), "d", "m");
  };
  bool built = false;
  auto entry = cache.GetOrBuild("big", builder, &built);
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE(built);
  // The sole (just-inserted) entry is never evicted by its own insert.
  ASSERT_TRUE(cache.GetOrBuild("big", builder, &built).ok());
  EXPECT_FALSE(built);
}

TEST(BaseHistogramCacheTest, ClearForcesRebuild) {
  Table table = MakeTable(11, 60, 8, true);
  BaseHistogramCache cache;
  const auto builder = [&]() {
    return BuildBaseHistogram(table, AllRows(60), "d", "m");
  };
  ASSERT_TRUE(cache.GetOrBuild("k", builder, nullptr).ok());
  cache.Clear();
  EXPECT_EQ(cache.TotalStats().bytes, 0);
  bool built = false;
  ASSERT_TRUE(cache.GetOrBuild("k", builder, &built).ok());
  EXPECT_TRUE(built);
}

// Many threads racing on overlapping keys: each key builds exactly once,
// every returned histogram is complete and identical.  Exercised under
// -DMUVE_SANITIZE=thread via the tsan ctest label.
TEST(BaseHistogramCacheTest, ConcurrentGetOrBuildBuildsOncePerKey) {
  Table table = MakeTable(12, 800, 25, true);
  BaseHistogramCache cache;
  constexpr int kThreads = 8;
  constexpr int kKeys = 5;
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  std::vector<size_t> fine_bins(kThreads * kKeys, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kKeys; ++k) {
        const std::string key = "key-" + std::to_string(k);
        bool built = false;
        auto entry = cache.GetOrBuild(
            key,
            [&]() {
              builds.fetch_add(1, std::memory_order_relaxed);
              return BuildBaseHistogram(table, AllRows(800), "d", "m");
            },
            &built);
        ASSERT_TRUE(entry.ok());
        fine_bins[static_cast<size_t>(t * kKeys + k)] =
            entry.value()->num_fine_bins();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(builds.load(), kKeys);
  EXPECT_EQ(cache.TotalStats().builds, kKeys);
  EXPECT_EQ(cache.TotalStats().hits, kThreads * kKeys - kKeys);
  for (size_t f : fine_bins) EXPECT_EQ(f, fine_bins[0]);
}

}  // namespace
}  // namespace muve::storage
