file(REMOVE_RECURSE
  "CMakeFiles/fig13_refine_skip.dir/bench/fig13_refine_skip.cpp.o"
  "CMakeFiles/fig13_refine_skip.dir/bench/fig13_refine_skip.cpp.o.d"
  "bench/fig13_refine_skip"
  "bench/fig13_refine_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_refine_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
