#include "storage/column.h"

#include <gtest/gtest.h>

namespace muve::storage {
namespace {

TEST(ColumnTest, TypedAppendAndRead) {
  Column col(ValueType::kInt64);
  col.AppendInt64(5);
  col.AppendInt64(-2);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col.Int64At(0), 5);
  EXPECT_EQ(col.Int64At(1), -2);
  EXPECT_DOUBLE_EQ(col.NumericAt(1), -2.0);
  EXPECT_EQ(col.ValueAt(0), Value(int64_t{5}));
}

TEST(ColumnTest, NullTracking) {
  Column col(ValueType::kDouble);
  col.AppendDouble(1.0);
  col.AppendNull();
  ASSERT_EQ(col.size(), 2u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_TRUE(col.ValueAt(1).is_null());
}

TEST(ColumnTest, AppendValueCoercesIntegralDoubles) {
  Column col(ValueType::kInt64);
  EXPECT_TRUE(col.AppendValue(Value(3.0)).ok());
  EXPECT_EQ(col.Int64At(0), 3);
  EXPECT_FALSE(col.AppendValue(Value(3.5)).ok());
  EXPECT_EQ(col.size(), 1u);
}

TEST(ColumnTest, AppendValueIntIntoDouble) {
  Column col(ValueType::kDouble);
  EXPECT_TRUE(col.AppendValue(Value(int64_t{7})).ok());
  EXPECT_DOUBLE_EQ(col.DoubleAt(0), 7.0);
}

TEST(ColumnTest, AppendValueTypeMismatch) {
  Column col(ValueType::kString);
  EXPECT_FALSE(col.AppendValue(Value(1.0)).ok());
  Column num(ValueType::kDouble);
  EXPECT_FALSE(num.AppendValue(Value("nope")).ok());
}

TEST(ColumnTest, AppendNullValue) {
  Column col(ValueType::kString);
  EXPECT_TRUE(col.AppendValue(Value::Null()).ok());
  EXPECT_TRUE(col.IsNull(0));
}

TEST(ColumnTest, NumericMinMaxSkipNulls) {
  Column col(ValueType::kInt64);
  col.AppendNull();
  col.AppendInt64(4);
  col.AppendInt64(-1);
  col.AppendNull();
  col.AppendInt64(9);
  EXPECT_DOUBLE_EQ(*col.NumericMin(), -1.0);
  EXPECT_DOUBLE_EQ(*col.NumericMax(), 9.0);
}

TEST(ColumnTest, NumericMinMaxErrors) {
  Column str(ValueType::kString);
  str.AppendString("a");
  EXPECT_FALSE(str.NumericMin().ok());
  Column empty(ValueType::kDouble);
  EXPECT_FALSE(empty.NumericMax().ok());
  Column all_null(ValueType::kDouble);
  all_null.AppendNull();
  EXPECT_FALSE(all_null.NumericMin().ok());
}

TEST(ColumnTest, StringStorage) {
  Column col(ValueType::kString);
  col.AppendString("alpha");
  col.AppendString("beta");
  EXPECT_EQ(col.StringAt(1), "beta");
  EXPECT_EQ(col.ValueAt(0), Value("alpha"));
}

}  // namespace
}  // namespace muve::storage
