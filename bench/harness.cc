#include "harness.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"

namespace muve::bench {

int Repetitions() {
  static const int reps = [] {
    const char* env = std::getenv("MUVE_BENCH_REPS");
    if (env != nullptr) {
      const int parsed = std::atoi(env);
      if (parsed >= 1) return parsed;
    }
    return 5;
  }();
  return reps;
}

RunResult RunScheme(const core::Recommender& recommender,
                    const core::SearchOptions& options) {
  RunResult result;
  double total = 0.0;
  const int reps = Repetitions();
  // One unrecorded warmup run per configuration: the first recommendation
  // in a fresh process pays page-fault/allocator costs that would bias
  // the first row of every figure.
  {
    auto warmup = recommender.Recommend(options);
    MUVE_CHECK(warmup.ok()) << options.SchemeName() << ": "
                            << warmup.status().ToString();
  }
  for (int r = 0; r < reps; ++r) {
    auto rec = recommender.Recommend(options);
    MUVE_CHECK(rec.ok()) << options.SchemeName() << ": "
                         << rec.status().ToString();
    total += rec->stats.TotalCostMillis();
    if (r + 1 == reps) {
      result.stats = rec->stats;
      result.recommendation = std::move(rec).value();
    }
  }
  result.cost_ms = total / reps;
  return result;
}

core::SearchOptions LinearLinear() {
  core::SearchOptions options;
  options.horizontal = core::HorizontalStrategy::kLinear;
  options.vertical = core::VerticalStrategy::kLinear;
  return options;
}

core::SearchOptions HcLinear() {
  core::SearchOptions options;
  options.horizontal = core::HorizontalStrategy::kHillClimbing;
  options.vertical = core::VerticalStrategy::kLinear;
  return options;
}

core::SearchOptions MuveLinear() {
  core::SearchOptions options;
  options.horizontal = core::HorizontalStrategy::kMuve;
  options.vertical = core::VerticalStrategy::kLinear;
  return options;
}

core::SearchOptions MuveMuve() {
  core::SearchOptions options;
  options.horizontal = core::HorizontalStrategy::kMuve;
  options.vertical = core::VerticalStrategy::kMuve;
  return options;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  MUVE_CHECK(cells.size() == headers_.size())
      << "row arity " << cells.size() << " != " << headers_.size();
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::cout << "\n" << title << "\n";
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) std::cout << "  ";
    std::cout << common::PadRight(headers_[c], widths[c]);
  }
  std::cout << "\n";
  size_t total = headers_.size() > 1 ? 2 * (headers_.size() - 1) : 0;
  for (size_t w : widths) total += w;
  std::cout << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) std::cout << "  ";
      std::cout << common::PadRight(row[c], widths[c]);
    }
    std::cout << "\n";
  }
  MaybeExportCsv(title);
}

void TablePrinter::MaybeExportCsv(const std::string& title) const {
  const char* dir = std::getenv("MUVE_BENCH_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::string slug;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '-') {
      slug.push_back('-');
    }
    if (slug.size() >= 72) break;
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  if (slug.empty()) slug = "table";
  const std::string path = std::string(dir) + "/" + slug + ".csv";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  auto write_row = [&out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ",";
      // Figure cells never contain commas/quotes; write verbatim.
      out << cells[c];
    }
    out << "\n";
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  std::cout << "(csv: " << path << ")\n";
}

std::string Ms(double value) { return common::FormatDouble(value, 3); }

std::string Pct(double fraction) {
  return common::FormatDouble(fraction * 100.0, 1) + "%";
}

}  // namespace muve::bench
