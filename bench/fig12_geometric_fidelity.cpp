// Figure 12: impact of geometric range partitioning on fidelity (NBA).
//
// Paper findings to reproduce: HC-Linear's fidelity decays as alpha_S
// grows, while all geometric schemes hold ~100% fidelity — the geometric
// domain always contains the small/medium bin counts (2^0, 2^1, ...)
// that dominate utility when usability matters.

#include <iostream>

#include "core/fidelity.h"
#include "core/recommender.h"
#include "data/nba.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "harness.h"

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  using muve::bench::Pct;
  using muve::bench::RunScheme;

  std::cout << "=== Figure 12: geometric partitioning vs fidelity (NBA) "
               "===\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 3, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  muve::bench::TablePrinter table({"alpha_S", "HC-Linear",
                                   "Linear(G)-Linear", "MuVE(G)-Linear",
                                   "MuVE(G)-MuVE"});
  for (const double alpha_s : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    const double alpha_d = 0.8 - alpha_s;
    const muve::core::Weights weights{alpha_d, 0.2, alpha_s};

    // The per-weight optimal baseline: exhaustive search at step 1.
    auto optimal_options = muve::bench::LinearLinear();
    optimal_options.weights = weights;
    const auto optimal = RunScheme(*recommender, optimal_options);

    auto hc = muve::bench::HcLinear();
    auto linear = muve::bench::LinearLinear();
    auto muve_linear = muve::bench::MuveLinear();
    auto muve_muve = muve::bench::MuveMuve();
    hc.weights = weights;
    for (auto* opt : {&linear, &muve_linear, &muve_muve}) {
      opt->weights = weights;
      opt->partition.kind = muve::core::PartitionKind::kGeometric;
    }

    const auto r_hc = RunScheme(*recommender, hc);
    const auto r_lin = RunScheme(*recommender, linear);
    const auto r_ml = RunScheme(*recommender, muve_linear);
    const auto r_mm = RunScheme(*recommender, muve_muve);

    const auto& opt_views = optimal.recommendation.views;
    table.AddRow(
        {muve::common::FormatDouble(alpha_s, 1),
         Pct(muve::core::Fidelity(opt_views, r_hc.recommendation.views)),
         Pct(muve::core::Fidelity(opt_views, r_lin.recommendation.views)),
         Pct(muve::core::Fidelity(opt_views, r_ml.recommendation.views)),
         Pct(muve::core::Fidelity(opt_views, r_mm.recommendation.views))});
  }
  table.Print("Figure 12 — NBA: fidelity vs alpha_S under geometric "
              "partitioning (alpha_A = 0.2, k = 5)");
  return 0;
}
