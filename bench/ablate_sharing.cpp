// Ablation: SeeDB-style shared scans vs MuVE pruning, plus the
// base-histogram prefix-sum cache.
//
// Section II-A cites shared computation among views as an orthogonal
// optimization class.  This bench pits the two against each other on
// both datasets: sharing collapses the |M| x |F| same-dimension queries
// of exhaustive search into one scan per (dimension, bin count), while
// MuVE avoids executing most candidates at all.  They are NOT composable
// (sharing eagerly computes what pruning would skip), so the interesting
// question is which regime favors which — more measures favor sharing,
// usability-heavy weights favor pruning.
//
// The second half ablates the base-histogram cache (the sharing form
// that IS composable with pruning: one finest-granularity scan per
// (A, M) side, every bin count derived by prefix-sum coarsening).  It
// runs horizontal Linear with the cache on vs off and emits a JSON block
// with the row-scan counters; with b_max >= 64 the cache-on run scans
// >= 5x fewer rows while recommending the identical top-k.

#include <cmath>
#include <iostream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/recommender.h"
#include "data/diab.h"
#include "data/nba.h"
#include "harness.h"

namespace {

void RunDataset(const muve::data::Dataset& dataset,
                const muve::core::Weights& weights, const char* regime) {
  using muve::bench::Ms;
  using muve::bench::RunScheme;

  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  auto linear = muve::bench::LinearLinear();
  auto shared = muve::bench::LinearLinear();
  shared.shared_scans = true;
  auto muve = muve::bench::MuveMuve();
  linear.weights = shared.weights = muve.weights = weights;

  const auto r_linear = RunScheme(*recommender, linear);
  const auto r_shared = RunScheme(*recommender, shared);
  const auto r_muve = RunScheme(*recommender, muve);

  muve::bench::TablePrinter table(
      {"scheme", "cost(ms)", "target queries", "comparison queries"});
  table.AddRow({"Linear-Linear", Ms(r_linear.cost_ms),
                std::to_string(r_linear.stats.target_queries),
                std::to_string(r_linear.stats.comparison_queries)});
  table.AddRow({"Linear-Linear(Sh)", Ms(r_shared.cost_ms),
                std::to_string(r_shared.stats.target_queries),
                std::to_string(r_shared.stats.comparison_queries)});
  table.AddRow({"MuVE-MuVE", Ms(r_muve.cost_ms),
                std::to_string(r_muve.stats.target_queries),
                std::to_string(r_muve.stats.comparison_queries)});
  table.Print(dataset.name + ", " + regime + " weights " +
              weights.ToString() + ", mean of " +
              std::to_string(muve::bench::Repetitions()) + " runs");
}

// Base-histogram cache ablation: horizontal Linear with the prefix-sum
// cache on vs off.  Emits a machine-readable JSON block so the row-scan
// saving (and top-k identity) can be tracked across commits.
void RunCacheAblation(const muve::data::Dataset& dataset) {
  using muve::bench::Ms;
  using muve::bench::RunScheme;

  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();
  const int b_max = recommender->space().max_bins_overall();

  auto on = muve::bench::LinearLinear();
  on.base_histogram_cache = true;
  auto off = muve::bench::LinearLinear();
  off.base_histogram_cache = false;

  const auto r_on = RunScheme(*recommender, on);
  const auto r_off = RunScheme(*recommender, off);

  // Identical top-k is part of the cache's contract (pinned harder by
  // tests/core/rebin_differential_test); verify it here too so the bench
  // never reports a speedup bought with a wrong answer.
  bool identical = r_on.recommendation.views.size() ==
                   r_off.recommendation.views.size();
  if (identical) {
    for (size_t i = 0; i < r_on.recommendation.views.size(); ++i) {
      const auto& a = r_on.recommendation.views[i];
      const auto& b = r_off.recommendation.views[i];
      if (a.view.Key() != b.view.Key() || a.bins != b.bins ||
          std::abs(a.utility - b.utility) > 1e-9) {
        identical = false;
        break;
      }
    }
  }
  MUVE_CHECK(identical) << "cache-on top-k diverged from cache-off";

  const double ratio =
      r_on.stats.rows_scanned > 0
          ? static_cast<double>(r_off.stats.rows_scanned) /
                static_cast<double>(r_on.stats.rows_scanned)
          : 0.0;

  muve::bench::TablePrinter table({"base cache", "cost(ms)", "rows scanned",
                                   "base builds", "cache hits"});
  table.AddRow({"off", Ms(r_off.cost_ms),
                std::to_string(r_off.stats.rows_scanned),
                std::to_string(r_off.stats.base_builds),
                std::to_string(r_off.stats.base_cache_hits)});
  table.AddRow({"on", Ms(r_on.cost_ms),
                std::to_string(r_on.stats.rows_scanned),
                std::to_string(r_on.stats.base_builds),
                std::to_string(r_on.stats.base_cache_hits)});
  table.Print(dataset.name + ", Linear-Linear, b_max=" +
              std::to_string(b_max) + ", identical top-k, " +
              muve::common::FormatDouble(ratio, 1) + "x fewer rows scanned");

  std::ostringstream json;
  json << "{\"dataset\": \"" << dataset.name << "\""
       << ", \"scheme\": \"Linear-Linear\""
       << ", \"b_max\": " << b_max
       << ", \"cache_off\": {\"rows_scanned\": " << r_off.stats.rows_scanned
       << ", \"build_rows_scanned\": " << r_off.stats.build_rows_scanned
       << ", \"probe_rows_scanned\": " << r_off.stats.probe_rows_scanned
       << ", \"base_builds\": " << r_off.stats.base_builds
       << ", \"cost_ms\": " << r_off.cost_ms << "}"
       << ", \"cache_on\": {\"rows_scanned\": " << r_on.stats.rows_scanned
       << ", \"build_rows_scanned\": " << r_on.stats.build_rows_scanned
       << ", \"probe_rows_scanned\": " << r_on.stats.probe_rows_scanned
       << ", \"base_builds\": " << r_on.stats.base_builds
       << ", \"base_cache_hits\": " << r_on.stats.base_cache_hits
       << ", \"fused_builds\": " << r_on.stats.fused_builds
       << ", \"morsels\": " << r_on.stats.morsels_dispatched
       << ", \"cost_ms\": " << r_on.cost_ms << "}"
       << ", \"rows_scanned_ratio\": " << ratio
       << ", \"identical_top_k\": " << (identical ? "true" : "false") << "}";
  std::cout << "JSON: " << json.str() << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  std::cout << "=== Ablation: shared scans (SeeDB) vs pruning (MuVE) ===\n";
  const auto diab =
      muve::data::WithWorkloadSize(muve::data::MakeDiabDataset(), 3, 3, 3);
  const auto nba_wide =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 13, 3);
  RunDataset(diab, muve::core::Weights::PaperDefault(), "usability-heavy");
  RunDataset(diab, muve::core::Weights{0.6, 0.2, 0.2}, "deviation-heavy");
  RunDataset(nba_wide, muve::core::Weights{0.6, 0.2, 0.2},
             "deviation-heavy, 13 measures");

  std::cout << "\n=== Ablation: base-histogram prefix-sum cache ===\n";
  RunCacheAblation(diab);
  RunCacheAblation(
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 2, 3, 3));
  return 0;
}
