file(REMOVE_RECURSE
  "CMakeFiles/fig08_scalability.dir/bench/fig08_scalability.cpp.o"
  "CMakeFiles/fig08_scalability.dir/bench/fig08_scalability.cpp.o.d"
  "bench/fig08_scalability"
  "bench/fig08_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
