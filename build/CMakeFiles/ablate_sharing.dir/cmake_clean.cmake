file(REMOVE_RECURSE
  "CMakeFiles/ablate_sharing.dir/bench/ablate_sharing.cpp.o"
  "CMakeFiles/ablate_sharing.dir/bench/ablate_sharing.cpp.o.d"
  "bench/ablate_sharing"
  "bench/ablate_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
