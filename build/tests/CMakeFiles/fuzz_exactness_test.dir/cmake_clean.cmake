file(REMOVE_RECURSE
  "CMakeFiles/fuzz_exactness_test.dir/core/fuzz_exactness_test.cc.o"
  "CMakeFiles/fuzz_exactness_test.dir/core/fuzz_exactness_test.cc.o.d"
  "fuzz_exactness_test"
  "fuzz_exactness_test.pdb"
  "fuzz_exactness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_exactness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
