// Shared helpers for the MuVE test suite.

#ifndef MUVE_TESTS_TEST_UTIL_H_
#define MUVE_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "data/dataset.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace muve::testutil {

// Builds a small deterministic exploration dataset:
//   * dimension `x` with integer values 0..29 (max_bins = 29 wait-free),
//   * dimension `y` with integer values 0..9,
//   * measures `m1` (rises with x for the target subset, flat overall)
//     and `m2` (uniform noise-free ramp),
//   * selector `grp` ('a' = target subset, 'b' = rest).
//
// Small enough that exhaustive Linear-Linear runs in well under a second,
// rich enough that deviation/accuracy/usability all vary with binning.
inline data::Dataset MakeToyDataset() {
  storage::Schema schema({
      {"x", storage::ValueType::kInt64, storage::FieldRole::kDimension},
      {"y", storage::ValueType::kInt64, storage::FieldRole::kDimension},
      {"grp", storage::ValueType::kString, storage::FieldRole::kNone},
      {"m1", storage::ValueType::kDouble, storage::FieldRole::kMeasure},
      {"m2", storage::ValueType::kDouble, storage::FieldRole::kMeasure},
  });
  auto table = std::make_shared<storage::Table>(schema);
  // 90 rows: x cycles 0..29, y cycles 0..9; every third row is 'a'.
  for (int i = 0; i < 90; ++i) {
    const int x = i % 30;
    const int y = i % 10;
    const bool target = i % 3 == 0;
    const double m1 = target ? 1.0 + 0.5 * x : 10.0;
    const double m2 = 1.0 + 0.1 * i;
    const common::Status st = table->AppendRow({
        storage::Value(static_cast<int64_t>(x)),
        storage::Value(static_cast<int64_t>(y)),
        storage::Value(target ? "a" : "b"),
        storage::Value(m1),
        storage::Value(m2),
    });
    MUVE_CHECK(st.ok()) << st.ToString();
  }

  data::Dataset ds;
  ds.name = "toy";
  ds.table = table;
  ds.dimensions = {"x", "y"};
  ds.measures = {"m1", "m2"};
  ds.functions = {storage::AggregateFunction::kSum,
                  storage::AggregateFunction::kAvg};
  ds.query_predicate_sql = "grp = 'a'";
  auto pred = storage::MakeComparison("grp", storage::CompareOp::kEq,
                                      storage::Value("a"));
  auto rows = storage::Filter(*table, pred.get());
  MUVE_CHECK(rows.ok()) << rows.status().ToString();
  ds.target_rows = std::move(rows).value();
  ds.all_rows = storage::AllRows(table->num_rows());
  return ds;
}

}  // namespace muve::testutil

#endif  // MUVE_TESTS_TEST_UTIL_H_
