file(REMOVE_RECURSE
  "CMakeFiles/fig10_additive_fidelity.dir/bench/fig10_additive_fidelity.cpp.o"
  "CMakeFiles/fig10_additive_fidelity.dir/bench/fig10_additive_fidelity.cpp.o.d"
  "bench/fig10_additive_fidelity"
  "bench/fig10_additive_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_additive_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
