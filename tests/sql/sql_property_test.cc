// Property and fuzz tests for the SQL front end:
//   * rendered statements re-parse to the same rendering (round-trip),
//   * randomly generated valid statements parse and execute cleanly,
//   * random byte noise never crashes the lexer/parser (errors only).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "storage/csv.h"

namespace muve::sql {
namespace {

class SqlPropertyTest : public ::testing::Test {
 protected:
  SqlPropertyTest() {
    std::string csv = "a,b,label,m\n";
    common::Rng rng(17);
    for (int i = 0; i < 50; ++i) {
      csv += std::to_string(i % 12) + "," +
             std::to_string(rng.UniformInt(0, 5)) + "," +
             (i % 2 == 0 ? "x" : "y") + "," +
             std::to_string(rng.Uniform(0.0, 9.0)) + "\n";
    }
    auto table = storage::ReadCsvString(csv);
    EXPECT_TRUE(table.ok());
    EXPECT_TRUE(catalog_.RegisterTable("t", std::move(table).value()).ok());
  }

  Catalog catalog_;
};

TEST_F(SqlPropertyTest, RenderedSelectsReParseToSameRendering) {
  const char* statements[] = {
      "SELECT * FROM t",
      "SELECT a, b FROM t WHERE a = 1",
      "SELECT a, SUM(m) FROM t GROUP BY a",
      "SELECT a, SUM(m) AS total FROM t WHERE b <> 2 GROUP BY a",
      "SELECT a, AVG(m) FROM t WHERE a BETWEEN 2 AND 8 GROUP BY a "
      "NUMBER OF BINS 3",
      "SELECT a FROM t WHERE (a = 1 OR b = 2) AND NOT label = 'x' "
      "ORDER BY a DESC LIMIT 5",
      "SELECT COUNT(*) FROM t WHERE m >= 1.5",
  };
  for (const char* sql : statements) {
    auto first = ParseSelect(sql);
    ASSERT_TRUE(first.ok()) << sql;
    const std::string rendered = first->ToString();
    // String literals render unquoted, so re-parse can differ for them;
    // skip render-level comparison when quotes were involved.
    if (std::string(sql).find('\'') != std::string::npos) continue;
    auto second = ParseSelect(rendered);
    ASSERT_TRUE(second.ok()) << "re-parse failed: " << rendered;
    EXPECT_EQ(second->ToString(), rendered);
  }
}

TEST_F(SqlPropertyTest, GeneratedValidStatementsExecute) {
  common::Rng rng(23);
  const char* columns[] = {"a", "b", "m"};
  const char* aggs[] = {"SUM", "AVG", "COUNT", "MIN", "MAX", "STD", "VAR"};
  const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
  for (int trial = 0; trial < 200; ++trial) {
    std::string sql = "SELECT ";
    const bool grouped = rng.Bernoulli(0.5);
    const std::string dim(columns[rng.UniformInt(0, 1)]);
    if (grouped) {
      sql += dim + ", " + aggs[rng.UniformInt(0, 6)] + "(m)";
    } else {
      sql += "*";
    }
    sql += " FROM t";
    if (rng.Bernoulli(0.6)) {
      sql += " WHERE ";
      sql += columns[rng.UniformInt(0, 2)];
      sql += " ";
      sql += ops[rng.UniformInt(0, 5)];
      sql += " ";
      sql += std::to_string(rng.UniformInt(0, 12));
      if (rng.Bernoulli(0.3)) {
        sql += rng.Bernoulli(0.5) ? " AND " : " OR ";
        sql += std::string(columns[rng.UniformInt(0, 2)]) + " >= " +
               std::to_string(rng.UniformInt(0, 6));
      }
    }
    if (grouped) {
      sql += " GROUP BY " + dim;
      if (rng.Bernoulli(0.5)) {
        sql += " NUMBER OF BINS " +
               std::to_string(rng.UniformInt(1, 10));
      }
    } else if (rng.Bernoulli(0.4)) {
      sql += " ORDER BY a";
      if (rng.Bernoulli(0.5)) sql += " DESC";
      sql += " LIMIT " + std::to_string(rng.UniformInt(0, 20));
    }
    auto result = ExecuteSql(sql, catalog_);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  }
}

TEST_F(SqlPropertyTest, RandomNoiseNeverCrashes) {
  common::Rng rng(29);
  const std::string alphabet =
      "SELECT FROM WHERE GROUP BY()*,;=<>'\" 0123456789abcdef\n\t";
  for (int trial = 0; trial < 500; ++trial) {
    std::string noise;
    const int len = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < len; ++i) {
      noise.push_back(
          alphabet[rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) -
                                          1)]);
    }
    // Either parses or returns a clean error; must not crash or hang.
    auto parsed = Parse(noise);
    if (parsed.ok() && parsed->kind == Statement::Kind::kSelect) {
      (void)Execute(parsed->select, catalog_);
    }
  }
  SUCCEED();
}

TEST_F(SqlPropertyTest, TruncatedValidStatementsFailCleanly) {
  const std::string full =
      "SELECT a, SUM(m) FROM t WHERE a BETWEEN 2 AND 8 GROUP BY a "
      "NUMBER OF BINS 3 ORDER BY a LIMIT 5";
  for (size_t cut = 0; cut < full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);
    auto parsed = Parse(prefix);
    if (parsed.ok() && parsed->kind == Statement::Kind::kSelect) {
      (void)Execute(parsed->select, catalog_);
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace muve::sql
