// Chunk-run decomposition of a sorted row set.
//
// Row sets are ascending by construction, so the rows that land in one
// column chunk form a contiguous run of positions.  Scan kernels iterate
// runs instead of rows-with-per-row-chunk-lookup: the chunk (data
// pointer, validity words, zone map) is resolved once per run, and a
// zone map can discard or bulk-accept the entire run before any cell
// byte is touched.

#ifndef MUVE_STORAGE_CHUNK_RUN_H_
#define MUVE_STORAGE_CHUNK_RUN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "storage/table.h"

namespace muve::storage {

// Invokes fn(chunk_index, pos_begin, pos_end) for each maximal run of
// positions in [begin, end) whose rows share one chunk.  `rows` must be
// ascending over the enumerated range; `shift` is the column's
// chunk_shift().  Run boundaries are found by binary search, so a run
// costs O(log run_length) to delimit regardless of its size.
template <typename Fn>
void ForEachChunkRun(const RowSet& rows, size_t begin, size_t end,
                     uint32_t shift, Fn&& fn) {
  size_t p = begin;
  while (p < end) {
    const uint32_t c = rows[p] >> shift;
    // Last row id belonging to chunk c, clamped against uint32 overflow
    // for the final chunk.
    const uint64_t last64 = ((uint64_t{c} + 1) << shift) - 1;
    const uint32_t last =
        static_cast<uint32_t>(std::min<uint64_t>(last64, 0xFFFFFFFFull));
    const size_t run_end = static_cast<size_t>(
        std::upper_bound(rows.begin() + static_cast<ptrdiff_t>(p),
                         rows.begin() + static_cast<ptrdiff_t>(end), last) -
        rows.begin());
    fn(c, p, run_end);
    p = run_end;
  }
}

}  // namespace muve::storage

#endif  // MUVE_STORAGE_CHUNK_RUN_H_
