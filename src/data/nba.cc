#include "data/nba.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "storage/predicate.h"

namespace muve::data {

namespace {

using storage::Field;
using storage::FieldRole;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

constexpr std::array<const char*, 30> kTeams = {
    "GSW", "CLE", "ATL", "HOU", "LAC", "MEM", "SAS", "CHI", "DAL", "POR",
    "TOR", "WAS", "NOP", "OKC", "PHO", "BOS", "MIL", "BRK", "IND", "UTA",
    "MIA", "CHO", "DET", "DEN", "SAC", "ORL", "LAL", "PHI", "NYK", "MIN"};

int64_t ClampInt(double v, int64_t lo, int64_t hi) {
  const int64_t r = static_cast<int64_t>(std::llround(v));
  return std::clamp(r, lo, hi);
}

}  // namespace

Dataset MakeNbaDataset(uint64_t seed) {
  common::Stopwatch setup_timer;
  // 28 attributes matching the shape of basketball-reference's advanced
  // player table: identity (Player, Team, Pos), dimensions (Age, G, MP),
  // and 22 observation measures.
  Schema schema({
      Field("Player", ValueType::kString, FieldRole::kNone),
      Field("Team", ValueType::kString, FieldRole::kNone),
      Field("Pos", ValueType::kString, FieldRole::kCategoricalDimension),
      Field("Age", ValueType::kInt64, FieldRole::kDimension),
      Field("G", ValueType::kInt64, FieldRole::kDimension),
      Field("MP", ValueType::kInt64, FieldRole::kDimension),
      Field("PER", ValueType::kDouble, FieldRole::kMeasure),
      Field("TS_pct", ValueType::kDouble, FieldRole::kMeasure),
      Field("3PAr", ValueType::kDouble, FieldRole::kMeasure),
      Field("FTr", ValueType::kDouble, FieldRole::kMeasure),
      Field("ORB_pct", ValueType::kDouble, FieldRole::kMeasure),
      Field("DRB_pct", ValueType::kDouble, FieldRole::kMeasure),
      Field("TRB_pct", ValueType::kDouble, FieldRole::kMeasure),
      Field("AST_pct", ValueType::kDouble, FieldRole::kMeasure),
      Field("STL_pct", ValueType::kDouble, FieldRole::kMeasure),
      Field("BLK_pct", ValueType::kDouble, FieldRole::kMeasure),
      Field("TOV_pct", ValueType::kDouble, FieldRole::kMeasure),
      Field("USG_pct", ValueType::kDouble, FieldRole::kMeasure),
      Field("OWS", ValueType::kDouble, FieldRole::kMeasure),
      Field("DWS", ValueType::kDouble, FieldRole::kMeasure),
      Field("WS", ValueType::kDouble, FieldRole::kMeasure),
      Field("WS_48", ValueType::kDouble, FieldRole::kMeasure),
      Field("OBPM", ValueType::kDouble, FieldRole::kMeasure),
      Field("DBPM", ValueType::kDouble, FieldRole::kMeasure),
      Field("BPM", ValueType::kDouble, FieldRole::kMeasure),
      Field("VORP", ValueType::kDouble, FieldRole::kMeasure),
      Field("FG", ValueType::kInt64, FieldRole::kMeasure),
      Field("PTS", ValueType::kInt64, FieldRole::kMeasure),
  });

  common::Rng rng(seed);
  auto table = std::make_shared<Table>(schema);
  table->Reserve(kNbaRows);

  for (size_t i = 0; i < kNbaRows; ++i) {
    const std::string team(kTeams[i % kTeams.size()]);
    const bool gsw = team == "GSW";

    // Minutes played: league-wide skewed towards the low end (bench
    // players); the championship GSW roster skews towards high minutes,
    // which is what lets the Example-1 pattern show up in the normalized
    // distributions (Figure 3: GSW mass sits in the high-MP bins).
    double u = rng.NextDouble();
    int64_t mp = ClampInt(1440.0 * std::pow(u, gsw ? 0.45 : 1.4), 0, 1440);
    int64_t g = ClampInt(static_cast<double>(mp) / 17.5 + rng.Normal(0, 6.0),
                         0, 82);
    int64_t age = ClampInt(rng.Normal(26.5, 4.0), 19, 39);

    // Pin dimension endpoints (deterministic ranges -> deterministic
    // view-space size of 27,756).
    if (i == 0) mp = 0;
    if (i == 1) mp = 1440;
    if (i == 2) g = 0;
    if (i == 3) g = 82;
    if (i == 4) age = 19;
    if (i == 5) age = 39;

    const double mp_frac = static_cast<double>(mp) / 1440.0;

    // Example-1 pattern: league 3PAr declines with minutes; GSW stays high.
    double par3;
    if (gsw) {
      par3 = rng.ClampedNormal(0.52, 0.06, 0.0, 0.95);
    } else {
      par3 = rng.ClampedNormal(0.40 - 0.28 * mp_frac, 0.05, 0.0, 0.95);
    }

    const double per = rng.ClampedNormal(12.0 + 6.0 * mp_frac, 4.5, 0.0, 35.0);
    const double ts = rng.ClampedNormal(0.52 + (gsw ? 0.03 : 0.0), 0.05, 0.30,
                                        0.75);
    const double ftr = rng.ClampedNormal(0.28, 0.10, 0.0, 0.9);
    const double orb = rng.ClampedNormal(5.5, 3.0, 0.0, 20.0);
    const double drb = rng.ClampedNormal(14.0, 5.0, 0.0, 40.0);
    const double trb = (orb + drb) / 2.0;
    const double ast = rng.ClampedNormal(13.0, 8.0, 0.0, 50.0);
    const double stl = rng.ClampedNormal(1.5, 0.7, 0.0, 5.0);
    const double blk = rng.ClampedNormal(1.6, 1.2, 0.0, 10.0);
    const double tov = rng.ClampedNormal(13.0, 4.0, 2.0, 30.0);
    const double usg = rng.ClampedNormal(18.5, 5.0, 5.0, 40.0);
    const double ows = rng.ClampedNormal(2.2 * mp_frac, 1.0, -2.0, 12.0);
    const double dws = rng.ClampedNormal(1.6 * mp_frac, 0.7, -1.0, 6.0);
    const double ws = ows + dws;
    const double ws48 =
        mp > 0 ? ws * 48.0 / static_cast<double>(mp) : 0.0;
    const double obpm = rng.ClampedNormal(4.0 * mp_frac - 2.0, 2.2, -10.0, 10.0);
    const double dbpm = rng.ClampedNormal(0.0, 1.8, -6.0, 6.0);
    const double bpm = obpm + dbpm;
    const double vorp =
        std::max(-1.5, (bpm + 2.0) * mp_frac * 2.4 + rng.Normal(0.0, 0.3));
    const int64_t fg =
        ClampInt(4.5 * static_cast<double>(g) * (0.5 + mp_frac), 0, 900);
    const int64_t pts = ClampInt(
        static_cast<double>(fg) * rng.Uniform(2.2, 2.7), 0, 2600);

    const common::Status st = table->AppendRow({
        Value("Player_" + std::to_string(i)),
        Value(team),
        Value(i % 5 == 0   ? "C"
              : i % 5 == 1 ? "PF"
              : i % 5 == 2 ? "SF"
              : i % 5 == 3 ? "SG"
                           : "PG"),
        Value(age),
        Value(g),
        Value(mp),
        Value(per),
        Value(ts),
        Value(par3),
        Value(ftr),
        Value(orb),
        Value(drb),
        Value(trb),
        Value(ast),
        Value(stl),
        Value(blk),
        Value(tov),
        Value(usg),
        Value(ows),
        Value(dws),
        Value(ws),
        Value(ws48),
        Value(obpm),
        Value(dbpm),
        Value(bpm),
        Value(vorp),
        Value(fg),
        Value(pts),
    });
    MUVE_CHECK(st.ok()) << st.ToString();
  }

  Dataset out;
  out.name = "NBA";
  out.table = table;
  out.dimensions = {"MP", "G", "Age"};
  // First three are the default workload; the full list supports the
  // paper's 3..13-measure scalability sweep (Figure 8).
  out.measures = {"3PAr",    "PER",     "TS_pct",  "FTr",     "TRB_pct",
                  "AST_pct", "STL_pct", "BLK_pct", "TOV_pct", "USG_pct",
                  "WS",      "DWS",     "OWS"};
  out.functions = {storage::AggregateFunction::kSum,
                   storage::AggregateFunction::kAvg,
                   storage::AggregateFunction::kCount};
  out.query_predicate_sql = "Team = 'GSW'";

  auto pred = storage::MakeComparison("Team", storage::CompareOp::kEq,
                                      Value("GSW"));
  storage::FilterStats filter_stats;
  auto rows = storage::Filter(*table, pred.get(), nullptr, &filter_stats);
  MUVE_CHECK(rows.ok()) << rows.status().ToString();
  out.target_rows = std::move(rows).value();
  out.all_rows = storage::AllRows(table->num_rows());
  out.predicate_rows_filtered = filter_stats.rows_in - filter_stats.rows_out;
  out.chunks_skipped = filter_stats.chunks_skipped;
  out.setup_time_ms = setup_timer.ElapsedMillis();
  return out;
}

}  // namespace muve::data
