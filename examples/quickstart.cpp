// Quickstart: load a small CSV, query it with the MuVE SQL dialect, and
// get view recommendations — the 60-second tour of the library.
//
//   $ ./build/examples/quickstart
//
// Walks through: (1) loading data, (2) plain SQL, (3) the paper's binned
// aggregation extension (GROUP BY ... NUMBER OF BINS), and (4) the
// RECOMMEND statement running the MuVE-MuVE search.

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/recommend_sql.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "storage/csv.h"
#include "viz/bar_chart.h"

namespace {

// A small sales table: `region` drives the analyst predicate, `day` is a
// numeric dimension, `revenue` and `units` are measures.
constexpr const char* kSalesCsv =
    "day,region,revenue,units\n"
    "1,north,120,12\n"
    "2,north,80,9\n"
    "3,north,100,11\n"
    "5,north,90,8\n"
    "8,north,75,7\n"
    "13,north,60,6\n"
    "21,north,50,5\n"
    "1,south,20,2\n"
    "2,south,25,3\n"
    "3,south,30,3\n"
    "5,south,180,17\n"
    "8,south,210,21\n"
    "13,south,240,22\n"
    "21,south,260,25\n"
    "2,west,40,4\n"
    "5,west,55,5\n"
    "8,west,60,6\n"
    "13,west,45,4\n";

void Fail(const muve::common::Status& status) {
  std::cerr << "quickstart failed: " << status.ToString() << std::endl;
  std::exit(1);
}

}  // namespace

int main() {
  using muve::common::Status;

  // 1. Load CSV data with role annotations (dimension vs measure).
  muve::storage::Schema schema({
      {"day", muve::storage::ValueType::kInt64,
       muve::storage::FieldRole::kDimension},
      {"region", muve::storage::ValueType::kString,
       muve::storage::FieldRole::kNone},
      {"revenue", muve::storage::ValueType::kDouble,
       muve::storage::FieldRole::kMeasure},
      {"units", muve::storage::ValueType::kInt64,
       muve::storage::FieldRole::kMeasure},
  });
  muve::storage::CsvOptions csv_options;
  csv_options.schema = schema;
  auto table = muve::storage::ReadCsvString(kSalesCsv, csv_options);
  if (!table.ok()) Fail(table.status());

  muve::sql::Catalog catalog;
  if (Status st = catalog.RegisterTable("sales", std::move(table).value());
      !st.ok()) {
    Fail(st);
  }

  // 2. Plain SQL over the catalog.
  std::cout << "== SELECT region, SUM(revenue) FROM sales GROUP BY region ==\n";
  auto grouped = muve::sql::ExecuteSql(
      "SELECT region, SUM(revenue) FROM sales GROUP BY region", catalog);
  if (!grouped.ok()) Fail(grouped.status());
  std::cout << grouped->ToString() << "\n";

  // 3. The paper's binned aggregation extension (Section III-A).
  std::cout << "== SELECT day, SUM(revenue) FROM sales WHERE region = "
               "'south' GROUP BY day NUMBER OF BINS 4 ==\n";
  auto binned = muve::sql::ExecuteSql(
      "SELECT day, SUM(revenue) FROM sales WHERE region = 'south' "
      "GROUP BY day NUMBER OF BINS 4",
      catalog);
  if (!binned.ok()) Fail(binned.status());
  std::cout << binned->ToString() << "\n";

  // Render the binned view as a bar chart.
  muve::viz::Series series;
  series.title = "SUM(revenue) BY day, region = 'south', 4 bins";
  for (size_t r = 0; r < binned->num_rows(); ++r) {
    series.labels.push_back("[" + binned->At(r, 0).ToString() + ", " +
                            binned->At(r, 1).ToString() + ")");
    auto v = binned->At(r, 2).ToDouble();
    series.values.push_back(v.ok() ? *v : 0.0);
  }
  std::cout << muve::viz::RenderBarChart(series) << "\n";

  // 4. View recommendation: which views make the 'south' region look most
  //    different from the whole company?
  std::cout << "== RECOMMEND TOP 3 VIEWS FROM sales WHERE region = 'south' "
               "USING MUVE ==\n";
  auto rec = muve::core::RecommendSql(
      "RECOMMEND TOP 3 VIEWS FROM sales WHERE region = 'south' "
      "USING MUVE WEIGHTS (0.4, 0.2, 0.4)",
      catalog);
  if (!rec.ok()) Fail(rec.status());
  std::cout << rec->ToString() << "\n";

  std::cout << "\nDone. Next: examples/nba_exploration and "
               "examples/diabetes_exploration reproduce the paper's "
               "workloads.\n";
  return 0;
}
