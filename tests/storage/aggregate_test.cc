#include "storage/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace muve::storage {
namespace {

double RunAgg(AggregateFunction f, const std::vector<double>& values) {
  AggregateAccumulator acc(f);
  for (double v : values) acc.Add(v);
  return acc.Finish();
}

TEST(AggregateTest, Sum) {
  EXPECT_DOUBLE_EQ(RunAgg(AggregateFunction::kSum, {1, 2, 3.5}), 6.5);
}

TEST(AggregateTest, Count) {
  EXPECT_DOUBLE_EQ(RunAgg(AggregateFunction::kCount, {9, 9, 9, 9}), 4.0);
}

TEST(AggregateTest, Avg) {
  EXPECT_DOUBLE_EQ(RunAgg(AggregateFunction::kAvg, {1, 2, 3}), 2.0);
}

TEST(AggregateTest, MinMax) {
  EXPECT_DOUBLE_EQ(RunAgg(AggregateFunction::kMin, {3, -1, 2}), -1.0);
  EXPECT_DOUBLE_EQ(RunAgg(AggregateFunction::kMax, {3, -1, 2}), 3.0);
}

TEST(AggregateTest, StdVarPopulation) {
  // Values {2,4,4,4,5,5,7,9}: population variance 4, stddev 2.
  const std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(RunAgg(AggregateFunction::kVar, values), 4.0, 1e-12);
  EXPECT_NEAR(RunAgg(AggregateFunction::kStd, values), 2.0, 1e-12);
}

TEST(AggregateTest, SingleValueStdVarZero) {
  EXPECT_DOUBLE_EQ(RunAgg(AggregateFunction::kVar, {5.0}), 0.0);
  EXPECT_DOUBLE_EQ(RunAgg(AggregateFunction::kStd, {5.0}), 0.0);
}

// Every function finishes to 0 on an empty group (empty bins render as
// zero-height bars).
class EmptyGroupTest
    : public ::testing::TestWithParam<AggregateFunction> {};

TEST_P(EmptyGroupTest, FinishesToZero) {
  AggregateAccumulator acc(GetParam());
  EXPECT_DOUBLE_EQ(acc.Finish(), 0.0);
  EXPECT_EQ(acc.count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, EmptyGroupTest,
    ::testing::ValuesIn(AllAggregateFunctions()),
    [](const ::testing::TestParamInfo<AggregateFunction>& info) {
      return AggregateName(info.param);
    });

TEST(AggregateNameTest, RoundTrip) {
  for (const AggregateFunction f : AllAggregateFunctions()) {
    auto parsed = AggregateFromName(AggregateName(f));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, f);
  }
}

TEST(AggregateNameTest, Aliases) {
  EXPECT_EQ(*AggregateFromName("stddev"), AggregateFunction::kStd);
  EXPECT_EQ(*AggregateFromName("Variance"), AggregateFunction::kVar);
  EXPECT_EQ(*AggregateFromName("mean"), AggregateFunction::kAvg);
  EXPECT_FALSE(AggregateFromName("median").ok());
}

}  // namespace
}  // namespace muve::storage
