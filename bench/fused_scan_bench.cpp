// Extension bench: the fused morsel-parallel scan engine.
//
// Two questions, both on horizontal Linear (the scheme that executes
// every candidate, so build costs dominate and the engine's effect is
// cleanest):
//
//   1. Row-scan savings.  With the base-histogram cache on but the fused
//      prewarm OFF, every (dimension, measure) pair still pays its own
//      full-row-set build pass on first touch — |A| x |M| traversals per
//      side.  With the prewarm ON, a single fused pass per side builds
//      all of them in one traversal.  The bench runs both on NBA and
//      DIAB, checks the recommended top-k is identical view-for-view,
//      and reports the rows_scanned ratio (the build/probe split makes
//      the attribution explicit: the savings are entirely on the build
//      side).
//
//   2. Thread scaling.  The fused pass splits its row set into morsels
//      dispatched on the shared pool.  The bench sweeps 1/2/4/8 threads
//      with a deliberately small morsel size (so even the bundled
//      datasets split into multiple morsels) and verifies the top-k is
//      bit-stable across thread counts — the determinism contract: the
//      morsel partitioning, never the worker schedule, fixes the output.
//      Speedup numbers need real cores; on a single-core host the
//      correctness columns are the meaningful part (same caveat as
//      parallel_scaling).
//
// `--smoke` runs the toy dataset only with a reduced thread sweep — the
// CI smoke step uses this to keep the engine's end-to-end path exercised
// on every push without benchmark-scale runtimes.
//
// A machine-readable JSON block follows the tables for tracking across
// commits.

#include <cmath>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/recommender.h"
#include "data/diab.h"
#include "data/nba.h"
#include "data/toy.h"
#include "harness.h"

namespace {

bool SameTopK(const muve::core::Recommendation& a,
              const muve::core::Recommendation& b) {
  if (a.views.size() != b.views.size()) return false;
  for (size_t i = 0; i < a.views.size(); ++i) {
    const auto& va = a.views[i];
    const auto& vb = b.views[i];
    if (va.view.Key() != vb.view.Key() || va.bins != vb.bins ||
        std::abs(va.utility - vb.utility) > 1e-9) {
      return false;
    }
  }
  return true;
}

// One dataset: per-pair builds (prewarm off) vs one fused pass per side
// (prewarm on), then the thread sweep.  Appends this dataset's JSON
// object to `json`.
void RunDataset(const muve::data::Dataset& dataset, bool smoke,
                const std::vector<int>& thread_counts, std::ostream& json) {
  using muve::bench::Ms;
  using muve::bench::RunScheme;

  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  // per-pair: the pre-fused-engine behavior — every (A, M) pair pays its
  // own full build pass on first touch.  dim-batched: prewarm off but a
  // miss fuses every missing pair sharing its dimension (|A| passes per
  // side).  fused: one prewarm pass per side.
  auto per_pair = muve::bench::LinearLinear();
  per_pair.base_histogram_cache = true;
  per_pair.fused_prewarm = false;
  per_pair.fused_miss_batching = false;
  auto dim_batched = muve::bench::LinearLinear();
  dim_batched.base_histogram_cache = true;
  dim_batched.fused_prewarm = false;
  dim_batched.fused_miss_batching = true;
  auto fused = muve::bench::LinearLinear();
  fused.base_histogram_cache = true;
  fused.fused_prewarm = true;

  const auto r_pair = RunScheme(*recommender, per_pair);
  const auto r_dim = RunScheme(*recommender, dim_batched);
  const auto r_fused = RunScheme(*recommender, fused);
  MUVE_CHECK(SameTopK(r_pair.recommendation, r_dim.recommendation))
      << dataset.name << ": dim-batched top-k diverged from per-pair";

  // The fused pass must never buy its savings with a different answer.
  MUVE_CHECK(SameTopK(r_pair.recommendation, r_fused.recommendation))
      << dataset.name << ": fused prewarm top-k diverged from per-pair";

  const double ratio =
      r_fused.stats.rows_scanned > 0
          ? static_cast<double>(r_pair.stats.rows_scanned) /
                static_cast<double>(r_fused.stats.rows_scanned)
          : 0.0;
  // Acceptance floor on the bundled datasets (toy is too small a
  // workload to clear it, so the smoke run only reports).
  if (!smoke) {
    MUVE_CHECK(ratio >= 5.0)
        << dataset.name << ": expected >= 5x fewer rows scanned, got "
        << ratio << "x";
  }

  muve::bench::TablePrinter table({"build mode", "cost(ms)", "rows scanned",
                                   "build rows", "probe rows", "build passes",
                                   "fused passes", "morsels"});
  table.AddRow({"per-pair", Ms(r_pair.cost_ms),
                std::to_string(r_pair.stats.rows_scanned),
                std::to_string(r_pair.stats.build_rows_scanned),
                std::to_string(r_pair.stats.probe_rows_scanned),
                std::to_string(r_pair.stats.base_builds),
                std::to_string(r_pair.stats.fused_builds),
                std::to_string(r_pair.stats.morsels_dispatched)});
  table.AddRow({"dim-batched", Ms(r_dim.cost_ms),
                std::to_string(r_dim.stats.rows_scanned),
                std::to_string(r_dim.stats.build_rows_scanned),
                std::to_string(r_dim.stats.probe_rows_scanned),
                std::to_string(r_dim.stats.base_builds),
                std::to_string(r_dim.stats.fused_builds),
                std::to_string(r_dim.stats.morsels_dispatched)});
  table.AddRow({"fused", Ms(r_fused.cost_ms),
                std::to_string(r_fused.stats.rows_scanned),
                std::to_string(r_fused.stats.build_rows_scanned),
                std::to_string(r_fused.stats.probe_rows_scanned),
                std::to_string(r_fused.stats.base_builds),
                std::to_string(r_fused.stats.fused_builds),
                std::to_string(r_fused.stats.morsels_dispatched)});
  table.Print(dataset.name + ", Linear-Linear, identical top-k, " +
              muve::common::FormatDouble(ratio, 1) + "x fewer rows scanned");

  json << "\n    {\"dataset\": \"" << dataset.name << "\""
       << ", \"scheme\": \"Linear-Linear\""
       << ", \"per_pair\": {\"rows_scanned\": " << r_pair.stats.rows_scanned
       << ", \"build_rows_scanned\": " << r_pair.stats.build_rows_scanned
       << ", \"probe_rows_scanned\": " << r_pair.stats.probe_rows_scanned
       << ", \"base_builds\": " << r_pair.stats.base_builds
       << ", \"cost_ms\": " << r_pair.cost_ms << "}"
       << ",\n     \"dim_batched\": {\"rows_scanned\": "
       << r_dim.stats.rows_scanned
       << ", \"build_rows_scanned\": " << r_dim.stats.build_rows_scanned
       << ", \"probe_rows_scanned\": " << r_dim.stats.probe_rows_scanned
       << ", \"base_builds\": " << r_dim.stats.base_builds
       << ", \"fused_builds\": " << r_dim.stats.fused_builds
       << ", \"morsels\": " << r_dim.stats.morsels_dispatched
       << ", \"cost_ms\": " << r_dim.cost_ms << "}"
       << ",\n     \"fused\": {\"rows_scanned\": " << r_fused.stats.rows_scanned
       << ", \"build_rows_scanned\": " << r_fused.stats.build_rows_scanned
       << ", \"probe_rows_scanned\": " << r_fused.stats.probe_rows_scanned
       << ", \"base_builds\": " << r_fused.stats.base_builds
       << ", \"fused_builds\": " << r_fused.stats.fused_builds
       << ", \"morsels\": " << r_fused.stats.morsels_dispatched
       << ", \"cost_ms\": " << r_fused.cost_ms << "}"
       << ",\n     \"rows_scanned_ratio\": " << ratio
       << ", \"identical_top_k\": true";

  // Thread sweep: fused prewarm with a small morsel size so the bundled
  // row sets actually split, verifying thread-count invariance end to
  // end (latency speedup requires real cores).
  muve::bench::TablePrinter sweep({"threads", "elapsed(ms)", "speedup",
                                   "morsels", "matches 1-thread top-k"});
  json << ",\n     \"thread_sweep\": [";
  muve::core::Recommendation reference;
  double elapsed_1 = 0.0;
  for (size_t t = 0; t < thread_counts.size(); ++t) {
    const int threads = thread_counts[t];
    muve::core::SearchOptions options = fused;
    options.num_threads = threads;
    options.fused_morsel_size = 128;  // force multi-morsel fused passes
    MUVE_CHECK(recommender->Recommend(options).ok());  // warmup
    muve::common::Stopwatch timer;
    auto rec = recommender->Recommend(options);
    const double elapsed = timer.ElapsedMillis();
    MUVE_CHECK(rec.ok()) << rec.status().ToString();
    if (threads == thread_counts.front()) {
      elapsed_1 = elapsed;
      reference = *rec;
    }
    const bool identical = SameTopK(*rec, reference);
    MUVE_CHECK(identical)
        << dataset.name << ": top-k changed at " << threads << " threads";
    sweep.AddRow({std::to_string(threads), Ms(elapsed),
                  muve::common::FormatDouble(elapsed_1 / elapsed, 2) + "x",
                  std::to_string(rec->stats.morsels_dispatched),
                  identical ? "yes" : "NO"});
    json << (t == 0 ? "" : ", ") << "{\"threads\": " << threads
         << ", \"elapsed_ms\": " << elapsed
         << ", \"workers\": " << rec->stats.num_workers
         << ", \"morsels\": " << rec->stats.morsels_dispatched
         << ", \"matches_serial\": " << (identical ? "true" : "false") << "}";
  }
  json << "]}";
  sweep.Print(dataset.name +
              ", fused prewarm thread sweep (morsel_size=128)");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = muve::bench::InitBench(&argc, argv).smoke;

  std::cout << "=== Extension: fused morsel-parallel scan engine ===\n";
  std::ostringstream json;
  json << "{\n  \"hardware_threads\": "
       << std::thread::hardware_concurrency()
       << ",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"datasets\": [";

  if (smoke) {
    RunDataset(muve::data::MakeToyDataset(), smoke, {1, 2}, json);
  } else {
    const std::vector<int> threads = {1, 2, 4, 8};
    bool first = true;
    for (const auto& dataset :
         {muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 13, 3),
          muve::data::WithWorkloadSize(muve::data::MakeDiabDataset(), 3, 3,
                                       3)}) {
      if (!first) json << ",";
      first = false;
      RunDataset(dataset, smoke, threads, json);
    }
  }
  json << "\n  ]\n}";

  std::cout << "JSON:\n" << json.str() << "\n\n";
  std::cout << "(hardware threads available: "
            << std::thread::hardware_concurrency()
            << "; the thread-sweep speedup column needs real cores — on a "
               "single-core host it stays ~1x and the 'matches 1-thread "
               "top-k' column is the claim under test)\n";
  return 0;
}
