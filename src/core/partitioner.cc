#include "core/partitioner.h"

#include "common/logging.h"

namespace muve::core {

std::vector<int> BinDomain(const PartitionSpec& spec, int max_bins) {
  MUVE_CHECK(max_bins >= 1) << "max_bins must be >= 1";
  MUVE_CHECK(spec.step >= 1) << "partition step must be >= 1";
  std::vector<int> domain;
  switch (spec.kind) {
    case PartitionKind::kAdditive:
      for (int b = 1; b <= max_bins; b += spec.step) domain.push_back(b);
      break;
    case PartitionKind::kGeometric:
      for (int64_t b = 1; b <= max_bins; b *= 2) {
        domain.push_back(static_cast<int>(b));
      }
      break;
  }
  return domain;
}

}  // namespace muve::core
