# Empty dependencies file for binned_group_by_test.
# This may be replaced when dependencies are built.
