file(REMOVE_RECURSE
  "CMakeFiles/ablate_distance.dir/bench/ablate_distance.cpp.o"
  "CMakeFiles/ablate_distance.dir/bench/ablate_distance.cpp.o.d"
  "bench/ablate_distance"
  "bench/ablate_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
