#include "core/pareto.h"

namespace muve::core {

bool Dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool ge = a.deviation >= b.deviation && a.accuracy >= b.accuracy &&
                  a.usability >= b.usability;
  const bool gt = a.deviation > b.deviation || a.accuracy > b.accuracy ||
                  a.usability > b.usability;
  return ge && gt;
}

std::vector<ParetoPoint> ParetoFront(
    const std::vector<ParetoPoint>& points) {
  std::vector<ParetoPoint> front;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i == j) continue;
      if (Dominates(points[j], points[i])) {
        dominated = true;
      } else if (j < i && points[j].deviation == points[i].deviation &&
                 points[j].accuracy == points[i].accuracy &&
                 points[j].usability == points[i].usability) {
        // Exact duplicates: keep only the first occurrence.
        dominated = true;
      }
    }
    if (!dominated) front.push_back(points[i]);
  }
  return front;
}

common::Result<std::vector<ParetoPoint>> ComputeParetoFront(
    const data::Dataset& dataset, DistanceKind distance) {
  MUVE_ASSIGN_OR_RETURN(ExplorationSession session,
                        ExplorationSession::Create(dataset));
  MUVE_ASSIGN_OR_RETURN(std::vector<ScoredView> candidates,
                        session.AllCandidates(distance));
  std::vector<ParetoPoint> points;
  points.reserve(candidates.size());
  for (const ScoredView& sv : candidates) {
    ParetoPoint p;
    p.view = sv.view;
    p.bins = sv.bins;
    p.deviation = sv.deviation;
    p.accuracy = sv.accuracy;
    p.usability = sv.usability;
    points.push_back(std::move(p));
  }
  return ParetoFront(points);
}

}  // namespace muve::core
