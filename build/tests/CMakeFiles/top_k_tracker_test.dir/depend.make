# Empty dependencies file for top_k_tracker_test.
# This may be replaced when dependencies are built.
