// CSV import/export for tables.
//
// The reader supports a header row, quoted fields, type inference
// (int64 -> double -> string, with empty fields as NULL), and an optional
// caller-provided schema for exact typing and role annotations.

#ifndef MUVE_STORAGE_CSV_H_
#define MUVE_STORAGE_CSV_H_

#include <optional>
#include <string>

#include "common/exec_context.h"
#include "common/status.h"
#include "storage/table.h"

namespace muve::storage {

struct CsvOptions {
  char delimiter = ',';
  // When set, the file's columns must match the schema by (case-
  // insensitive) header name; cells parse to the schema's types.
  // When unset, types are inferred per column.
  std::optional<Schema> schema;
  // Input-size ceiling.  Inputs larger than this return IoError before
  // any parsing starts.  The default (2 GiB) is the point where size_t
  // offsets into the backing string stop being representable as the
  // 32-bit offsets some downstream consumers keep, so the guard turns a
  // would-be silent truncation into a typed, testable refusal.  Tests
  // lower it to exercise the path without allocating gigabytes.
  size_t max_bytes = size_t{2} << 30;
  // Execution control: the readers poll this every few thousand rows
  // while parsing and again while materializing columns, and abort with
  // the context's expiry Status once it expires — a deadline or cancel
  // interrupts a multi-gigabyte load mid-file instead of after it.
  // Null = unbounded (default).
  common::ExecContext* exec = nullptr;
};

// Load accounting: filled by the readers when passed (never required).
// `parse_ms` covers parse + type inference + column materialization (for
// ReadCsvFile, file I/O too); consumers fold it into ExecStats'
// setup-time accounting.
struct CsvLoadStats {
  int64_t rows = 0;
  int64_t bytes = 0;
  double parse_ms = 0.0;
};

// Parses CSV text into a table.  The first row is the header.  Record
// storage is pre-sized from the text's newline count, so parsing large
// inputs does not repeatedly regrow the record vector.
common::Result<Table> ReadCsvString(const std::string& text,
                                    const CsvOptions& options = {},
                                    CsvLoadStats* stats = nullptr);

// Reads a CSV file from disk.  The file is read in one pre-sized
// allocation (sized by the file length) instead of stream-buffer chunks.
common::Result<Table> ReadCsvFile(const std::string& path,
                                  const CsvOptions& options = {},
                                  CsvLoadStats* stats = nullptr);

// Serializes `table` as CSV (header + rows).  Fields containing the
// delimiter, quotes, or newlines are quoted.
std::string WriteCsvString(const Table& table, char delimiter = ',');

// Writes `table` to `path`.
common::Status WriteCsvFile(const Table& table, const std::string& path,
                            char delimiter = ',');

}  // namespace muve::storage

#endif  // MUVE_STORAGE_CSV_H_
