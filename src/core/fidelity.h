// The fidelity metric (Section V):
//
//   F = 1 - (U(V_opt) - U(V_rec)) / U(V_opt)
//
// where U(.) sums the utilities of a recommendation set.  V_opt comes from
// a baseline optimal scheme (Linear-Linear at step 1), V_rec from the
// approximate scheme under evaluation.

#ifndef MUVE_CORE_FIDELITY_H_
#define MUVE_CORE_FIDELITY_H_

#include <cstddef>
#include <vector>

#include "core/candidate.h"

namespace muve::core {

// Sum of utilities of a recommendation set (span-style view; the vector
// overload below forwards here).
double TotalUtility(const ScoredView* views, size_t n);

// Sum of utilities of a recommendation set.
double TotalUtility(const std::vector<ScoredView>& views);

// Fidelity of `recommended` against the optimal set.  Returns 1.0 when
// the optimal set has zero total utility (nothing to lose), and clamps
// into [0, 1] (an approximate scheme cannot exceed the optimum; tiny
// floating-point overshoots are truncated).
double Fidelity(const std::vector<ScoredView>& optimal,
                const std::vector<ScoredView>& recommended);

}  // namespace muve::core

#endif  // MUVE_CORE_FIDELITY_H_
