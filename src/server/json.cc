#include "server/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/parse.h"

namespace muve::server {

namespace {

using common::Result;
using common::Status;

constexpr int kMaxDepth = 64;

void AbortKind() {
  // Kind-mismatched access is a programming error, same contract as
  // Result::value() on an error.
  std::abort();
}

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::bool_value() const {
  if (kind_ != Kind::kBool) AbortKind();
  return bool_;
}

int64_t JsonValue::int_value() const {
  if (kind_ != Kind::kInt) AbortKind();
  return int_;
}

double JsonValue::number_value() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ == Kind::kDouble) return double_;
  AbortKind();
  return 0.0;
}

const std::string& JsonValue::string_value() const {
  if (kind_ != Kind::kString) AbortKind();
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  if (kind_ != Kind::kArray) AbortKind();
  return array_;
}

std::vector<JsonValue>& JsonValue::array() {
  if (kind_ != Kind::kArray) AbortKind();
  return array_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::kObject) AbortKind();
  return members_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonValue::Set(std::string_view key, JsonValue value) {
  if (kind_ != Kind::kObject) AbortKind();
  for (Member& m : members_) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

void JsonValue::Append(JsonValue value) {
  if (kind_ != Kind::kArray) AbortKind();
  array_.push_back(std::move(value));
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void WriteEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void WriteDouble(double d, std::string* out) {
  // inf/nan have no RFC 8259 spelling — to_chars/%.17g would emit
  // "inf"/"nan" and the frame would be unparseable by our own strict
  // parser.  Serialize them as null: deterministic, valid JSON, and the
  // absence of a number is exactly what a non-finite stat means.
  if (!std::isfinite(d)) {
    *out += "null";
    return;
  }
  // Shortest round-trip form: deterministic, exact, locale-free.  A
  // to_chars form with no '.', 'e' or 'E' (e.g. "42") would re-parse as
  // an int64 — append ".0" so doubles stay doubles across a round trip.
  char buf[40];
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf) - 2, d);
  size_t len = ec == std::errc() ? static_cast<size_t>(ptr - buf) : 0;
#else
  size_t len = 0;
#endif
  if (len == 0) {
    len = static_cast<size_t>(
        std::snprintf(buf, sizeof(buf) - 2, "%.17g", d));
  }
  bool plain_integer = true;
  for (size_t i = 0; i < len; ++i) {
    if (buf[i] != '-' && !(buf[i] >= '0' && buf[i] <= '9')) {
      plain_integer = false;
      break;
    }
  }
  out->append(buf, len);
  if (plain_integer) *out += ".0";
}

void WriteValue(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.bool_value() ? "true" : "false";
      break;
    case JsonValue::Kind::kInt:
      *out += std::to_string(v.int_value());
      break;
    case JsonValue::Kind::kDouble:
      WriteDouble(v.number_value(), out);
      break;
    case JsonValue::Kind::kString:
      WriteEscaped(v.string_value(), out);
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& e : v.array()) {
        if (!first) out->push_back(',');
        first = false;
        WriteValue(e, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        WriteEscaped(key, out);
        out->push_back(':');
        WriteValue(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string JsonValue::Write() const {
  std::string out;
  WriteValue(*this, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    MUVE_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after JSON value");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::ParseError("JSON: " + what + " at byte " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        MUVE_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      MUVE_RETURN_IF_ERROR(ParseString(&key));
      if (out->Find(key) != nullptr) {
        return Fail("duplicate object key \"" + key + "\"");
      }
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      JsonValue value;
      MUVE_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      JsonValue value;
      MUVE_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
      value = value * 16 + digit;
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\\'
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp;
          MUVE_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!ConsumeLiteral("\\u")) return Fail("unpaired surrogate");
            uint32_t low;
            MUVE_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid surrogate pair");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // RFC 8259 is stricter than the shared token parser: the integer
    // part must start with a digit ("+1" and ".5" are invalid JSON) and
    // a leading zero cannot be followed by more digits ("01").
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Fail("invalid value");
    }
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Fail("leading zero in number");
    }
    // Scan exactly the RFC 8259 grammar — int [frac] [exp] — instead of
    // greedily grabbing number-ish bytes: the shared token parser below
    // tolerates trailing-dot forms ("1.", "1.e5") that are not JSON, so
    // the frac/exp digit requirements must be enforced here.
    auto digit = [this] {
      return pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9';
    };
    bool is_double = false;
    while (digit()) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      if (!digit()) return Fail("expected digit after '.' in number");
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit()) return Fail("expected digit in exponent");
      while (digit()) ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    // Value decode goes through the shared strict parser, so range
    // handling (int64 overflow, double overflow/underflow) matches CLI
    // flags and CSV cells exactly.
    if (!is_double) {
      auto parsed = common::ParseInt64Strict(token);
      if (!parsed.ok()) {
        return Status::ParseError("JSON: " + parsed.status().message());
      }
      *out = JsonValue::Int(*parsed);
      return Status::OK();
    }
    auto parsed = common::ParseDoubleStrict(token);
    if (!parsed.ok()) {
      return Status::ParseError("JSON: " + parsed.status().message());
    }
    *out = JsonValue::Double(*parsed);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

common::Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace muve::server
