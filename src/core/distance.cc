#include "core/distance.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace muve::core {

namespace {

constexpr double kSmoothingEpsilon = 1e-9;

double Euclidean(const std::vector<double>& p, const std::vector<double>& q) {
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double d = p[i] - q[i];
    sum += d * d;
  }
  return std::sqrt(sum) / std::sqrt(2.0);
}

double Manhattan(const std::vector<double>& p, const std::vector<double>& q) {
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) sum += std::abs(p[i] - q[i]);
  return sum / 2.0;
}

double Chebyshev(const std::vector<double>& p, const std::vector<double>& q) {
  double best = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    best = std::max(best, std::abs(p[i] - q[i]));
  }
  return best;
}

double EarthMovers(const std::vector<double>& p,
                   const std::vector<double>& q) {
  if (p.size() <= 1) return 0.0;
  // 1-D EMD with unit ground distance between adjacent bins equals the
  // sum of absolute prefix-sum differences; max is (b - 1) (all mass moved
  // across the whole axis).
  double cum = 0.0;
  double total = 0.0;
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    cum += p[i] - q[i];
    total += std::abs(cum);
  }
  return total / static_cast<double>(p.size() - 1);
}

double KlOneWay(const std::vector<double>& p, const std::vector<double>& q) {
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] + kSmoothingEpsilon;
    const double qi = q[i] + kSmoothingEpsilon;
    sum += pi * std::log(pi / qi);
  }
  return std::max(0.0, sum);
}

double KlSymmetric(const std::vector<double>& p,
                   const std::vector<double>& q) {
  const double j = KlOneWay(p, q) + KlOneWay(q, p);
  // Squash the unbounded Jeffreys divergence into [0, 1).
  return 1.0 - std::exp(-j / 2.0);
}

double JensenShannon(const std::vector<double>& p,
                     const std::vector<double>& q) {
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] + kSmoothingEpsilon;
    const double qi = q[i] + kSmoothingEpsilon;
    const double mi = (pi + qi) / 2.0;
    sum += 0.5 * pi * std::log2(pi / mi) + 0.5 * qi * std::log2(qi / mi);
  }
  return std::clamp(sum, 0.0, 1.0);
}

}  // namespace

const char* DistanceKindName(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kEuclidean:
      return "EUCLIDEAN";
    case DistanceKind::kManhattan:
      return "MANHATTAN";
    case DistanceKind::kChebyshev:
      return "CHEBYSHEV";
    case DistanceKind::kEarthMovers:
      return "EMD";
    case DistanceKind::kKlDivergence:
      return "KL";
    case DistanceKind::kJensenShannon:
      return "JS";
  }
  return "?";
}

common::Result<DistanceKind> DistanceKindFromName(std::string_view name) {
  const std::string upper = common::ToUpper(name);
  if (upper == "EUCLIDEAN" || upper == "L2") return DistanceKind::kEuclidean;
  if (upper == "MANHATTAN" || upper == "L1" || upper == "TV") {
    return DistanceKind::kManhattan;
  }
  if (upper == "CHEBYSHEV" || upper == "LINF") return DistanceKind::kChebyshev;
  if (upper == "EMD" || upper == "EARTHMOVERS") {
    return DistanceKind::kEarthMovers;
  }
  if (upper == "KL" || upper == "KLDIVERGENCE") {
    return DistanceKind::kKlDivergence;
  }
  if (upper == "JS" || upper == "JENSENSHANNON") {
    return DistanceKind::kJensenShannon;
  }
  return common::Status::NotFound("unknown distance function: " +
                                  std::string(name));
}

double Distance(DistanceKind kind, const std::vector<double>& p,
                const std::vector<double>& q) {
  MUVE_DCHECK(p.size() == q.size()) << "distribution length mismatch";
  if (p.empty()) return 0.0;
  switch (kind) {
    case DistanceKind::kEuclidean:
      return Euclidean(p, q);
    case DistanceKind::kManhattan:
      return Manhattan(p, q);
    case DistanceKind::kChebyshev:
      return Chebyshev(p, q);
    case DistanceKind::kEarthMovers:
      return EarthMovers(p, q);
    case DistanceKind::kKlDivergence:
      return KlSymmetric(p, q);
    case DistanceKind::kJensenShannon:
      return JensenShannon(p, q);
  }
  return 0.0;
}

}  // namespace muve::core
