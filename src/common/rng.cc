#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace muve::common {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MUVE_CHECK(lo <= hi) << "UniformInt requires lo <= hi, got " << lo << ", "
                       << hi;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = NextUint64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::ClampedNormal(double mean, double stddev, double lo, double hi) {
  double v = Normal(mean, stddev);
  if (v < lo) v = lo;
  if (v > hi) v = hi;
  return v;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  MUVE_CHECK(!weights.empty()) << "WeightedIndex requires non-empty weights";
  double total = 0.0;
  for (double w : weights) {
    MUVE_DCHECK(w >= 0.0) << "negative weight";
    total += w;
  }
  if (total <= 0.0) return 0;
  double draw = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;
}

double Rng::Exponential(double rate) {
  MUVE_CHECK(rate > 0.0) << "Exponential rate must be positive";
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -std::log(u) / rate;
}

}  // namespace muve::common
