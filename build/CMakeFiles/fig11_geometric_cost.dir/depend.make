# Empty dependencies file for fig11_geometric_cost.
# This may be replaced when dependencies are built.
