# Empty dependencies file for view_space_test.
# This may be replaced when dependencies are built.
