// Incremental ingest: patch cached base histograms with O(new rows)
// work after a Catalog::Append.
//
// Base histograms are additive over disjoint row sets (count/sum/sum_sq
// per distinct dimension value), so appending rows never requires a
// rescan of the old rows: build partial histograms over JUST the
// appended range with the same fused pass the cold path uses, then
// merge them into the cached bases (MergeBaseHistograms — sorted
// dictionary union + moment addition).  Pairs that are not cached are
// left alone; they will be built cold on first demand, over the full
// (already-appended) table, and are correct by construction.
//
// The epoch contract (see storage/catalog.h): the cache keys carry the
// table's base_epoch, which Append PRESERVES — that is what lets the
// patched entries keep serving.  data_epoch bumps per append and is
// what selection-vector and result caches key on, so those invalidate.

#ifndef MUVE_STORAGE_INGEST_H_
#define MUVE_STORAGE_INGEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "storage/base_histogram_cache.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace muve::storage {

// One delta-patch pass over the rows appended by a single
// Catalog::Append.  `table` is the POST-append snapshot; the appended
// rows occupy [rows_before, rows_before + rows_appended).
struct IngestDeltaRequest {
  const Table* table = nullptr;
  size_t rows_before = 0;
  size_t rows_appended = 0;

  // The workload's (A, M) grid.  Only pairs whose base histogram is
  // already cached (under `key_prefix` + "t|..."/"c|...") are patched.
  std::vector<std::string> dimensions;
  std::vector<std::string> measures;

  // The analyst predicate selecting D_Q, bound against `table`; null
  // means no target-side bases exist (comparison side still patches).
  const Predicate* target_predicate = nullptr;

  // Cache-key prefix the owning server/evaluator uses (e.g.
  // "dataset\x01epoch\x01"); the pair keys "t|A|M" / "c|A|M" are
  // appended to it.  Empty for a bare evaluator-style cache.
  std::string key_prefix;

  BaseHistogramCache* cache = nullptr;
  common::ThreadPool* pool = nullptr;
  size_t morsel_size = 0;  // 0 = kDefaultFusedMorselSize
  common::ExecContext* exec = nullptr;
};

// Accounting for one delta-patch pass.
struct IngestDeltaStats {
  int64_t pairs_considered = 0;  // (A, M) pairs eligible for patching
  int64_t delta_merges = 0;      // cached entries actually patched
  int64_t rows_scanned = 0;      // delta rows traversed by fused passes
  int64_t target_delta_rows = 0;  // appended rows satisfying T
  int64_t chunks_skipped = 0;     // zone-map skips while filtering them
};

// Runs the delta patch.  Never fails the append itself: a fused pass
// aborted by `exec` (or any build error) simply leaves the affected
// entries unpatched — the caller must then DROP those stale entries
// (or bump the epoch) because they no longer describe the table.  The
// returned status reports that condition; OK means every cached pair
// either merged its delta or was never cached.
common::Status ApplyAppendDeltas(const IngestDeltaRequest& request,
                                 IngestDeltaStats* stats = nullptr);

}  // namespace muve::storage

#endif  // MUVE_STORAGE_INGEST_H_
