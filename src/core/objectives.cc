#include "core/objectives.h"

#include <algorithm>

#include "common/logging.h"

namespace muve::core {

double AccuracyFromSeries(const std::vector<double>& raw_keys,
                          const std::vector<double>& raw_aggregates,
                          const storage::BinnedResult& binned) {
  MUVE_DCHECK(raw_keys.size() == raw_aggregates.size());
  const size_t t = raw_keys.size();
  if (t == 0) return 1.0;
  MUVE_DCHECK(binned.num_bins >= 1);

  // n_x: observed distinct values per bin.
  std::vector<size_t> distinct_per_bin(
      static_cast<size_t>(binned.num_bins), 0);
  std::vector<int> bin_of_key(t);
  for (size_t j = 0; j < t; ++j) {
    const int bin =
        storage::BinIndexFor(raw_keys[j], binned.lo, binned.hi,
                             binned.num_bins);
    bin_of_key[j] = bin;
    ++distinct_per_bin[static_cast<size_t>(bin)];
  }

  double r = 0.0;
  for (size_t j = 0; j < t; ++j) {
    const double g = raw_aggregates[j];
    if (g == 0.0) continue;  // relative error undefined; see header
    const size_t bin = static_cast<size_t>(bin_of_key[j]);
    const double n_x = static_cast<double>(distinct_per_bin[bin]);
    const double representative = binned.aggregates[bin] / n_x;
    const double diff = g - representative;
    r += (diff * diff) / (g * g);
  }
  const double accuracy = 1.0 - r / static_cast<double>(t);
  return std::clamp(accuracy, 0.0, 1.0);
}

}  // namespace muve::core
