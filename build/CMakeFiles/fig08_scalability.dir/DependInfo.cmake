
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08_scalability.cpp" "CMakeFiles/fig08_scalability.dir/bench/fig08_scalability.cpp.o" "gcc" "CMakeFiles/fig08_scalability.dir/bench/fig08_scalability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/muve_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/muve_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/muve_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/muve_data.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/muve_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/muve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
