// Parallel vertical-Linear execution must be a pure latency optimization:
// identical recommendations to the serial run for every horizontal
// strategy, with per-thread work merged into the same cost metric.

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "test_util.h"

namespace muve::core {
namespace {

class ParallelTest
    : public ::testing::TestWithParam<HorizontalStrategy> {};

TEST_P(ParallelTest, MatchesSerialRecommendations) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());

  SearchOptions serial;
  serial.horizontal = GetParam();
  serial.vertical = VerticalStrategy::kLinear;
  serial.k = 4;
  SearchOptions parallel = serial;
  parallel.num_threads = 4;

  auto r_serial = recommender->Recommend(serial);
  auto r_parallel = recommender->Recommend(parallel);
  ASSERT_TRUE(r_serial.ok());
  ASSERT_TRUE(r_parallel.ok()) << r_parallel.status().ToString();
  ASSERT_EQ(r_serial->views.size(), r_parallel->views.size());
  for (size_t i = 0; i < r_serial->views.size(); ++i) {
    EXPECT_EQ(r_serial->views[i].view.Key(),
              r_parallel->views[i].view.Key())
        << "rank " << i;
    EXPECT_EQ(r_serial->views[i].bins, r_parallel->views[i].bins);
    EXPECT_DOUBLE_EQ(r_serial->views[i].utility,
                     r_parallel->views[i].utility);
  }
  // Same amount of total work (probe counters are exact, times vary).
  EXPECT_EQ(r_serial->stats.fully_probed, r_parallel->stats.fully_probed);
  EXPECT_EQ(r_serial->stats.target_queries,
            r_parallel->stats.target_queries);
}

INSTANTIATE_TEST_SUITE_P(
    AllHorizontals, ParallelTest,
    ::testing::Values(HorizontalStrategy::kLinear,
                      HorizontalStrategy::kHillClimbing,
                      HorizontalStrategy::kMuve),
    [](const ::testing::TestParamInfo<HorizontalStrategy>& info) {
      return HorizontalStrategyName(info.param);
    });

TEST(ParallelValidationTest, MoreThreadsThanViewsIsFine) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;
  options.horizontal = HorizontalStrategy::kLinear;
  options.vertical = VerticalStrategy::kLinear;
  options.num_threads = 64;  // toy dataset has 8 views
  auto rec = recommender->Recommend(options);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->views.size(), 5u);
}

TEST(ParallelValidationTest, RejectsSequentialOnlySchemes) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());

  SearchOptions muve_muve;
  muve_muve.num_threads = 2;  // default scheme is MuVE-MuVE
  EXPECT_FALSE(recommender->Recommend(muve_muve).ok());

  SearchOptions approx;
  approx.horizontal = HorizontalStrategy::kLinear;
  approx.vertical = VerticalStrategy::kLinear;
  approx.num_threads = 2;
  approx.approximation = VerticalApproximation::kRefinement;
  EXPECT_FALSE(recommender->Recommend(approx).ok());

  SearchOptions zero;
  zero.num_threads = 0;
  EXPECT_FALSE(recommender->Recommend(zero).ok());
}

TEST(ParallelDeterminismTest, HillClimbingSeedsByViewNotOrder) {
  // Running twice with different thread counts must agree because HC's
  // random start depends only on (seed, view index).
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions base;
  base.horizontal = HorizontalStrategy::kHillClimbing;
  base.vertical = VerticalStrategy::kLinear;
  base.hc_seed = 99;

  SearchOptions two = base;
  two.num_threads = 2;
  SearchOptions seven = base;
  seven.num_threads = 7;

  auto a = recommender->Recommend(two);
  auto b = recommender->Recommend(seven);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->views.size(), b->views.size());
  for (size_t i = 0; i < a->views.size(); ++i) {
    EXPECT_EQ(a->views[i].view.Key(), b->views[i].view.Key());
    EXPECT_DOUBLE_EQ(a->views[i].utility, b->views[i].utility);
  }
}

}  // namespace
}  // namespace muve::core
