#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace muve::common {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string PadLeft(std::string text, size_t width) {
  if (text.size() < width) text.insert(0, width - text.size(), ' ');
  return text;
}

std::string PadRight(std::string text, size_t width) {
  if (text.size() < width) text.append(width - text.size(), ' ');
  return text;
}

}  // namespace muve::common
