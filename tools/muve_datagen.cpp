// muve_datagen — export the bundled synthetic datasets as CSV files so
// they can be inspected, loaded into other tools, or fed back through
// `muve_cli --csv=...`.
//
//   $ muve_datagen --out=/tmp/muve_data [--seed=N]
//   /tmp/muve_data/diab.csv   (768 rows, UCI Pima schema)
//   /tmp/muve_data/nba.csv    (651 rows, 2015 NBA advanced-stats schema)
//
// With --rows=N it instead emits the scale workload (data/scale.h):
//
//   $ muve_datagen --rows=100000000 --stream --out=/tmp/muve_data
//   /tmp/muve_data/scale.csv  (N rows, day/region/x/y/m1/m2 schema)
//
// --stream generates rows straight to the file in O(1) memory — a
// 10^8-row CSV (~3 GiB) never exists in RAM.  Without --stream the
// table is materialized first (identical bytes; practical to ~10^7).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "common/parse.h"
#include "common/string_util.h"
#include "data/diab.h"
#include "data/nba.h"
#include "data/scale.h"
#include "storage/csv.h"

namespace {

int EmitScale(const std::string& out_dir, size_t rows, uint64_t seed,
              bool stream) {
  muve::data::ScaleSpec spec;
  spec.rows = rows;
  spec.seed = seed;
  const std::string path = out_dir + "/scale.csv";
  if (stream) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open file for write: " << path << "\n";
      return 1;
    }
    // Chunked emission bounds the ostream's buffered state; each slab
    // regenerates rows from (seed, index), so memory stays O(slab).
    constexpr size_t kSlab = size_t{1} << 20;
    for (size_t begin = 0; begin < spec.rows; begin += kSlab) {
      const size_t end = std::min(spec.rows, begin + kSlab);
      muve::data::WriteScaleCsv(out, spec, begin, end);
      if (!out) {
        std::cerr << "write failed: " << path << "\n";
        return 1;
      }
    }
    out.flush();
    if (!out) {
      std::cerr << "write failed: " << path << "\n";
      return 1;
    }
  } else {
    const auto table = muve::data::MakeScaleTable(spec, 0, spec.rows);
    if (auto st = muve::storage::WriteCsvFile(*table, path); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "wrote " << path << " (" << rows << " rows)\n"
            << "example: muve_cli --csv=" << path
            << " --dims=x,y --measures=m1,m2 \"--predicate="
            << muve::data::ScalePredicateSql(spec) << "\"\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  uint64_t diab_seed = muve::data::kDiabDefaultSeed;
  uint64_t nba_seed = muve::data::kNbaDefaultSeed;
  uint64_t scale_seed = muve::data::kScaleDefaultSeed;
  bool seed_set = false;
  int64_t rows = -1;
  bool stream = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (muve::common::StartsWith(arg, "--out=")) {
      out_dir = arg.substr(6);
    } else if (muve::common::StartsWith(arg, "--seed=")) {
      auto seed = muve::common::ParseFlagInt64(
          "--seed", arg.substr(7), 0, std::numeric_limits<int64_t>::max());
      if (!seed.ok()) {
        std::cerr << seed.status().message() << "\n";
        return 2;
      }
      diab_seed = static_cast<uint64_t>(*seed);
      nba_seed = diab_seed;
      scale_seed = diab_seed;
      seed_set = true;
    } else if (muve::common::StartsWith(arg, "--rows=")) {
      auto n = muve::common::ParseFlagInt64("--rows", arg.substr(7), 1,
                                            int64_t{1} << 32);
      if (!n.ok()) {
        std::cerr << n.status().message() << "\n";
        return 2;
      }
      rows = *n;
    } else if (arg == "--stream") {
      stream = true;
    } else {
      std::cerr << "usage: muve_datagen [--out=DIR] [--seed=N] "
                   "[--rows=N [--stream]]\n";
      return 2;
    }
  }
  (void)seed_set;
  if (stream && rows < 0) {
    std::cerr << "--stream requires --rows=N\n";
    return 2;
  }

  if (rows >= 0) {
    return EmitScale(out_dir, static_cast<size_t>(rows), scale_seed, stream);
  }

  const muve::data::Dataset diab = muve::data::MakeDiabDataset(diab_seed);
  const muve::data::Dataset nba = muve::data::MakeNbaDataset(nba_seed);
  const std::string diab_path = out_dir + "/diab.csv";
  const std::string nba_path = out_dir + "/nba.csv";

  if (auto st = muve::storage::WriteCsvFile(*diab.table, diab_path);
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (auto st = muve::storage::WriteCsvFile(*nba.table, nba_path);
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << diab_path << " (" << diab.table->num_rows()
            << " rows) and " << nba_path << " (" << nba.table->num_rows()
            << " rows)\n"
            << "example: muve_cli --csv=" << nba_path
            << " --dims=MP,G,Age --measures=3PAr,PER,TS_pct "
            << "\"--predicate=Team = 'GSW'\"\n";
  return 0;
}
