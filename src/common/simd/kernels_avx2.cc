// AVX2 kernel table: 4-lane double ports of the hot primitives.
//
// This TU is compiled with -mavx2 but deliberately WITHOUT -mfma: every
// per-lane multiply/add rounds exactly like its scalar counterpart, so
// the only divergence from scalar_impl is reduction order (lane-boundary
// re-association), which the ulp-bounded differential contract covers.
// Kernels with bit-identity requirements (bin_index_into,
// coarsen_by_prefix_diff, the keyed accumulators) are constructed so the
// per-element operation sequence matches scalar exactly:
//   * bin_index_into uses the same IEEE divide + truncate + clamp, with
//     the boundary cases handled by blends instead of branches;
//   * coarsen_by_prefix_diff shares the scalar run sweep and differs
//     only in how the (bit-exact) index block is produced;
//   * accumulate_* vectorizes only the gather/multiply of the measure
//     values — the scatter-adds stay scalar, in row order.
//
// All loads are unaligned (loadu); alignment is a performance hint, not
// a requirement (see simd.h).

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "common/simd/internal.h"
#include "common/simd/simd.h"

namespace muve::common::simd {
namespace {

const __m256d kSignMask =
    _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));

inline __m256d Abs(__m256d x) { return _mm256_and_pd(x, kSignMask); }

// Deterministic horizontal sum: (l0 + l1) + (l2 + l3).
inline double HSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // {l0+l2, l1+l3}
  return _mm_cvtsd_f64(pair) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

inline double HMax(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_max_pd(lo, hi);
  const double a = _mm_cvtsd_f64(pair);
  const double b = _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  return a < b ? b : a;
}

double SquaredL2Diff(const double* p, const double* q, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(p + i), _mm256_loadu_pd(q + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double sum = HSum(acc);
  for (; i < n; ++i) {
    const double d = p[i] - q[i];
    sum += d * d;
  }
  return sum;
}

double AbsDiffSum(const double* p, const double* q, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, Abs(_mm256_sub_pd(_mm256_loadu_pd(p + i),
                                               _mm256_loadu_pd(q + i))));
  }
  double sum = HSum(acc);
  for (; i < n; ++i) {
    const double d = p[i] - q[i];
    sum += d < 0.0 ? -d : d;
  }
  return sum;
}

double MaxAbsDiff(const double* p, const double* q, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, Abs(_mm256_sub_pd(_mm256_loadu_pd(p + i),
                                               _mm256_loadu_pd(q + i))));
  }
  double best = HMax(acc);
  for (; i < n; ++i) {
    const double d = p[i] - q[i];
    const double a = d < 0.0 ? -d : d;
    best = best < a ? a : best;
  }
  return best;
}

// Lane-shift helpers for the in-register prefix sum: lane i receives
// lane i - k, shifted-in lanes are 0.
inline __m256d ShiftInOneZero(__m256d x) {
  const __m256d r = _mm256_permute4x64_pd(x, _MM_SHUFFLE(2, 1, 0, 0));
  return _mm256_blend_pd(r, _mm256_setzero_pd(), 0x1);
}

inline __m256d ShiftInTwoZeros(__m256d x) {
  const __m256d r = _mm256_permute4x64_pd(x, _MM_SHUFFLE(1, 0, 0, 0));
  return _mm256_blend_pd(r, _mm256_setzero_pd(), 0x3);
}

double PrefixAbsDiffSum(const double* p, const double* q, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  __m256d carry = _mm256_setzero_pd();  // running cum, broadcast
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(p + i), _mm256_loadu_pd(q + i));
    // In-register inclusive prefix sum of the 4 lanes.
    __m256d s = _mm256_add_pd(d, ShiftInOneZero(d));
    s = _mm256_add_pd(s, ShiftInTwoZeros(s));
    const __m256d cum = _mm256_add_pd(s, carry);
    acc = _mm256_add_pd(acc, Abs(cum));
    carry = _mm256_permute4x64_pd(cum, _MM_SHUFFLE(3, 3, 3, 3));
  }
  double total = HSum(acc);
  double cum = _mm_cvtsd_f64(_mm256_castpd256_pd128(carry));
  for (; i < n; ++i) {
    cum += p[i] - q[i];
    total += cum < 0.0 ? -cum : cum;
  }
  return total;
}

double Sum(const double* a, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + i));
  }
  double sum = HSum(acc);
  for (; i < n; ++i) sum += a[i];
  return sum;
}

double RelativeSse(const double* g, const double* rep, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d gv = _mm256_loadu_pd(g + i);
    const __m256d diff = _mm256_sub_pd(gv, _mm256_loadu_pd(rep + i));
    const __m256d term = _mm256_div_pd(_mm256_mul_pd(diff, diff),
                                       _mm256_mul_pd(gv, gv));
    // g != 0 keep-mask; NEQ_UQ treats NaN as "not equal", matching the
    // scalar `g == 0.0` exclusion test.  Masking is bitwise, so inf/NaN
    // terms from g == 0 lanes are cleanly zeroed.
    const __m256d keep = _mm256_cmp_pd(gv, zero, _CMP_NEQ_UQ);
    acc = _mm256_add_pd(acc, _mm256_and_pd(term, keep));
  }
  double r = HSum(acc);
  for (; i < n; ++i) {
    if (g[i] == 0.0) continue;
    const double diff = g[i] - rep[i];
    r += (diff * diff) / (g[i] * g[i]);
  }
  return r;
}

double NormalizeInto(const double* src, size_t n, double* dst) {
  if (n == 0) return 0.0;
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(src + i);
    // src > 0 ? src : 0 — GT_OQ is false for NaN and -0, exactly like
    // the scalar ternary (both produce +0).
    const __m256d clamped =
        _mm256_and_pd(v, _mm256_cmp_pd(v, zero, _CMP_GT_OQ));
    _mm256_storeu_pd(dst + i, clamped);
    acc = _mm256_add_pd(acc, clamped);
  }
  double total = HSum(acc);
  for (; i < n; ++i) {
    dst[i] = src[i] > 0.0 ? src[i] : 0.0;
    total += dst[i];
  }
  // The clamped terms are all non-negative, so re-association cannot
  // change whether the total is zero — the uniform-fallback branch is
  // taken identically across dispatch levels.
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(n);
    for (size_t j = 0; j < n; ++j) dst[j] = uniform;
    return total;
  }
  const __m256d vt = _mm256_set1_pd(total);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(dst + j, _mm256_div_pd(_mm256_loadu_pd(dst + j), vt));
  }
  for (; j < n; ++j) dst[j] /= total;
  return total;
}

void BinIndexInto(const double* values, size_t n, double lo, double hi,
                  int num_bins, int32_t* out) {
  if (num_bins <= 1) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  // Interior lanes (lo < v < hi, which implies lo < hi) use the same
  // IEEE divide and truncation as BinIndexReference — correctly-rounded
  // divide + cvttpd is bit-exact against scalar.  Boundary/clamp lanes
  // are resolved by blends.
  const double width = (hi - lo) / static_cast<double>(num_bins);
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  const __m256d vwidth = _mm256_set1_pd(width);
  const __m128i vzero32 = _mm_setzero_si128();
  const __m128i vmax32 = _mm_set1_epi32(num_bins - 1);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    const __m256d scaled =
        _mm256_div_pd(_mm256_sub_pd(v, vlo), vwidth);
    __m128i idx = _mm256_cvttpd_epi32(scaled);
    idx = _mm_min_epi32(_mm_max_epi32(idx, vzero32), vmax32);
    // v <= lo -> 0, v >= hi -> num_bins - 1 (in that priority order,
    // matching the scalar early returns).
    const __m256d le_lo_d = _mm256_cmp_pd(v, vlo, _CMP_LE_OQ);
    const __m256d ge_hi_d = _mm256_cmp_pd(v, vhi, _CMP_GE_OQ);
    // Narrow the 64-bit lane masks to 32-bit via movemask + table-free
    // per-bit blends (4 lanes only).
    const int m_lo = _mm256_movemask_pd(le_lo_d);
    const int m_hi = _mm256_movemask_pd(ge_hi_d);
    if ((m_lo | m_hi) != 0) {
      alignas(16) int32_t tmp[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(tmp), idx);
      for (int lane = 0; lane < 4; ++lane) {
        if (m_hi & (1 << lane)) tmp[lane] = num_bins - 1;
        if (m_lo & (1 << lane)) tmp[lane] = 0;
      }
      idx = _mm_load_si128(reinterpret_cast<const __m128i*>(tmp));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), idx);
  }
  for (; i < n; ++i) {
    out[i] = BinIndexReference(values[i], lo, hi, num_bins);
  }
}

void CoarsenByPrefixDiff(const double* values, size_t d, double lo,
                         double hi, int num_bins,
                         const int64_t* prefix_counts,
                         const double* prefix_sums,
                         const double* prefix_sum_sqs, int64_t* out_counts,
                         double* out_sums, double* out_sum_sqs) {
  CoarsenWithBinIndex(
      [](const double* block, size_t len, double blo, double bhi, int nb,
         int32_t* idx) { BinIndexInto(block, len, blo, bhi, nb, idx); },
      values, d, lo, hi, num_bins, prefix_counts, prefix_sums,
      prefix_sum_sqs, out_counts, out_sums, out_sum_sqs);
}

void AccumulateCountSumSqF64(const uint32_t* rows, size_t begin, size_t end,
                             const uint32_t* keys,
                             const uint64_t* validity_words,
                             const double* data, int64_t* counts,
                             double* sums, double* sum_sqs) {
  if (validity_words != nullptr) {
    // NULL-able measure: the per-row bit test dominates; keep scalar.
    scalar_impl::AccumulateCountSumSqF64(rows, begin, end, keys,
                                         validity_words, data, counts,
                                         sums, sum_sqs);
    return;
  }
  size_t p = begin;
  alignas(32) double m[4];
  alignas(32) double m2[4];
  for (; p + 4 <= end; p += 4) {
    const __m128i vrows = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(rows + p));
    const __m256d vm = _mm256_i32gather_pd(data, vrows, 8);
    _mm256_store_pd(m, vm);
    _mm256_store_pd(m2, _mm256_mul_pd(vm, vm));
    // Scatter-adds stay scalar and in row order: duplicate keys within
    // a block must accumulate in the same association as scalar.
    for (int lane = 0; lane < 4; ++lane) {
      const uint32_t k = keys[p + static_cast<size_t>(lane)];
      if (k == kNullKey32) continue;
      ++counts[k];
      sums[k] += m[lane];
      sum_sqs[k] += m2[lane];
    }
  }
  for (; p < end; ++p) {
    const uint32_t k = keys[p];
    if (k == kNullKey32) continue;
    const double mv = data[rows[p]];
    ++counts[k];
    sums[k] += mv;
    sum_sqs[k] += mv * mv;
  }
}

const KernelTable& BuildTable() {
  static const KernelTable table = [] {
    KernelTable t;
    t.level = DispatchLevel::kAvx2;
    t.name = "avx2";
    t.squared_l2_diff = &SquaredL2Diff;
    t.abs_diff_sum = &AbsDiffSum;
    t.max_abs_diff = &MaxAbsDiff;
    t.prefix_abs_diff_sum = &PrefixAbsDiffSum;
    t.sum = &Sum;
    t.relative_sse = &RelativeSse;
    t.normalize_into = &NormalizeInto;
    t.bin_index_into = &BinIndexInto;
    t.coarsen_by_prefix_diff = &CoarsenByPrefixDiff;
    t.accumulate_count_sum_sq_f64 = &AccumulateCountSumSqF64;
    // Int64 measures need a 64-bit gather + exact int->double convert;
    // the scalar loop is already load-bound, so it is reused as-is.
    t.accumulate_count_sum_sq_i64 = &scalar_impl::AccumulateCountSumSqI64;
    return t;
  }();
  return table;
}

}  // namespace

const KernelTable& Avx2KernelsImpl() { return BuildTable(); }

bool Avx2SupportedAtRuntime() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace muve::common::simd
