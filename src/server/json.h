// Minimal JSON value model for the muved wire protocol.
//
// muved frames carry one JSON object each (server/protocol.h).  This is
// a deliberately small, dependency-free document model:
//
//   * Parsing is strict: one complete value, no trailing bytes, no
//     comments, no NaN/Infinity literals, depth-limited.  Numbers decode
//     through common/parse.h — the same strict, locale-independent rules
//     as CLI flags and CSV cells — and keep the int64/double distinction
//     (a token without '.', 'e' or 'E' is an int64; int64 overflow makes
//     it a parse error rather than silently becoming an imprecise
//     double, so ids and row budgets can't be corrupted in transit).
//   * Objects preserve insertion order and serialization is canonical
//     (compact separators, shortest-round-trip doubles via to_chars),
//     so two responses built from bit-identical values serialize to
//     byte-identical frames — which is what lets the dispatch-invariance
//     check run across the wire.
//   * Duplicate object keys are a parse error (request fields must not
//     be smuggled twice with different values).

#ifndef MUVE_SERVER_JSON_H_
#define MUVE_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace muve::server {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t i);
  static JsonValue Double(double d);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Accessors abort on kind mismatch (programming error — protocol code
  // must check kind()/Find first).
  bool bool_value() const;
  int64_t int_value() const;
  // Numeric value as double; valid for both kInt and kDouble.
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& array() const;
  std::vector<JsonValue>& array();
  const std::vector<Member>& members() const;

  // Object helpers.  Find returns nullptr when absent (or non-object).
  const JsonValue* Find(std::string_view key) const;
  void Set(std::string_view key, JsonValue value);  // appends or replaces
  void Append(JsonValue value);                     // arrays only

  // Canonical compact serialization (see header comment).
  std::string Write() const;

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;
};

// Parses exactly one JSON value spanning all of `text`.
common::Result<JsonValue> ParseJson(std::string_view text);

}  // namespace muve::server

#endif  // MUVE_SERVER_JSON_H_
