# Empty dependencies file for fig13_refine_skip.
# This may be replaced when dependencies are built.
