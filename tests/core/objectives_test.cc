#include "core/objectives.h"

#include <gtest/gtest.h>

#include "core/utility.h"

namespace muve::core {
namespace {

storage::BinnedResult MakeBinned(double lo, double hi,
                                 std::vector<double> aggregates) {
  storage::BinnedResult binned;
  binned.lo = lo;
  binned.hi = hi;
  binned.num_bins = static_cast<int>(aggregates.size());
  binned.aggregates = std::move(aggregates);
  binned.row_counts.assign(binned.aggregates.size(), 1);
  return binned;
}

TEST(AccuracyTest, PerfectWhenEachValueOwnsABin) {
  // 4 distinct values, 4 bins, each bin holds exactly its value's mass:
  // representative = aggregate / 1 = raw value -> zero error.
  const std::vector<double> keys = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> aggs = {5.0, 7.0, 9.0, 11.0};
  // Bins over [0,3] with 4 bins: widths 0.75 -> values 0,1,2,3 land in
  // bins 0,1,2,3.
  const auto binned = MakeBinned(0.0, 3.0, {5.0, 7.0, 9.0, 11.0});
  EXPECT_DOUBLE_EQ(AccuracyFromSeries(keys, aggs, binned), 1.0);
}

TEST(AccuracyTest, UniformSeriesStaysPerfectUnderCoarseBinning) {
  // Constant per-value aggregates: any binning's representative equals
  // the raw value, so accuracy stays 1 regardless of bin count.
  const std::vector<double> keys = {0, 1, 2, 3, 4, 5};
  const std::vector<double> aggs(6, 4.0);
  const auto two_bins = MakeBinned(0.0, 5.0, {12.0, 12.0});
  EXPECT_DOUBLE_EQ(AccuracyFromSeries(keys, aggs, two_bins), 1.0);
  const auto one_bin = MakeBinned(0.0, 5.0, {24.0});
  EXPECT_DOUBLE_EQ(AccuracyFromSeries(keys, aggs, one_bin), 1.0);
}

TEST(AccuracyTest, SkewWithinBinReducesAccuracy) {
  // Values {1, 9} merged into one bin: representative 5 is far from both.
  const std::vector<double> keys = {0.0, 1.0};
  const std::vector<double> aggs = {1.0, 9.0};
  const auto binned = MakeBinned(0.0, 1.0, {10.0});
  // R = (1-5)^2/1 + (9-5)^2/81 = 16 + 0.1975..; A = 1 - R/2 < 0 -> clamped.
  EXPECT_DOUBLE_EQ(AccuracyFromSeries(keys, aggs, binned), 0.0);
}

TEST(AccuracyTest, ModerateErrorInUnitRange) {
  const std::vector<double> keys = {0.0, 1.0};
  const std::vector<double> aggs = {4.0, 6.0};
  const auto binned = MakeBinned(0.0, 1.0, {10.0});
  // Representative 5: R = (4-5)^2/16 + (6-5)^2/36 = 0.0625 + 0.02777...
  const double expected = 1.0 - (0.0625 + 1.0 / 36.0) / 2.0;
  EXPECT_NEAR(AccuracyFromSeries(keys, aggs, binned), expected, 1e-12);
}

TEST(AccuracyTest, FinerBinningNeverLessAccurateForThisSeries) {
  // Monotone series: accuracy should improve (weakly) with more bins.
  std::vector<double> keys;
  std::vector<double> aggs;
  for (int i = 0; i < 16; ++i) {
    keys.push_back(i);
    aggs.push_back(1.0 + i);
  }
  double prev = -1.0;
  for (int bins : {1, 2, 4, 8, 16}) {
    // Build the binned SUM aggregates directly.
    std::vector<double> bin_aggs(bins, 0.0);
    for (int i = 0; i < 16; ++i) {
      bin_aggs[storage::BinIndexFor(keys[i], 0.0, 15.0, bins)] += aggs[i];
    }
    const double acc =
        AccuracyFromSeries(keys, aggs, MakeBinned(0.0, 15.0, bin_aggs));
    EXPECT_GE(acc + 1e-12, prev) << "bins=" << bins;
    prev = acc;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // 16 bins = one value per bin
}

TEST(AccuracyTest, ZeroRawValuesSkipRelativeTerms) {
  const std::vector<double> keys = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> aggs = {0.0, 0.0, 5.0, 5.0};
  // 4 bins, perfect placement: zero values contribute nothing either way.
  const auto binned = MakeBinned(0.0, 3.0, {0.0, 0.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(AccuracyFromSeries(keys, aggs, binned), 1.0);
}

TEST(AccuracyTest, EmptySeriesIsPerfect) {
  EXPECT_DOUBLE_EQ(AccuracyFromSeries({}, {}, MakeBinned(0, 1, {0.0})), 1.0);
}

TEST(AccuracyTest, AlwaysInUnitRange) {
  // Random-ish adversarial values stay clamped to [0, 1].
  const std::vector<double> keys = {0, 1, 2};
  const std::vector<double> aggs = {0.001, 100.0, -50.0};
  for (int bins : {1, 2, 3}) {
    std::vector<double> bin_aggs(bins, 0.0);
    for (size_t i = 0; i < keys.size(); ++i) {
      bin_aggs[storage::BinIndexFor(keys[i], 0.0, 2.0, bins)] += aggs[i];
    }
    const double acc =
        AccuracyFromSeries(keys, aggs, MakeBinned(0.0, 2.0, bin_aggs));
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
}

TEST(UsabilityTest, InverseBins) {
  EXPECT_DOUBLE_EQ(Usability(1), 1.0);
  EXPECT_DOUBLE_EQ(Usability(2), 0.5);
  EXPECT_DOUBLE_EQ(Usability(10), 0.1);
}

TEST(WeightsTest, PaperDefaultValidates) {
  EXPECT_TRUE(Weights::PaperDefault().Validate().ok());
  EXPECT_TRUE(Weights::Equal().Validate().ok());
  EXPECT_TRUE(Weights::DeviationOnly().Validate().ok());
}

TEST(WeightsTest, InvalidWeightsRejected) {
  EXPECT_FALSE((Weights{0.5, 0.5, 0.5}).Validate().ok());   // sums to 1.5
  EXPECT_FALSE((Weights{-0.2, 0.6, 0.6}).Validate().ok());  // negative
  EXPECT_FALSE((Weights{1.2, -0.1, -0.1}).Validate().ok());
}

TEST(UtilityTest, WeightedSumAndBound) {
  const Weights w{0.6, 0.2, 0.2};
  EXPECT_NEAR(Utility(w, 0.29, 0.30, 1.0 / 3), 0.6 * 0.29 + 0.2 * 0.30 +
                                                    0.2 / 3.0,
              1e-12);
  EXPECT_NEAR(UtilityUpperBound(w, 0.5), 0.6 + 0.2 + 0.1, 1e-12);
  // The bound dominates any achievable utility at the same usability.
  EXPECT_GE(UtilityUpperBound(w, 0.5), Utility(w, 1.0, 1.0, 0.5) - 1e-12);
  EXPECT_GE(UtilityUpperBound(w, 0.5), Utility(w, 0.3, 0.7, 0.5));
}

TEST(UtilityTest, UtilityStaysInUnitRange) {
  const Weights w = Weights::PaperDefault();
  EXPECT_LE(Utility(w, 1.0, 1.0, 1.0), 1.0 + 1e-12);
  EXPECT_GE(Utility(w, 0.0, 0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace muve::core
