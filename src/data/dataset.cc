#include "data/dataset.h"

namespace muve::data {

Dataset WithWorkloadSize(const Dataset& dataset, size_t num_dimensions,
                         size_t num_measures, size_t num_functions) {
  Dataset out = dataset;
  if (num_dimensions < out.dimensions.size()) {
    out.dimensions.resize(num_dimensions);
  }
  if (num_measures < out.measures.size()) {
    out.measures.resize(num_measures);
  }
  if (num_functions < out.functions.size()) {
    out.functions.resize(num_functions);
  }
  return out;
}

}  // namespace muve::data
