#include "storage/catalog.h"

#include <utility>

namespace muve::storage {

std::atomic<uint64_t> Catalog::next_base_epoch_{1};

common::Status Catalog::Create(const std::string& name, Table table) {
  auto entry = std::make_shared<Entry>();
  entry->table = std::make_shared<const Table>(std::move(table));
  entry->data_epoch = 1;
  entry->base_epoch =
      next_base_epoch_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(map_mu_);
  const auto [it, inserted] = entries_.emplace(name, std::move(entry));
  (void)it;
  if (!inserted) {
    return common::Status::AlreadyExists("table '" + name +
                                         "' already exists");
  }
  return common::Status::OK();
}

common::Status Catalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(map_mu_);
  if (entries_.erase(name) == 0) {
    return common::Status::NotFound("no table named '" + name + "'");
  }
  return common::Status::OK();
}

std::shared_ptr<Catalog::Entry> Catalog::FindEntry(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(map_mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

common::Result<Catalog::Snapshot> Catalog::Get(const std::string& name) const {
  const std::shared_ptr<Entry> entry = FindEntry(name);
  if (entry == nullptr) {
    return common::Status::NotFound("no table named '" + name + "'");
  }
  std::shared_lock<std::shared_mutex> lock(entry->mu);
  Snapshot snap;
  snap.table = entry->table;
  snap.data_epoch = entry->data_epoch;
  snap.base_epoch = entry->base_epoch;
  return snap;
}

common::Result<Catalog::AppendResult> Catalog::Append(const std::string& name,
                                                      const Table& rows) {
  const std::shared_ptr<Entry> entry = FindEntry(name);
  if (entry == nullptr) {
    return common::Status::NotFound("no table named '" + name + "'");
  }
  // Exclusive: appends to one table serialize; snapshot readers queue
  // only for the pointer swap below, never for the row loop — the build
  // happens on a private clone.
  std::unique_lock<std::shared_mutex> lock(entry->mu);
  const Table& current = *entry->table;
  if (rows.num_columns() != current.num_columns()) {
    return common::Status::InvalidArgument(
        "append arity " + std::to_string(rows.num_columns()) +
        " != table arity " + std::to_string(current.num_columns()));
  }
  // Clone shares every chunk; the per-row appends below copy-on-write
  // only the open tail chunk of each column, so this is O(new rows +
  // tail), never O(table).
  Table next = current.Clone();
  std::vector<Value> row(rows.num_columns());
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    for (size_t c = 0; c < rows.num_columns(); ++c) {
      row[c] = rows.At(r, c);
    }
    // A failed row discards the private clone — the published version
    // is untouched, making the batch all-or-nothing.
    MUVE_RETURN_IF_ERROR(next.AppendRow(row));
  }
  AppendResult result;
  result.rows_before = current.num_rows();
  result.rows_appended = rows.num_rows();
  entry->table = std::make_shared<const Table>(std::move(next));
  ++entry->data_epoch;
  result.snapshot.table = entry->table;
  result.snapshot.data_epoch = entry->data_epoch;
  result.snapshot.base_epoch = entry->base_epoch;
  return result;
}

common::Result<Catalog::Snapshot> Catalog::Invalidate(
    const std::string& name) {
  const std::shared_ptr<Entry> entry = FindEntry(name);
  if (entry == nullptr) {
    return common::Status::NotFound("no table named '" + name + "'");
  }
  std::unique_lock<std::shared_mutex> lock(entry->mu);
  ++entry->data_epoch;
  entry->base_epoch = next_base_epoch_.fetch_add(1, std::memory_order_relaxed);
  Snapshot snap;
  snap.table = entry->table;
  snap.data_epoch = entry->data_epoch;
  snap.base_epoch = entry->base_epoch;
  return snap;
}

std::vector<std::string> Catalog::List() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

bool Catalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(map_mu_);
  return entries_.find(name) != entries_.end();
}

}  // namespace muve::storage
