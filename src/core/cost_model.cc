#include "core/cost_model.h"

#include <sstream>

#include "common/string_util.h"

namespace muve::core {

void CostModel::Observe(CostKind kind, double millis) {
  Entry& e = entries_[static_cast<size_t>(kind)];
  e.sum_before_last += e.last;
  e.last = millis;
  ++e.count;
}

double CostModel::Estimate(CostKind kind) const {
  const Entry& e = entries_[static_cast<size_t>(kind)];
  if (e.count == 0) return 0.0;
  if (e.count == 1) return e.last;
  const double mean_before =
      e.sum_before_last / static_cast<double>(e.count - 1);
  return beta_ * e.last + (1.0 - beta_) * mean_before;
}

int64_t CostModel::ObservationCount(CostKind kind) const {
  return entries_[static_cast<size_t>(kind)].count;
}

std::string CostModel::ToString() const {
  std::ostringstream out;
  const char* names[] = {"Ct", "Cc", "Cd", "Ca"};
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out << " ";
    out << names[i] << "="
        << common::FormatDouble(Estimate(static_cast<CostKind>(i)), 4) << "ms("
        << ObservationCount(static_cast<CostKind>(i)) << ")";
  }
  return out.str();
}

}  // namespace muve::core
