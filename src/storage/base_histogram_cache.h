// Base-histogram prefix-sum cache: the sharing optimization behind O(1)
// re-binning (Section II-A's "shared computation" family).
//
// Horizontal search probes the same non-binned view (A, M, F) at many bin
// counts b.  Re-executing the binned group-by scan per (view, b) costs
// O(|rows|) each time; this module instead materializes ONE base histogram
// per (row set, A, M) at the finest granularity any equi-width binning can
// distinguish — one fine bin per distinct dimension value — in a single
// row scan, storing per-fine-bin count / sum / sum-of-squares plus their
// prefix arrays.  Any b-bin view is then derived by prefix-sum differences
// between bin boundaries found in one forward pass over the d fine bins:
// O(d) work, independent of b, zero rows touched.
//
// Why distinct values and not a fixed b_max-bin grid: a fine equi-width
// grid can only coarsen exactly into bin counts that divide b_max (a fine
// bin straddling a coarse boundary would misassign whole rows), and the
// search domain is {1..B} — most b do not divide any fixed b_max.  At
// distinct-value granularity every coarse bin edge falls between fine
// bins, because bin assignment is a monotone function of the dimension
// value.  Bin boundaries are located with the SAME BinIndexFor used by
// the direct scan, so the row-to-bin assignment is identical by
// construction, not merely up to floating-point luck.
//
// Exactness contract (pinned by tests/core/rebin_differential_test.cc):
//   * COUNT — bit-identical to BinnedAggregate (integer counts).
//   * SUM / AVG — identical row-to-bin assignment; the per-bin sum is
//     re-associated (per-value partials in value order instead of row
//     order), so results are bit-identical whenever every partial sum is
//     exactly representable (e.g. integer-valued measures) and within
//     ~1e-12 relative rounding error otherwise.
//   * STD / VAR — computed from (count, sum, sum_sq) moments instead of
//     the direct path's Welford recurrence; equal within FP tolerance,
//     with the same "0 for fewer than two observations" convention.
//   * MIN / MAX — NOT servable from prefix sums; callers fall back to the
//     direct scan (ViewEvaluator gates on BaseServableFunction).
//
// `BaseHistogramCache` is the shared, size-bounded store: shard-locked
// (16-way by default) so every ThreadPool worker of a recommendation run
// can probe concurrently, with per-shard LRU eviction under a byte budget.
// Entries are immutable once built and handed out as shared_ptr<const>,
// so eviction never invalidates a histogram a worker is still coarsening.

#ifndef MUVE_STORAGE_BASE_HISTOGRAM_CACHE_H_
#define MUVE_STORAGE_BASE_HISTOGRAM_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "storage/aggregate.h"
#include "storage/binned_group_by.h"
#include "storage/table.h"

namespace muve::common {
class ExecContext;
class ThreadPool;
}  // namespace muve::common

namespace muve::storage {

struct FusedScanScratch;  // storage/fused_scan.h

// Finest-granularity histogram of one (row set, dimension, measure) pair:
// one fine bin per distinct dimension value, restricted to rows where
// both the dimension and the measure are non-NULL (the rows every
// aggregate kernel consumes).
struct BaseHistogram {
  // Sorted distinct dimension values ("fine bin" keys), size d.
  std::vector<double> values;
  // Per-fine-bin measure sums / sums of squares, accumulated in row order
  // within each fine bin (matching GroupByAggregate's association, which
  // keeps the derived raw series bit-exact for SUM/AVG), size d.
  std::vector<double> sums;
  std::vector<double> sum_sqs;
  // Prefix arrays, size d + 1: prefix_x[j] aggregates fine bins [0, j).
  std::vector<int64_t> prefix_counts;
  std::vector<double> prefix_sums;
  std::vector<double> prefix_sum_sqs;
  // Rows scanned by the build (the cost the cache amortizes).
  int64_t source_rows = 0;

  size_t num_fine_bins() const { return values.size(); }
  int64_t CountOf(size_t fine_bin) const {
    return prefix_counts[fine_bin + 1] - prefix_counts[fine_bin];
  }
  // Rough retained-memory estimate used by the cache's byte budget.
  size_t ApproxBytes() const;
};

// True for the aggregate functions a BaseHistogram can serve (SUM, COUNT,
// AVG, STD, VAR — everything derivable from count/sum/sum_sq moments).
bool BaseServableFunction(AggregateFunction function);

// Finishes one bin from its moments with the exact empty/singleton
// conventions of AggregateAccumulator::Finish (0 for empty bins; STD/VAR
// are 0 for fewer than two rows, clamped at 0 against cancellation).
double FinishFromMoments(AggregateFunction function, int64_t count,
                         double sum, double sum_sq);

// Builds the base histogram in one scan of `rows`.  Errors mirror
// BinnedAggregate's: unknown columns, string dimension, or string measure
// (string measures are only aggregatable with COUNT, which the direct
// path keeps serving).  Since the fused scan engine landed this is a
// thin single-pair wrapper over FusedBuildBaseHistograms with one morsel
// (bit-identical to the historical sort-based builder: per-fine-bin sums
// accumulate in row order).  `scratch`, when provided, reuses the
// engine's dictionaries / key arrays / partial arenas across builds.
common::Result<BaseHistogram> BuildBaseHistogram(
    const Table& table, const RowSet& rows, std::string_view dimension,
    std::string_view measure, FusedScanScratch* scratch = nullptr);

// Derives the `num_bins`-bin equi-width view over [lo, hi] by prefix-sum
// differences.  Bin boundaries are located by binary search with the same
// BinIndexFor the direct scan uses, so every row lands in the same bin as
// under BinnedAggregate.  Requires BaseServableFunction(function).
BinnedResult CoarsenBaseHistogram(const BaseHistogram& base,
                                  AggregateFunction function, int num_bins,
                                  double lo, double hi);

// The raw (non-binned) series of the same (row set, dimension, measure)
// pair under `function`: keys = distinct values, one aggregate per fine
// bin.  Bit-exact vs GroupByAggregate for SUM/COUNT/AVG (same per-group
// association); moment-derived (FP tolerance) for STD/VAR.  Requires
// BaseServableFunction(function).
void BaseRawSeries(const BaseHistogram& base, AggregateFunction function,
                   std::vector<double>* keys,
                   std::vector<double>* aggregates);

// Merges two base histograms of the SAME (dimension, measure) pair over
// DISJOINT row sets — the additivity that makes incremental ingest
// O(new rows): `a` over the pre-append rows, `delta` over only the
// appended rows.  Fine-bin dictionaries union (sorted merge); counts,
// sums, and sums-of-squares add per shared value; prefix arrays rebuild.
// Exactness: COUNT is bit-identical to a full rebuild.  SUM moments
// re-associate at the merge boundary (old-total + new-total instead of
// one row-order chain), so SUM/AVG/STD/VAR are bit-identical whenever
// partial sums are exactly representable (integer-valued measures) and
// within the cache's ~1e-12 relative-error contract otherwise — the
// same contract multi-morsel fused builds already carry.
BaseHistogram MergeBaseHistograms(const BaseHistogram& a,
                                  const BaseHistogram& delta);

// Thread-safe, size-bounded store of BaseHistograms keyed by caller
// strings (ViewEvaluator uses "t|<dim>|<measure>" / "c|<dim>|<measure>"
// for the target / comparison side).  One cache instance must only be
// shared by evaluators probing the SAME row sets (the Recommender creates
// one per Recommend() call and hands it to every pool worker).
class BaseHistogramCache {
 public:
  struct Options {
    // Total byte budget across shards; per-shard LRU eviction keeps each
    // shard under its slice.  The most recently built entry of a shard is
    // never evicted (a histogram larger than the slice still serves the
    // probes that triggered it).
    size_t max_bytes = size_t{64} << 20;  // 64 MiB
    size_t num_shards = 16;
  };

  struct CacheStats {
    // GetOrBuild probes: every call counts one lookup and exactly one of
    // hit / miss (hits + misses == lookups — pinned by the cross-query
    // differential suite).  `builds` counts entries inserted, which can
    // exceed `misses`: fused passes insert histograms no GetOrBuild ever
    // probed for.
    int64_t lookups = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t builds = 0;
    int64_t evictions = 0;
    // Entries patched in place by MergeDelta (incremental ingest).
    int64_t delta_merges = 0;
    int64_t bytes = 0;  // currently retained
  };

  // Two overloads instead of one defaulted argument: a `= Options()`
  // default would require the nested class's member initializers before
  // the enclosing class is complete (ill-formed per [dcl.fct.default]).
  BaseHistogramCache();
  explicit BaseHistogramCache(Options options);

  using Builder = std::function<common::Result<BaseHistogram>()>;

  // Returns the cached histogram for `key`, invoking `builder` under the
  // shard lock on a miss (concurrent requests for one key build once).
  // `built`, when non-null, reports whether THIS call performed the
  // build — callers charge scan costs only then.  Builder errors are
  // propagated and nothing is cached.
  //
  // `expected_source_rows`, when >= 0, is a staleness guard for caches
  // shared across table versions: an entry whose source_rows differs is
  // dropped and rebuilt as a miss.  The row sets this cache sees are
  // append-only (a post-append set is a superset of its pre-append
  // version), so equal size implies equal set — the check never rejects
  // a current entry and always rejects one a concurrent pre-append
  // reader raced in after the append's delta patch.
  common::Result<std::shared_ptr<const BaseHistogram>> GetOrBuild(
      const std::string& key, const Builder& builder, bool* built,
      int64_t expected_source_rows = -1);

  // Whether `key` currently has an entry.  Does not touch LRU order —
  // callers use it to assemble fused build batches of the still-missing
  // pairs without perturbing eviction priority.  `expected_source_rows`
  // >= 0 additionally requires the entry to cover exactly that many
  // rows (the GetOrBuild staleness guard); a mismatched entry reads as
  // absent.
  bool Contains(const std::string& key,
                int64_t expected_source_rows = -1) const;

  // One pair of a fused build request: the cache key under which the
  // histogram is stored plus the (dimension, measure) columns it covers.
  struct FusedPairRequest {
    std::string key;
    std::string dimension;
    std::string measure;
  };

  // A fused build: ONE pass over `*rows` produces the base histograms of
  // every still-missing pair (pairs already cached are skipped), split
  // into ~`morsel_size`-row morsels on `pool` when provided.  This is
  // how ViewEvaluator prewarms the cache at recommendation start and
  // batches cache-miss builds: one traversal instead of |A| x |M|.
  struct FusedHistogramBuildRequest {
    const RowSet* rows = nullptr;
    std::vector<FusedPairRequest> pairs;
    common::ThreadPool* pool = nullptr;
    size_t morsel_size = 0;  // 0 = engine default (64K rows)
    // Execution control: the fused pass polls it per morsel and aborts
    // (caching nothing) once expired — see FusedBuildBaseHistograms.
    // Null = unbounded.
    common::ExecContext* exec = nullptr;
    // Single-flight coalescing: when another thread is already running a
    // fused pass over the SAME missing-pair set, wait for it instead of
    // scanning again, then re-check what is still missing (normally
    // nothing — the call returns having scanned zero rows).  A waiter
    // whose own `exec` expires gives up with that expiry status and the
    // in-flight pass is NOT disturbed; a waiter whose leader aborted or
    // whose entries were already evicted simply becomes the next leader.
    // Only concurrent IDENTICAL builds coalesce — overlapping-but-
    // different pair sets run independently (first-wins insert keeps
    // that correct, as today).
    bool coalesce = false;
  };

  // Accounting for one FusedBuild call, for the caller's ExecStats:
  // `passes` is 0 or 1 (whether a scan actually ran), `rows_scanned` is
  // rows->size() per pass (ONE traversal covers every pair).
  struct FusedBuildOutcome {
    int64_t passes = 0;
    int64_t histograms_built = 0;
    int64_t already_cached = 0;
    int64_t rows_scanned = 0;
    int64_t morsels = 0;
    // Times this call waited on another thread's identical in-flight
    // pass instead of scanning (ExecStats::fused_coalesced).
    int64_t coalesced = 0;
  };

  // Executes the fused build.  Histograms are inserted first-wins: a
  // concurrent builder of the same key keeps the existing entry when it
  // covers the same rows.  An entry covering a DIFFERENT row count than
  // `request.rows` — a stale base raced in by a pre-append reader — is
  // treated as missing and replaced (see GetOrBuild's staleness guard).
  // Errors from the scan engine are propagated; nothing is cached on
  // error.
  common::Status FusedBuild(const Table& table,
                            const FusedHistogramBuildRequest& request,
                            FusedBuildOutcome* outcome = nullptr,
                            FusedScanScratch* scratch = nullptr);

  // Incremental ingest: replaces the entry at `key` with
  // MergeBaseHistograms(entry, delta), where `delta` covers ONLY the
  // newly appended rows of the same row-set definition.  Returns true
  // when an entry existed and was patched (moved to LRU front, byte
  // accounting updated); false when absent — the next probe then builds
  // from the full row set, which is correct, just not incremental.
  // Outstanding shared_ptrs to the old histogram stay valid (readers
  // pinned to the pre-append snapshot keep consistent bases).
  bool MergeDelta(const std::string& key, const BaseHistogram& delta);

  // Drops every entry (a fresh cold-cache run).  Outstanding shared_ptrs
  // stay valid.
  void Clear();

  // Aggregated across shards; `bytes` is the current retained footprint.
  CacheStats TotalStats() const;

  size_t max_bytes() const { return options_.max_bytes; }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used.
    std::list<std::string> lru;
    struct Entry {
      std::shared_ptr<const BaseHistogram> histogram;
      std::list<std::string>::iterator lru_it;
      size_t bytes = 0;
    };
    std::unordered_map<std::string, Entry> entries;
    size_t bytes = 0;
    int64_t lookups = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t builds = 0;
    int64_t evictions = 0;
    int64_t delta_merges = 0;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  // Inserts under the shard lock (caller holds it): LRU front, byte
  // accounting, build counter, budget eviction.
  void InsertLocked(Shard& shard, const std::string& key,
                    std::shared_ptr<const BaseHistogram> histogram);

  Options options_;
  size_t per_shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Single-flight registry for coalesced fused builds: the set of
  // missing-pair-set keys with a pass in flight.  One cv for all flights
  // — coalescing events are rare and short-lived, so waiters tolerate
  // spurious wakes from unrelated flights; they also time-box each wait
  // to poll their own ExecContext.
  std::mutex flights_mu_;
  std::condition_variable flights_cv_;
  std::unordered_set<std::string> flights_;
};

}  // namespace muve::storage

#endif  // MUVE_STORAGE_BASE_HISTOGRAM_CACHE_H_
