// CSV import/export for tables.
//
// The reader supports a header row, quoted fields, type inference
// (int64 -> double -> string, with empty fields as NULL), and an optional
// caller-provided schema for exact typing and role annotations.

#ifndef MUVE_STORAGE_CSV_H_
#define MUVE_STORAGE_CSV_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace muve::storage {

struct CsvOptions {
  char delimiter = ',';
  // When set, the file's columns must match the schema by (case-
  // insensitive) header name; cells parse to the schema's types.
  // When unset, types are inferred per column.
  std::optional<Schema> schema;
};

// Parses CSV text into a table.  The first row is the header.
common::Result<Table> ReadCsvString(const std::string& text,
                                    const CsvOptions& options = {});

// Reads a CSV file from disk.
common::Result<Table> ReadCsvFile(const std::string& path,
                                  const CsvOptions& options = {});

// Serializes `table` as CSV (header + rows).  Fields containing the
// delimiter, quotes, or newlines are quoted.
std::string WriteCsvString(const Table& table, char delimiter = ',');

// Writes `table` to `path`.
common::Status WriteCsvFile(const Table& table, const std::string& path,
                            char delimiter = ',');

}  // namespace muve::storage

#endif  // MUVE_STORAGE_CSV_H_
