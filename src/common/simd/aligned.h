// 64-byte-aligned allocation for kernel scratch arenas.
//
// The SIMD kernel layer (common/simd/simd.h) loads its operands with
// unaligned instructions, so alignment is never a *correctness*
// requirement — but cache-line-aligned arenas keep hot accumulator slabs
// from straddling lines and let the compiler/hardware coalesce streaming
// stores.  `AlignedVector<T>` is a drop-in std::vector whose backing
// store is 64-byte aligned; the fused-scan partial arenas and the
// evaluator's distribution buffers use it.

#ifndef MUVE_COMMON_SIMD_ALIGNED_H_
#define MUVE_COMMON_SIMD_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace muve::common::simd {

inline constexpr std::size_t kKernelAlignment = 64;

// Minimal C++17 allocator handing out 64-byte-aligned storage.
template <typename T, std::size_t Alignment = kKernelAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T),
                "Alignment must satisfy the element type's alignment");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

// std::vector with a 64-byte-aligned backing store.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace muve::common::simd

#endif  // MUVE_COMMON_SIMD_ALIGNED_H_
