#include "common/thread_pool.h"

#include <utility>

#include "common/failpoint.h"

namespace muve::common {

ThreadPool::ThreadPool(size_t num_workers)
    : num_workers_(num_workers == 0 ? 1 : num_workers) {
  shards_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  threads_.reserve(num_workers_ - 1);
  for (size_t id = 1; id < num_workers_; ++id) {
    threads_.emplace_back([this, id] { WorkerLoop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  if (num_workers_ == 1 || count == 1) {
    // Inline, in index order: the serial semantics every parallel scheme
    // must reduce to at one worker.  Exception semantics must reduce too:
    // every index still runs, the first exception is rethrown at the end.
    for (size_t i = 0; i < count; ++i) {
      try {
        if (MUVE_FAILPOINT("thread_pool.task") == FailpointAction::kThrow) {
          throw FailpointError("thread_pool.task");
        }
        fn(0, i);
      } catch (...) {
        CaptureTaskException();
      }
    }
    std::exception_ptr eptr;
    {
      std::lock_guard<std::mutex> lock(exception_mu_);
      eptr = std::exchange(first_exception_, nullptr);
    }
    if (eptr) std::rethrow_exception(eptr);
    return;
  }

  // Deal indices round-robin so each lane starts with a contiguous-ish
  // stripe (matching the historical striping of the parallel Linear
  // path); stealing rebalances whatever this misestimates.
  for (size_t i = 0; i < count; ++i) {
    shards_[i % num_workers_]->items.push_back(i);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    workers_finished_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();

  RunShard(0);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [this] { return workers_finished_ == num_workers_ - 1; });
    fn_ = nullptr;
  }

  // Surface a task failure on the caller's thread, after the round has
  // fully drained (every background worker is back to waiting, so the
  // pool is reusable even when this throws).
  std::exception_ptr eptr;
  {
    std::lock_guard<std::mutex> lock(exception_mu_);
    eptr = std::exchange(first_exception_, nullptr);
  }
  if (eptr) std::rethrow_exception(eptr);
}

void ThreadPool::WorkerLoop(size_t id) {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    RunShard(id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_finished_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::RunShard(size_t id) {
  const std::function<void(size_t, size_t)>& fn = *fn_;
  size_t index;
  for (;;) {
    if (PopOwn(id, &index) || StealFromSiblings(id, &index)) {
      // A throwing task must not escape a worker thread (std::terminate);
      // capture it and keep draining so the round's exactly-once and
      // completion bookkeeping stay intact.
      try {
        if (MUVE_FAILPOINT("thread_pool.task") == FailpointAction::kThrow) {
          throw FailpointError("thread_pool.task");
        }
        fn(id, index);
      } catch (...) {
        CaptureTaskException();
      }
      continue;
    }
    // Every shard is empty: indices still in flight belong to workers
    // that will finish them before reporting done.
    return;
  }
}

void ThreadPool::CaptureTaskException() {
  std::lock_guard<std::mutex> lock(exception_mu_);
  if (!first_exception_) first_exception_ = std::current_exception();
}

bool ThreadPool::PopOwn(size_t id, size_t* index) {
  Shard& shard = *shards_[id];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.items.empty()) return false;
  *index = shard.items.front();
  shard.items.pop_front();
  return true;
}

bool ThreadPool::StealFromSiblings(size_t id, size_t* index) {
  for (size_t offset = 1; offset < num_workers_; ++offset) {
    Shard& shard = *shards_[(id + offset) % num_workers_];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.items.empty()) continue;
    // Steal from the back — the opposite end from the owner's pops, so
    // contention stays low and the owner keeps its cache-warm prefix.
    *index = shard.items.back();
    shard.items.pop_back();
    return true;
  }
  return false;
}

}  // namespace muve::common
