// Error handling primitives for the MuVE library.
//
// The library does not use exceptions on its main code paths.  Fallible
// operations return either a `Status` (no payload) or a `Result<T>`
// (payload-or-status), mirroring the Status/StatusOr idiom common in
// database engines.

#ifndef MUVE_COMMON_STATUS_H_
#define MUVE_COMMON_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

namespace muve::common {

// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kTypeMismatch,
  kIoError,
  // Execution-control outcomes (common/exec_context.h): a bounded run hit
  // its wall-clock deadline, was cancelled by its CancellationToken, or
  // exhausted a resource budget (rows scanned / bytes).  These classify
  // *graceful degradation*, not programming errors: searches that trip
  // them still return their best partial result.
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  // The service is temporarily unable to take the work: overload shedding
  // (muved's bounded admission queue is full or timed out) or a capacity
  // cap (max connections).  Distinct from kResourceExhausted — that is a
  // *request's own* budget running out; kUnavailable is the *server*
  // declining, and the right client reaction is to back off and retry
  // (the protocol error frame carries a retry_after_ms hint).
  kUnavailable,
};

// Returns a stable lowercase name for `code` (e.g. "invalid_argument").
const char* StatusCodeName(StatusCode code);

// The shared outcome-code table of the user-facing frontends: muve_cli
// exits with it, muved sends it as the protocol error's `exit_code`.
//   0 OK · 1 internal/unclassified · 2 invalid input (argument/parse/
//   type) · 3 I/O or missing file · 4 deadline exceeded · 5 cancelled ·
//   6 resource budget exhausted · 7 server unavailable (overloaded —
//   retry later)
int ExitCodeForStatus(StatusCode code);

// A cheap, value-semantic success-or-error type.  An OK status carries no
// message; an error status carries a code and a human-readable message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code_name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

// Carries a Status across a boundary that can only propagate exceptions
// (e.g. a worker task running under common::ThreadPool, whose ParallelFor
// rethrows on the calling thread).  The catcher unwraps `status()` and
// resumes normal Status/Result flow — the exception is transport, not an
// error model: non-exception paths must keep returning Status directly.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

// A value of type T or an error Status.  Accessing the value of an error
// result aborts the process (programming error), so callers must check
// `ok()` first on fallible paths.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      // A Result constructed from a Status must carry an error.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

// Propagates an error status out of the enclosing function.
#define MUVE_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::muve::common::Status _st = (expr);           \
    if (!_st.ok()) return _st;                     \
  } while (false)

// Evaluates a Result expression, propagating errors, otherwise assigning
// the value to `lhs`.  `lhs` may include a declaration.
#define MUVE_ASSIGN_OR_RETURN(lhs, rexpr)          \
  MUVE_ASSIGN_OR_RETURN_IMPL(                      \
      MUVE_STATUS_CONCAT(_muve_result_, __LINE__), lhs, rexpr)

#define MUVE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define MUVE_STATUS_CONCAT_INNER(a, b) a##b
#define MUVE_STATUS_CONCAT(a, b) MUVE_STATUS_CONCAT_INNER(a, b)

}  // namespace muve::common

#endif  // MUVE_COMMON_STATUS_H_
