// The MuVE recommender facade (Definition 2): given a dataset workload
// and a SearchH-SearchV configuration, return the top-k binned views by
// the hybrid multi-objective utility, plus the run's cost accounting.

#ifndef MUVE_CORE_RECOMMENDER_H_
#define MUVE_CORE_RECOMMENDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/candidate.h"
#include "core/exec_stats.h"
#include "core/search_options.h"
#include "core/view.h"
#include "core/view_evaluator.h"
#include "data/dataset.h"

namespace muve::core {

struct Recommendation {
  std::vector<ScoredView> views;  // utility-descending, at most k entries
  ExecStats stats;
  std::string scheme;  // paper naming, e.g. "MuVE-MuVE"

  // Sum of recommended utilities (the fidelity metric's U(V_rec)).
  double TotalUtility() const;

  std::string ToString() const;
};

// One recommendation engine per dataset workload.  Construction enumerates
// the view space and derives dimension binning ranges; each Recommend()
// call runs with a fresh evaluator (cold caches, zeroed cost accounting)
// so scheme costs are comparable.
class Recommender {
 public:
  static common::Result<Recommender> Create(data::Dataset dataset);

  common::Result<Recommendation> Recommend(const SearchOptions& options) const;

  const ViewSpace& space() const { return space_; }
  const data::Dataset& dataset() const { return dataset_; }

 private:
  // Multi-threaded vertical-Linear execution (options.num_threads > 1):
  // views are partitioned round-robin across workers, each with its own
  // evaluator; per-view bests and stats merge at the end.  Results are
  // identical to the serial run (horizontal searches are per-view
  // independent and HC seeds by view index).  Reported time components
  // sum *work* across threads — the paper's total-cost metric (Eq. 7) —
  // not elapsed wall-clock.
  common::Result<Recommendation> RecommendParallelLinear(
      const SearchOptions& options) const;

 public:

 private:
  Recommender(data::Dataset dataset, ViewSpace space)
      : dataset_(std::move(dataset)), space_(std::move(space)) {}

  data::Dataset dataset_;
  ViewSpace space_;
};

}  // namespace muve::core

#endif  // MUVE_CORE_RECOMMENDER_H_
