// Catalog: named tables with create / drop / append under MVCC snapshots.
//
// The catalog owns one entry per table name.  Every entry publishes an
// immutable snapshot — a shared_ptr<const Table> whose chunks never
// mutate — so an in-flight Recommend pins the exact chunk list it
// started with and is never perturbed by concurrent ingest.  Appends
// build the NEXT version out of the current one: every sealed chunk is
// shared by pointer and only the open tail chunk is copied before
// growing (Table::Clone + Column copy-on-write), so an append costs
// O(new rows + one tail chunk), independent of table size, and row ids
// are stable across versions (append-only).
//
// Concurrency: a per-entry readers-vs-ingest lock (std::shared_mutex).
// Readers take it shared just long enough to copy the snapshot pointer;
// an append holds it exclusive across build-next-version + publish, so
// appends to one table serialize while appends to different tables and
// all snapshot reads proceed concurrently.
//
// Epochs, the contract the caches build on:
//   * `data_epoch` bumps on EVERY mutation (append).  Anything derived
//     from specific row contents at specific positions — selection
//     vectors, cached recommendation results — keys on it and therefore
//     invalidates on append.
//   * `base_epoch` bumps only when history is not preserved: create and
//     drop (a recreated name must never alias the old one's derived
//     state).  Base histograms are ADDITIVE over appended rows, so
//     entries keyed under base_epoch survive appends and are patched by
//     delta merge (BaseHistogramCache::MergeDelta) instead of rebuilt.

#ifndef MUVE_STORAGE_CATALOG_H_
#define MUVE_STORAGE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace muve::storage {

class Catalog {
 public:
  // One immutable table version plus the epochs it was read under.
  struct Snapshot {
    std::shared_ptr<const Table> table;
    uint64_t data_epoch = 0;
    uint64_t base_epoch = 0;
  };

  struct AppendResult {
    Snapshot snapshot;  // the post-append version
    size_t rows_before = 0;
    size_t rows_appended = 0;
  };

  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Registers `table` under `name`.  AlreadyExists when the name is
  // taken.  The initial data_epoch is 1; base_epoch is drawn from a
  // process-wide counter so a name recreated after a drop can never
  // alias derived state of its predecessor.
  common::Status Create(const std::string& name, Table table);

  // Removes `name`.  Outstanding snapshots stay valid (shared_ptr);
  // NotFound when absent.
  common::Status Drop(const std::string& name);

  // Current snapshot of `name`; NotFound when absent.
  common::Result<Snapshot> Get(const std::string& name) const;

  // Appends every row of `rows` (matching arity; per-cell type rules of
  // Column::AppendValue) as the next version of `name`.  All-or-nothing:
  // the new version publishes only when every row appended cleanly — a
  // mid-batch type error leaves the current version untouched.  Bumps
  // data_epoch, preserves base_epoch.
  common::Result<AppendResult> Append(const std::string& name,
                                      const Table& rows);

  // Administrative full invalidation of `name`: bumps data_epoch AND
  // assigns a fresh base_epoch, so every derived cache entry — including
  // the append-surviving base histograms — becomes unreachable.  The
  // table itself is untouched.  Returns the post-bump snapshot.
  common::Result<Snapshot> Invalidate(const std::string& name);

  // Sorted table names.
  std::vector<std::string> List() const;

  bool Contains(const std::string& name) const;

 private:
  struct Entry {
    mutable std::shared_mutex mu;  // readers-vs-ingest
    std::shared_ptr<const Table> table;
    uint64_t data_epoch = 1;
    uint64_t base_epoch = 0;
  };

  std::shared_ptr<Entry> FindEntry(const std::string& name) const;

  mutable std::mutex map_mu_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;

  static std::atomic<uint64_t> next_base_epoch_;
};

}  // namespace muve::storage

#endif  // MUVE_STORAGE_CATALOG_H_
