# Empty compiler generated dependencies file for recommend_sql_test.
# This may be replaced when dependencies are built.
