#include "storage/csv.h"

#include <gtest/gtest.h>

#include <clocale>
#include <limits>
#include <memory>
#include <string>

#include "common/exec_context.h"

namespace muve::storage {
namespace {

TEST(CsvReadTest, InfersTypes) {
  auto table = ReadCsvString("id,score,name\n1,0.5,ann\n2,1.5,bob\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().field(0).type, ValueType::kInt64);
  EXPECT_EQ(table->schema().field(1).type, ValueType::kDouble);
  EXPECT_EQ(table->schema().field(2).type, ValueType::kString);
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->At(1, 2), Value("bob"));
}

TEST(CsvReadTest, MixedIntAndFloatBecomesDouble) {
  auto table = ReadCsvString("v\n1\n2.5\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().field(0).type, ValueType::kDouble);
}

TEST(CsvReadTest, EmptyFieldsAreNull) {
  auto table = ReadCsvString("a,b\n1,\n,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->At(0, 1).is_null());
  EXPECT_TRUE(table->At(1, 0).is_null());
  EXPECT_EQ(table->At(0, 0), Value(int64_t{1}));
}

TEST(CsvReadTest, QuotedFieldsWithDelimitersAndEscapes) {
  auto table = ReadCsvString(
      "name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\nplain,ok\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->At(0, 0), Value("Smith, John"));
  EXPECT_EQ(table->At(0, 1), Value("said \"hi\""));
}

TEST(CsvReadTest, CrLfLineEndings) {
  auto table = ReadCsvString("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->At(1, 1), Value(int64_t{4}));
}

TEST(CsvReadTest, FieldCountMismatchFails) {
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());
}

TEST(CsvReadTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ReadCsvString("a\n\"oops\n").ok());
}

TEST(CsvReadTest, EmptyInputFails) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvReadTest, ExplicitSchemaEnforcesTypes) {
  CsvOptions options;
  options.schema = Schema({{"id", ValueType::kInt64},
                           {"score", ValueType::kDouble}});
  auto ok = ReadCsvString("id,score\n1,2.5\n", options);
  ASSERT_TRUE(ok.ok());
  // Non-numeric cell in an int column fails.
  auto bad = ReadCsvString("id,score\nx,2.5\n", options);
  EXPECT_FALSE(bad.ok());
  // Header mismatch fails.
  auto wrong = ReadCsvString("idx,score\n1,2.5\n", options);
  EXPECT_FALSE(wrong.ok());
}

TEST(CsvReadTest, SchemaHeaderIsCaseInsensitive) {
  CsvOptions options;
  options.schema = Schema({{"ID", ValueType::kInt64}});
  auto table = ReadCsvString("id\n3\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().field(0).name, "ID");
}

TEST(CsvRoundTripTest, WriteThenReadPreservesData) {
  auto original = ReadCsvString(
      "i,d,s\n1,0.5,\"a,b\"\n2,1.5,\"quote\"\"d\"\n-3,2.0,plain\n");
  ASSERT_TRUE(original.ok());
  const std::string text = WriteCsvString(*original);
  auto reread = ReadCsvString(text);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread->num_rows(), original->num_rows());
  for (size_t r = 0; r < original->num_rows(); ++r) {
    for (size_t c = 0; c < original->num_columns(); ++c) {
      EXPECT_EQ(original->At(r, c), reread->At(r, c)) << r << "," << c;
    }
  }
}

TEST(CsvFileTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path.csv").ok());
}

TEST(CsvFileTest, OversizedFileIsRefusedByMaxBytes) {
  auto table = ReadCsvString("a,b\n1,2\n2,3\n");
  ASSERT_TRUE(table.ok());
  const std::string path = ::testing::TempDir() + "/muve_csv_maxbytes.csv";
  ASSERT_TRUE(WriteCsvFile(*table, path).ok());
  CsvOptions options;
  options.max_bytes = 4;  // Far below the file's size.
  auto refused = ReadCsvFile(path, options);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), common::StatusCode::kIoError);
  // The same file reads fine at the default ceiling.
  EXPECT_TRUE(ReadCsvFile(path).ok());
}

TEST(CsvReadTest, OversizedStringIsRefusedByMaxBytes) {
  CsvOptions options;
  options.max_bytes = 4;
  auto refused = ReadCsvString("a,b\n1,2\n", options);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), common::StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Malformed-input corpus (tests/data/bad_csv): every file must be refused
// with a typed ParseError — never a crash, never a truncated table.  See
// the corpus README for what each file breaks.

std::string BadCsvPath(const std::string& name) {
  return std::string(MUVE_BAD_CSV_DIR) + "/" + name;
}

void ExpectCorpusParseError(const std::string& name) {
  auto result = ReadCsvFile(BadCsvPath(name));
  ASSERT_FALSE(result.ok()) << name << " unexpectedly parsed";
  EXPECT_EQ(result.status().code(), common::StatusCode::kParseError)
      << name << ": " << result.status().ToString();
}

TEST(CsvBadCorpusTest, EmptyFile) { ExpectCorpusParseError("empty.csv"); }

TEST(CsvBadCorpusTest, UnterminatedQuote) {
  ExpectCorpusParseError("unterminated_quote.csv");
}

TEST(CsvBadCorpusTest, RaggedRow) {
  ExpectCorpusParseError("ragged_row.csv");
}

TEST(CsvBadCorpusTest, TruncatedFinalLine) {
  ExpectCorpusParseError("truncated_final_line.csv");
}

TEST(CsvBadCorpusTest, EmptyHeaderName) {
  ExpectCorpusParseError("empty_header.csv");
}

TEST(CsvBadCorpusTest, OnlyBlankLines) {
  ExpectCorpusParseError("only_blank_lines.csv");
}

TEST(CsvBadCorpusTest, BadCellUnderSchema) {
  // Well-formed under inference (column a becomes string)...
  ASSERT_TRUE(ReadCsvFile(BadCsvPath("bad_cell.csv")).ok());
  // ...but a pinned int64 schema turns the 'x' cell into a ParseError.
  Schema schema;
  ASSERT_TRUE(schema.AddField(Field("a", ValueType::kInt64)).ok());
  ASSERT_TRUE(schema.AddField(Field("b", ValueType::kInt64)).ok());
  CsvOptions options;
  options.schema = schema;
  auto result = ReadCsvFile(BadCsvPath("bad_cell.csv"), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kParseError);
}

TEST(CsvBadCorpusTest, ExtremeValuesUnderSchema) {
  // Well-formed under inference: the impossible numerics (1e400, inf,
  // nan, 0x10) demote the column to string.
  auto inferred = ReadCsvFile(BadCsvPath("extreme_values.csv"));
  ASSERT_TRUE(inferred.ok()) << inferred.status().ToString();
  EXPECT_EQ(inferred->schema().field(0).type, ValueType::kString);
  // Under a pinned int64 schema the first impossible cell (1e30: a fine
  // double, but outside int64) is a typed ParseError — this exact cell
  // was UB in the old `d == (int64_t)d` conversion check.
  CsvOptions int_options;
  int_options.schema = Schema({{"v", ValueType::kInt64}});
  auto as_int = ReadCsvFile(BadCsvPath("extreme_values.csv"), int_options);
  ASSERT_FALSE(as_int.ok());
  EXPECT_EQ(as_int.status().code(), common::StatusCode::kParseError);
  // A pinned double schema rejects the overflow/inf/nan/hex tail too.
  CsvOptions double_options;
  double_options.schema = Schema({{"v", ValueType::kDouble}});
  auto as_double =
      ReadCsvFile(BadCsvPath("extreme_values.csv"), double_options);
  ASSERT_FALSE(as_double.ok());
  EXPECT_EQ(as_double.status().code(), common::StatusCode::kParseError);
}

TEST(CsvNumericEdgeTest, ScientificIntegersConvertExactlyOrFail) {
  Schema schema({{"v", ValueType::kInt64}});
  CsvOptions options;
  options.schema = schema;
  // 9e18 < 2^63 and is integral (>= 2^53 doubles are whole): exact.
  auto fits = ReadCsvString("v\n9e18\n-9e18\n", options);
  ASSERT_TRUE(fits.ok()) << fits.status().ToString();
  EXPECT_EQ(fits->At(0, 0), Value(int64_t{9000000000000000000}));
  EXPECT_EQ(fits->At(1, 0), Value(int64_t{-9000000000000000000}));
  // 2^63 itself (and everything above) must fail, not wrap: the upper
  // bound is exclusive because 2^63 is representable as a double but not
  // as an int64.
  EXPECT_FALSE(ReadCsvString("v\n9223372036854775808.0\n", options).ok());
  EXPECT_FALSE(ReadCsvString("v\n9.3e18\n", options).ok());
  EXPECT_FALSE(ReadCsvString("v\n1e30\n", options).ok());
  EXPECT_FALSE(ReadCsvString("v\n-1e30\n", options).ok());
  // Non-integral doubles under an int64 schema fail too.
  EXPECT_FALSE(ReadCsvString("v\n1.5\n", options).ok());
  // INT64_MIN is exactly representable as a double and must round-trip.
  auto min_ok = ReadCsvString("v\n-9.223372036854775808e18\n", options);
  ASSERT_TRUE(min_ok.ok()) << min_ok.status().ToString();
  EXPECT_EQ(min_ok->At(0, 0),
            Value(std::numeric_limits<int64_t>::min()));
}

TEST(CsvNumericEdgeTest, InfNanHexCellsAreNotNumbers) {
  // Under inference these cells demote the column to string...
  auto inferred = ReadCsvString("v\n1.5\ninf\n");
  ASSERT_TRUE(inferred.ok());
  EXPECT_EQ(inferred->schema().field(0).type, ValueType::kString);
  // ...and under a double schema they are parse errors.
  CsvOptions options;
  options.schema = Schema({{"v", ValueType::kDouble}});
  for (const char* cell : {"inf", "-inf", "nan", "NaN", "0x10", "1e400"}) {
    EXPECT_FALSE(ReadCsvString(std::string("v\n") + cell + "\n", options).ok())
        << cell;
  }
}

TEST(CsvNumericEdgeTest, LocaleIndependentCells) {
  const char* old = std::setlocale(LC_NUMERIC, nullptr);
  std::string saved = old != nullptr ? old : "C";
  for (const char* name :
       {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) break;
  }
  // "1.5" is 1.5 under every locale; "1,5" splits into two fields (the
  // comma is the CSV delimiter, never a decimal point).
  auto table = ReadCsvString("a,b\n1.5,2\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().field(0).type, ValueType::kDouble);
  EXPECT_EQ(table->At(0, 0), Value(1.5));
  std::setlocale(LC_NUMERIC, saved.c_str());
}

TEST(CsvFileTest, WriteAndReadBack) {
  auto table = ReadCsvString("a,b\n1,two\n");
  ASSERT_TRUE(table.ok());
  const std::string path = ::testing::TempDir() + "/muve_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*table, path).ok());
  auto reread = ReadCsvFile(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->num_rows(), 1u);
  EXPECT_EQ(reread->At(0, 1), Value("two"));
}

// Execution control: a cancelled / expired ExecContext aborts the parse
// between row batches instead of loading the whole input (the server's
// per-request deadline covers CSV ingest too).
TEST(CsvExecContextTest, CancelledContextAbortsLoad) {
  std::string csv = "a,b\n";
  for (int i = 0; i < 20000; ++i) {
    csv += std::to_string(i) + "," + std::to_string(2 * i) + "\n";
  }

  common::ExecContext exec;
  auto token = std::make_shared<common::CancellationToken>();
  exec.SetCancellationToken(token);
  token->Cancel();

  CsvOptions options;
  options.exec = &exec;
  auto table = ReadCsvString(csv, options);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), common::StatusCode::kCancelled);
}

TEST(CsvExecContextTest, ExpiredDeadlineAbortsLoad) {
  std::string csv = "a\n";
  for (int i = 0; i < 20000; ++i) {
    csv += std::to_string(i) + "\n";
  }
  common::ExecContext exec;
  exec.SetDeadlineAfterMillis(0.0);  // already expired
  CsvOptions options;
  options.exec = &exec;
  auto table = ReadCsvString(csv, options);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), common::StatusCode::kDeadlineExceeded);
}

TEST(CsvExecContextTest, UnboundedContextLoadsNormally) {
  common::ExecContext exec;
  CsvOptions options;
  options.exec = &exec;
  auto table = ReadCsvString("a\n1\n2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
}

}  // namespace
}  // namespace muve::storage
