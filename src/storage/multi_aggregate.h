// Shared-scan aggregation: SeeDB's "shared computation among views"
// optimization (cited in Section II-A as orthogonal to MuVE's pruning).
//
// All candidate views that share a dimension A and a bin count b differ
// only in their (measure, function) pair, so a single scan of the data
// can feed every pair's accumulator at once — one bin-index computation
// per row instead of |M| x |F| of them.  The executor exposes batch
// variants of the two aggregation kernels; results are bit-identical to
// running the single-view kernels per pair.

#ifndef MUVE_STORAGE_MULTI_AGGREGATE_H_
#define MUVE_STORAGE_MULTI_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/binned_group_by.h"
#include "storage/group_by.h"

namespace muve::storage {

// One (measure, function) pair of a shared batch.
struct AggregateSpec {
  std::string measure;
  AggregateFunction function = AggregateFunction::kSum;
};

// Binned aggregation of every spec over one scan.  Equivalent to calling
// BinnedAggregate per spec; same argument validation applies to each
// spec's measure.
common::Result<std::vector<BinnedResult>> MultiBinnedAggregate(
    const Table& table, const RowSet& rows, std::string_view dimension,
    const std::vector<AggregateSpec>& specs, int num_bins, double lo,
    double hi);

// Raw (non-binned) group-by of every spec over one scan.  Group sets can
// differ per spec when measures have NULLs in different rows, exactly as
// with per-spec GroupByAggregate calls.
common::Result<std::vector<GroupByResult>> MultiGroupByAggregate(
    const Table& table, const RowSet& rows, std::string_view dimension,
    const std::vector<AggregateSpec>& specs);

}  // namespace muve::storage

#endif  // MUVE_STORAGE_MULTI_AGGREGATE_H_
