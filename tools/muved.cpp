// muved — the MuVE recommendation daemon.
//
//   $ muved --port=7171 --max-concurrent=4 --preload=nba,diab
//
// Serves length-prefixed JSON frames over 127.0.0.1 TCP (protocol in
// src/server/protocol.h; field tables in README "muved").  Runs until
// SIGINT/SIGTERM or a client's {"op":"shutdown"} request, then drains
// in-flight requests and exits 0.
//
// Flags (all numeric values parsed strictly — garbage exits 2):
//   --port=N            TCP port on 127.0.0.1 (default 7171; 0 = pick an
//                       ephemeral port and print it)
//   --max-concurrent=N  admission cap: Recommend() calls executing at
//                       once (default 4); excess requests queue
//   --max-queue=N       waiting room at the admission gate (default 64;
//                       0 = shed immediately when all slots are busy)
//   --queue-timeout-ms=N
//                       longest one request may queue before being shed
//                       with an `unavailable` + retry_after_ms frame
//                       (default 1000; 0 = wait indefinitely)
//   --idle-timeout-ms=N drop a session silent between frames for this
//                       long (default 300000 = 5 min; 0 = never)
//   --frame-timeout-ms=N
//                       once a frame starts, it must complete within
//                       this window — anti-slowloris (default 10000;
//                       0 = never)
//   --write-timeout-ms=N
//                       budget for writing one response to a peer that
//                       won't read (default 10000; 0 = block forever)
//   --max-connections=N accept-time cap on live sessions; excess
//                       connections get one `unavailable` frame and a
//                       close (default 256; 0 = unlimited)
//   --max-threads=N     upper bound on a request's "threads" field
//                       (default 8)
//   --preload=a,b       build these datasets' recommenders before
//                       accepting traffic (diab|nba|toy), so first
//                       requests don't pay cold-build latency
//   --no-shutdown-op    refuse {"op":"shutdown"} (signals only)
//   --no-cross-query-cache
//                       disable all three cross-request sharing layers
//                       (selection-vector cache, shared base-histogram
//                       stores, top-k result cache — DESIGN.md §13);
//                       every request then executes in isolation
//   --result-cache-entries=N
//                       LRU cap on cached top-k responses (default 256;
//                       0 disables just the result cache)

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <iostream>
#include <string>
#include <thread>

#include "common/parse.h"
#include "common/simd/simd.h"
#include "common/status.h"
#include "common/string_util.h"
#include "server/muved_server.h"
#include "server/protocol.h"

namespace {

using muve::common::Status;

struct Flags {
  int port = 7171;
  int max_concurrent = 4;
  // Production overload/lifecycle defaults.  The library's
  // ServerOptions default to permissive (unbounded waits, no timeouts)
  // for embedders; the daemon ships with teeth.
  int max_queue = 64;
  int queue_timeout_ms = 1000;
  int idle_timeout_ms = 300000;
  int frame_timeout_ms = 10000;
  int write_timeout_ms = 10000;
  int max_connections = 256;
  int max_threads = 8;
  std::string preload;
  bool allow_shutdown_op = true;
  bool cross_query_cache = true;
  int result_cache_entries = 256;
};

Status ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto has = [&arg](const std::string& name) {
      return muve::common::StartsWith(arg, name);
    };
    auto value_of = [&arg](const std::string& name) {
      return arg.substr(name.size());
    };
    if (has("--port=")) {
      MUVE_ASSIGN_OR_RETURN(
          flags->port, muve::common::ParseFlagInt64(
                           "--port", value_of("--port="), 0, 65535));
    } else if (has("--max-concurrent=")) {
      MUVE_ASSIGN_OR_RETURN(flags->max_concurrent,
                            muve::common::ParseFlagInt64(
                                "--max-concurrent",
                                value_of("--max-concurrent="), 1, 1024));
    } else if (has("--max-queue=")) {
      MUVE_ASSIGN_OR_RETURN(
          flags->max_queue,
          muve::common::ParseFlagInt64("--max-queue", value_of("--max-queue="),
                                       0, 1 << 20));
    } else if (has("--queue-timeout-ms=")) {
      MUVE_ASSIGN_OR_RETURN(flags->queue_timeout_ms,
                            muve::common::ParseFlagInt64(
                                "--queue-timeout-ms",
                                value_of("--queue-timeout-ms="), 0, 86400000));
    } else if (has("--idle-timeout-ms=")) {
      MUVE_ASSIGN_OR_RETURN(flags->idle_timeout_ms,
                            muve::common::ParseFlagInt64(
                                "--idle-timeout-ms",
                                value_of("--idle-timeout-ms="), 0, 86400000));
    } else if (has("--frame-timeout-ms=")) {
      MUVE_ASSIGN_OR_RETURN(flags->frame_timeout_ms,
                            muve::common::ParseFlagInt64(
                                "--frame-timeout-ms",
                                value_of("--frame-timeout-ms="), 0, 86400000));
    } else if (has("--write-timeout-ms=")) {
      MUVE_ASSIGN_OR_RETURN(flags->write_timeout_ms,
                            muve::common::ParseFlagInt64(
                                "--write-timeout-ms",
                                value_of("--write-timeout-ms="), 0, 86400000));
    } else if (has("--max-connections=")) {
      MUVE_ASSIGN_OR_RETURN(flags->max_connections,
                            muve::common::ParseFlagInt64(
                                "--max-connections",
                                value_of("--max-connections="), 0, 1 << 20));
    } else if (has("--max-threads=")) {
      MUVE_ASSIGN_OR_RETURN(
          flags->max_threads,
          muve::common::ParseFlagInt64("--max-threads",
                                       value_of("--max-threads="), 1, 4096));
    } else if (has("--preload=")) {
      flags->preload = value_of("--preload=");
    } else if (arg == "--no-shutdown-op") {
      flags->allow_shutdown_op = false;
    } else if (arg == "--no-cross-query-cache") {
      flags->cross_query_cache = false;
    } else if (has("--result-cache-entries=")) {
      MUVE_ASSIGN_OR_RETURN(
          flags->result_cache_entries,
          muve::common::ParseFlagInt64("--result-cache-entries",
                                       value_of("--result-cache-entries="), 0,
                                       1 << 20));
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (Status st = ParseFlags(argc, argv, &flags); !st.ok()) {
    std::cerr << st.message() << "\n\nSee the header of tools/muved.cpp for "
              << "flag documentation.\n";
    return 2;
  }

  muve::server::ServerOptions options;
  options.port = flags.port;
  options.max_concurrent = flags.max_concurrent;
  options.max_queue = flags.max_queue;
  options.queue_timeout_ms = flags.queue_timeout_ms;
  options.idle_timeout_ms = flags.idle_timeout_ms;
  options.frame_timeout_ms = flags.frame_timeout_ms;
  options.write_timeout_ms = flags.write_timeout_ms;
  options.max_connections = flags.max_connections;
  options.max_request_threads = flags.max_threads;
  options.allow_shutdown_op = flags.allow_shutdown_op;
  options.enable_selection_cache = flags.cross_query_cache;
  options.enable_shared_base_cache = flags.cross_query_cache;
  options.enable_result_cache =
      flags.cross_query_cache && flags.result_cache_entries > 0;
  if (flags.result_cache_entries > 0) {
    options.result_cache_entries =
        static_cast<size_t>(flags.result_cache_entries);
  }
  muve::server::MuvedServer server(options);

  // A client may vanish between its request and our response; writes go
  // through send(MSG_NOSIGNAL) in the protocol layer, and SIGPIPE is
  // ignored here too so no future write path can kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  // Block SIGINT/SIGTERM in every thread the server will spawn, then
  // collect them synchronously below — no async-signal-unsafe handler
  // code, and worker threads never steal the signal.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  if (Status st = server.Start(); !st.ok()) {
    std::cerr << "muved: " << st.ToString() << "\n";
    return muve::common::ExitCodeForStatus(st.code());
  }
  std::cout << "muved listening on 127.0.0.1:" << server.port()
            << " (max_concurrent=" << flags.max_concurrent
            << ", simd=" << muve::common::simd::ActiveLevelName() << ")\n"
            << std::flush;

  // Warm the registry before traffic by issuing a real `use` through a
  // loopback connection — same code path as a client, so the preload
  // list is validated exactly like client input.
  if (!flags.preload.empty()) {
    auto fd = muve::server::DialLocal(server.port());
    if (!fd.ok()) {
      // --preload promised warm datasets; starting cold anyway would
      // silently break that contract.  Fail loudly, like a bad dataset.
      std::cerr << "muved: preload connection failed: "
                << fd.status().ToString() << "\n";
      server.Stop();
      return 2;
    }
    for (const auto& name : muve::common::Split(flags.preload, ',')) {
      auto request = muve::server::JsonValue::Object();
      request.Set("op", muve::server::JsonValue::String("use"));
      request.Set("dataset", muve::server::JsonValue::String(
                                 std::string(muve::common::Trim(name))));
      auto response = muve::server::RoundTrip(*fd, request);
      const muve::server::JsonValue* ok =
          response.ok() ? response->Find("ok") : nullptr;
      if (!response.ok() || ok == nullptr || !ok->bool_value()) {
        std::cerr << "muved: preload of '" << std::string(name)
                  << "' failed\n";
        ::close(*fd);
        server.Stop();
        return 2;
      }
      std::cout << "muved: preloaded " << std::string(name) << "\n"
                << std::flush;
    }
    ::close(*fd);
  }

  // Wait for a signal OR a protocol shutdown request, whichever first.
  // The signal waiter runs in a side thread so both wake paths converge
  // on server.Wait().  `exiting` distinguishes a real signal from the
  // self-raised SIGTERM that unblocks sigwait when shutdown came over
  // the wire.
  std::atomic<bool> exiting{false};
  std::thread signal_thread([&signals, &server, &exiting] {
    int sig = 0;
    // sigwait returns EINTR-free; a failure here means the set was
    // empty, which cannot happen.
    if (sigwait(&signals, &sig) == 0 && !exiting.load()) {
      std::cout << "muved: caught " << (sig == SIGINT ? "SIGINT" : "SIGTERM")
                << ", draining\n"
                << std::flush;
      server.RequestStop();
    }
  });

  server.Wait();
  server.Stop();
  // Unblock the signal thread if shutdown came over the wire: raise the
  // signal it is waiting for.
  exiting.store(true);
  pthread_kill(signal_thread.native_handle(), SIGTERM);
  signal_thread.join();

  const auto counters = server.counters();
  const int64_t sheds = counters.requests_shed_queue_full +
                        counters.requests_shed_timeout +
                        counters.requests_shed_deadline;
  std::cout << "muved: stopped cleanly (connections="
            << counters.connections_accepted
            << " requests=" << counters.requests_served
            << " recommends=" << counters.recommends_executed
            << " errors=" << counters.errors_returned
            << " sheds=" << sheds
            << " conns_shed=" << counters.connections_shed << ")\n";
  return 0;
}
