#include "sql/ast.h"

#include <sstream>

#include "common/string_util.h"

namespace muve::sql {

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  switch (kind) {
    case Kind::kStar:
      return "*";
    case Kind::kColumn:
      return column;
    case Kind::kAggregate:
      if (count_star) return "COUNT(*)";
      return std::string(storage::AggregateName(function)) + "(" + column +
             ")";
  }
  return "?";
}

std::string SelectStatement::ToString() const {
  std::ostringstream out;
  out << "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out << ", ";
    out << items[i].OutputName();
  }
  out << " FROM " << table_name;
  if (where != nullptr) out << " WHERE " << where->ToString();
  if (group_by.has_value()) out << " GROUP BY " << *group_by;
  if (num_bins.has_value()) out << " NUMBER OF BINS " << *num_bins;
  if (having != nullptr) out << " HAVING " << having->ToString();
  if (order_by.has_value()) {
    out << " ORDER BY " << order_by->column
        << (order_by->descending ? " DESC" : " ASC");
  }
  if (limit.has_value()) out << " LIMIT " << *limit;
  return out.str();
}

std::string CreateTableStatement::ToString() const {
  return "CREATE TABLE " + table_name + " (" + schema.ToString() + ")";
}

std::string InsertStatement::ToString() const {
  return "INSERT INTO " + table_name + " VALUES ... (" +
         std::to_string(rows.size()) + " rows)";
}

std::string LoadCsvStatement::ToString() const {
  return "LOAD CSV '" + path + "' INTO " + table_name;
}

std::string RecommendStatement::ToString() const {
  std::ostringstream out;
  out << "RECOMMEND TOP " << top_k << " VIEWS FROM " << table_name;
  if (where != nullptr) out << " WHERE " << where->ToString();
  out << " USING " << scheme << " WEIGHTS (" << common::FormatDouble(alpha_d, 2)
      << ", " << common::FormatDouble(alpha_a, 2) << ", "
      << common::FormatDouble(alpha_s, 2) << ")";
  if (distance != "EUCLIDEAN") out << " DISTANCE " << distance;
  return out.str();
}

}  // namespace muve::sql
