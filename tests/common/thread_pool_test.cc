#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace muve::common {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t /*worker*/, size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> by_worker(3);
  std::atomic<bool> out_of_range{false};
  pool.ParallelFor(300, [&](size_t worker, size_t /*i*/) {
    if (worker >= 3) {
      out_of_range.store(true);
    } else {
      by_worker[worker].fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_FALSE(out_of_range.load());
  int total = 0;
  for (auto& c : by_worker) total += c.load();
  EXPECT_EQ(total, 300);
  // No guarantee any particular worker runs an index: with stealing, a
  // worker's whole shard can be drained by its siblings before it wakes.
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(round + 1, [&](size_t, size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    const size_t n = static_cast<size_t>(round) + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(10, [&](size_t worker, size_t i) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);  // no synchronization needed: caller thread only
  });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::set<size_t> seen;
  std::mutex mu;
  pool.ParallelFor(3, [&](size_t, size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(i);
  });
  EXPECT_EQ(seen, (std::set<size_t>{0, 1, 2}));
}

TEST(ThreadPoolTest, StealingDrainsUnevenShards) {
  // One deliberately slow index pins a worker; the others must steal the
  // rest of its shard so the round still completes with every index run.
  ThreadPool pool(4);
  constexpr size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t, size_t i) {
    if (i == 1) {  // lands in worker 1's shard; block it briefly
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace muve::common
