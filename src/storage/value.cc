#include "storage/value.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace muve::storage {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt64;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

int64_t Value::AsInt64() const {
  MUVE_CHECK(type() == ValueType::kInt64) << "Value is " << ValueTypeName(type());
  return std::get<int64_t>(data_);
}

double Value::AsDoubleExact() const {
  MUVE_CHECK(type() == ValueType::kDouble) << "Value is " << ValueTypeName(type());
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  MUVE_CHECK(type() == ValueType::kString) << "Value is " << ValueTypeName(type());
  return std::get<std::string>(data_);
}

common::Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return std::get<double>(data_);
    case ValueType::kNull:
      return common::Status::TypeMismatch("cannot convert NULL to double");
    case ValueType::kString:
      return common::Status::TypeMismatch("cannot convert string '" +
                                          std::get<std::string>(data_) +
                                          "' to double");
  }
  return common::Status::Internal("corrupt Value");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble: {
      const double d = std::get<double>(data_);
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        // Render integral doubles without a trailing ".000000".
        return common::FormatDouble(d, 1);
      }
      return common::FormatDouble(d, 6);
    }
    case ValueType::kString:
      return std::get<std::string>(data_);
  }
  return "";
}

bool Value::operator==(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) {
    return a == b;
  }
  if (is_numeric() && other.is_numeric()) {
    const double lhs = a == ValueType::kInt64
                           ? static_cast<double>(std::get<int64_t>(data_))
                           : std::get<double>(data_);
    const double rhs = b == ValueType::kInt64
                           ? static_cast<double>(std::get<int64_t>(other.data_))
                           : std::get<double>(other.data_);
    return lhs == rhs;
  }
  if (a != b) return false;
  return data_ == other.data_;
}

bool Value::operator<(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  // Null < numerics < strings.
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt64:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  if (rank(a) != rank(b)) return rank(a) < rank(b);
  if (a == ValueType::kNull) return false;
  if (is_numeric()) {
    const double lhs = a == ValueType::kInt64
                           ? static_cast<double>(std::get<int64_t>(data_))
                           : std::get<double>(data_);
    const double rhs = b == ValueType::kInt64
                           ? static_cast<double>(std::get<int64_t>(other.data_))
                           : std::get<double>(other.data_);
    return lhs < rhs;
  }
  return std::get<std::string>(data_) < std::get<std::string>(other.data_);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kInt64: {
      // Hash integral values through double so that Value(1) and Value(1.0)
      // (which compare equal) also hash equal.
      const double d = static_cast<double>(std::get<int64_t>(data_));
      return std::hash<double>{}(d);
    }
    case ValueType::kDouble:
      return std::hash<double>{}(std::get<double>(data_));
    case ValueType::kString:
      return std::hash<std::string>{}(std::get<std::string>(data_));
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  if (value.is_null()) return os << "NULL";
  return os << value.ToString();
}

}  // namespace muve::storage
