file(REMOVE_RECURSE
  "CMakeFiles/binned_group_by_test.dir/storage/binned_group_by_test.cc.o"
  "CMakeFiles/binned_group_by_test.dir/storage/binned_group_by_test.cc.o.d"
  "binned_group_by_test"
  "binned_group_by_test.pdb"
  "binned_group_by_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binned_group_by_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
