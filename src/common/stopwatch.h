// Wall-clock timing used for the paper's cost accounting (Section III-C):
// query execution time (C_t, C_c), deviation computation time (C_d), and
// accuracy evaluation time (C_a) are all measured with `Stopwatch`.

#ifndef MUVE_COMMON_STOPWATCH_H_
#define MUVE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace muve::common {

// A restartable monotonic wall-clock stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  // Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace muve::common

#endif  // MUVE_COMMON_STOPWATCH_H_
