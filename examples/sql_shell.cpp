// Interactive SQL shell over the bundled datasets.
//
//   $ ./build/examples/sql_shell
//   muve> SELECT Team, COUNT(*) FROM players GROUP BY Team ORDER BY Team
//         LIMIT 5;
//   muve> SELECT MP, SUM(3PAr) FROM players WHERE Team = 'GSW'
//         GROUP BY MP NUMBER OF BINS 3;
//   muve> RECOMMEND TOP 3 VIEWS FROM players WHERE Team = 'GSW'
//         USING MUVE WEIGHTS (0.6, 0.2, 0.2);
//   muve> \q
//
// Tables available: `players` (synthetic 2015 NBA) and `patients`
// (synthetic Pima diabetes).  Also reads statements from stdin when
// piped, which the repository uses for smoke testing:
//
//   $ echo "SELECT COUNT(*) FROM patients;" | ./build/examples/sql_shell

#include <unistd.h>

#include <iostream>
#include <string>

#include "common/logging.h"
#include "core/recommend_sql.h"
#include "data/diab.h"
#include "data/nba.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace {

void ExecuteLine(const std::string& line, muve::sql::Catalog& catalog) {
  auto parsed = muve::sql::Parse(line);
  if (!parsed.ok()) {
    std::cout << "error: " << parsed.status().ToString() << "\n";
    return;
  }
  if (parsed->kind == muve::sql::Statement::Kind::kRecommend) {
    auto rec = muve::core::ExecuteRecommend(parsed->recommend, catalog);
    if (!rec.ok()) {
      std::cout << "error: " << rec.status().ToString() << "\n";
      return;
    }
    std::cout << rec->ToString() << "\n";
    return;
  }
  auto result = muve::sql::ExecuteStatement(*parsed, catalog);
  if (!result.ok()) {
    std::cout << "error: " << result.status().ToString() << "\n";
    return;
  }
  if (result->table.has_value()) {
    std::cout << result->table->ToString(20);
  }
  std::cout << result->message << "\n";
}

}  // namespace

int main() {
  muve::sql::Catalog catalog;
  {
    const muve::data::Dataset nba = muve::data::MakeNbaDataset();
    const muve::data::Dataset diab = muve::data::MakeDiabDataset();
    MUVE_CHECK(catalog.RegisterTable("players", nba.table->Clone()).ok());
    MUVE_CHECK(catalog.RegisterTable("patients", diab.table->Clone()).ok());
  }

  const bool interactive = isatty(0);
  if (interactive) {
    std::cout << "MuVE SQL shell — tables: players (NBA), patients "
                 "(DIAB).\n"
              << "Statements end with ';'. Type \\q to quit.\n";
  }

  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) {
      std::cout << (buffer.empty() ? "muve> " : "  ... ") << std::flush;
    }
    if (!std::getline(std::cin, line)) break;
    if (line == "\\q" || line == "\\quit" || line == "exit") break;
    buffer += line;
    buffer += "\n";
    // Execute once a statement terminator shows up.
    const size_t semi = buffer.find(';');
    if (semi == std::string::npos) continue;
    const std::string stmt = buffer.substr(0, semi + 1);
    buffer.erase(0, semi + 1);
    if (stmt.find_first_not_of("; \t\n") == std::string::npos) continue;
    ExecuteLine(stmt, catalog);
  }
  return 0;
}
