#include "core/distance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/distribution.h"

namespace muve::core {
namespace {

const std::vector<DistanceKind>& AllKinds() {
  static const auto* kKinds = new std::vector<DistanceKind>{
      DistanceKind::kEuclidean,    DistanceKind::kManhattan,
      DistanceKind::kChebyshev,    DistanceKind::kEarthMovers,
      DistanceKind::kKlDivergence, DistanceKind::kJensenShannon};
  return *kKinds;
}

// Property sweep: identity, symmetry, and [0, 1] range for every kind on
// random distributions.
class DistancePropertyTest
    : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(DistancePropertyTest, IdentityIsZero) {
  common::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> raw(1 + trial % 8);
    for (double& v : raw) v = rng.NextDouble();
    const auto p = NormalizeToDistribution(raw);
    EXPECT_NEAR(Distance(GetParam(), p, p), 0.0, 1e-7);
  }
}

TEST_P(DistancePropertyTest, SymmetricAndBounded) {
  common::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + trial % 10;
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.NextDouble();
      b[i] = rng.NextDouble();
    }
    const auto p = NormalizeToDistribution(a);
    const auto q = NormalizeToDistribution(b);
    const double pq = Distance(GetParam(), p, q);
    const double qp = Distance(GetParam(), q, p);
    EXPECT_NEAR(pq, qp, 1e-9);
    EXPECT_GE(pq, 0.0);
    EXPECT_LE(pq, 1.0 + 1e-9);
  }
}

TEST_P(DistancePropertyTest, DisjointMassIsMaximalOrNearMaximal) {
  // p concentrated on the first bin, q on the last: distances should be
  // large (== 1 for the norm-based kinds and EMD).
  const std::vector<double> p = {1.0, 0.0, 0.0, 0.0};
  const std::vector<double> q = {0.0, 0.0, 0.0, 1.0};
  const double d = Distance(GetParam(), p, q);
  EXPECT_GT(d, 0.6);
  EXPECT_LE(d, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DistancePropertyTest, ::testing::ValuesIn(AllKinds()),
    [](const ::testing::TestParamInfo<DistanceKind>& info) {
      return DistanceKindName(info.param);
    });

TEST(DistanceTest, EuclideanValue) {
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.0, 1.0};
  EXPECT_NEAR(Distance(DistanceKind::kEuclidean, p, q), 1.0, 1e-12);
  const std::vector<double> r = {0.5, 0.5};
  EXPECT_NEAR(Distance(DistanceKind::kEuclidean, p, r),
              std::sqrt(0.5) / std::sqrt(2.0), 1e-12);
}

TEST(DistanceTest, ManhattanIsTotalVariation) {
  const std::vector<double> p = {0.8, 0.2};
  const std::vector<double> q = {0.2, 0.8};
  EXPECT_NEAR(Distance(DistanceKind::kManhattan, p, q), 0.6, 1e-12);
}

TEST(DistanceTest, ChebyshevPicksLargestGap) {
  const std::vector<double> p = {0.7, 0.2, 0.1};
  const std::vector<double> q = {0.1, 0.3, 0.6};
  EXPECT_NEAR(Distance(DistanceKind::kChebyshev, p, q), 0.6, 1e-12);
}

TEST(DistanceTest, EmdRespectsGroundDistance) {
  // Moving mass to an adjacent bin costs less than across the axis.
  const std::vector<double> p = {1.0, 0.0, 0.0};
  const std::vector<double> adjacent = {0.0, 1.0, 0.0};
  const std::vector<double> far = {0.0, 0.0, 1.0};
  const double near_d = Distance(DistanceKind::kEarthMovers, p, adjacent);
  const double far_d = Distance(DistanceKind::kEarthMovers, p, far);
  EXPECT_LT(near_d, far_d);
  EXPECT_NEAR(far_d, 1.0, 1e-12);
  EXPECT_NEAR(near_d, 0.5, 1e-12);
}

TEST(DistanceTest, EmdSingleBinIsZero) {
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kEarthMovers, {1.0}, {1.0}), 0.0);
}

TEST(DistanceTest, KlGrowsWithDivergence) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> close = {0.55, 0.45};
  const std::vector<double> far = {0.95, 0.05};
  EXPECT_LT(Distance(DistanceKind::kKlDivergence, p, close),
            Distance(DistanceKind::kKlDivergence, p, far));
}

TEST(DistanceTest, EmptyDistributionsAreZero) {
  for (const DistanceKind kind : AllKinds()) {
    EXPECT_DOUBLE_EQ(Distance(kind, {}, {}), 0.0);
  }
}

TEST(DistanceKindTest, NameRoundTrip) {
  for (const DistanceKind kind : AllKinds()) {
    auto parsed = DistanceKindFromName(DistanceKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(*DistanceKindFromName("l2"), DistanceKind::kEuclidean);
  EXPECT_EQ(*DistanceKindFromName("l1"), DistanceKind::kManhattan);
  EXPECT_FALSE(DistanceKindFromName("cosine").ok());
}

TEST(DistributionTest, NormalizesToOne) {
  const auto p = NormalizeToDistribution({1.0, 3.0});
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
  EXPECT_TRUE(IsDistribution(p));
}

TEST(DistributionTest, NegativesClampToZero) {
  const auto p = NormalizeToDistribution({-5.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_TRUE(IsDistribution(p));
}

TEST(DistributionTest, AllZeroBecomesUniform) {
  const auto p = NormalizeToDistribution({0.0, 0.0, 0.0, 0.0});
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(DistributionTest, EmptyStaysEmpty) {
  EXPECT_TRUE(NormalizeToDistribution({}).empty());
}

TEST(DistributionTest, IsDistributionRejectsBadInputs) {
  EXPECT_FALSE(IsDistribution({0.5, 0.4}));          // sums to 0.9
  EXPECT_FALSE(IsDistribution({1.5, -0.5}));         // negative entry
  EXPECT_TRUE(IsDistribution({0.25, 0.25, 0.5}));
}

}  // namespace
}  // namespace muve::core
