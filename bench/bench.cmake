# Benchmark targets, included from the top-level CMakeLists (instead of
# add_subdirectory) so that build/bench/ contains ONLY the benchmark
# executables and `for b in build/bench/*; do $b; done` runs cleanly.

add_library(muve_bench_harness STATIC bench/harness.cc)
target_link_libraries(muve_bench_harness PUBLIC muve_core muve_data)
target_include_directories(muve_bench_harness PUBLIC ${PROJECT_SOURCE_DIR}/bench)
# Default --json-out artifacts land at the repo root as BENCH_<name>.json;
# the runtime git-sha lookup also runs from here.
target_compile_definitions(muve_bench_harness PUBLIC
  MUVE_BENCH_REPO_ROOT="${PROJECT_SOURCE_DIR}")

function(muve_add_bench name)
  add_executable(${name} bench/${name}.cpp)
  target_link_libraries(${name} muve_bench_harness ${ARGN})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

muve_add_bench(fig05_alpha_s_cost)
muve_add_bench(fig06_alpha_d_cost)
muve_add_bench(fig07_topk_cost)
muve_add_bench(fig08_scalability)
muve_add_bench(fig09_additive_cost)
muve_add_bench(fig10_additive_fidelity)
muve_add_bench(fig11_geometric_cost)
muve_add_bench(fig12_geometric_fidelity)
muve_add_bench(fig13_refine_skip)

muve_add_bench(ablate_probe_order)
muve_add_bench(ablate_pruning)
muve_add_bench(ablate_distance)
muve_add_bench(ablate_sharing)
muve_add_bench(ablate_histogram)
muve_add_bench(parallel_scaling)
muve_add_bench(ablate_sampling)
muve_add_bench(fused_scan_bench)
muve_add_bench(anytime_deadline)
# Cross-request shared execution: duplicate-heavy workload against an
# in-process muved, sharing on vs off (DESIGN.md §13).
muve_add_bench(ablate_cross_query muve_server)
# Incremental ingest at scale: cold/warm/append/reload cycle over the
# deterministic scale workload; asserts O(new rows) append cost and
# bit-identical top-k (DESIGN.md §15).
muve_add_bench(scale_ingest muve_sql)

add_executable(micro_engine bench/micro_engine.cpp)
target_link_libraries(micro_engine muve_bench_harness benchmark::benchmark)
set_target_properties(micro_engine PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Differential kernel bench: ns/element for every SIMD kernel at every
# compiled-in dispatch level (the tentpole's speedup evidence).
muve_add_bench(kernel_bench)
