# Empty dependencies file for fig06_alpha_d_cost.
# This may be replaced when dependencies are built.
