#include "core/recommender.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "core/horizontal_search.h"
#include "core/partitioner.h"
#include "core/top_k_tracker.h"

namespace muve::core {

namespace {

constexpr double kNoThreshold = -std::numeric_limits<double>::infinity();

// Bin-count value of the r-th position of a partitioned domain; every
// dimension's domain is a truncated prefix of this common sequence, which
// is what lets MuVE-MuVE's round-robin share one S value per round.
int SequenceBins(const PartitionSpec& spec, size_t position) {
  if (spec.kind == PartitionKind::kGeometric) {
    return static_cast<int>(int64_t{1} << position);
  }
  return 1 + static_cast<int>(position) * spec.step;
}

// Per-view RNG for Hill Climbing: seeding by view index makes the random
// start independent of evaluation order, so serial and parallel runs of
// HC-Linear recommend identically.
common::Rng ViewRng(const SearchOptions& options, size_t view_index) {
  return common::Rng(options.hc_seed ^
                     (0x9E3779B97F4A7C15ULL * (view_index + 1)));
}

// Vertical Linear: decoupled horizontal search per view (Section IV-B).
// Covers Linear-Linear, HC-Linear, and MuVE-Linear.
std::vector<ScoredView> VerticalLinear(ViewEvaluator& evaluator,
                                       const ViewSpace& space,
                                       const SearchOptions& options) {
  TopKTracker tracker(options.k, space.views().size());
  for (size_t i = 0; i < space.views().size(); ++i) {
    const View& view = space.views()[i];
    const DimensionInfo& dim = space.dimension_info(view.dimension);
    const std::vector<int> domain = BinDomain(options.partition, dim.max_bins);
    common::Rng rng = ViewRng(options, i);
    const HorizontalResult result = RunHorizontalSearch(
        evaluator, view, domain, dim.max_bins, options, rng);
    if (result.best.has_value()) tracker.Update(i, *result.best);
  }
  return tracker.TopK();
}

// Vertical MuVE (MuVE-MuVE): round-robin the views' S-lists with the
// shared top-k threshold (Section IV-B).
std::vector<ScoredView> VerticalMuve(ViewEvaluator& evaluator,
                                     const ViewSpace& space,
                                     const SearchOptions& options) {
  const std::vector<View>& views = space.views();
  TopKTracker tracker(options.k, views.size());

  // Precompute per-view domains.
  std::vector<std::vector<int>> domains;
  domains.reserve(views.size());
  size_t max_len = 0;
  for (const View& view : views) {
    const DimensionInfo& dim = space.dimension_info(view.dimension);
    domains.push_back(BinDomain(options.partition, dim.max_bins));
    max_len = std::max(max_len, domains.back().size());
    ++evaluator.stats().views_searched;
  }

  for (size_t r = 0; r < max_len; ++r) {
    const int bins_r = SequenceBins(options.partition, r);
    // Global early termination: every candidate from this round on (any
    // view) has usability <= 1/bins_r.
    if (options.enable_early_termination &&
        tracker.Threshold() >=
            UtilityUpperBound(options.weights, Usability(bins_r))) {
      ++evaluator.stats().early_terminations;
      break;
    }
    for (size_t i = 0; i < views.size(); ++i) {
      if (r >= domains[i].size()) continue;
      MUVE_DCHECK(domains[i][r] == bins_r);
      const CandidateResult cand =
          EvaluateCandidate(evaluator, views[i], domains[i][r], options,
                            tracker.Threshold(), /*allow_pruning=*/true);
      if (cand.outcome == CandidateResult::Outcome::kFullyEvaluated) {
        tracker.Update(i, cand.scored);
      }
    }
  }
  return tracker.TopK();
}

// Shared-scan exhaustive search (SeeDB's shared-computation optimization):
// per dimension and bin count, one batch evaluates every (M, F) view.
// Identical recommendations to Linear-Linear.  Categorical-dimension
// views fall back to per-view evaluation (their group-by is one scan
// already).
std::vector<ScoredView> VerticalSharedLinear(ViewEvaluator& evaluator,
                                             const ViewSpace& space,
                                             const SearchOptions& options) {
  const std::vector<View>& views = space.views();
  TopKTracker tracker(options.k, views.size());

  std::unordered_map<std::string, std::vector<size_t>> groups;
  std::vector<std::string> dimension_order;
  for (size_t i = 0; i < views.size(); ++i) {
    auto [it, inserted] = groups.try_emplace(views[i].dimension);
    if (inserted) dimension_order.push_back(views[i].dimension);
    it->second.push_back(i);
    ++evaluator.stats().views_searched;
  }

  for (const std::string& dim_name : dimension_order) {
    const std::vector<size_t>& group = groups[dim_name];
    const DimensionInfo& dim = space.dimension_info(dim_name);
    if (dim.categorical) {
      for (size_t idx : group) {
        const CandidateResult cand = EvaluateCandidate(
            evaluator, views[idx], 1, options,
            -std::numeric_limits<double>::infinity(),
            /*allow_pruning=*/false);
        tracker.Update(idx, cand.scored);
      }
      continue;
    }
    std::vector<View> batch;
    batch.reserve(group.size());
    for (size_t idx : group) batch.push_back(views[idx]);
    const std::vector<int> domain = BinDomain(options.partition, dim.max_bins);
    for (const int bins : domain) {
      const ViewEvaluator::BatchScores scores =
          evaluator.EvaluateSharedBatch(batch, bins);
      evaluator.stats().candidates_considered +=
          static_cast<int64_t>(group.size());
      evaluator.stats().fully_probed += static_cast<int64_t>(group.size());
      const double s = Usability(bins);
      for (size_t g = 0; g < group.size(); ++g) {
        ScoredView scored;
        scored.view = views[group[g]];
        scored.bins = bins;
        scored.deviation = scores.deviations[g];
        scored.accuracy = scores.accuracies[g];
        scored.usability = s;
        scored.utility = Utility(options.weights, scored.deviation,
                                 scored.accuracy, s);
        tracker.Update(group[g], scored);
      }
    }
  }
  return tracker.TopK();
}

// View refinement (Section IV-C1): score every view at `def` bins, pick
// the top-k, then refine only those k with a full horizontal search.
std::vector<ScoredView> VerticalRefinement(ViewEvaluator& evaluator,
                                           const ViewSpace& space,
                                           const SearchOptions& options,
                                           common::Rng& rng) {
  const std::vector<View>& views = space.views();
  TopKTracker tracker(options.k, views.size());
  const bool muve_pruning = options.horizontal == HorizontalStrategy::kMuve;

  for (size_t i = 0; i < views.size(); ++i) {
    const DimensionInfo& dim = space.dimension_info(views[i].dimension);
    const int def = std::min(options.refinement_default_bins, dim.max_bins);
    const CandidateResult cand =
        EvaluateCandidate(evaluator, views[i], def, options,
                          tracker.Threshold(), muve_pruning);
    if (cand.outcome == CandidateResult::Outcome::kFullyEvaluated) {
      tracker.Update(i, cand.scored);
    }
  }

  std::vector<ScoredView> selected = tracker.TopK();
  std::vector<ScoredView> refined;
  refined.reserve(selected.size());
  for (const ScoredView& sv : selected) {
    const DimensionInfo& dim = space.dimension_info(sv.view.dimension);
    const std::vector<int> domain = BinDomain(options.partition, dim.max_bins);
    const HorizontalResult result = RunHorizontalSearch(
        evaluator, sv.view, domain, dim.max_bins, options, rng);
    // A full horizontal search always finds at least the def-bin utility.
    refined.push_back(result.best.has_value() ? *result.best : sv);
  }
  std::sort(refined.begin(), refined.end(),
            [](const ScoredView& a, const ScoredView& b) {
              return a.utility > b.utility;
            });
  return refined;
}

// View skipping (Section IV-C2): one horizontal search per dimension; its
// optimal bin count is assigned to every view sharing that dimension.
std::vector<ScoredView> VerticalSkipping(ViewEvaluator& evaluator,
                                         const ViewSpace& space,
                                         const SearchOptions& options,
                                         common::Rng& rng) {
  const std::vector<View>& views = space.views();
  TopKTracker tracker(options.k, views.size());
  const bool muve_pruning = options.horizontal == HorizontalStrategy::kMuve;

  // Views grouped by dimension, preserving order; the group's first view
  // is the arbitrarily-selected representative.
  std::unordered_map<std::string, std::vector<size_t>> groups;
  std::vector<std::string> dimension_order;
  for (size_t i = 0; i < views.size(); ++i) {
    auto [it, inserted] = groups.try_emplace(views[i].dimension);
    if (inserted) dimension_order.push_back(views[i].dimension);
    it->second.push_back(i);
  }

  for (const std::string& dim_name : dimension_order) {
    const std::vector<size_t>& group = groups[dim_name];
    const DimensionInfo& dim = space.dimension_info(dim_name);
    const std::vector<int> domain = BinDomain(options.partition, dim.max_bins);

    const size_t rep = group.front();
    const HorizontalResult rep_result = RunHorizontalSearch(
        evaluator, views[rep], domain, dim.max_bins, options, rng);
    if (!rep_result.best.has_value()) continue;
    tracker.Update(rep, *rep_result.best);
    const int opt_bins = rep_result.best->bins;

    for (size_t j = 1; j < group.size(); ++j) {
      const size_t idx = group[j];
      const CandidateResult cand =
          EvaluateCandidate(evaluator, views[idx], opt_bins, options,
                            tracker.Threshold(), muve_pruning);
      if (cand.outcome == CandidateResult::Outcome::kFullyEvaluated) {
        tracker.Update(idx, cand.scored);
      }
    }
  }
  return tracker.TopK();
}

}  // namespace

double Recommendation::TotalUtility() const {
  double total = 0.0;
  for (const ScoredView& v : views) total += v.utility;
  return total;
}

std::string Recommendation::ToString() const {
  std::ostringstream out;
  out << scheme << " top-" << views.size() << ":\n";
  for (size_t i = 0; i < views.size(); ++i) {
    out << "  " << (i + 1) << ". " << views[i].ToString() << "\n";
  }
  out << "  " << stats.ToString();
  return out.str();
}

common::Result<Recommendation> Recommender::RecommendParallelLinear(
    const SearchOptions& options) const {
  const std::vector<View>& views = space_.views();
  const size_t num_threads = std::min<size_t>(
      static_cast<size_t>(options.num_threads),
      std::max<size_t>(views.size(), 1));

  struct WorkerResult {
    // (view index, best candidate) pairs found by this worker.
    std::vector<std::pair<size_t, ScoredView>> bests;
    ExecStats stats;
  };
  std::vector<WorkerResult> results(num_threads);
  ViewEvaluator::Options eval_options;
  eval_options.distance = options.distance;
  eval_options.sample_fraction = options.sample_fraction;
  eval_options.sample_seed = options.sample_seed;

  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      ViewEvaluator evaluator(dataset_, space_, eval_options);
      WorkerResult& out = results[t];
      for (size_t i = t; i < views.size(); i += num_threads) {
        const View& view = views[i];
        const DimensionInfo& dim = space_.dimension_info(view.dimension);
        const std::vector<int> domain =
            BinDomain(options.partition, dim.max_bins);
        common::Rng rng = ViewRng(options, i);
        const HorizontalResult result = RunHorizontalSearch(
            evaluator, view, domain, dim.max_bins, options, rng);
        if (result.best.has_value()) {
          out.bests.emplace_back(i, *result.best);
        }
      }
      out.stats = evaluator.stats();
    });
  }
  for (std::thread& worker : workers) worker.join();

  Recommendation rec;
  rec.scheme = options.SchemeName();
  TopKTracker tracker(options.k, views.size());
  for (const WorkerResult& result : results) {
    for (const auto& [index, best] : result.bests) {
      tracker.Update(index, best);
    }
    rec.stats.Merge(result.stats);
  }
  rec.views = tracker.TopK();
  return rec;
}

common::Result<Recommender> Recommender::Create(data::Dataset dataset) {
  MUVE_ASSIGN_OR_RETURN(ViewSpace space, ViewSpace::Create(dataset));
  return Recommender(std::move(dataset), std::move(space));
}

common::Result<Recommendation> Recommender::Recommend(
    const SearchOptions& options) const {
  MUVE_RETURN_IF_ERROR(options.Validate());
  ViewEvaluator::Options eval_options;
  eval_options.distance = options.distance;
  eval_options.sample_fraction = options.sample_fraction;
  eval_options.sample_seed = options.sample_seed;
  ViewEvaluator evaluator(dataset_, space_, eval_options);
  common::Rng rng(options.hc_seed);

  Recommendation rec;
  rec.scheme = options.SchemeName();
  switch (options.approximation) {
    case VerticalApproximation::kRefinement:
      rec.views = VerticalRefinement(evaluator, space_, options, rng);
      break;
    case VerticalApproximation::kSkipping:
      rec.views = VerticalSkipping(evaluator, space_, options, rng);
      break;
    case VerticalApproximation::kNone:
      if (options.shared_scans) {
        rec.views = VerticalSharedLinear(evaluator, space_, options);
      } else if (options.vertical == VerticalStrategy::kMuve) {
        rec.views = VerticalMuve(evaluator, space_, options);
      } else if (options.num_threads > 1) {
        return RecommendParallelLinear(options);
      } else {
        rec.views = VerticalLinear(evaluator, space_, options);
      }
      break;
  }
  rec.stats = evaluator.stats();
  return rec;
}

}  // namespace muve::core
