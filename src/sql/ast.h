// Abstract syntax for the MuVE SQL dialect.
//
// Two statement kinds:
//
//   SELECT  — projection / filtering / single-attribute (optionally binned)
//             group-by aggregation, exactly the query shape of Section II-A
//             and the binned-view extension of Section III-A:
//
//               SELECT A, F(M) FROM T WHERE P GROUP BY A NUMBER OF BINS b;
//
//   RECOMMEND — the user-facing entry point to view recommendation:
//
//               RECOMMEND TOP 5 VIEWS FROM players WHERE team = 'GSW'
//                 USING MUVE WEIGHTS (0.2, 0.2, 0.6);
//
// WHERE clauses parse directly into storage::Predicate trees, so the
// executor has no expression interpreter of its own.

#ifndef MUVE_SQL_AST_H_
#define MUVE_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/aggregate.h"
#include "storage/predicate.h"

namespace muve::sql {

// One entry of a SELECT list.
struct SelectItem {
  enum class Kind {
    kStar,       // *
    kColumn,     // plain column reference
    kAggregate,  // F(column) or COUNT(*)
  };

  Kind kind = Kind::kColumn;
  std::string column;  // for kColumn and the aggregate argument
  storage::AggregateFunction function = storage::AggregateFunction::kSum;
  bool count_star = false;  // COUNT(*)
  std::string alias;        // optional AS alias

  // Output column name: the alias when present, otherwise a derived name
  // like "SUM(3PAr)".
  std::string OutputName() const;
};

struct OrderBy {
  std::string column;
  bool descending = false;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table_name;
  storage::PredicatePtr where;          // null when absent
  std::optional<std::string> group_by;  // single attribute per the paper
  std::optional<int> num_bins;          // NUMBER OF BINS extension
  // HAVING filters the aggregated result by its *output* column names
  // (use AS aliases for aggregates: ... SUM(m) AS total ... HAVING
  // total > 10).
  storage::PredicatePtr having;         // null when absent
  std::optional<OrderBy> order_by;
  std::optional<int64_t> limit;

  std::string ToString() const;
};

struct RecommendStatement {
  int top_k = 5;
  std::string table_name;
  storage::PredicatePtr where;  // the exploration query's T predicate
  std::string scheme = "MUVE";  // MUVE | LINEAR | HC (horizontal-vertical
                                // combos resolved by the recommender glue)
  // alpha_D, alpha_A, alpha_S; defaults to the paper's default setting.
  double alpha_d = 0.2;
  double alpha_a = 0.2;
  double alpha_s = 0.6;
  std::string distance = "EUCLIDEAN";

  std::string ToString() const;
};

// CREATE TABLE name (col TYPE [DIMENSION|MEASURE|CATEGORICAL], ...)
// Types: INT/INTEGER/BIGINT, DOUBLE/FLOAT/REAL, TEXT/STRING/VARCHAR.
struct CreateTableStatement {
  std::string table_name;
  storage::Schema schema;

  std::string ToString() const;
};

// INSERT INTO name VALUES (v, ...), (v, ...), ...
struct InsertStatement {
  std::string table_name;
  std::vector<std::vector<storage::Value>> rows;

  std::string ToString() const;
};

// LOAD CSV 'path' INTO name — appends a CSV file's rows to an existing
// table (the file's header must match the table schema).
struct LoadCsvStatement {
  std::string path;
  std::string table_name;

  std::string ToString() const;
};

struct Statement {
  enum class Kind { kSelect, kRecommend, kCreateTable, kInsert, kLoadCsv };
  Kind kind = Kind::kSelect;
  SelectStatement select;
  RecommendStatement recommend;
  CreateTableStatement create_table;
  InsertStatement insert;
  LoadCsvStatement load_csv;
};

}  // namespace muve::sql

#endif  // MUVE_SQL_AST_H_
