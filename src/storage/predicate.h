// Row predicates for WHERE-clause evaluation.
//
// A predicate tree is built unbound (names only), bound once against a
// table's schema (resolving column indexes), and then evaluated per row
// during a filter scan.  NULL handling is simplified two-valued logic: any
// comparison involving NULL is false, and NOT flips that (documented
// deviation from SQL's three-valued logic; the MuVE datasets contain no
// NULLs on predicate columns).

#ifndef MUVE_STORAGE_PREDICATE_H_
#define MUVE_STORAGE_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace muve::storage {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSymbol(CompareOp op);

// Filter accounting: how many candidate rows went in, how many came out,
// and how many whole chunks the per-chunk zone maps discarded without
// touching cell bytes.  `rows_in - rows_out` is the number of rows the
// predicate eliminated (ExecStats::predicate_rows_filtered);
// `chunks_skipped` feeds ExecStats::chunks_skipped.
struct FilterStats {
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  int64_t chunks_skipped = 0;
};

// Abstract predicate node.
class Predicate {
 public:
  virtual ~Predicate() = default;

  // Resolves column references against `schema`.  Must be called (and
  // succeed) before Matches / FilterInto.
  virtual common::Status Bind(const Schema& schema) = 0;

  // True when `row` of `table` satisfies the predicate.
  virtual bool Matches(const Table& table, size_t row) const = 0;

  // Selection-vector evaluation: appends the rows of `candidates`
  // (ascending) that satisfy the predicate onto `out`, preserving order.
  // Leaf nodes override this with tight typed loops over the raw
  // per-chunk arrays (one comparator branch hoisted out of the loop,
  // null-skip via the chunk validity bitmap) instead of the per-row
  // virtual Matches + Value-boxing path.  Candidates decompose into
  // chunk runs; each run first consults the chunk's zone map, which can
  // discard the run (no cell can match — counted in
  // FilterStats::chunks_skipped) or bulk-accept it (every cell provably
  // matches and the chunk has no NULLs) without touching cell bytes.
  // String chunks resolve literals against the chunk dictionary: an
  // equality / IN literal absent from the dictionary skips the chunk,
  // and ordering comparisons evaluate once per distinct string, then
  // scan dense codes.  AND composes by cascading the selection vector,
  // OR by sorted union, NOT by sorted difference.  Mixed-type
  // comparisons (e.g. string column vs numeric literal) fall back to the
  // base implementation, which loops Matches — so FilterInto is always
  // exactly row-equivalent to Matches (pinned by
  // tests/storage/selection_vector_test.cc and the zone-map fuzz suite).
  virtual void FilterInto(const Table& table, const RowSet& candidates,
                          RowSet* out, FilterStats* stats = nullptr) const;

  virtual std::string ToString() const = 0;

  // Appends this node's canonical cache-key form (see CanonicalPredicateKey
  // below for the guarantees).  Internal building block; callers use the
  // free function.
  virtual void AppendCanonicalKey(std::string* out) const = 0;
};

using PredicatePtr = std::unique_ptr<Predicate>;

// column <op> literal
PredicatePtr MakeComparison(std::string column, CompareOp op, Value literal);
// column BETWEEN lo AND hi (inclusive)
PredicatePtr MakeBetween(std::string column, Value lo, Value hi);
// column IN (v1, v2, ...); NULL cells never match
PredicatePtr MakeInList(std::string column, std::vector<Value> values);
// column IS NULL (negate == true gives IS NOT NULL)
PredicatePtr MakeIsNull(std::string column, bool negate = false);
PredicatePtr MakeAnd(PredicatePtr lhs, PredicatePtr rhs);
PredicatePtr MakeOr(PredicatePtr lhs, PredicatePtr rhs);
PredicatePtr MakeNot(PredicatePtr inner);
// Matches every row (absent WHERE clause).
PredicatePtr MakeTrue();

// Canonical, order-insensitive cache key of a predicate tree.  Two
// predicates with equal keys match exactly the same rows on every table:
//   * AND / OR chains flatten (associativity), their operands sort by
//     canonical form (commutativity) and duplicates collapse
//     (idempotence under the two-valued logic Matches implements);
//   * numeric literals render through one canonical round-trip double
//     form, so `x = 10` and `x = 10.0` share a key — sound because every
//     Value comparison coerces int64 through double (storage/value.cc);
//   * string literals are length-prefixed, so no literal content can
//     forge the grammar's separators.
// Distinct keys do NOT imply distinct semantics (`x < 5` vs `NOT x >= 5`
// keep different keys); a canonical-key cache then loses a possible hit,
// never serves a wrong entry.  Works on unbound trees — no schema needed
// (pinned by tests/storage/predicate_canon_test.cc).
std::string CanonicalPredicateKey(const Predicate& pred);

// Scans `table` (restricted to `base` when non-null) and returns matching
// row indexes.  Binds `pred` as part of the call.  Runs through the
// selection-vector kernels (FilterInto), not per-row virtual dispatch.
common::Result<RowSet> Filter(const Table& table, Predicate* pred,
                              const RowSet* base = nullptr,
                              FilterStats* stats = nullptr);

}  // namespace muve::storage

#endif  // MUVE_STORAGE_PREDICATE_H_
