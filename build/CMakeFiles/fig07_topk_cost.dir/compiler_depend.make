# Empty compiler generated dependencies file for fig07_topk_cost.
# This may be replaced when dependencies are built.
