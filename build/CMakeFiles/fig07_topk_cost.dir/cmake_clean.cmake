file(REMOVE_RECURSE
  "CMakeFiles/fig07_topk_cost.dir/bench/fig07_topk_cost.cpp.o"
  "CMakeFiles/fig07_topk_cost.dir/bench/fig07_topk_cost.cpp.o.d"
  "bench/fig07_topk_cost"
  "bench/fig07_topk_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_topk_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
