// Append-vs-reload differential suite: growing a catalog table through
// appends — with the shared base-histogram cache patched by
// ApplyAppendDeltas instead of rebuilt — must recommend bit-identically
// to loading the final table from scratch with a cold cache, across
// fuzzed append schedules.  A second suite races appends against
// recommends to pin data-race freedom (run under -DMUVE_SANITIZE=thread
// via the `tsan` label) and the staleness guard that keeps post-quiesce
// results exact even after hostile interleavings.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/recommender.h"
#include "core/search_options.h"
#include "data/dataset.h"
#include "data/scale.h"
#include "gtest/gtest.h"
#include "sql/parser.h"
#include "storage/base_histogram_cache.h"
#include "storage/catalog.h"
#include "storage/ingest.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace muve {
namespace {

constexpr size_t kChunkRows = 256;

// The scale workload's exploration setup over one catalog snapshot with
// a FIXED predicate (the analyst's query does not change as data grows).
data::Dataset DatasetOver(std::shared_ptr<const storage::Table> table,
                          const std::string& predicate_sql) {
  data::Dataset ds;
  ds.name = "scale";
  ds.table = std::move(table);
  ds.dimensions = {"x", "y"};
  ds.measures = {"m1", "m2"};
  ds.functions = {storage::AggregateFunction::kSum,
                  storage::AggregateFunction::kAvg};
  ds.query_predicate_sql = predicate_sql;

  auto stmt = sql::ParseSelect("SELECT * FROM t WHERE " + predicate_sql);
  EXPECT_TRUE(stmt.ok());
  storage::FilterStats stats;
  auto target = storage::Filter(*ds.table, stmt->where.get(),
                                /*base=*/nullptr, &stats);
  EXPECT_TRUE(target.ok());
  ds.target_rows = *std::move(target);
  ds.all_rows = storage::AllRows(ds.table->num_rows());
  ds.predicate_rows_filtered = stats.rows_in - stats.rows_out;
  ds.chunks_skipped = stats.chunks_skipped;
  return ds;
}

core::Recommendation Recommend(
    std::shared_ptr<const storage::Table> table,
    const std::string& predicate_sql,
    std::shared_ptr<storage::BaseHistogramCache> cache) {
  auto rec = core::Recommender::Create(DatasetOver(std::move(table),
                                                  predicate_sql));
  EXPECT_TRUE(rec.ok());
  core::SearchOptions options;
  options.k = 5;
  options.shared_base_cache = std::move(cache);
  auto result = rec->Recommend(options);
  EXPECT_TRUE(result.ok());
  return *std::move(result);
}

void ExpectSameTopK(const core::Recommendation& got,
                    const core::Recommendation& expected) {
  ASSERT_EQ(got.views.size(), expected.views.size());
  for (size_t i = 0; i < got.views.size(); ++i) {
    EXPECT_EQ(got.views[i].view, expected.views[i].view) << "rank " << i;
    EXPECT_EQ(got.views[i].bins, expected.views[i].bins) << "rank " << i;
    // Integer measures: delta-merged bases are bit-exact, so utilities
    // must agree to the last bit, not within a tolerance.
    EXPECT_EQ(got.views[i].utility, expected.views[i].utility)
        << "rank " << i;
    EXPECT_EQ(got.views[i].deviation, expected.views[i].deviation)
        << "rank " << i;
  }
}

// Applies one catalog append plus the incremental cache patch — the
// server's HandleAppend in miniature.
void AppendAndPatch(storage::Catalog* catalog,
                    storage::BaseHistogramCache* cache,
                    const data::ScaleSpec& spec,
                    const std::string& predicate_sql, size_t begin,
                    size_t end) {
  auto rows = data::MakeScaleTable(spec, begin, end, kChunkRows);
  auto result = catalog->Append("scale", *rows);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows_before, begin);

  auto stmt = sql::ParseSelect("SELECT * FROM t WHERE " + predicate_sql);
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->where->Bind(result->snapshot.table->schema()).ok());

  storage::IngestDeltaRequest request;
  request.table = result->snapshot.table.get();
  request.rows_before = result->rows_before;
  request.rows_appended = result->rows_appended;
  request.dimensions = {"x", "y"};
  request.measures = {"m1", "m2"};
  request.target_predicate = stmt->where.get();
  request.cache = cache;
  ASSERT_TRUE(storage::ApplyAppendDeltas(request, nullptr).ok());
}

TEST(AppendReloadDifferentialTest, FuzzedAppendSchedules) {
  common::Rng rng(0xD1FF);
  for (int iter = 0; iter < 6; ++iter) {
    data::ScaleSpec spec;
    spec.rows = 4096;
    spec.seed = data::kScaleDefaultSeed + static_cast<uint64_t>(iter);
    const std::string predicate = data::ScalePredicateSql(spec);

    const size_t initial = static_cast<size_t>(rng.UniformInt(512, 2048));
    storage::Catalog catalog;
    ASSERT_TRUE(
        catalog
            .Create("scale",
                    std::move(*data::MakeScaleTable(spec, 0, initial,
                                                    kChunkRows)))
            .ok());

    auto cache = std::make_shared<storage::BaseHistogramCache>();
    // Warm the shared cache the way a real session would: recommend.
    {
      auto snap = catalog.Get("scale");
      ASSERT_TRUE(snap.ok());
      Recommend(snap->table, predicate, cache);
    }

    size_t published = initial;
    while (published < spec.rows) {
      const size_t step = static_cast<size_t>(rng.UniformInt(
          1, static_cast<int64_t>(spec.rows - published)));
      AppendAndPatch(&catalog, cache.get(), spec, predicate, published,
                     published + step);
      published += step;

      // Interleave recommends mid-schedule on some iterations so later
      // patches run against a cache the intermediate epoch re-used.
      if (rng.Bernoulli(0.4)) {
        auto snap = catalog.Get("scale");
        ASSERT_TRUE(snap.ok());
        Recommend(snap->table, predicate, cache);
      }
    }

    auto snap = catalog.Get("scale");
    ASSERT_TRUE(snap.ok());
    ASSERT_EQ(snap->table->num_rows(), spec.rows);
    core::Recommendation incremental =
        Recommend(snap->table, predicate, cache);

    // Reload-from-scratch reference: the same final rows materialized
    // in one shot, recommended over a cold cache.
    core::Recommendation reloaded =
        Recommend(data::MakeScaleTable(spec, 0, spec.rows, kChunkRows),
                  predicate, std::make_shared<storage::BaseHistogramCache>());
    ExpectSameTopK(incremental, reloaded);

    // The incremental run must have served from patched bases, not
    // rebuilt them: cold builds scan the full table, the warm+patched
    // path only ever scanned deltas after the initial warm-up.
    EXPECT_GT(cache->TotalStats().delta_merges, 0);
  }
}

// Appends racing recommends: no data races (TSan), every racing
// recommend returns OK over its pinned snapshot, and once appends
// quiesce the shared cache converges — the post-quiesce recommend is
// bit-identical to a cold reload even though racing readers may have
// inserted pre-append bases while patches were in flight.
TEST(AppendReloadDifferentialTest, AppendsRacingRecommends) {
  data::ScaleSpec spec;
  spec.rows = 3072;
  const std::string predicate = data::ScalePredicateSql(spec);
  constexpr size_t kInitial = 1024;
  constexpr size_t kStep = 256;

  storage::Catalog catalog;
  ASSERT_TRUE(catalog
                  .Create("scale", std::move(*data::MakeScaleTable(
                                       spec, 0, kInitial, kChunkRows)))
                  .ok());
  auto cache = std::make_shared<storage::BaseHistogramCache>();

  // The server serializes appends (publish + patch as one unit); model
  // that with a mutex.  Recommends take no lock — that is the race
  // under test.
  std::mutex ingest_mu;
  std::thread writer([&]() {
    for (size_t begin = kInitial; begin < spec.rows; begin += kStep) {
      std::lock_guard<std::mutex> lock(ingest_mu);
      AppendAndPatch(&catalog, cache.get(), spec, predicate, begin,
                     begin + kStep);
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&]() {
      for (int i = 0; i < 6; ++i) {
        auto snap = catalog.Get("scale");
        ASSERT_TRUE(snap.ok());
        core::Recommendation rec =
            Recommend(snap->table, predicate, cache);
        EXPECT_EQ(rec.views.size(), 5u);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  auto snap = catalog.Get("scale");
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->table->num_rows(), spec.rows);
  core::Recommendation quiesced = Recommend(snap->table, predicate, cache);
  core::Recommendation reloaded =
      Recommend(data::MakeScaleTable(spec, 0, spec.rows, kChunkRows),
                predicate, std::make_shared<storage::BaseHistogramCache>());
  ExpectSameTopK(quiesced, reloaded);
}

}  // namespace
}  // namespace muve
