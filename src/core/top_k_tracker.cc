#include "core/top_k_tracker.h"

#include <algorithm>

#include "common/logging.h"

namespace muve::core {

void TopKTracker::Update(size_t view_index, const ScoredView& scored) {
  MUVE_CHECK(view_index < bests_.size()) << "view index out of range";
  std::optional<ScoredView>& slot = bests_[view_index];
  if (!slot.has_value()) {
    slot = scored;
    utilities_.insert(scored.utility);
    return;
  }
  if (scored.utility > slot->utility) {
    const auto it = utilities_.find(slot->utility);
    MUVE_DCHECK(it != utilities_.end());
    utilities_.erase(it);
    slot = scored;
    utilities_.insert(scored.utility);
  }
}

double TopKTracker::Threshold() const {
  if (static_cast<int>(utilities_.size()) < k_) {
    return -std::numeric_limits<double>::infinity();
  }
  auto it = utilities_.rbegin();
  std::advance(it, k_ - 1);
  return *it;
}

std::vector<ScoredView> TopKTracker::TopK() const {
  std::vector<ScoredView> all;
  for (const auto& slot : bests_) {
    if (slot.has_value()) all.push_back(*slot);
  }
  std::sort(all.begin(), all.end(), [](const ScoredView& a,
                                       const ScoredView& b) {
    return a.utility > b.utility;
  });
  if (all.size() > static_cast<size_t>(k_)) {
    all.resize(static_cast<size_t>(k_));
  }
  return all;
}

}  // namespace muve::core
