# Empty dependencies file for multi_aggregate_test.
# This may be replaced when dependencies are built.
