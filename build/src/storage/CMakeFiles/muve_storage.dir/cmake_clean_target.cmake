file(REMOVE_RECURSE
  "libmuve_storage.a"
)
