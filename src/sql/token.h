// Token model for the MuVE SQL dialect.

#ifndef MUVE_SQL_TOKEN_H_
#define MUVE_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace muve::sql {

enum class TokenType {
  kEnd = 0,
  kIdentifier,   // column / table / function names (may start with a digit,
                 // e.g. the NBA measure "3PAr")
  kInteger,
  kFloat,
  kString,       // single-quoted literal, quotes stripped
  kKeyword,      // uppercase-normalized SQL keyword
  kStar,
  kComma,
  kLParen,
  kRParen,
  kSemicolon,
  kEq,           // =
  kNe,           // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* TokenTypeName(TokenType type);

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;        // identifier spelling / keyword (uppercased) /
                           // string contents
  int64_t int_value = 0;   // for kInteger
  double float_value = 0;  // for kFloat
  size_t position = 0;     // byte offset in the input, for error messages

  std::string ToString() const;
};

// True when `token` is the given keyword (already uppercase-normalized).
bool IsKeyword(const Token& token, const char* keyword);

}  // namespace muve::sql

#endif  // MUVE_SQL_TOKEN_H_
