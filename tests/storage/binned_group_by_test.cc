#include "storage/binned_group_by.h"

#include <gtest/gtest.h>

#include "storage/table.h"

namespace muve::storage {
namespace {

TEST(BinIndexTest, EdgesAndInterior) {
  // Range [0, 10], 5 bins of width 2.
  EXPECT_EQ(BinIndexFor(0.0, 0, 10, 5), 0);
  EXPECT_EQ(BinIndexFor(1.99, 0, 10, 5), 0);
  EXPECT_EQ(BinIndexFor(2.0, 0, 10, 5), 1);
  EXPECT_EQ(BinIndexFor(9.99, 0, 10, 5), 4);
  EXPECT_EQ(BinIndexFor(10.0, 0, 10, 5), 4);  // hi lands in the last bin
}

TEST(BinIndexTest, OutOfRangeClamps) {
  EXPECT_EQ(BinIndexFor(-5.0, 0, 10, 5), 0);
  EXPECT_EQ(BinIndexFor(15.0, 0, 10, 5), 4);
}

TEST(BinIndexTest, SingleBinTakesEverything) {
  EXPECT_EQ(BinIndexFor(-100.0, 0, 10, 1), 0);
  EXPECT_EQ(BinIndexFor(100.0, 0, 10, 1), 0);
}

class BinnedAggregateTest : public ::testing::Test {
 protected:
  BinnedAggregateTest()
      : table_(Schema({{"d", ValueType::kInt64},
                       {"m", ValueType::kDouble},
                       {"s", ValueType::kString}})) {
    // d in {0..9}, m = d * 1.0
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table_
                      .AppendRow({Value(static_cast<int64_t>(i)),
                                  Value(1.0 * i), Value("x")})
                      .ok());
    }
  }

  Table table_;
};

TEST_F(BinnedAggregateTest, SumPreservedAcrossAnyBinning) {
  // Property: for SUM, total mass is invariant under binning.
  for (int bins = 1; bins <= 12; ++bins) {
    auto result = BinnedAggregate(table_, AllRows(10), "d", "m",
                                  AggregateFunction::kSum, bins, 0.0, 9.0);
    ASSERT_TRUE(result.ok()) << "bins=" << bins;
    double total = 0.0;
    for (double g : result->aggregates) total += g;
    EXPECT_DOUBLE_EQ(total, 45.0) << "bins=" << bins;
    EXPECT_EQ(result->aggregates.size(), static_cast<size_t>(bins));
  }
}

TEST_F(BinnedAggregateTest, CountsPreserved) {
  for (int bins : {1, 2, 3, 7, 10, 20}) {
    auto result = BinnedAggregate(table_, AllRows(10), "d", "m",
                                  AggregateFunction::kCount, bins, 0.0, 9.0);
    ASSERT_TRUE(result.ok());
    size_t rows = 0;
    for (size_t c : result->row_counts) rows += c;
    EXPECT_EQ(rows, 10u);
  }
}

TEST_F(BinnedAggregateTest, TwoBinSplit) {
  auto result = BinnedAggregate(table_, AllRows(10), "d", "m",
                                AggregateFunction::kSum, 2, 0.0, 9.0);
  ASSERT_TRUE(result.ok());
  // Width 4.5: values 0..4 -> bin 0 (sum 10), 5..9 -> bin 1 (sum 35).
  EXPECT_DOUBLE_EQ(result->aggregates[0], 10.0);
  EXPECT_DOUBLE_EQ(result->aggregates[1], 35.0);
}

TEST_F(BinnedAggregateTest, EmptyBinsAreZero) {
  // Only rows {0, 9}: middle bins empty.
  const RowSet rows = {0, 9};
  auto result = BinnedAggregate(table_, rows, "d", "m",
                                AggregateFunction::kSum, 9, 0.0, 9.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->aggregates[0], 0.0);
  EXPECT_DOUBLE_EQ(result->aggregates[8], 9.0);
  for (int b = 1; b < 8; ++b) {
    EXPECT_DOUBLE_EQ(result->aggregates[b], 0.0) << "bin " << b;
    EXPECT_EQ(result->row_counts[b], 0u);
  }
}

TEST_F(BinnedAggregateTest, BinBoundaryAccessors) {
  auto result = BinnedAggregate(table_, AllRows(10), "d", "m",
                                AggregateFunction::kSum, 3, 0.0, 9.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->bin_width(), 3.0);
  EXPECT_DOUBLE_EQ(result->BinStart(0), 0.0);
  EXPECT_DOUBLE_EQ(result->BinEnd(0), 3.0);
  EXPECT_DOUBLE_EQ(result->BinStart(2), 6.0);
  EXPECT_DOUBLE_EQ(result->BinEnd(2), 9.0);
}

TEST_F(BinnedAggregateTest, SubsetSharesComparisonRange) {
  // A subset binned with the full range must place values by the full
  // range's boundaries, not its own min/max.
  const RowSet rows = {8, 9};
  auto result = BinnedAggregate(table_, rows, "d", "m",
                                AggregateFunction::kSum, 2, 0.0, 9.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->aggregates[0], 0.0);
  EXPECT_DOUBLE_EQ(result->aggregates[1], 17.0);
}

TEST_F(BinnedAggregateTest, InvalidArguments) {
  EXPECT_FALSE(BinnedAggregate(table_, AllRows(10), "d", "m",
                               AggregateFunction::kSum, 0, 0.0, 9.0)
                   .ok());
  EXPECT_FALSE(BinnedAggregate(table_, AllRows(10), "d", "m",
                               AggregateFunction::kSum, 3, 9.0, 0.0)
                   .ok());
  EXPECT_FALSE(BinnedAggregate(table_, AllRows(10), "s", "m",
                               AggregateFunction::kSum, 3, 0.0, 9.0)
                   .ok());
  EXPECT_FALSE(BinnedAggregate(table_, AllRows(10), "d", "s",
                               AggregateFunction::kSum, 3, 0.0, 9.0)
                   .ok());
  EXPECT_FALSE(BinnedAggregate(table_, AllRows(10), "nope", "m",
                               AggregateFunction::kSum, 3, 0.0, 9.0)
                   .ok());
}

TEST_F(BinnedAggregateTest, DegenerateRangeSingleBin) {
  // All mass lands in bin 0 when lo == hi.
  auto result = BinnedAggregate(table_, AllRows(10), "d", "m",
                                AggregateFunction::kSum, 1, 5.0, 5.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->aggregates[0], 45.0);
}

TEST_F(BinnedAggregateTest, MoreBinsThanValues) {
  auto result = BinnedAggregate(table_, AllRows(10), "d", "m",
                                AggregateFunction::kSum, 100, 0.0, 9.0);
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  size_t nonempty = 0;
  for (size_t b = 0; b < result->aggregates.size(); ++b) {
    total += result->aggregates[b];
    if (result->row_counts[b] > 0) ++nonempty;
  }
  EXPECT_DOUBLE_EQ(total, 45.0);
  EXPECT_EQ(nonempty, 10u);
}

}  // namespace
}  // namespace muve::storage
